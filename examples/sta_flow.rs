//! A complete STA flow: characterize a cell library with the built-in
//! transistor-level simulator, parse a gate-level netlist, run nominal
//! timing, then re-run with crosstalk-aware propagation and compare the
//! techniques' impact on the critical path.
//!
//! Run with `cargo run --release --example sta_flow`.

use noisy_sta::circuit::RcLineSpec;
use noisy_sta::core::MethodKind;
use noisy_sta::liberty::characterize::{inverter_family, Options};
use noisy_sta::spice::Process;
use noisy_sta::sta::{verilog, Constraints, CouplingSpec, Sta};

const NETLIST: &str = r#"
    // Two parallel inverter chains whose middle wires run side by side.
    module datapath (a, b, y, z);
      input a, b;
      output y, z;
      wire va, ga;
      INVX1 u1 (.A(a), .Y(va));
      INVX4 u2 (.A(va), .Y(y));
      INVX1 u3 (.A(b), .Y(ga));
      INVX4 u4 (.A(ga), .Y(z));
    endmodule
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    eprintln!("characterizing library (transistor-level, 3x3 grid)...");
    let lib = inverter_family(
        &Process::c013(),
        &[("INVX1", 1.0), ("INVX4", 4.0)],
        &Options::fast_test(),
    )?;
    println!(
        "library `nsta013` with {} cells characterized",
        lib.cells().len()
    );

    let design = verilog::parse_design(NETLIST)?;
    let sta = Sta::new(design, lib)?;
    let constraints = Constraints::default();

    let nominal = sta.analyze(constraints)?;
    println!("\n== nominal (ideal wires) ==\n{nominal}");

    // Net `va` runs 1000 µm next to `ga` with 100 fF of coupling.
    let victim = sta.design().find_net("va").ok_or("net va")?;
    let aggressor = sta.design().find_net("ga").ok_or("net ga")?;
    let spec = CouplingSpec::new(
        victim,
        vec![aggressor],
        100e-15,
        RcLineSpec::per_micron(1000.0)?,
    );

    for method in [MethodKind::P1, MethodKind::Wls5, MethodKind::Sgdp] {
        match sta.analyze_with_crosstalk(constraints, std::slice::from_ref(&spec), method) {
            Ok((report, adjustments)) => {
                println!("== with crosstalk, {} ==", method.name());
                for adj in &adjustments {
                    println!(
                        "  victim {} {}: {:.1} ps -> {:.1} ps (slew {:.1} ps)",
                        sta.design().net_name(adj.net),
                        adj.polarity,
                        adj.base_arrival * 1e12,
                        adj.noisy_arrival * 1e12,
                        adj.noisy_slew * 1e12
                    );
                }
                println!(
                    "  worst arrival {:.1} ps, worst slack {:.1} ps\n",
                    report.worst_arrival() * 1e12,
                    report.worst_slack() * 1e12
                );
            }
            Err(e) => println!("== with crosstalk, {} == failed: {e}\n", method.name()),
        }
    }
    Ok(())
}
