//! Library characterization round trip: build NLDM tables by transistor-
//! level simulation, serialize them to Liberty text, parse the text back
//! and verify the tables survived.
//!
//! Run with `cargo run --release --example characterize_lib -- [out.lib]`.

use noisy_sta::liberty::characterize::{inverter_family, Options};
use noisy_sta::liberty::parse_library;
use noisy_sta::spice::Process;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "nsta013.lib".to_string());
    let proc = Process::c013();
    eprintln!("characterizing INVX1/INVX2/INVX4/INVX8 on a 5x5 grid...");
    let opts = Options::standard();
    let lib = inverter_family(
        &proc,
        &[
            ("INVX1", 1.0),
            ("INVX2", 2.0),
            ("INVX4", 4.0),
            ("INVX8", 8.0),
        ],
        &opts,
    )?;

    let text = lib.to_liberty();
    std::fs::write(&out_path, &text)?;
    println!("wrote {} ({} bytes)", out_path, text.len());

    let parsed = parse_library(&text)?;
    assert_eq!(
        parsed.to_liberty(),
        text,
        "serialization must be idempotent"
    );
    println!("round trip parse OK: {} cells", parsed.cells().len());

    // Show the classic NLDM landscape for one cell.
    let cell = parsed.cell("INVX4").ok_or("INVX4 missing")?;
    let arc = &cell.output().ok_or("output pin")?.timing[0];
    println!("\nINVX4 cell_fall delay (ps) over slew x load:");
    print!("{:>10}", "slew\\load");
    for &load in arc.cell_fall.loads() {
        print!("{:>9.1}fF", load * 1e15);
    }
    println!();
    for &slew in arc.cell_fall.slews() {
        print!("{:>8.0}ps", slew * 1e12);
        for &load in arc.cell_fall.loads() {
            print!("{:>11.1}", arc.cell_fall.lookup(slew, load)? * 1e12);
        }
        println!();
    }
    Ok(())
}
