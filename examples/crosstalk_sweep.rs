//! Aggressor-alignment sweep on the paper's Configuration I testbench:
//! golden (transistor-level) receiver arrival vs each technique's estimate
//! as the aggressor edge slides across the victim transition.
//!
//! Run with `cargo run --release --example crosstalk_sweep -- [--cases N]`.

use noisy_sta::core::eval::evaluate_case;
use noisy_sta::core::gate::SpiceReceiverGate;
use noisy_sta::core::{MethodKind, PropagationContext};
use noisy_sta::spice::fig1::{self, Fig1Config};
use noisy_sta::waveform::Thresholds;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cases = 11usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--cases" {
            cases = args.next().and_then(|v| v.parse().ok()).unwrap_or(11);
        }
    }
    let cfg = Fig1Config::config_i();
    let th = Thresholds::cmos(cfg.proc.vdd);
    let gate = SpiceReceiverGate::new(cfg);
    eprintln!("simulating noiseless reference...");
    let quiet = fig1::run_noiseless(&cfg)?;

    println!(
        "{:>9} {:>12} {:>9} {:>9} {:>9} {:>9}",
        "skew(ps)", "golden(ps)", "P1", "E4", "WLS5", "SGDP"
    );
    let methods = [
        MethodKind::P1,
        MethodKind::E4,
        MethodKind::Wls5,
        MethodKind::Sgdp,
    ];
    for k in 0..cases {
        let skew = -0.5e-9 + 1.0e-9 * k as f64 / (cases - 1) as f64;
        let noisy = fig1::run_case(&cfg, &[skew])?;
        let ctx = PropagationContext::new(
            quiet.in_u.clone(),
            noisy.in_u.clone(),
            Some(quiet.out_u.clone()),
            th,
        )?;
        let report = evaluate_case(&ctx, &gate, &noisy.out_u, &methods)?;
        let golden = report.golden_delay.t_out_mid;
        let fmt = |m: MethodKind| match report.error_of(m) {
            Some(err) => format!("{:+8.1}", err * 1e12),
            None => "  failed".to_string(),
        };
        println!(
            "{:>9.0} {:>12.1} {:>9} {:>9} {:>9} {:>9}",
            skew * 1e12,
            golden * 1e12,
            fmt(MethodKind::P1),
            fmt(MethodKind::E4),
            fmt(MethodKind::Wls5),
            fmt(MethodKind::Sgdp),
        );
    }
    println!("\ncolumns P1/E4/WLS5/SGDP show |arrival error| vs the golden simulation");
    Ok(())
}
