//! The SDC-driven constraint flow: parse a netlist, extracted parasitics
//! *and an SDC constraint set*, bind everything onto the design, and run
//! the window-filtered crosstalk analysis with per-pin arrival windows.
//!
//! The demonstration: under uniform constraints the near aggressor `gn`
//! switches in lockstep with the victim and survives the window filter.
//! The SDC file then declares that `gn`'s source port `b` arrives more
//! than a nanosecond later — real constraint-set knowledge the uniform
//! model cannot express — and the temporal-correlation filter prunes
//! `gn` too: per-pin windows change which aggressors can possibly align.
//!
//! Run with `cargo run --release --example sdc_flow`.

use noisy_sta::constraints::{bind_sdc, parse_sdc, write_sdc};
use noisy_sta::liberty::characterize::{inverter_family, Options};
use noisy_sta::parasitics::{bind_couplings, parse_spef, BindOptions};
use noisy_sta::spice::Process;
use noisy_sta::sta::{verilog, Constraints, SiOptions, Sta};
use std::fmt::Write as _;

/// Victim `v` next to an aligned aggressor `gn` and a far aggressor `gf`
/// behind a 12-stage chain (same fixture as the `spef_flow` example).
fn netlist() -> String {
    let stages = 12;
    let mut src = String::from(
        "module datapath (a, b, c, y, z, w); input a, b, c; output y, z, w;\n\
         wire v, gn, gf;\n\
         INVX1 u1 (.A(a), .Y(v)); INVX4 u2 (.A(v), .Y(y));\n\
         INVX1 u3 (.A(b), .Y(gn)); INVX4 u4 (.A(gn), .Y(z));\n",
    );
    for i in 1..stages {
        let _ = writeln!(src, "wire f{i};");
    }
    src.push_str("INVX1 c1 (.A(c), .Y(f1));\n");
    for i in 1..stages - 1 {
        let _ = writeln!(src, "INVX1 c{} (.A(f{}), .Y(f{}));", i + 1, i, i + 1);
    }
    let _ = writeln!(src, "INVX1 c{} (.A(f{}), .Y(gf));", stages, stages - 1);
    src.push_str("INVX4 u5 (.A(gf), .Y(w));\nendmodule");
    src
}

/// Extracted parasitics: victim wire coupled to both aggressors.
const SPEF: &str = "\
*DESIGN \"datapath\"
*C_UNIT 1 FF
*R_UNIT 1 OHM
*NAME_MAP
*1 v
*2 gn
*3 gf
*D_NET *1 128.8
*CAP
1 *1:1 9.6
2 *1:2 9.6
3 *1:3 9.6
4 *1:1 *2:1 25.0
5 *1:2 *2:2 25.0
6 *1:2 *3:1 50.0
*RES
1 *1 *1:1 8.5
2 *1:1 *1:2 8.5
3 *1:2 *1:3 8.5
*END
*D_NET *2 28.8
*CAP
1 *2:1 14.4
2 *2:2 14.4
*RES
1 *2 *2:1 12.75
2 *2:1 *2:2 12.75
*END
*D_NET *3 14.4
*CAP
1 *3:1 14.4
*RES
1 *3 *3:1 25.5
*END
";

/// The constraint set (times in ns, caps in pF): a 2 ns clock, a genuine
/// arrival *window* on `a`, a late-arriving `b`, tightened output
/// requirements, and a false path through the far-aggressor chain.
const SDC: &str = "\
# datapath constraints
create_clock -name clk -period 2
set_input_delay 0.0 -clock clk -min [get_ports a]
set_input_delay 0.05 -clock clk -max [get_ports a]
set_input_delay 1.4 -clock clk -min [get_ports b]
set_input_delay 1.6 -clock clk -max [get_ports b]
set_input_transition 0.1 [get_ports {a b c}]
set_output_delay 0.3 -clock clk [get_ports {y z}]
set_load 0.005 [get_ports {y z w}]
set_false_path -from [get_ports c] -to [get_ports w]
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    eprintln!("characterizing library (transistor-level, 3x3 grid)...");
    let lib = inverter_family(
        &Process::c013(),
        &[("INVX1", 1.0), ("INVX4", 4.0)],
        &Options::fast_test(),
    )?;

    let design = verilog::parse_design(&netlist())?;
    let spef = parse_spef(SPEF)?;
    let coupled = bind_couplings(&spef, &design, &BindOptions::default())?;

    let sdc = parse_sdc(SDC)?;
    println!(
        "parsed {} SDC command(s); canonical form:",
        sdc.commands.len()
    );
    print!("{}", write_sdc(&sdc));
    let bound = bind_sdc(&sdc, &design, &Constraints::default())?;
    println!(
        "bound: clock period {:.1} ns, {} input / {} output override(s), {} false path(s)\n",
        bound.clock_period().unwrap_or(f64::NAN) * 1e9,
        bound.boundary.input_override_count(),
        bound.boundary.output_override_count(),
        bound.boundary.false_paths().len(),
    );

    let sta = Sta::new(design, lib)?;
    let options = SiOptions::default();

    // Uniform single-point constraints: every input at t = 0.
    let uniform =
        sta.analyze_with_crosstalk_windows(Constraints::default(), &coupled.specs, &options)?;
    // The SDC boundary conditions: per-pin windows, false path, clock.
    let constrained =
        sta.analyze_with_crosstalk_windows(&bound.boundary, &coupled.specs, &options)?;

    let name = |id| sta.design().net_name(id).to_string();
    println!("== uniform constraints: {} pruned ==", uniform.pruned.len());
    for p in &uniform.pruned {
        println!("  pruned {} (victim {})", name(p.aggressor), name(p.victim));
    }
    println!("== SDC constraints: {} pruned ==", constrained.pruned.len());
    for p in &constrained.pruned {
        println!(
            "  pruned {} (victim {}): window [{:.0}, {:.0}] ps vs victim [{:.0}, {:.0}] ps",
            name(p.aggressor),
            name(p.victim),
            p.aggressor_window.earliest * 1e12,
            p.aggressor_window.latest * 1e12,
            p.victim_window.earliest * 1e12,
            p.victim_window.latest * 1e12,
        );
    }

    println!("\n== SDC timing ==\n{}", constrained.report);
    println!(
        "worst slack vs the 2 ns clock: {:.1} ps",
        constrained.report.worst_slack() * 1e12
    );

    let delta = constrained.pruned.len() as i64 - uniform.pruned.len() as i64;
    println!("pruning delta (SDC - uniform): {delta:+}");
    if delta <= 0 {
        return Err("expected the SDC windows to prune more aggressors".into());
    }
    if !constrained.report.worst_slack().is_finite() {
        return Err("expected a finite worst slack against the clock".into());
    }
    Ok(())
}
