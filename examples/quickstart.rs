//! Quickstart: reduce a noisy waveform to an equivalent ramp with every
//! technique and compare what each one "sees".
//!
//! Run with `cargo run --release --example quickstart`.

use noisy_sta::core::gate::AnalyticInverterGate;
use noisy_sta::core::{MethodKind, PropagationContext};
use noisy_sta::waveform::{SaturatedRamp, Thresholds};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let th = Thresholds::cmos(1.2);
    let gate = AnalyticInverterGate::fast(th);

    // Conventional STA carries this: a clean 150 ps transition at 1 ns.
    let clean = SaturatedRamp::with_slew(1.0e-9, 150e-12, th, true)?;
    println!("clean transition : t50 = 1000.0 ps, slew = 150.0 ps");

    // Crosstalk distorts the real waveform: a deep glitch during the
    // transition plus a shallower one after it.
    let noisy = clean
        .to_waveform(0.0, 3.0e-9, 1e-12)?
        .with_triangular_pulse(1.1e-9, 180e-12, -0.55)?
        .with_triangular_pulse(1.45e-9, 150e-12, -0.3)?;
    println!(
        "noisy waveform   : last mid-rail crossing at {:.1} ps, {} mid crossings",
        noisy.last_crossing(th.mid()).ok_or("no crossing")? * 1e12,
        noisy.crossings(th.mid()).len()
    );

    let ctx = PropagationContext::with_gate(clean, noisy, &gate, th)?;
    println!("\n{:<6} {:>12} {:>12}", "method", "t50 (ps)", "slew (ps)");
    for method in MethodKind::all() {
        match method.equivalent(&ctx) {
            Ok(gamma) => println!(
                "{:<6} {:>12.1} {:>12.1}",
                method.name(),
                gamma.arrival_mid() * 1e12,
                gamma.slew(th) * 1e12
            ),
            Err(e) => println!("{:<6} {:>25}", method.name(), format!("failed: {e}")),
        }
    }
    println!("\nP1 ignores the distortion entirely; P2 stretches the slew across");
    println!("the whole noisy region; SGDP weighs the distortion by how strongly");
    println!("the receiving gate would respond to it.");
    Ok(())
}
