//! The SPEF-driven crosstalk flow: parse a netlist and its extracted
//! parasitics, bind the coupling capacitances onto the design, filter
//! aggressors by timing-window overlap, and run the crosstalk-aware
//! analysis — the full integration path a commercial tool would follow,
//! with no hand-written coupling specs.
//!
//! Run with `cargo run --release --example spef_flow`.

use noisy_sta::liberty::characterize::{inverter_family, Options};
use noisy_sta::parasitics::{bind_couplings, parse_spef, BindOptions};
use noisy_sta::spice::Process;
use noisy_sta::sta::{verilog, Constraints, SiOptions, Sta};
use std::fmt::Write as _;

/// Victim `v` runs next to an aligned aggressor `gn` and a far aggressor
/// `gf` that only switches a dozen gate delays later.
fn netlist() -> String {
    let stages = 12;
    let mut src = String::from(
        "module datapath (a, b, c, y, z, w); input a, b, c; output y, z, w;\n\
         wire v, gn, gf;\n\
         INVX1 u1 (.A(a), .Y(v)); INVX4 u2 (.A(v), .Y(y));\n\
         INVX1 u3 (.A(b), .Y(gn)); INVX4 u4 (.A(gn), .Y(z));\n",
    );
    for i in 1..stages {
        let _ = writeln!(src, "wire f{i};");
    }
    src.push_str("INVX1 c1 (.A(c), .Y(f1));\n");
    for i in 1..stages - 1 {
        let _ = writeln!(src, "INVX1 c{} (.A(f{}), .Y(f{}));", i + 1, i, i + 1);
    }
    let _ = writeln!(src, "INVX1 c{} (.A(f{}), .Y(gf));", stages, stages - 1);
    src.push_str("INVX4 u5 (.A(gf), .Y(w));\nendmodule");
    src
}

/// Extracted parasitics: the victim wire is the paper's Figure 1 line,
/// coupled 50 fF to each aggressor.
const SPEF: &str = "\
*SPEF \"IEEE 1481-1998\"
*DESIGN \"datapath\"
*DIVIDER /
*DELIMITER :
*T_UNIT 1 NS
*C_UNIT 1 FF
*R_UNIT 1 OHM
*L_UNIT 1 HENRY
*NAME_MAP
*1 v
*2 gn
*3 gf
*D_NET *1 128.8
*CONN
*I u1:Y O *D INVX1
*I u2:A I *L 5.2
*CAP
1 *1:1 9.6
2 *1:2 9.6
3 *1:3 9.6
4 *1:1 *2:1 25.0
5 *1:2 *2:2 25.0
6 *1:2 *3:1 50.0
*RES
1 *1 *1:1 8.5
2 *1:1 *1:2 8.5
3 *1:2 *1:3 8.5
*END
*D_NET *2 28.8
*CAP
1 *2:1 14.4
2 *2:2 14.4
*RES
1 *2 *2:1 12.75
2 *2:1 *2:2 12.75
*END
*D_NET *3 14.4
*CAP
1 *3:1 14.4
*RES
1 *3 *3:1 25.5
*END
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    eprintln!("characterizing library (transistor-level, 3x3 grid)...");
    let lib = inverter_family(
        &Process::c013(),
        &[("INVX1", 1.0), ("INVX4", 4.0)],
        &Options::fast_test(),
    )?;

    let design = verilog::parse_design(&netlist())?;
    let spef = parse_spef(SPEF)?;
    println!(
        "parsed SPEF `{}`: {} extracted nets",
        spef.design,
        spef.nets.len()
    );

    let bound = bind_couplings(&spef, &design, &BindOptions::default())?;
    println!(
        "bound {} coupling spec(s) onto the design",
        bound.specs.len()
    );
    for spec in &bound.specs {
        println!(
            "  victim `v`: {} aggressor(s), line {:.1} Ω / {:.1} fF",
            spec.aggressors.len(),
            spec.line.r_total,
            spec.line.c_total * 1e15
        );
    }

    let sta = Sta::new(design, lib)?;
    let constraints = Constraints::default();
    let clean = sta.analyze(constraints)?;
    println!("\n== clean (ideal wires) ==\n{clean}");

    let analysis =
        sta.analyze_with_crosstalk_windows(constraints, &bound.specs, &SiOptions::default())?;
    println!(
        "== window-filtered crosstalk (SGDP) == {} iteration(s), converged: {}",
        analysis.iterations(),
        analysis.converged()
    );
    println!(
        "  topology cache: {} hit(s), {} miss(es) across {} fanout cone(s)",
        analysis.cache_hits(),
        analysis.cache_misses(),
        analysis.cones()
    );
    for p in &analysis.pruned {
        println!(
            "  pruned aggressor `{}` of victim `{}`: window [{:.1}, {:.1}] ps cannot \
             overlap [{:.1}, {:.1}] ps",
            sta.design().net_name(p.aggressor),
            sta.design().net_name(p.victim),
            p.aggressor_window.earliest * 1e12,
            p.aggressor_window.latest * 1e12,
            p.victim_window.earliest * 1e12,
            p.victim_window.latest * 1e12,
        );
    }
    for adj in &analysis.adjustments {
        println!(
            "  victim {} {}: {:.1} ps -> {:.1} ps (push-out {:+.1} ps, slew {:.1} ps)",
            sta.design().net_name(adj.net),
            adj.polarity,
            adj.base_arrival * 1e12,
            adj.noisy_arrival * 1e12,
            (adj.noisy_arrival - adj.base_arrival) * 1e12,
            adj.noisy_slew * 1e12
        );
    }
    println!("\n{}", analysis.report);

    let y = sta.design().find_net("y").ok_or("net y")?;
    let clean_arr = clean
        .net(y)
        .and_then(|t| t.rise.as_ref())
        .ok_or("clean timing")?
        .arrival;
    let noisy_arr = analysis
        .report
        .net(y)
        .and_then(|t| t.rise.as_ref())
        .ok_or("noisy timing")?
        .arrival;
    println!(
        "victim fanout `y` rise: clean {:.1} ps -> with crosstalk {:.1} ps ({:+.1} ps)",
        clean_arr * 1e12,
        noisy_arr * 1e12,
        (noisy_arr - clean_arr) * 1e12
    );

    if analysis.pruned.is_empty() {
        return Err("expected the far aggressor to be window-pruned".into());
    }
    if noisy_arr <= clean_arr {
        return Err("expected crosstalk push-out on the surviving victim".into());
    }
    Ok(())
}
