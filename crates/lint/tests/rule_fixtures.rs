//! One golden fixture per lint rule.
//!
//! Every registered rule gets a minimal design/SPEF/SDC fixture that
//! triggers it (asserted by stable `rule_id`), plus negative tests: a
//! fully clean design produces zero diagnostics, and `allow` config
//! levels suppress a rule entirely.

// Integration tests panic on failure by design; the workspace's
// library-only unwrap/expect denies do not apply here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use nsta_constraints::parse_sdc;
use nsta_liberty::{Cell, Direction, Library, NldmTable, Pin, TimingArc, TimingSense};
use nsta_lint::{run_lint, LintConfig, LintInput, Preflight, Severity, RULES};
use nsta_parasitics::ast::{CapElem, DNet, ResElem, SpefFile, SpefNode, Units};
use nsta_sta::{verilog, BoundaryConditions, InputBoundary, OutputBoundary, Sta};

fn table() -> NldmTable {
    NldmTable::new(
        vec![10e-12, 100e-12],
        vec![1e-15, 10e-15],
        vec![20e-12, 40e-12, 30e-12, 60e-12],
    )
    .unwrap()
}

/// A hand-rolled single-inverter library: enough pin-direction and NLDM
/// structure for every rule without running characterization.
fn tiny_lib() -> Library {
    let arc = TimingArc {
        related_pin: "A".into(),
        sense: TimingSense::NegativeUnate,
        cell_rise: table(),
        rise_transition: table(),
        cell_fall: table(),
        fall_transition: table(),
    };
    let mut lib = Library::new("lint-fixture", 1.2);
    lib.push_cell(Cell {
        name: "INVX1".into(),
        area: 1.6,
        pins: vec![
            Pin {
                name: "A".into(),
                direction: Direction::Input,
                capacitance: 5e-15,
                function: None,
                timing: vec![],
            },
            Pin {
                name: "Y".into(),
                direction: Direction::Output,
                capacitance: 0.0,
                function: Some("!A".into()),
                timing: vec![arc],
            },
        ],
    });
    lib
}

/// The clean reference design: a two-inverter chain `a → w → y`.
fn chain() -> nsta_sta::Design {
    verilog::parse_design(
        r#"
        module m (a, y);
          input a; output y;
          wire w;
          INVX1 u1 (.A(a), .Y(w));
          INVX1 u2 (.A(w), .Y(y));
        endmodule
    "#,
    )
    .unwrap()
}

/// A well-formed extraction of the chain's internal wire `w`: one ground
/// cap behind one resistor segment, no couplings.
fn clean_spef_for_w() -> SpefFile {
    spef_with(vec![DNet {
        name: "w".into(),
        total_cap: 5e-15,
        conns: Vec::new(),
        caps: vec![CapElem {
            id: 1,
            a: SpefNode::sub("w", "1"),
            b: None,
            value: 5e-15,
        }],
        ress: vec![ResElem {
            id: 1,
            a: SpefNode::net("w"),
            b: SpefNode::sub("w", "1"),
            value: 10.0,
        }],
    }])
}

fn spef_with(nets: Vec<DNet>) -> SpefFile {
    SpefFile {
        design: "m".into(),
        divider: '/',
        delimiter: ':',
        units: Units::default(),
        ports: Vec::new(),
        nets,
    }
}

/// Runs the linter with default severities over the given pieces.
fn lint(
    design: &nsta_sta::Design,
    boundary: &BoundaryConditions,
    spef: Option<&SpefFile>,
    sdc: Option<&nsta_constraints::SdcFile>,
) -> nsta_lint::LintReport {
    let lib = tiny_lib();
    let input = LintInput {
        design,
        library: &lib,
        couplings: &[],
        boundary,
        spef,
        sdc,
    };
    run_lint(&input, &LintConfig::new())
}

fn fired(report: &nsta_lint::LintReport, rule_id: &str) -> bool {
    report.diagnostics.iter().any(|d| d.rule_id == rule_id)
}

#[test]
fn fires_net_undriven() {
    let design = verilog::parse_design(
        r#"
        module m (a, y);
          input a; output y;
          wire u;
          INVX1 u1 (.A(u), .Y(y));
        endmodule
    "#,
    )
    .unwrap();
    let report = lint(&design, &BoundaryConditions::default(), None, None);
    assert!(fired(&report, "net.undriven"), "{report:?}");
}

#[test]
fn fires_net_multi_driven() {
    let design = verilog::parse_design(
        r#"
        module m (a, b, y);
          input a, b; output y;
          INVX1 u1 (.A(a), .Y(y));
          INVX1 u2 (.A(b), .Y(y));
        endmodule
    "#,
    )
    .unwrap();
    let report = lint(&design, &BoundaryConditions::default(), None, None);
    assert!(fired(&report, "net.multi-driven"), "{report:?}");
    // The diagnostic names both shorted drivers.
    let diag = report
        .diagnostics
        .iter()
        .find(|d| d.rule_id == "net.multi-driven")
        .unwrap();
    assert!(diag.message.contains("u1/Y") && diag.message.contains("u2/Y"));
}

#[test]
fn fires_net_floating() {
    let design = verilog::parse_design(
        r#"
        module m (a, y);
          input a; output y;
          wire u;
          INVX1 u1 (.A(a), .Y(y));
          INVX1 u2 (.A(a), .Y(u));
        endmodule
    "#,
    )
    .unwrap();
    let report = lint(&design, &BoundaryConditions::default(), None, None);
    assert!(fired(&report, "net.floating"), "{report:?}");
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.rule_id == "net.floating" && d.subject == "u"));
}

#[test]
fn fires_spef_unknown_net() {
    let spef = spef_with(vec![DNet {
        name: "ghost".into(),
        total_cap: 1e-15,
        conns: Vec::new(),
        caps: vec![CapElem {
            id: 1,
            a: SpefNode::sub("ghost", "1"),
            b: None,
            value: 1e-15,
        }],
        ress: Vec::new(),
    }]);
    let report = lint(&chain(), &BoundaryConditions::default(), Some(&spef), None);
    assert!(fired(&report, "spef.unknown-net"), "{report:?}");
}

#[test]
fn fires_spef_unknown_coupling_net() {
    let mut spef = clean_spef_for_w();
    spef.nets[0].caps.push(CapElem {
        id: 2,
        a: SpefNode::sub("w", "1"),
        b: Some(SpefNode::sub("phantom", "1")),
        value: 2e-15,
    });
    let report = lint(&chain(), &BoundaryConditions::default(), Some(&spef), None);
    assert!(fired(&report, "spef.unknown-coupling-net"), "{report:?}");
}

#[test]
fn fires_spef_missing_annotation() {
    // `w` couples to `a`, which exists in the design but carries no D_NET.
    let mut spef = clean_spef_for_w();
    spef.nets[0].caps.push(CapElem {
        id: 2,
        a: SpefNode::sub("w", "1"),
        b: Some(SpefNode::sub("a", "1")),
        value: 2e-15,
    });
    let report = lint(&chain(), &BoundaryConditions::default(), Some(&spef), None);
    assert!(fired(&report, "spef.missing-annotation"), "{report:?}");
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.rule_id == "spef.missing-annotation" && d.subject == "a"));
}

#[test]
fn fires_spef_nonpositive_rc() {
    for bad in [0.0, -3.5, f64::NAN] {
        let mut spef = clean_spef_for_w();
        spef.nets[0].ress[0].value = bad;
        let report = lint(&chain(), &BoundaryConditions::default(), Some(&spef), None);
        assert!(
            fired(&report, "spef.nonpositive-rc"),
            "value {bad}: {report:?}"
        );
    }
}

#[test]
fn fires_spef_degenerate_extraction() {
    // The ground cap sits on w:2, which no resistor reaches from the root.
    let mut spef = clean_spef_for_w();
    spef.nets[0].caps[0].a = SpefNode::sub("w", "2");
    let report = lint(&chain(), &BoundaryConditions::default(), Some(&spef), None);
    assert!(fired(&report, "spef.degenerate-extraction"), "{report:?}");
}

#[test]
fn fires_spef_duplicate_annotation() {
    let mut spef = clean_spef_for_w();
    let dup = spef.nets[0].clone();
    spef.nets.push(dup);
    let report = lint(&chain(), &BoundaryConditions::default(), Some(&spef), None);
    assert!(fired(&report, "spef.duplicate-annotation"), "{report:?}");
}

#[test]
fn fires_sdc_unknown_port() {
    // `nope` does not exist; `y` exists but is an output, not an input.
    let sdc = parse_sdc(
        "create_clock -name clk -period 4 [get_ports nope]\n\
         set_input_delay 0.1 -clock clk [get_ports y]\n",
    )
    .unwrap();
    let report = lint(&chain(), &BoundaryConditions::default(), None, Some(&sdc));
    let hits: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule_id == "sdc.unknown-port")
        .collect();
    assert_eq!(hits.len(), 2, "{report:?}");
}

#[test]
fn fires_sdc_unconstrained_endpoint() {
    // required = +inf on every output and no false path covering it.
    let boundary = BoundaryConditions::new(
        InputBoundary::point(0.0, 50e-12),
        OutputBoundary::unconstrained(5e-15),
    );
    let report = lint(&chain(), &boundary, None, None);
    assert!(fired(&report, "sdc.unconstrained-endpoint"), "{report:?}");
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.rule_id == "sdc.unconstrained-endpoint" && d.subject == "y"));
}

#[test]
fn fires_sdc_clock_period() {
    // 1 ps clock against a two-inverter chain whose fastest corner is
    // tens of ps: even zero-load gates cannot fit the period.
    let mut boundary = BoundaryConditions::default();
    boundary.set_clock_period(1e-12);
    let report = lint(&chain(), &boundary, None, None);
    assert!(fired(&report, "sdc.clock-period"), "{report:?}");
}

#[test]
fn clean_design_yields_zero_diagnostics() {
    let sdc = parse_sdc(
        "create_clock -name clk -period 4 [get_ports a]\n\
         set_output_delay 0.5 -clock clk [get_ports y]\n",
    )
    .unwrap();
    let spef = clean_spef_for_w();
    let report = lint(
        &chain(),
        &BoundaryConditions::default(),
        Some(&spef),
        Some(&sdc),
    );
    assert!(report.is_clean(), "{report:?}");
    assert_eq!(report.rules_run, RULES.len());
    assert!(!report.fails(true));
}

#[test]
fn allow_level_suppresses_a_rule() {
    let design = verilog::parse_design(
        r#"
        module m (a, y);
          input a; output y;
          wire u;
          INVX1 u1 (.A(a), .Y(y));
          INVX1 u2 (.A(a), .Y(u));
        endmodule
    "#,
    )
    .unwrap();
    let lib = tiny_lib();
    let mut config = LintConfig::new();
    assert!(config.set("net.floating", Severity::Allow));
    let boundary = BoundaryConditions::default();
    let input = LintInput {
        design: &design,
        library: &lib,
        couplings: &[],
        boundary: &boundary,
        spef: None,
        sdc: None,
    };
    let report = run_lint(&input, &config);
    assert!(!fired(&report, "net.floating"), "{report:?}");
    assert_eq!(report.rules_run, RULES.len() - 1);
}

#[test]
fn preflight_extension_lints_an_engine() {
    let sta = Sta::new(chain(), tiny_lib()).unwrap();
    let report = sta.preflight(&[], &BoundaryConditions::default());
    assert!(report.is_clean(), "{report:?}");
    assert_eq!(report.rules_run, RULES.len());
}
