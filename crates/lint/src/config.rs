//! Per-rule severity configuration.
//!
//! A [`LintConfig`] starts from each rule's registry default and applies
//! overrides parsed from a minimal `rule.id = level` file:
//!
//! ```text
//! # promote missing annotations, silence the floating-net rule
//! spef.missing-annotation = deny
//! net.floating = allow
//! ```
//!
//! Unknown rule ids and unknown levels are hard errors — a typo in a lint
//! config silently disabling a rule is exactly the failure mode a linter
//! exists to prevent.

use std::collections::BTreeMap;
use std::fmt;

use crate::diag::Severity;
use crate::rules::{rule, RuleDescriptor};

/// A config-file parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LintConfigError {
    /// A line was not of the form `key = level`.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The offending line text.
        text: String,
    },
    /// The key does not name a registered rule.
    UnknownRule {
        /// 1-based line number.
        line: usize,
        /// The unrecognized rule id.
        rule_id: String,
    },
    /// The value is not `allow`, `warn` or `deny`.
    UnknownLevel {
        /// 1-based line number.
        line: usize,
        /// The unrecognized level text.
        level: String,
    },
}

impl fmt::Display for LintConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintConfigError::Malformed { line, text } => {
                write!(f, "line {line}: expected `rule.id = level`, got `{text}`")
            }
            LintConfigError::UnknownRule { line, rule_id } => {
                write!(f, "line {line}: unknown lint rule `{rule_id}`")
            }
            LintConfigError::UnknownLevel { line, level } => {
                write!(
                    f,
                    "line {line}: unknown level `{level}` (expected allow, warn or deny)"
                )
            }
        }
    }
}

impl std::error::Error for LintConfigError {}

/// Per-rule severity overrides on top of the registry defaults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintConfig {
    overrides: BTreeMap<&'static str, Severity>,
}

impl LintConfig {
    /// The default configuration: every rule at its registry severity.
    pub fn new() -> Self {
        LintConfig::default()
    }

    /// Parses a `rule.id = level` config file. Blank lines and `#`
    /// comments are ignored.
    ///
    /// # Errors
    ///
    /// [`LintConfigError`] on malformed lines, unknown rule ids, or
    /// unknown severity levels.
    pub fn parse(text: &str) -> Result<Self, LintConfigError> {
        let mut config = LintConfig::default();
        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let Some((key, value)) = trimmed.split_once('=') else {
                return Err(LintConfigError::Malformed {
                    line,
                    text: trimmed.to_string(),
                });
            };
            let key = key.trim();
            let value = value.trim();
            let Some(descriptor) = rule(key) else {
                return Err(LintConfigError::UnknownRule {
                    line,
                    rule_id: key.to_string(),
                });
            };
            let Some(level) = Severity::parse(value) else {
                return Err(LintConfigError::UnknownLevel {
                    line,
                    level: value.to_string(),
                });
            };
            config.overrides.insert(descriptor.id, level);
        }
        Ok(config)
    }

    /// Overrides a single rule's severity programmatically.
    ///
    /// Returns `false` (and changes nothing) when `rule_id` is unknown.
    pub fn set(&mut self, rule_id: &str, level: Severity) -> bool {
        match rule(rule_id) {
            Some(descriptor) => {
                self.overrides.insert(descriptor.id, level);
                true
            }
            None => false,
        }
    }

    /// The effective severity of a rule under this configuration.
    pub fn severity_for(&self, descriptor: &RuleDescriptor) -> Severity {
        self.overrides
            .get(descriptor.id)
            .copied()
            .unwrap_or(descriptor.default_severity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RULES;

    #[test]
    fn defaults_match_registry() {
        let config = LintConfig::new();
        for descriptor in RULES {
            assert_eq!(config.severity_for(descriptor), descriptor.default_severity);
        }
    }

    #[test]
    fn parses_overrides_comments_and_blanks() {
        let config = LintConfig::parse(
            "# comment\n\nnet.floating = allow\n  spef.missing-annotation=deny  \n",
        )
        .unwrap();
        let floating = rule("net.floating").unwrap();
        let missing = rule("spef.missing-annotation").unwrap();
        assert_eq!(config.severity_for(floating), Severity::Allow);
        assert_eq!(config.severity_for(missing), Severity::Deny);
    }

    #[test]
    fn rejects_unknown_rule() {
        assert!(matches!(
            LintConfig::parse("net.does-not-exist = warn"),
            Err(LintConfigError::UnknownRule { line: 1, .. })
        ));
    }

    #[test]
    fn rejects_unknown_level() {
        assert!(matches!(
            LintConfig::parse("net.floating = fatal"),
            Err(LintConfigError::UnknownLevel { line: 1, .. })
        ));
    }

    #[test]
    fn rejects_malformed_line() {
        assert!(matches!(
            LintConfig::parse("net.floating warn"),
            Err(LintConfigError::Malformed { line: 1, .. })
        ));
    }

    #[test]
    fn set_rejects_unknown_ids() {
        let mut config = LintConfig::new();
        assert!(config.set("net.floating", Severity::Deny));
        assert!(!config.set("bogus.rule", Severity::Deny));
    }
}
