//! `Sta::preflight` — lint as an engine extension method.
//!
//! `nsta-lint` sits *above* `nsta-sta` in the dependency graph, so the
//! method lives here as an extension trait rather than on the engine
//! itself. Bring [`Preflight`] into scope and a constructed [`Sta`] lints
//! the exact design + library it will analyze — the entry point a
//! long-lived ECO timing server calls before every incremental solve.

use nsta_sta::{BoundaryConditions, CouplingSpec, Sta};

use crate::config::LintConfig;
use crate::diag::LintReport;
use crate::rules::{run_lint, LintInput};

/// Pre-flight linting over an engine's bound design.
pub trait Preflight {
    /// Lints the engine's design and library together with the coupling
    /// specs and boundary conditions of the upcoming analysis, using the
    /// default per-rule severities.
    ///
    /// SPEF/SDC file-level rules do not fire here (the engine no longer
    /// holds the source files); use [`run_lint`] with a full
    /// [`LintInput`] for file-aware linting.
    fn preflight(&self, couplings: &[CouplingSpec], boundary: &BoundaryConditions) -> LintReport;
}

impl Preflight for Sta {
    fn preflight(&self, couplings: &[CouplingSpec], boundary: &BoundaryConditions) -> LintReport {
        let input = LintInput {
            design: self.design(),
            library: self.library(),
            couplings,
            boundary,
            spef: None,
            sdc: None,
        };
        run_lint(&input, &LintConfig::new())
    }
}
