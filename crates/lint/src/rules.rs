//! The rule registry and rule implementations.
//!
//! Each rule has a stable id (`layer.name`), a default severity, and an
//! implementation that inspects the bound design **read-only** — no rule
//! runs a transient solve or mutates anything, so linting cannot perturb
//! timing results. Rules are evaluated in registry order and emit
//! findings in deterministic (creation/file) order, so reports are
//! bit-stable run to run.

use std::collections::{BTreeMap, BTreeSet};

use nsta_constraints::{SdcCommand, SdcFile};
use nsta_liberty::{Direction, Library};
use nsta_parasitics::{reduce_spef, SpefFile};
use nsta_sta::{BoundaryConditions, CouplingSpec, Design, Edge, NetId, TimingGraph};

use crate::config::LintConfig;
use crate::diag::{LintDiagnostic, LintReport, Severity};

/// A registered rule: stable id, default severity, and catalog summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleDescriptor {
    /// Stable identifier, `layer.name` (never renamed once released).
    pub id: &'static str,
    /// Severity when no config override applies.
    pub default_severity: Severity,
    /// One-line catalog description of what the rule catches.
    pub summary: &'static str,
    /// Observability counter bumped once per finding.
    pub counter: &'static str,
}

/// The full rule registry, in evaluation order.
pub const RULES: &[RuleDescriptor] = &[
    RuleDescriptor {
        id: "net.undriven",
        default_severity: Severity::Deny,
        summary: "a net is read by pins or ports but nothing drives it",
        counter: "lint.rule.net.undriven",
    },
    RuleDescriptor {
        id: "net.multi-driven",
        default_severity: Severity::Deny,
        summary: "a net has more than one driver (short between outputs)",
        counter: "lint.rule.net.multi-driven",
    },
    RuleDescriptor {
        id: "net.floating",
        default_severity: Severity::Warn,
        summary: "an internal net has no fanout: nothing reads it",
        counter: "lint.rule.net.floating",
    },
    RuleDescriptor {
        id: "spef.unknown-net",
        default_severity: Severity::Warn,
        summary: "a SPEF D_NET annotates a net that is not in the design",
        counter: "lint.rule.spef.unknown-net",
    },
    RuleDescriptor {
        id: "spef.unknown-coupling-net",
        default_severity: Severity::Warn,
        summary: "a coupling cap references a net unknown to the design",
        counter: "lint.rule.spef.unknown-coupling-net",
    },
    RuleDescriptor {
        id: "spef.missing-annotation",
        default_severity: Severity::Warn,
        summary: "a design net participates in coupling but has no D_NET",
        counter: "lint.rule.spef.missing-annotation",
    },
    RuleDescriptor {
        id: "spef.nonpositive-rc",
        default_severity: Severity::Deny,
        summary: "an R or C element is zero, negative, or NaN",
        counter: "lint.rule.spef.nonpositive-rc",
    },
    RuleDescriptor {
        id: "spef.degenerate-extraction",
        default_severity: Severity::Deny,
        summary: "an extracted net is electrically degenerate (zero cap, disconnected node)",
        counter: "lint.rule.spef.degenerate-extraction",
    },
    RuleDescriptor {
        id: "spef.duplicate-annotation",
        default_severity: Severity::Deny,
        summary: "one net carries more than one D_NET section",
        counter: "lint.rule.spef.duplicate-annotation",
    },
    RuleDescriptor {
        id: "sdc.unknown-port",
        default_severity: Severity::Deny,
        summary: "an SDC command references a nonexistent or wrong-direction port",
        counter: "lint.rule.sdc.unknown-port",
    },
    RuleDescriptor {
        id: "sdc.unconstrained-endpoint",
        default_severity: Severity::Warn,
        summary: "a primary output has no required time and is never checked",
        counter: "lint.rule.sdc.unconstrained-endpoint",
    },
    RuleDescriptor {
        id: "sdc.clock-period",
        default_severity: Severity::Warn,
        summary: "the clock period is shorter than the fastest-corner longest path",
        counter: "lint.rule.sdc.clock-period",
    },
];

/// Looks a rule up by its stable id.
pub fn rule(id: &str) -> Option<&'static RuleDescriptor> {
    RULES.iter().find(|r| r.id == id)
}

/// Everything the linter inspects, borrowed read-only from the caller.
///
/// `spef` and `sdc` are optional: flows that bind couplings or
/// constraints programmatically still get the netlist-, coupling- and
/// boundary-level rules; the file-level rules simply do not fire.
#[derive(Clone, Copy)]
pub struct LintInput<'a> {
    /// The gate-level netlist.
    pub design: &'a Design,
    /// The cell library (pin directions, timing tables).
    pub library: &'a Library,
    /// Bound coupling specs (used for context in SPEF-level rules).
    pub couplings: &'a [CouplingSpec],
    /// Resolved per-pin boundary conditions.
    pub boundary: &'a BoundaryConditions,
    /// The parsed SPEF file, when the flow reads one.
    pub spef: Option<&'a SpefFile>,
    /// The parsed SDC file, when the flow reads one.
    pub sdc: Option<&'a SdcFile>,
}

/// One rule finding before it is stamped with its id and severity.
struct Finding {
    subject: String,
    message: String,
    suggestion: String,
}

impl Finding {
    fn new(
        subject: impl Into<String>,
        message: impl Into<String>,
        suggestion: impl Into<String>,
    ) -> Self {
        Finding {
            subject: subject.into(),
            message: message.into(),
            suggestion: suggestion.into(),
        }
    }
}

/// Driver/reader census of every net, shared by the netlist rules.
struct NetRoles {
    /// Driver labels per net: `inst/PIN` for cell outputs, plus a marker
    /// for primary inputs.
    drivers: BTreeMap<NetId, Vec<String>>,
    /// Count of reading connections (cell input pins + primary outputs).
    readers: BTreeMap<NetId, usize>,
}

impl NetRoles {
    fn build(design: &Design, library: &Library) -> Self {
        let mut drivers: BTreeMap<NetId, Vec<String>> =
            design.nets().map(|n| (n, Vec::new())).collect();
        let mut readers: BTreeMap<NetId, usize> = design.nets().map(|n| (n, 0)).collect();
        for inst in design.instances() {
            let Some(cell) = library.cell(&inst.cell) else {
                // Unknown cells are a binding error the graph build reports;
                // the census cannot judge their pins.
                continue;
            };
            for (pin, net) in &inst.connections {
                match cell.pin(pin).map(|p| p.direction) {
                    Some(Direction::Output) => {
                        if let Some(d) = drivers.get_mut(net) {
                            d.push(format!("{}/{}", inst.name, pin));
                        }
                    }
                    Some(Direction::Input) => {
                        if let Some(r) = readers.get_mut(net) {
                            *r += 1;
                        }
                    }
                    None => {}
                }
            }
        }
        for &input in design.inputs() {
            if let Some(d) = drivers.get_mut(&input) {
                d.push("primary input port".into());
            }
        }
        for &output in design.outputs() {
            if let Some(r) = readers.get_mut(&output) {
                *r += 1;
            }
        }
        NetRoles { drivers, readers }
    }

    fn driver_count(&self, net: NetId) -> usize {
        self.drivers.get(&net).map_or(0, Vec::len)
    }

    fn reader_count(&self, net: NetId) -> usize {
        self.readers.get(&net).copied().unwrap_or(0)
    }
}

/// Runs every configured rule over `input` and collects the report.
///
/// Rules configured [`Severity::Allow`] are skipped entirely (and not
/// counted in [`LintReport::rules_run`]). The run is wrapped in a
/// `lint.run` observability span, and each finding bumps its rule's
/// `lint.rule.<id>` counter.
pub fn run_lint(input: &LintInput<'_>, config: &LintConfig) -> LintReport {
    let recorder = nsta_obs::recorder();
    let mut span = recorder.span_cat("lint", "lint.run");
    // Pin-role extraction walks every instance against the library; skip
    // it when every design-structure rule is configured `Allow` (e.g. a
    // session's per-edit preflight, where the netlist is immutable).
    let needs_roles = RULES.iter().any(|d| {
        matches!(d.id, "net.undriven" | "net.multi-driven" | "net.floating")
            && config.severity_for(d) != Severity::Allow
    });
    let roles = needs_roles.then(|| NetRoles::build(input.design, input.library));
    let roles = roles.as_ref();

    let mut report = LintReport::default();
    for descriptor in RULES {
        let severity = config.severity_for(descriptor);
        if severity == Severity::Allow {
            continue;
        }
        report.rules_run += 1;
        let findings = match descriptor.id {
            // The design rules only run when `needs_roles` held, so
            // `roles` is always `Some` here; `map` keeps that local.
            "net.undriven" => roles
                .map(|r| rule_undriven(input.design, r))
                .unwrap_or_default(),
            "net.multi-driven" => roles
                .map(|r| rule_multi_driven(input.design, r))
                .unwrap_or_default(),
            "net.floating" => roles
                .map(|r| rule_floating(input.design, r))
                .unwrap_or_default(),
            "spef.unknown-net" => rule_spef_unknown_net(input),
            "spef.unknown-coupling-net" => rule_spef_unknown_coupling_net(input),
            "spef.missing-annotation" => rule_spef_missing_annotation(input),
            "spef.nonpositive-rc" => rule_spef_nonpositive_rc(input),
            "spef.degenerate-extraction" => rule_spef_degenerate(input),
            "spef.duplicate-annotation" => rule_spef_duplicate(input),
            "sdc.unknown-port" => rule_sdc_unknown_port(input),
            "sdc.unconstrained-endpoint" => rule_unconstrained_endpoint(input),
            "sdc.clock-period" => rule_clock_period(input),
            _ => Vec::new(),
        };
        if !findings.is_empty() {
            recorder.add(descriptor.counter, findings.len() as u64);
        }
        for f in findings {
            report.diagnostics.push(LintDiagnostic {
                rule_id: descriptor.id,
                severity,
                subject: f.subject,
                message: f.message,
                suggestion: f.suggestion,
            });
        }
    }
    span.set_arg("rules_run", report.rules_run as f64);
    span.set_arg("diagnostics", report.diagnostics.len() as f64);
    nsta_obs::count!("lint.diagnostics", report.diagnostics.len() as u64);
    report
}

fn rule_undriven(design: &Design, roles: &NetRoles) -> Vec<Finding> {
    design
        .nets()
        .filter(|&n| roles.driver_count(n) == 0 && roles.reader_count(n) > 0)
        .map(|n| {
            let name = design.net_name(n);
            Finding::new(
                name,
                format!(
                    "net {name} is read by {} connection(s) but has no driver",
                    roles.reader_count(n)
                ),
                "connect a cell output to the net or declare it a primary input",
            )
        })
        .collect()
}

fn rule_multi_driven(design: &Design, roles: &NetRoles) -> Vec<Finding> {
    design
        .nets()
        .filter(|&n| roles.driver_count(n) > 1)
        .map(|n| {
            let name = design.net_name(n);
            let drivers = roles
                .drivers
                .get(&n)
                .map(|d| d.join(", "))
                .unwrap_or_default();
            Finding::new(
                name,
                format!(
                    "net {name} has {} drivers: {drivers}",
                    roles.driver_count(n)
                ),
                "keep exactly one driver per net; split the net or drop the extra output",
            )
        })
        .collect()
}

fn rule_floating(design: &Design, roles: &NetRoles) -> Vec<Finding> {
    design
        .nets()
        .filter(|&n| roles.reader_count(n) == 0)
        .map(|n| {
            let name = design.net_name(n);
            Finding::new(
                name,
                format!("net {name} has no fanout: no input pin or output port reads it"),
                "connect a receiver, mark the net as a primary output, or remove it",
            )
        })
        .collect()
}

fn rule_spef_unknown_net(input: &LintInput<'_>) -> Vec<Finding> {
    let Some(spef) = input.spef else {
        return Vec::new();
    };
    spef.nets
        .iter()
        .filter(|net| input.design.find_net(&net.name).is_none())
        .map(|net| {
            Finding::new(
                net.name.clone(),
                format!(
                    "SPEF annotates net {}, which does not exist in design {}",
                    net.name, input.design.name
                ),
                "re-extract from the current netlist revision or fix the SPEF name map",
            )
        })
        .collect()
}

fn rule_spef_unknown_coupling_net(input: &LintInput<'_>) -> Vec<Finding> {
    let Some(spef) = input.spef else {
        return Vec::new();
    };
    let mut findings = Vec::new();
    for net in &spef.nets {
        for cap in net.caps.iter().filter(|c| c.is_coupling()) {
            let Some(partner) = &cap.b else { continue };
            if partner.base != net.name && input.design.find_net(&partner.base).is_none() {
                findings.push(Finding::new(
                    format!("{}:{}", net.name, cap.id),
                    format!(
                        "coupling cap {} on net {} references unknown net {}",
                        cap.id, net.name, partner.base
                    ),
                    "re-extract from the current netlist revision or fix the SPEF name map",
                ));
            }
        }
    }
    findings
}

fn rule_spef_missing_annotation(input: &LintInput<'_>) -> Vec<Finding> {
    let Some(spef) = input.spef else {
        return Vec::new();
    };
    let annotated: BTreeSet<&str> = spef.nets.iter().map(|n| n.name.as_str()).collect();
    // Coupling partners that exist in the design but carry no extraction
    // of their own: the analysis falls back to the victim's wire model
    // for them, which hides the aggressor's real drive strength.
    let mut missing: BTreeMap<&str, &str> = BTreeMap::new();
    for net in &spef.nets {
        for cap in net.caps.iter().filter(|c| c.is_coupling()) {
            let Some(partner) = &cap.b else { continue };
            let base = partner.base.as_str();
            if base != net.name
                && input.design.find_net(base).is_some()
                && !annotated.contains(base)
            {
                missing.entry(base).or_insert(net.name.as_str());
            }
        }
    }
    missing
        .into_iter()
        .map(|(partner, victim)| {
            Finding::new(
                partner,
                format!(
                    "net {partner} is coupled to {victim} but has no D_NET annotation of its own"
                ),
                "extract the aggressor's RC network too; its wire model otherwise \
                 falls back to the victim's",
            )
        })
        .collect()
}

fn rule_spef_nonpositive_rc(input: &LintInput<'_>) -> Vec<Finding> {
    let Some(spef) = input.spef else {
        return Vec::new();
    };
    let mut findings = Vec::new();
    for net in &spef.nets {
        for cap in &net.caps {
            if !(cap.value > 0.0) {
                findings.push(Finding::new(
                    format!("{}:{}", net.name, cap.id),
                    format!(
                        "capacitance {} on net {} is {} F (must be positive and finite)",
                        cap.id, net.name, cap.value
                    ),
                    "fix the extractor output; non-positive or NaN elements have no \
                     physical meaning",
                ));
            }
        }
        for res in &net.ress {
            if !(res.value > 0.0) {
                findings.push(Finding::new(
                    format!("{}:{}", net.name, res.id),
                    format!(
                        "resistance {} on net {} is {} Ω (must be positive and finite)",
                        res.id, net.name, res.value
                    ),
                    "fix the extractor output; non-positive or NaN elements have no \
                     physical meaning",
                ));
            }
        }
    }
    findings
}

fn rule_spef_degenerate(input: &LintInput<'_>) -> Vec<Finding> {
    let Some(spef) = input.spef else {
        return Vec::new();
    };
    reduce_spef(spef)
        .into_iter()
        .filter(|net| !net.defects.is_empty())
        .map(|net| {
            Finding::new(
                net.name.clone(),
                format!(
                    "extraction of net {} is electrically degenerate: {}",
                    net.name,
                    net.defects.join("; ")
                ),
                "re-extract the net; the solver refuses (or isolates) degenerate \
                 meshes at analysis time",
            )
        })
        .collect()
}

fn rule_spef_duplicate(input: &LintInput<'_>) -> Vec<Finding> {
    let Some(spef) = input.spef else {
        return Vec::new();
    };
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for net in &spef.nets {
        *counts.entry(net.name.as_str()).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .filter(|&(_, k)| k > 1)
        .map(|(name, k)| {
            Finding::new(
                name,
                format!("net {name} has {k} D_NET sections"),
                "merge the sections into one; duplicate annotations make the net's \
                 total parasitics ambiguous",
            )
        })
        .collect()
}

fn rule_sdc_unknown_port(input: &LintInput<'_>) -> Vec<Finding> {
    let Some(sdc) = input.sdc else {
        return Vec::new();
    };
    let design = input.design;
    let mut findings = Vec::new();
    // (keyword, port, expected direction) triples in command order —
    // exactly the references `bind_sdc` would reject.
    let check = |keyword: &str, port: &str, want_input: bool, findings: &mut Vec<Finding>| {
        let direction = if want_input { "input" } else { "output" };
        match design.find_net(port) {
            None => findings.push(Finding::new(
                format!("{keyword} {port}"),
                format!("{keyword} references port {port}, which does not exist in the design"),
                "fix the port name or regenerate the SDC for the current netlist",
            )),
            Some(net) => {
                let ok = if want_input {
                    design.inputs().contains(&net)
                } else {
                    design.outputs().contains(&net)
                };
                if !ok {
                    findings.push(Finding::new(
                        format!("{keyword} {port}"),
                        format!("{keyword} references {port}, which is not a primary {direction}"),
                        "fix the port name or regenerate the SDC for the current netlist",
                    ));
                }
            }
        }
    };
    for command in &sdc.commands {
        let keyword = command.keyword();
        match command {
            SdcCommand::CreateClock(cc) => {
                for port in &cc.ports {
                    check(keyword, port, true, &mut findings);
                }
            }
            SdcCommand::SetInputDelay(pd) => {
                for port in &pd.ports {
                    check(keyword, port, true, &mut findings);
                }
            }
            SdcCommand::SetOutputDelay(pd) => {
                for port in &pd.ports {
                    check(keyword, port, false, &mut findings);
                }
            }
            SdcCommand::SetInputTransition(st) => {
                for port in &st.ports {
                    check(keyword, port, true, &mut findings);
                }
            }
            SdcCommand::SetLoad(sl) => {
                for port in &sl.ports {
                    check(keyword, port, false, &mut findings);
                }
            }
            SdcCommand::SetFalsePath(fp) => {
                for port in &fp.from {
                    check(keyword, port, true, &mut findings);
                }
                for port in &fp.to {
                    check(keyword, port, false, &mut findings);
                }
            }
        }
    }
    findings
}

fn rule_unconstrained_endpoint(input: &LintInput<'_>) -> Vec<Finding> {
    let design = input.design;
    let boundary = input.boundary;
    design
        .outputs()
        .iter()
        .filter(|&&out| {
            boundary.output(out).required.is_infinite()
                // A wildcard-from false path ending here (or covering
                // everything) makes the endpoint unconstrained on purpose.
                && !boundary
                    .false_paths()
                    .iter()
                    .any(|fp| fp.from.is_none() && fp.to.is_none_or(|t| t == out))
        })
        .map(|&out| {
            let name = design.net_name(out);
            Finding::new(
                name,
                format!(
                    "primary output {name} has no required time: paths ending here \
                     are never checked"
                ),
                "add a set_output_delay relative to a clock, or declare \
                 set_false_path -to if the endpoint is intentionally untimed",
            )
        })
        .collect()
}

fn rule_clock_period(input: &LintInput<'_>) -> Vec<Finding> {
    // Clock period: prefer the bound boundary conditions, else the raw
    // SDC (periods there are in ns).
    let period = input.boundary.clock_period().or_else(|| {
        input.sdc.and_then(|sdc| {
            sdc.clocks()
                .map(|cc| cc.period * 1e-9)
                .fold(None, |acc: Option<f64>, p| {
                    Some(acc.map_or(p, |a| a.min(p)))
                })
        })
    });
    let Some(period) = period else {
        return Vec::new();
    };
    if !(period > 0.0) {
        return vec![Finding::new(
            "clock",
            format!("clock period {period} s is not a positive number"),
            "fix the create_clock -period value",
        )];
    }
    // Static longest path under the *fastest* possible gate delays (the
    // smallest slew/load corner of each NLDM table, no wire delay): if
    // even that cannot fit the period, no solve can.
    let Ok(graph) = TimingGraph::build(input.design, input.library) else {
        // Structural problems are the netlist rules' domain.
        return Vec::new();
    };
    let mut arrival: BTreeMap<NetId, f64> = input.design.nets().map(|n| (n, 0.0)).collect();
    let mut worst: Option<(NetId, f64)> = None;
    for &net in graph.topological_order() {
        let mut t = 0.0f64;
        for &edge_index in graph.fanin_edges(net) {
            let edge = &graph.edges()[edge_index];
            let from = arrival.get(&edge.from).copied().unwrap_or(0.0);
            t = t.max(from + min_edge_delay(input, edge));
        }
        arrival.insert(net, t);
        if input.design.outputs().contains(&net) && worst.is_none_or(|(_, w)| t > w) {
            worst = Some((net, t));
        }
    }
    let Some((endpoint, longest)) = worst else {
        return Vec::new();
    };
    if longest <= period {
        return Vec::new();
    }
    vec![Finding::new(
        input.design.net_name(endpoint),
        format!(
            "clock period {:.3} ps is shorter than the fastest-corner longest path \
             {:.3} ps ending at {}",
            period * 1e12,
            longest * 1e12,
            input.design.net_name(endpoint)
        ),
        "increase the clock period or shorten the path; even zero-load gates \
         cannot fit this period",
    )]
}

/// The smallest delay any NLDM corner of this edge's arc can produce.
fn min_edge_delay(input: &LintInput<'_>, edge: &Edge) -> f64 {
    let Some(inst) = input.design.instances().get(edge.instance) else {
        return 0.0;
    };
    let Some(cell) = input.library.cell(&inst.cell) else {
        return 0.0;
    };
    let Some(out) = cell.pin(&edge.output_pin) else {
        return 0.0;
    };
    let arc = out
        .timing
        .iter()
        .find(|a| a.related_pin == edge.input_pin)
        .or_else(|| out.timing.first());
    let Some(arc) = arc else {
        return 0.0;
    };
    let mut best = f64::INFINITY;
    for table in [&arc.cell_rise, &arc.cell_fall] {
        let (Some(&slew), Some(&load)) = (table.slews().first(), table.loads().first()) else {
            continue;
        };
        if let Ok(delay) = table.lookup(slew, load) {
            best = best.min(delay);
        }
    }
    if best.is_finite() {
        best.max(0.0)
    } else {
        0.0
    }
}
