//! Diagnostic model and reporters.
//!
//! Every rule violation is a structured [`LintDiagnostic`]; a lint run
//! collects them into a [`LintReport`] that renders either human-readable
//! text or machine-readable JSON (one object per diagnostic, stable
//! `rule_id`s — the shape CI gates validate).

use std::fmt;

/// Effective severity of a rule or diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Rule disabled: violations are suppressed entirely.
    Allow,
    /// Reported, but does not fail a deny-gated run by itself.
    Warn,
    /// Reported and fails a lint-gated run (exit code 4 in `spefbus`).
    Deny,
}

impl Severity {
    /// Canonical lowercase name, as written in config files and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Allow => "allow",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }

    /// Parses a config-file level name.
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "allow" => Some(Severity::Allow),
            "warn" => Some(Severity::Warn),
            "deny" => Some(Severity::Deny),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One rule violation, with enough structure for both reporters.
#[derive(Debug, Clone, PartialEq)]
pub struct LintDiagnostic {
    /// Stable rule identifier (`net.undriven`, `spef.nonpositive-rc`, …).
    pub rule_id: &'static str,
    /// Effective severity after config overrides.
    pub severity: Severity,
    /// What the diagnostic is about: a net, port, or `file:line` subject.
    pub subject: String,
    /// Human-readable description of the violation.
    pub message: String,
    /// Actionable fix hint.
    pub suggestion: String,
}

/// The result of one lint run: diagnostics plus run metadata.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LintReport {
    /// All emitted diagnostics, in deterministic rule-then-subject order.
    /// Diagnostics from rules configured `allow` are suppressed before
    /// they reach the report.
    pub diagnostics: Vec<LintDiagnostic>,
    /// Number of rules evaluated (rules configured `allow` are skipped
    /// and not counted).
    pub rules_run: usize,
}

impl LintReport {
    /// Number of warn-level diagnostics.
    pub fn warn_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warn)
            .count()
    }

    /// Number of deny-level diagnostics.
    pub fn deny_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Deny)
            .count()
    }

    /// `true` when no diagnostics were emitted at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Whether the run fails a lint gate: any deny-level diagnostic, or —
    /// with `promote_warnings` (the `--lint=deny` mode) — any diagnostic
    /// at all.
    pub fn fails(&self, promote_warnings: bool) -> bool {
        if promote_warnings {
            !self.diagnostics.is_empty()
        } else {
            self.deny_count() > 0
        }
    }

    /// Human-readable report: one line per diagnostic plus a summary
    /// footer, in the style of compiler output.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!(
                "{}: [{}] {}: {}\n    hint: {}\n",
                d.severity, d.rule_id, d.subject, d.message, d.suggestion
            ));
        }
        out.push_str(&format!(
            "lint: {} rules run, {} warning(s), {} denial(s)\n",
            self.rules_run,
            self.warn_count(),
            self.deny_count()
        ));
        out
    }

    /// Machine-readable JSON: an array with one object per diagnostic.
    ///
    /// The shape is stable and CI-gated: every object carries exactly the
    /// keys `rule_id`, `severity`, `subject`, `message`, `suggestion`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule_id\":{},\"severity\":{},\"subject\":{},\"message\":{},\"suggestion\":{}}}",
                json_string(d.rule_id),
                json_string(d.severity.as_str()),
                json_string(&d.subject),
                json_string(&d.message),
                json_string(&d.suggestion)
            ));
        }
        out.push(']');
        out
    }
}

/// Escapes a string into a JSON string literal (quotes included).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(sev: Severity) -> LintDiagnostic {
        LintDiagnostic {
            rule_id: "net.undriven",
            severity: sev,
            subject: "n1".into(),
            message: "net n1 has no driver".into(),
            suggestion: "connect a driver or remove the net".into(),
        }
    }

    #[test]
    fn counts_and_gating() {
        let report = LintReport {
            diagnostics: vec![diag(Severity::Warn), diag(Severity::Deny)],
            rules_run: 12,
        };
        assert_eq!(report.warn_count(), 1);
        assert_eq!(report.deny_count(), 1);
        assert!(!report.is_clean());
        assert!(report.fails(false));

        let warn_only = LintReport {
            diagnostics: vec![diag(Severity::Warn)],
            rules_run: 12,
        };
        assert!(!warn_only.fails(false));
        assert!(warn_only.fails(true));
        assert!(!LintReport::default().fails(true));
    }

    #[test]
    fn json_shape_is_stable() {
        let report = LintReport {
            diagnostics: vec![diag(Severity::Deny)],
            rules_run: 12,
        };
        let json = report.to_json();
        assert!(json.starts_with('['));
        assert!(json.contains("\"rule_id\":\"net.undriven\""));
        assert!(json.contains("\"severity\":\"deny\""));
        assert!(json.contains("\"subject\":\"n1\""));
        assert!(json.contains("\"suggestion\""));
    }

    #[test]
    fn json_escapes_special_characters() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn severity_roundtrip() {
        for sev in [Severity::Allow, Severity::Warn, Severity::Deny] {
            assert_eq!(Severity::parse(sev.as_str()), Some(sev));
        }
        assert_eq!(Severity::parse("fatal"), None);
        assert!(Severity::Allow < Severity::Warn && Severity::Warn < Severity::Deny);
    }

    #[test]
    fn human_report_mentions_rule_and_summary() {
        let report = LintReport {
            diagnostics: vec![diag(Severity::Warn)],
            rules_run: 12,
        };
        let text = report.render_human();
        assert!(text.contains("[net.undriven]"));
        assert!(text.contains("12 rules run"));
    }
}
