//! Pre-flight static design linter (`nsta-lint`).
//!
//! The noise-aware STA flow silently assumes well-formed inputs: every
//! victim has parasitics, every endpoint a constraint, every coupling cap
//! a known aggressor. PR 7's fault-tolerance layer recovers when that
//! assumption breaks *mid-solve*; this crate catches the same class of
//! defect *statically, before any solve runs* — the correctness-tooling
//! counterpart to runtime fault isolation.
//!
//! The linter performs semantic analysis over the fully bound design —
//! Verilog netlist + SPEF parasitics + SDC constraints + timing graph —
//! and reports structured [`LintDiagnostic`]s through a registry of rules
//! (see [`RULES`]) spanning every input layer:
//!
//! | layer    | rules |
//! |----------|-------|
//! | netlist  | undriven net, multi-driven net, floating net |
//! | SPEF     | missing annotation, unknown net, unknown coupling partner, non-positive/NaN R/C, degenerate extraction, duplicate annotation |
//! | SDC      | unknown port, unconstrained endpoint, clock-period sanity |
//!
//! Severity is configurable per rule (allow / warn / deny) via
//! [`LintConfig`], which parses a simple `rule.id = level` file. Reports
//! render both human-readable ([`LintReport::render_human`]) and
//! machine-readable JSON ([`LintReport::to_json`], one object per
//! diagnostic with stable `rule_id`s).
//!
//! The linter is **strictly read-only**: it never mutates the design and
//! never runs a transient solve, so enabling it cannot perturb timing
//! results. Entry points:
//!
//! * [`run_lint`] over a [`LintInput`] bundle, or
//! * [`Preflight::preflight`] as an extension method on
//!   [`nsta_sta::Sta`] for incremental (ECO-server) use.

#![forbid(unsafe_code)]

pub mod config;
pub mod diag;
pub mod preflight;
pub mod rules;

pub use config::{LintConfig, LintConfigError};
pub use diag::{LintDiagnostic, LintReport, Severity};
pub use preflight::Preflight;
pub use rules::{rule, run_lint, LintInput, RuleDescriptor, RULES};
