//! End-to-end integration: netlist + SPEF → bind → timing-window filter →
//! crosstalk STA. Exercises the exact flow `examples/spef_flow.rs`
//! demonstrates, with assertions.

// Integration tests panic on failure by design; the workspace's
// library-only unwrap/expect denies do not apply here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use nsta_liberty::characterize::{inverter_family, Options};
use nsta_parasitics::{bind_couplings, parse_spef, BindOptions};
use nsta_spice::Process;
use nsta_sta::{verilog::parse_design, Constraints, SiOptions, Sta};
use std::fmt::Write as _;

/// Victim `v` plus a window-aligned aggressor `gn` and a far aggressor
/// `gf` behind a 12-stage chain: three coupled nets.
fn netlist() -> String {
    let stages = 12;
    let mut src = String::from(
        "module m (a, b, c, y, z, w); input a, b, c; output y, z, w;\n\
         wire v, gn, gf;\n\
         INVX1 u1 (.A(a), .Y(v)); INVX4 u2 (.A(v), .Y(y));\n\
         INVX1 u3 (.A(b), .Y(gn)); INVX4 u4 (.A(gn), .Y(z));\n",
    );
    for i in 1..stages {
        let _ = writeln!(src, "wire f{i};");
    }
    src.push_str("INVX1 c1 (.A(c), .Y(f1));\n");
    for i in 1..stages - 1 {
        let _ = writeln!(src, "INVX1 c{} (.A(f{}), .Y(f{}));", i + 1, i, i + 1);
    }
    let _ = writeln!(src, "INVX1 c{} (.A(f{}), .Y(gf));", stages, stages - 1);
    src.push_str("INVX4 u5 (.A(gf), .Y(w));\nendmodule");
    src
}

/// The victim net's extraction couples it to both aggressors.
const SPEF: &str = "\
*SPEF \"IEEE 1481-1998\"
*DESIGN \"m\"
*DIVIDER /
*DELIMITER :
*T_UNIT 1 NS
*C_UNIT 1 FF
*R_UNIT 1 OHM
*L_UNIT 1 HENRY
*NAME_MAP
*1 v
*2 gn
*3 gf
*D_NET *1 128.8
*CONN
*I u1:Y O *D INVX1
*I u2:A I *L 5.2
*CAP
1 *1:1 9.6
2 *1:2 9.6
3 *1:3 9.6
4 *1:1 *2:1 25.0
5 *1:2 *2:2 25.0
6 *1:2 *3:1 50.0
*RES
1 *1 *1:1 8.5
2 *1:1 *1:2 8.5
3 *1:2 *1:3 8.5
*END
*D_NET *2 28.8
*CAP
1 *2:1 14.4
2 *2:2 14.4
*RES
1 *2 *2:1 10.0
2 *2:1 *2:2 10.0
*END
*D_NET *3 14.4
*CAP
1 *3:1 14.4
*RES
1 *3 *3:1 30.0
*END
";

#[test]
fn spef_driven_window_filtered_crosstalk_flow() {
    let lib = inverter_family(
        &Process::c013(),
        &[("INVX1", 1.0), ("INVX4", 4.0)],
        &Options::fast_test(),
    )
    .expect("characterization");
    let design = parse_design(&netlist()).expect("netlist");
    let spef = parse_spef(SPEF).expect("spef");
    let bound = bind_couplings(&spef, &design, &BindOptions::default()).expect("bind");
    assert_eq!(bound.specs.len(), 1, "one victim with coupled extraction");
    let spec = &bound.specs[0];
    assert_eq!(spec.aggressors.len(), 2);
    // The victim line comes from its own extraction…
    assert!((spec.line.r_total - 25.5).abs() < 1e-9);
    // …and each aggressor wire from *its* extraction, not the victim
    // fallback: the three nets deliberately have distinct R totals.
    // Aggressors are ordered by name (gf, gn).
    let gf_idx = spec
        .aggressors
        .iter()
        .position(|&a| a == design.find_net("gf").unwrap())
        .unwrap();
    let gn_idx = spec
        .aggressors
        .iter()
        .position(|&a| a == design.find_net("gn").unwrap())
        .unwrap();
    assert!((spec.aggressor_lines[gf_idx].r_total - 30.0).abs() < 1e-9);
    assert!((spec.aggressor_lines[gn_idx].r_total - 20.0).abs() < 1e-9);
    // The extraction's *L receiver load is forwarded to the spec.
    assert!((spec.receiver_load.expect("load forwarded") - 5.2e-15).abs() < 1e-27);

    let sta = Sta::new(design, lib).expect("sta");
    let c = Constraints::default();
    let clean = sta.analyze(c).expect("clean analysis");
    let analysis = sta
        .analyze_with_crosstalk_windows(c, &bound.specs, &SiOptions::default())
        .expect("window-filtered crosstalk analysis");

    // The far aggressor's window cannot reach the victim: pruned.
    let gf = sta.design().find_net("gf").expect("gf");
    assert!(
        analysis.pruned.iter().any(|p| p.aggressor == gf),
        "expected gf pruned, got {:?}",
        analysis.pruned
    );
    assert!(analysis.converged());

    // Window-filtered crosstalk delay is never better than clean delay:
    // the victim's fanout net sees wire delay plus surviving-aggressor
    // noise.
    let y = sta.design().find_net("y").expect("y");
    for (pol, clean_pt, noisy_pt) in [
        (
            "rise",
            clean.net(y).unwrap().rise.as_ref(),
            analysis.report.net(y).unwrap().rise.as_ref(),
        ),
        (
            "fall",
            clean.net(y).unwrap().fall.as_ref(),
            analysis.report.net(y).unwrap().fall.as_ref(),
        ),
    ] {
        let clean_arr = clean_pt.expect("clean timing").arrival;
        let noisy_arr = noisy_pt.expect("noisy timing").arrival;
        assert!(
            noisy_arr >= clean_arr,
            "{pol}: window-filtered crosstalk arrival {noisy_arr:e} below clean {clean_arr:e}"
        );
    }
    // And the worst slack cannot improve under coupling.
    assert!(analysis.report.worst_slack() <= clean.worst_slack() + 1e-15);
}
