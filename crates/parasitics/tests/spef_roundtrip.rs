//! Golden-file tests: parse a handwritten SPEF, check the reduced
//! electrical totals against hand-computed constants, and round-trip the
//! model through the canonical writer.

// Integration tests panic on failure by design; the workspace's
// library-only unwrap/expect denies do not apply here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use nsta_parasitics::{parse_spef, reduce_spef, write_spef};

const GOLDEN: &str = include_str!("golden.spef");

#[test]
fn golden_file_parses_with_expected_structure() {
    let spef = parse_spef(GOLDEN).expect("golden file parses");
    assert_eq!(spef.design, "coupled_bus");
    assert_eq!(spef.delimiter, ':');
    assert_eq!(spef.ports.len(), 2);
    assert_eq!(spef.nets.len(), 3);
    let v = spef.net("v").expect("net v");
    assert_eq!(v.conns.len(), 2);
    assert_eq!(v.caps.len(), 6);
    assert_eq!(v.ress.len(), 3);
    // Units: 128.8 fF header total.
    assert!((v.total_cap - 128.8e-15).abs() < 1e-27);
}

#[test]
fn golden_file_reduces_to_figure1_wire() {
    let spef = parse_spef(GOLDEN).expect("golden file parses");
    let reduced = reduce_spef(&spef);
    let v = reduced.iter().find(|r| r.name == "v").expect("net v");
    // The victim wire is exactly the paper's Figure 1 line.
    assert!((v.r_total - 25.5).abs() < 1e-12);
    assert!((v.c_ground - 28.8e-15).abs() < 1e-27);
    assert_eq!(v.segments, 3);
    assert!((v.couplings["g"] - 100e-15).abs() < 1e-27);
    assert!((v.pin_load - 5.2e-15).abs() < 1e-27);
    let line = v.to_line_spec().expect("valid line");
    assert!((line.r_segment() - 8.5).abs() < 1e-12);
    assert!((line.c_segment() - 9.6e-15).abs() < 1e-27);

    // The tap net couples back into the victim from its own section.
    let h = reduced.iter().find(|r| r.name == "h").expect("net h");
    assert!((h.couplings["v"] - 6e-15).abs() < 1e-27);
    assert_eq!(h.segments, 1);
}

#[test]
fn golden_file_round_trips_through_the_writer() {
    let first = parse_spef(GOLDEN).expect("golden file parses");
    let text = write_spef(&first);
    let second = parse_spef(&text).expect("canonical output parses");
    // The canonical form uses SI units, so values survive exactly.
    assert_eq!(first.design, second.design);
    assert_eq!(first.ports, second.ports);
    assert_eq!(first.nets, second.nets);
    // And the canonical form is a fixed point of write ∘ parse.
    assert_eq!(text, write_spef(&second));
}
