//! SPEF tokenizer.
//!
//! SPEF (IEEE 1481) is whitespace-separated: every construct is a sequence
//! of keywords (`*D_NET`, `*CAP`, …), name-map references (`*12`, possibly
//! with a `:node` tail), quoted strings, numbers and identifiers. Comments
//! run `//` to end of line.

use crate::SpefError;

/// One lexical token with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token payload.
    pub kind: TokenKind,
    /// 1-based line the token started on.
    pub line: usize,
}

/// Token payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A starred keyword such as `*D_NET` (stored without the `*`).
    Keyword(String),
    /// A name-map reference `*12`, optionally with a node tail `*12:3`.
    IndexRef(u64, Option<String>),
    /// A double-quoted string (stored without the quotes).
    QString(String),
    /// A number (SPEF numbers are plain floats).
    Number(f64),
    /// Any other word: net names, pin names, punctuation directives.
    Ident(String),
}

impl TokenKind {
    /// Short human-readable description for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Keyword(k) => format!("*{k}"),
            TokenKind::IndexRef(i, Some(tail)) => format!("*{i}:{tail}"),
            TokenKind::IndexRef(i, None) => format!("*{i}"),
            TokenKind::QString(s) => format!("\"{s}\""),
            TokenKind::Number(v) => format!("{v}"),
            TokenKind::Ident(s) => s.clone(),
        }
    }
}

/// Characters that may appear inside an unquoted SPEF word.
fn is_word_char(c: char) -> bool {
    !c.is_whitespace() && c != '"' && c != '*'
}

/// Tokenizes SPEF text.
///
/// # Errors
///
/// [`SpefError::Lex`] on unterminated strings and malformed `*` constructs.
pub fn tokenize(text: &str) -> Result<Vec<Token>, SpefError> {
    let mut tokens = Vec::new();
    let mut chars = text.chars().peekable();
    let mut line = 1usize;

    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '/' => {
                // `//` comment, or a bare divider character in directives.
                chars.next();
                if chars.peek() == Some(&'/') {
                    for nc in chars.by_ref() {
                        if nc == '\n' {
                            line += 1;
                            break;
                        }
                    }
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Ident("/".into()),
                        line,
                    });
                }
            }
            '"' => {
                chars.next();
                let start_line = line;
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some('\n') => {
                            line += 1;
                            s.push('\n');
                        }
                        Some(nc) => s.push(nc),
                        None => {
                            return Err(SpefError::Lex {
                                line: start_line,
                                message: "unterminated string".into(),
                            })
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::QString(s),
                    line: start_line,
                });
            }
            '*' => {
                chars.next();
                let mut word = String::new();
                while let Some(&nc) = chars.peek() {
                    if is_word_char(nc) {
                        word.push(nc);
                        chars.next();
                    } else {
                        break;
                    }
                }
                if word.is_empty() {
                    return Err(SpefError::Lex {
                        line,
                        message: "bare '*'".into(),
                    });
                }
                let kind = if word.chars().next().is_some_and(|d| d.is_ascii_digit()) {
                    // `*12` or `*12<delim>node` — a name-map reference.
                    // The delimiter is whatever single punctuation char the
                    // header declared (the lexer cannot see `*DELIMITER`,
                    // so it accepts any non-alphanumeric separator).
                    let digits_end = word
                        .find(|c: char| !c.is_ascii_digit())
                        .unwrap_or(word.len());
                    let index = word[..digits_end]
                        .parse::<u64>()
                        .map_err(|_| SpefError::Lex {
                            line,
                            message: format!("malformed name-map reference *{word}"),
                        })?;
                    let tail = match &word[digits_end..] {
                        "" => None,
                        rest => {
                            let mut chars = rest.chars();
                            let Some(sep) = chars.next() else {
                                return Err(SpefError::Lex {
                                    line,
                                    message: format!("malformed name-map reference *{word}"),
                                });
                            };
                            let tail = chars.as_str();
                            if sep.is_alphanumeric() || tail.is_empty() {
                                return Err(SpefError::Lex {
                                    line,
                                    message: format!("malformed name-map reference *{word}"),
                                });
                            }
                            Some(tail.to_string())
                        }
                    };
                    TokenKind::IndexRef(index, tail)
                } else {
                    TokenKind::Keyword(word)
                };
                tokens.push(Token { kind, line });
            }
            _ => {
                let mut word = String::new();
                while let Some(&nc) = chars.peek() {
                    if is_word_char(nc) && nc != '/' {
                        word.push(nc);
                        chars.next();
                    } else {
                        break;
                    }
                }
                // Hierarchy dividers join a word: `top/u1:A`.
                while chars.peek() == Some(&'/') {
                    let mut lookahead = chars.clone();
                    lookahead.next();
                    if lookahead.peek() == Some(&'/') {
                        break; // start of a comment
                    }
                    word.push('/');
                    chars.next();
                    while let Some(&nc) = chars.peek() {
                        if is_word_char(nc) && nc != '/' {
                            word.push(nc);
                            chars.next();
                        } else {
                            break;
                        }
                    }
                }
                let kind = match word.parse::<f64>() {
                    Ok(v) => TokenKind::Number(v),
                    Err(_) => TokenKind::Ident(word),
                };
                tokens.push(Token { kind, line });
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(text: &str) -> Vec<TokenKind> {
        tokenize(text)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn keywords_refs_numbers_and_idents() {
        let k = kinds("*D_NET *1 0.5\n*CONN\n*I u1:Y O *D INVX1");
        assert_eq!(
            k,
            vec![
                TokenKind::Keyword("D_NET".into()),
                TokenKind::IndexRef(1, None),
                TokenKind::Number(0.5),
                TokenKind::Keyword("CONN".into()),
                TokenKind::Keyword("I".into()),
                TokenKind::Ident("u1:Y".into()),
                TokenKind::Ident("O".into()),
                TokenKind::Keyword("D".into()),
                TokenKind::Ident("INVX1".into()),
            ]
        );
    }

    #[test]
    fn index_refs_carry_node_tails() {
        assert_eq!(
            kinds("*12:4"),
            vec![TokenKind::IndexRef(12, Some("4".into()))]
        );
        // Non-colon delimiters (declared via *DELIMITER) must lex too.
        assert_eq!(
            kinds("*12.4"),
            vec![TokenKind::IndexRef(12, Some("4".into()))]
        );
        assert_eq!(
            kinds("*7|A"),
            vec![TokenKind::IndexRef(7, Some("A".into()))]
        );
    }

    #[test]
    fn comments_and_strings() {
        let k = kinds("*DESIGN \"top\" // trailing comment\n*DIVIDER /");
        assert_eq!(
            k,
            vec![
                TokenKind::Keyword("DESIGN".into()),
                TokenKind::QString("top".into()),
                TokenKind::Keyword("DIVIDER".into()),
                TokenKind::Ident("/".into()),
            ]
        );
    }

    #[test]
    fn hierarchical_names_join_across_dividers() {
        assert_eq!(kinds("top/u1:A"), vec![TokenKind::Ident("top/u1:A".into())]);
    }

    #[test]
    fn lines_are_tracked() {
        let toks = tokenize("*CAP\n1 n1 0.5").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
    }

    #[test]
    fn lex_errors() {
        assert!(matches!(
            tokenize("\"unterminated"),
            Err(SpefError::Lex { .. })
        ));
        assert!(matches!(tokenize("* "), Err(SpefError::Lex { .. })));
        assert!(matches!(tokenize("*9zz"), Err(SpefError::Lex { .. })));
    }
}
