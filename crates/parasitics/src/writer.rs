//! Canonical SPEF serialization.
//!
//! [`write_spef`] emits a parsed (or programmatically built) [`SpefFile`]
//! back as SPEF text. The output is *canonical*: SI units (`*C_UNIT 1 F`,
//! `*R_UNIT 1 OHM`, `*T_UNIT 1 S`), resolved names (no name map), sections
//! in fixed order. Because Rust formats floats as the shortest string that
//! round-trips and the SI unit scale is exactly 1.0, `parse ∘ write` is the
//! identity on the model — the invariant the golden-file tests rely on.

use crate::ast::{Conn, DNet, SpefFile};
use std::fmt::Write as _;

fn push_conn(out: &mut String, conn: &Conn, kw: &str) {
    let _ = write!(out, "{kw} {} {}", conn.node, conn.direction.letter());
    if let Some(load) = conn.load {
        let _ = write!(out, " *L {load}");
    }
    if let Some(cell) = &conn.driver_cell {
        let _ = write!(out, " *D {cell}");
    }
    out.push('\n');
}

fn push_net(out: &mut String, net: &DNet) {
    let _ = writeln!(out, "*D_NET {} {}", net.name, net.total_cap);
    if !net.conns.is_empty() {
        out.push_str("*CONN\n");
        for conn in &net.conns {
            let kw = match conn.kind {
                crate::ast::ConnKind::Port => "*P",
                crate::ast::ConnKind::Internal => "*I",
            };
            push_conn(out, conn, kw);
        }
    }
    if !net.caps.is_empty() {
        out.push_str("*CAP\n");
        for cap in &net.caps {
            match &cap.b {
                Some(b) => {
                    let _ = writeln!(out, "{} {} {} {}", cap.id, cap.a, b, cap.value);
                }
                None => {
                    let _ = writeln!(out, "{} {} {}", cap.id, cap.a, cap.value);
                }
            }
        }
    }
    if !net.ress.is_empty() {
        out.push_str("*RES\n");
        for res in &net.ress {
            let _ = writeln!(out, "{} {} {} {}", res.id, res.a, res.b, res.value);
        }
    }
    out.push_str("*END\n");
}

/// Serializes `spef` as canonical SPEF text (SI units, resolved names).
pub fn write_spef(spef: &SpefFile) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "*SPEF \"IEEE 1481-1998\"");
    let _ = writeln!(out, "*DESIGN \"{}\"", spef.design);
    let _ = writeln!(out, "*DIVIDER {}", spef.divider);
    // Nodes are serialized by `SpefNode`'s Display, which always uses ':'.
    // Emit the matching delimiter regardless of the source file's choice —
    // canonicalized exactly like the units above — so re-parsing splits
    // node names correctly.
    out.push_str("*DELIMITER :\n");
    out.push_str("*T_UNIT 1 S\n*C_UNIT 1 F\n*R_UNIT 1 OHM\n*L_UNIT 1 HENRY\n");
    if !spef.ports.is_empty() {
        out.push_str("\n*PORTS\n");
        for port in &spef.ports {
            // Port entries have no leading keyword in the *PORTS section.
            let line_start = out.len();
            push_conn(&mut out, port, "");
            // Trim the placeholder keyword's leading space.
            out.replace_range(line_start..line_start + 1, "");
        }
    }
    for net in &spef.nets {
        out.push('\n');
        push_net(&mut out, net);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_spef;

    #[test]
    fn round_trips_through_the_parser() {
        let src = "*DESIGN \"t\"\n*C_UNIT 1 FF\n*R_UNIT 1 OHM\n\
                   *NAME_MAP\n*1 v\n*2 g\n\
                   *D_NET *1 10.0\n*CONN\n*I u1:Y O *D INVX1\n\
                   *CAP\n1 *1:1 4.0\n2 *1:1 *2:1 6.0\n\
                   *RES\n1 *1 *1:1 8.5\n*END\n";
        let first = parse_spef(src).unwrap();
        let text = write_spef(&first);
        let second = parse_spef(&text).unwrap();
        assert_eq!(first.nets, second.nets);
        assert_eq!(first.design, second.design);
        // Canonical output is a fixed point of write ∘ parse.
        assert_eq!(text, write_spef(&second));
    }

    #[test]
    fn non_colon_delimiter_round_trips() {
        // The source file splits nodes on '.'; the canonical output must
        // declare ':' to match how SpefNode serializes.
        let src = "*DELIMITER .\n*C_UNIT 1 FF\n*D_NET v 10.0\n\
                   *CAP\n1 v.1 4.0\n*RES\n1 v v.1 8.5\n*END\n";
        let first = parse_spef(src).unwrap();
        assert_eq!(first.nets[0].caps[0].a.tail.as_deref(), Some("1"));
        let text = write_spef(&first);
        let second = parse_spef(&text).unwrap();
        assert_eq!(second.delimiter, ':');
        assert_eq!(first.nets, second.nets);
    }

    #[test]
    fn ports_round_trip() {
        let src = "*PORTS\na I\nb O *L 3.0\n";
        let first = parse_spef(src).unwrap();
        let second = parse_spef(&write_spef(&first)).unwrap();
        assert_eq!(first.ports, second.ports);
    }
}
