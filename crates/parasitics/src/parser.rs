//! Recursive-descent parser for the SPEF subset used by the workspace:
//! header directives, units, the name map, `*PORTS` and `*D_NET` RC
//! sections (`*CONN`, `*CAP` with ground and coupling entries, `*RES`).
//!
//! Unsupported constructs (`*INDUC`, `*R_NET`, `*C_NET`, attribute cruft)
//! are skipped where harmless or rejected with a positioned error.

use crate::ast::{
    CapElem, Conn, ConnDirection, ConnKind, DNet, ResElem, SpefFile, SpefNode, Units,
};
use crate::lexer::{tokenize, Token, TokenKind};
use crate::SpefError;
use std::collections::HashMap;

/// Parses SPEF text into a [`SpefFile`].
///
/// # Errors
///
/// [`SpefError::Lex`] / [`SpefError::Parse`] with 1-based line positions,
/// or [`SpefError::Semantic`] for valid syntax the model cannot express
/// (duplicate nets, unknown name-map indices, bad units).
pub fn parse_spef(text: &str) -> Result<SpefFile, SpefError> {
    let mut span = nsta_obs::span!("parasitics.parse_spef");
    span.set_arg("bytes", text.len() as f64);
    Parser::new(tokenize(text)?).file()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    name_map: HashMap<u64, String>,
    delimiter: char,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser {
            tokens,
            pos: 0,
            name_map: HashMap::new(),
            delimiter: ':',
        }
    }

    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map_or(0, |t| t.line)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> SpefError {
        SpefError::Parse {
            line: self.line(),
            message: message.into(),
        }
    }

    fn expect_number(&mut self, what: &str) -> Result<f64, SpefError> {
        match self.next().map(|t| t.kind) {
            Some(TokenKind::Number(v)) => Ok(v),
            other => Err(SpefError::Parse {
                line: self.line(),
                message: format!(
                    "expected {what}, found {}",
                    other.map_or("end of file".into(), |k| k.describe())
                ),
            }),
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, SpefError> {
        match self.next().map(|t| t.kind) {
            Some(TokenKind::Ident(s)) => Ok(s),
            other => Err(SpefError::Parse {
                line: self.line(),
                message: format!(
                    "expected {what}, found {}",
                    other.map_or("end of file".into(), |k| k.describe())
                ),
            }),
        }
    }

    /// Resolves a name-map index to its mapped name.
    fn resolve(&self, index: u64) -> Result<&str, SpefError> {
        self.name_map
            .get(&index)
            .map(String::as_str)
            .ok_or_else(|| SpefError::Semantic(format!("unknown name-map index *{index}")))
    }

    /// Parses a node: an index reference (`*12`, `*12:3`) or an identifier
    /// (`net`, `net:3`, `u1:A`).
    fn node(&mut self, what: &str) -> Result<SpefNode, SpefError> {
        match self.next().map(|t| t.kind) {
            Some(TokenKind::IndexRef(i, tail)) => {
                let base = self.resolve(i)?.to_string();
                Ok(SpefNode { base, tail })
            }
            Some(TokenKind::Ident(s)) => Ok(self.split_ident(&s)),
            other => Err(SpefError::Parse {
                line: self.line(),
                message: format!(
                    "expected {what}, found {}",
                    other.map_or("end of file".into(), |k| k.describe())
                ),
            }),
        }
    }

    /// Splits `base<delim>tail` on the *last* delimiter occurrence.
    fn split_ident(&self, s: &str) -> SpefNode {
        match s.rfind(self.delimiter) {
            Some(k) if k > 0 && k + 1 < s.len() => SpefNode {
                base: s[..k].to_string(),
                tail: Some(s[k + 1..].to_string()),
            },
            _ => SpefNode::net(s),
        }
    }

    /// Parses a unit directive payload: `<number> <suffix>`.
    fn unit(&mut self, scales: &[(&str, f64)], what: &str) -> Result<f64, SpefError> {
        let mult = self.expect_number(what)?;
        let suffix = self.expect_ident(what)?.to_ascii_uppercase();
        let scale = scales
            .iter()
            .find(|(name, _)| *name == suffix)
            .map(|&(_, s)| s)
            .ok_or_else(|| SpefError::Semantic(format!("unknown {what} suffix {suffix}")))?;
        if !(mult > 0.0 && mult.is_finite()) {
            return Err(SpefError::Semantic(format!(
                "non-positive {what} multiplier {mult}"
            )));
        }
        Ok(mult * scale)
    }

    fn file(&mut self) -> Result<SpefFile, SpefError> {
        let mut design = String::new();
        let mut divider = '/';
        let mut units = Units::default();
        let mut ports = Vec::new();
        let mut nets: Vec<DNet> = Vec::new();

        while let Some(tok) = self.next() {
            let TokenKind::Keyword(kw) = tok.kind else {
                return Err(SpefError::Parse {
                    line: tok.line,
                    message: format!("expected a directive, found {}", tok.kind.describe()),
                });
            };
            match kw.as_str() {
                // String-payload header directives we keep or skip.
                "SPEF" | "DATE" | "VENDOR" | "PROGRAM" | "VERSION" | "DESIGN_FLOW" => {
                    // Optional payload: one or more strings.
                    while matches!(self.peek(), Some(TokenKind::QString(_))) {
                        self.next();
                    }
                }
                "DESIGN" => match self.next().map(|t| t.kind) {
                    Some(TokenKind::QString(s)) => design = s,
                    Some(TokenKind::Ident(s)) => design = s,
                    _ => return Err(self.err("expected design name")),
                },
                "DIVIDER" => {
                    let s = self.expect_ident("divider character")?;
                    divider = s.chars().next().unwrap_or('/');
                }
                "DELIMITER" => {
                    let s = self.expect_ident("delimiter character")?;
                    self.delimiter = s.chars().next().unwrap_or(':');
                }
                "BUS_DELIMITER" => {
                    // One or two punctuation idents; consume greedily.
                    while matches!(self.peek(), Some(TokenKind::Ident(s)) if s.len() == 1) {
                        self.next();
                    }
                }
                "T_UNIT" => {
                    units.time = self.unit(
                        &[
                            ("S", 1.0),
                            ("MS", 1e-3),
                            ("US", 1e-6),
                            ("NS", 1e-9),
                            ("PS", 1e-12),
                        ],
                        "time unit",
                    )?;
                }
                "C_UNIT" => {
                    units.capacitance = self.unit(
                        &[
                            ("F", 1.0),
                            ("UF", 1e-6),
                            ("NF", 1e-9),
                            ("PF", 1e-12),
                            ("FF", 1e-15),
                        ],
                        "capacitance unit",
                    )?;
                }
                "R_UNIT" => {
                    units.resistance = self.unit(
                        &[("OHM", 1.0), ("KOHM", 1e3), ("MOHM", 1e6)],
                        "resistance unit",
                    )?;
                }
                "L_UNIT" => {
                    units.inductance = self.unit(
                        &[("HENRY", 1.0), ("MH", 1e-3), ("UH", 1e-6)],
                        "inductance unit",
                    )?;
                }
                "NAME_MAP" => self.name_map_section()?,
                "PORTS" => self.ports_section(&mut ports, &units)?,
                "GROUND_NETS" | "POWER_NETS" => {
                    // A list of net names; irrelevant to RC reduction here.
                    while matches!(
                        self.peek(),
                        Some(TokenKind::Ident(_)) | Some(TokenKind::IndexRef(_, _))
                    ) {
                        self.next();
                    }
                }
                "D_NET" => {
                    let net = self.d_net(&units)?;
                    if nets.iter().any(|n| n.name == net.name) {
                        return Err(SpefError::Semantic(format!(
                            "duplicate *D_NET section for net {}",
                            net.name
                        )));
                    }
                    nets.push(net);
                }
                other => {
                    return Err(SpefError::Parse {
                        line: tok.line,
                        message: format!("unsupported directive *{other}"),
                    })
                }
            }
        }
        Ok(SpefFile {
            design,
            divider,
            delimiter: self.delimiter,
            units,
            ports,
            nets,
        })
    }

    fn name_map_section(&mut self) -> Result<(), SpefError> {
        // Pairs of `*<index> <name>` until the next non-index token.
        while let Some(TokenKind::IndexRef(i, tail)) = self.peek().cloned() {
            self.next();
            if tail.is_some() {
                return Err(self.err("name-map index must not carry a node tail"));
            }
            let name = self.expect_ident("mapped name")?;
            if self.name_map.insert(i, name).is_some() {
                return Err(SpefError::Semantic(format!(
                    "duplicate name-map index *{i}"
                )));
            }
        }
        Ok(())
    }

    fn direction(&mut self) -> Result<ConnDirection, SpefError> {
        let s = self.expect_ident("direction (I/O/B)")?;
        match s.as_str() {
            "I" => Ok(ConnDirection::Input),
            "O" => Ok(ConnDirection::Output),
            "B" => Ok(ConnDirection::Bidirectional),
            other => Err(self.err(format!("bad direction {other}"))),
        }
    }

    fn ports_section(&mut self, ports: &mut Vec<Conn>, units: &Units) -> Result<(), SpefError> {
        loop {
            match self.peek() {
                Some(TokenKind::IndexRef(_, _)) | Some(TokenKind::Ident(_)) => {
                    let node = self.node("port name")?;
                    let direction = self.direction()?;
                    let mut conn = Conn {
                        kind: ConnKind::Port,
                        node,
                        direction,
                        load: None,
                        driver_cell: None,
                    };
                    self.conn_attributes(&mut conn, units.capacitance)?;
                    ports.push(conn);
                }
                _ => return Ok(()),
            }
        }
    }

    /// Consumes `*C`, `*L`, `*S`, `*D` attributes following a conn entry.
    /// `cap_scale` converts `*L` loads to farads.
    fn conn_attributes(&mut self, conn: &mut Conn, cap_scale: f64) -> Result<(), SpefError> {
        loop {
            match self.peek() {
                Some(TokenKind::Keyword(k)) if k == "C" => {
                    self.next();
                    self.expect_number("x coordinate")?;
                    self.expect_number("y coordinate")?;
                }
                Some(TokenKind::Keyword(k)) if k == "L" => {
                    self.next();
                    conn.load = Some(self.expect_number("pin load")? * cap_scale);
                }
                Some(TokenKind::Keyword(k)) if k == "S" => {
                    self.next();
                    self.expect_number("slew 1")?;
                    self.expect_number("slew 2")?;
                }
                Some(TokenKind::Keyword(k)) if k == "D" => {
                    self.next();
                    conn.driver_cell = Some(self.expect_ident("driving cell")?);
                }
                _ => return Ok(()),
            }
        }
    }

    fn d_net(&mut self, units: &Units) -> Result<DNet, SpefError> {
        let name = self.node("net name")?;
        if name.tail.is_some() {
            return Err(self.err(format!("*D_NET name {name} must be a net, not a node")));
        }
        let total_cap = self.expect_number("total capacitance")? * units.capacitance;
        let mut net = DNet {
            name: name.base,
            total_cap,
            conns: Vec::new(),
            caps: Vec::new(),
            ress: Vec::new(),
        };
        loop {
            match self.next().map(|t| t.kind) {
                Some(TokenKind::Keyword(k)) => match k.as_str() {
                    "CONN" => self.conn_section(&mut net, units)?,
                    "CAP" => self.cap_section(&mut net, units)?,
                    "RES" => self.res_section(&mut net, units)?,
                    "END" => return Ok(net),
                    other => return Err(self.err(format!("unsupported *D_NET section *{other}"))),
                },
                other => {
                    return Err(self.err(format!(
                        "expected a *D_NET section keyword, found {}",
                        other.map_or("end of file".into(), |kk| kk.describe())
                    )))
                }
            }
        }
    }

    fn conn_section(&mut self, net: &mut DNet, units: &Units) -> Result<(), SpefError> {
        loop {
            let kind = match self.peek() {
                Some(TokenKind::Keyword(k)) if k == "P" => ConnKind::Port,
                Some(TokenKind::Keyword(k)) if k == "I" => ConnKind::Internal,
                _ => return Ok(()),
            };
            self.next();
            let node = self.node("connection pin")?;
            let direction = self.direction()?;
            let mut conn = Conn {
                kind,
                node,
                direction,
                load: None,
                driver_cell: None,
            };
            self.conn_attributes(&mut conn, units.capacitance)?;
            net.conns.push(conn);
        }
    }

    fn cap_section(&mut self, net: &mut DNet, units: &Units) -> Result<(), SpefError> {
        while let Some(TokenKind::Number(id)) = self.peek().cloned() {
            self.next();
            let a = self.node("capacitor node")?;
            // A second node token makes this a coupling capacitor.
            let b = match self.peek() {
                Some(TokenKind::IndexRef(_, _)) | Some(TokenKind::Ident(_)) => {
                    Some(self.node("coupled node")?)
                }
                _ => None,
            };
            let value = self.expect_number("capacitance value")? * units.capacitance;
            net.caps.push(CapElem {
                id: id as u64,
                a,
                b,
                value,
            });
        }
        Ok(())
    }

    fn res_section(&mut self, net: &mut DNet, units: &Units) -> Result<(), SpefError> {
        while let Some(TokenKind::Number(id)) = self.peek().cloned() {
            self.next();
            let a = self.node("resistor node")?;
            let b = self.node("resistor node")?;
            let value = self.expect_number("resistance value")? * units.resistance;
            net.ress.push(ResElem {
                id: id as u64,
                a,
                b,
                value,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: &str = r#"
*SPEF "IEEE 1481-1998"
*DESIGN "coupled_pair"
*DATE "Fri Jul 31 2026"
*VENDOR "noisy-sta"
*PROGRAM "handwritten"
*VERSION "1.0"
*DESIGN_FLOW "TEST"
*DIVIDER /
*DELIMITER :
*BUS_DELIMITER [ ]
*T_UNIT 1 NS
*C_UNIT 1 FF
*R_UNIT 1 OHM
*L_UNIT 1 HENRY

*NAME_MAP
*1 v
*2 g

*D_NET *1 148.8
*CONN
*I u1:Y O *D INVX1
*I u2:A I *L 5.2 *C 10.0 20.0
*CAP
1 *1:1 14.4
2 *1:2 14.4
3 *1:3 14.4
4 *1:1 *2:1 33.0
5 *1:2 *2:2 33.0
6 *1:3 *2:3 34.0
*RES
1 *1 *1:1 8.5
2 *1:1 *1:2 8.5
3 *1:2 *1:3 8.5
*END

*D_NET *2 43.2
*CONN
*I u3:Y O *D INVX1
*I u4:A I *L 5.2
*CAP
1 *2:1 14.4
2 *2:2 14.4
3 *2:3 14.4
*RES
1 *2 *2:1 8.5
2 *2:1 *2:2 8.5
3 *2:2 *2:3 8.5
*END
"#;

    #[test]
    fn parses_the_small_file() {
        let spef = parse_spef(SMALL).unwrap();
        assert_eq!(spef.design, "coupled_pair");
        assert_eq!(spef.nets.len(), 2);
        let v = spef.net("v").unwrap();
        assert!((v.total_cap - 148.8e-15).abs() < 1e-20);
        assert_eq!(v.conns.len(), 2);
        assert_eq!(v.conns[0].driver_cell.as_deref(), Some("INVX1"));
        assert!((v.conns[1].load.unwrap() - 5.2e-15).abs() < 1e-22);
        assert_eq!(v.caps.len(), 6);
        assert_eq!(v.caps.iter().filter(|c| c.is_coupling()).count(), 3);
        assert!((v.ground_cap() - 3.0 * 14.4e-15).abs() < 1e-20);
        assert!((v.coupling_cap() - 100e-15).abs() < 1e-20);
        assert!((v.total_resistance() - 25.5).abs() < 1e-12);
        // Coupling partners resolve through the name map.
        let partner = v.caps.iter().find(|c| c.is_coupling()).unwrap();
        assert_eq!(partner.b.as_ref().unwrap().base, "g");
    }

    #[test]
    fn units_scale_values() {
        let spef = parse_spef(
            "*T_UNIT 1 PS\n*C_UNIT 1 PF\n*R_UNIT 1 KOHM\n\
             *D_NET n 0.5\n*RES\n1 n n:1 2.0\n*CAP\n1 n:1 0.5\n*END",
        )
        .unwrap();
        let n = spef.net("n").unwrap();
        assert!((n.total_cap - 0.5e-12).abs() < 1e-24);
        assert!((n.total_resistance() - 2000.0).abs() < 1e-9);
        assert!((n.ground_cap() - 0.5e-12).abs() < 1e-24);
        assert!((spef.units.time - 1e-12).abs() < 1e-24);
    }

    #[test]
    fn cap_and_res_sections_may_swap_order() {
        let spef = parse_spef("*D_NET n 1.0\n*CAP\n1 n:1 1.0\n*RES\n1 n n:1 5.0\n*END").unwrap();
        assert_eq!(spef.nets.len(), 1);
    }

    #[test]
    fn unknown_map_index_is_semantic_error() {
        assert!(matches!(
            parse_spef("*D_NET *9 1.0\n*END"),
            Err(SpefError::Semantic(_))
        ));
    }

    #[test]
    fn duplicate_net_sections_rejected() {
        assert!(matches!(
            parse_spef("*D_NET n 1.0\n*END\n*D_NET n 1.0\n*END"),
            Err(SpefError::Semantic(_))
        ));
    }

    #[test]
    fn unterminated_net_section_is_parse_error() {
        assert!(matches!(
            parse_spef("*D_NET n 1.0\n*CAP\n1 n:1 1.0"),
            Err(SpefError::Parse { .. })
        ));
    }

    #[test]
    fn bad_unit_suffix_rejected() {
        assert!(matches!(
            parse_spef("*C_UNIT 1 LITERS"),
            Err(SpefError::Semantic(_))
        ));
    }

    #[test]
    fn ports_section_parses() {
        let spef = parse_spef("*NAME_MAP\n*1 a\n*PORTS\n*1 I *C 0.0 1.0\nb O").unwrap();
        assert_eq!(spef.ports.len(), 2);
        assert_eq!(spef.ports[0].node.base, "a");
        assert_eq!(spef.ports[1].direction, ConnDirection::Output);
    }
}
