//! The SPEF data model.
//!
//! All electrical quantities are stored in SI units (seconds, farads, ohms):
//! the parser applies the header's `*T_UNIT` / `*C_UNIT` / `*R_UNIT` scales
//! once, and every consumer downstream works in SI. Name-map references are
//! resolved at parse time, so nodes carry final net names.

use std::fmt;

/// Unit scales declared in the SPEF header, as multipliers to SI.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Units {
    /// Seconds per declared time unit.
    pub time: f64,
    /// Farads per declared capacitance unit.
    pub capacitance: f64,
    /// Ohms per declared resistance unit.
    pub resistance: f64,
    /// Henries per declared inductance unit.
    pub inductance: f64,
}

impl Default for Units {
    /// SPEF's most common header: `1 NS`, `1 PF`, `1 OHM`, `1 HENRY`.
    fn default() -> Self {
        Units {
            time: 1e-9,
            capacitance: 1e-12,
            resistance: 1.0,
            inductance: 1.0,
        }
    }
}

/// One RC-network node: a net plus an optional internal-node tail
/// (`net:3`), or an instance pin (`u2:A`) for boundary nodes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SpefNode {
    /// Net or instance base name (name-map references already resolved).
    pub base: String,
    /// Internal node index or pin name after the delimiter, if any.
    pub tail: Option<String>,
}

impl SpefNode {
    /// A node on the net itself (no tail).
    pub fn net(base: &str) -> Self {
        SpefNode {
            base: base.into(),
            tail: None,
        }
    }

    /// An internal or pin node `base:tail`.
    pub fn sub(base: &str, tail: &str) -> Self {
        SpefNode {
            base: base.into(),
            tail: Some(tail.into()),
        }
    }
}

impl fmt::Display for SpefNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.tail {
            Some(t) => write!(f, "{}:{}", self.base, t),
            None => write!(f, "{}", self.base),
        }
    }
}

/// Direction of a port or internal connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnDirection {
    /// Input.
    Input,
    /// Output.
    Output,
    /// Bidirectional.
    Bidirectional,
}

impl ConnDirection {
    /// The single-letter SPEF encoding.
    pub fn letter(self) -> char {
        match self {
            ConnDirection::Input => 'I',
            ConnDirection::Output => 'O',
            ConnDirection::Bidirectional => 'B',
        }
    }
}

/// Kind of a `*CONN` entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnKind {
    /// `*P` — a top-level port.
    Port,
    /// `*I` — an internal instance pin.
    Internal,
}

/// One `*CONN` entry of a `*D_NET` section.
#[derive(Debug, Clone, PartialEq)]
pub struct Conn {
    /// Port or internal pin.
    pub kind: ConnKind,
    /// The connected port or pin.
    pub node: SpefNode,
    /// Direction attribute.
    pub direction: ConnDirection,
    /// `*L` pin load (farads), if given.
    pub load: Option<f64>,
    /// `*D` driving-cell name, if given.
    pub driver_cell: Option<String>,
}

/// One `*CAP` entry: a ground capacitance (one node) or a coupling
/// capacitance (two nodes on different nets).
#[derive(Debug, Clone, PartialEq)]
pub struct CapElem {
    /// Entry id as written in the file.
    pub id: u64,
    /// First node (always on the section's net in well-formed SPEF).
    pub a: SpefNode,
    /// Second node for coupling capacitances.
    pub b: Option<SpefNode>,
    /// Capacitance (farads).
    pub value: f64,
}

impl CapElem {
    /// `true` when this entry couples two nets.
    pub fn is_coupling(&self) -> bool {
        self.b.is_some()
    }
}

/// One `*RES` entry: a wire-segment resistance between two nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct ResElem {
    /// Entry id as written in the file.
    pub id: u64,
    /// One end of the segment.
    pub a: SpefNode,
    /// The other end.
    pub b: SpefNode,
    /// Resistance (ohms).
    pub value: f64,
}

/// One `*D_NET` section: the extracted RC network of a single net.
#[derive(Debug, Clone, PartialEq)]
pub struct DNet {
    /// Net name (name-map resolved).
    pub name: String,
    /// The section header's total capacitance (farads) — ground plus
    /// coupling, as extractors conventionally write it.
    pub total_cap: f64,
    /// Connection points.
    pub conns: Vec<Conn>,
    /// Capacitance elements.
    pub caps: Vec<CapElem>,
    /// Resistance elements.
    pub ress: Vec<ResElem>,
}

impl DNet {
    /// Sum of ground (single-node) capacitances (farads).
    pub fn ground_cap(&self) -> f64 {
        self.caps
            .iter()
            .filter(|c| !c.is_coupling())
            .map(|c| c.value)
            .sum()
    }

    /// Sum of coupling (two-node) capacitances (farads).
    pub fn coupling_cap(&self) -> f64 {
        self.caps
            .iter()
            .filter(|c| c.is_coupling())
            .map(|c| c.value)
            .sum()
    }

    /// Total series resistance of the net's own segments (ohms).
    pub fn total_resistance(&self) -> f64 {
        self.ress.iter().map(|r| r.value).sum()
    }
}

/// A parsed SPEF file.
#[derive(Debug, Clone, PartialEq)]
pub struct SpefFile {
    /// `*DESIGN` name.
    pub design: String,
    /// `*DIVIDER` hierarchy character.
    pub divider: char,
    /// `*DELIMITER` pin/node character.
    pub delimiter: char,
    /// Header unit scales (already applied to all stored values).
    pub units: Units,
    /// Top-level ports from the `*PORTS` section.
    pub ports: Vec<Conn>,
    /// All `*D_NET` sections in file order.
    pub nets: Vec<DNet>,
}

impl SpefFile {
    /// The section of a specific net, if present.
    pub fn net(&self, name: &str) -> Option<&DNet> {
        self.nets.iter().find(|n| n.name == name)
    }

    /// Replaces the `*D_NET` section named `dnet.name` in place (keeping
    /// file order, which downstream spec ordering follows) and returns
    /// the previous section — the single-net re-annotation primitive of
    /// an incremental ECO flow, where one wire's extraction changes and
    /// the rest of the file must stay bit-identical.
    ///
    /// # Errors
    ///
    /// [`crate::SpefError::Semantic`] if no section with that name
    /// exists; the file is left unchanged.
    pub fn replace_net(&mut self, dnet: DNet) -> Result<DNet, crate::SpefError> {
        match self.nets.iter_mut().find(|n| n.name == dnet.name) {
            Some(slot) => Ok(std::mem::replace(slot, dnet)),
            None => Err(crate::SpefError::Semantic(format!(
                "re-annotation names unknown net {:?}",
                dnet.name
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dnet_aggregates() {
        let net = DNet {
            name: "v".into(),
            total_cap: 0.25e-12,
            conns: vec![],
            caps: vec![
                CapElem {
                    id: 1,
                    a: SpefNode::sub("v", "1"),
                    b: None,
                    value: 0.1e-12,
                },
                CapElem {
                    id: 2,
                    a: SpefNode::sub("v", "2"),
                    b: Some(SpefNode::sub("g", "2")),
                    value: 0.15e-12,
                },
            ],
            ress: vec![
                ResElem {
                    id: 1,
                    a: SpefNode::net("v"),
                    b: SpefNode::sub("v", "1"),
                    value: 12.0,
                },
                ResElem {
                    id: 2,
                    a: SpefNode::sub("v", "1"),
                    b: SpefNode::sub("v", "2"),
                    value: 13.0,
                },
            ],
        };
        assert!((net.ground_cap() - 0.1e-12).abs() < 1e-20);
        assert!((net.coupling_cap() - 0.15e-12).abs() < 1e-20);
        assert!((net.total_resistance() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn node_display() {
        assert_eq!(SpefNode::net("a").to_string(), "a");
        assert_eq!(SpefNode::sub("a", "3").to_string(), "a:3");
    }
}
