//! RC reduction: collapsing each extracted `*D_NET` into the lumped model
//! the STA crosstalk substrate consumes.
//!
//! The crosstalk engine ([`nsta_sta::si`]) models a victim as a distributed
//! RC line ([`RcLineSpec`]) with per-aggressor coupling totals. This module
//! folds a net's full extracted network into exactly that: total series
//! resistance, total ground capacitance, a segment count matching the
//! extracted topology, and the coupling capacitance summed per partner net.

use crate::ast::{DNet, SpefFile};
use crate::SpefError;
use nsta_circuit::RcLineSpec;
use std::collections::{BTreeMap, HashMap};

/// Floor applied to degenerate (resistance-free) nets so the lumped line
/// stays electrically valid (Ω).
const MIN_RESISTANCE: f64 = 1e-3;
/// Floor applied to capacitance-free nets (F).
const MIN_CAPACITANCE: f64 = 1e-18;

/// The lumped view of one extracted net.
#[derive(Debug, Clone, PartialEq)]
pub struct ReducedNet {
    /// Net name.
    pub name: String,
    /// Total series resistance of the net's own segments (Ω).
    pub r_total: f64,
    /// Total ground capacitance (F).
    pub c_ground: f64,
    /// Number of resistive segments in the extraction (≥ 1 after
    /// reduction, even for resistance-free nets).
    pub segments: usize,
    /// Coupling capacitance per partner net (F), keyed by partner name,
    /// deterministically ordered.
    pub couplings: BTreeMap<String, f64>,
    /// Sum of `*L` pin loads over the net's connections (F) — the same
    /// semantics as the STA graph's summed fanout pin capacitances.
    pub pin_load: f64,
    /// Electrical defects found during reduction (empty for healthy
    /// nets): zero-capacitance extractions and ground-cap nodes with no
    /// resistive path from the net root. Reduction still produces the
    /// floored lumped model, but the SI flow refuses to simulate a
    /// defective victim (see `CouplingSpec::defect`), failing or
    /// degrading it per the fault policy instead of analyzing a
    /// stand-in with no relation to the real wire.
    pub defects: Vec<String>,
}

/// `(instance, pin) → owning net`, built from every section's `*CONN`
/// entries. Lets coupling caps anchored at a *pin* of some other net
/// (`u9:Z`) resolve to that net's name.
pub(crate) type PinOwners = HashMap<(String, String), String>;

pub(crate) fn pin_owners(spef: &SpefFile) -> PinOwners {
    let mut owners = PinOwners::new();
    for net in &spef.nets {
        for conn in &net.conns {
            if let Some(tail) = &conn.node.tail {
                owners.insert((conn.node.base.clone(), tail.clone()), net.name.clone());
            }
        }
    }
    owners
}

impl ReducedNet {
    /// Reduces one `*D_NET` section in isolation.
    ///
    /// Coupling caps whose foreign endpoint is an instance pin of another
    /// net can only be attributed with the whole file in view; prefer
    /// [`reduce_spef`], which resolves those through every section's
    /// `*CONN` entries.
    pub fn from_dnet(net: &DNet) -> Self {
        Self::from_dnet_with_pins(net, &PinOwners::new())
    }

    pub(crate) fn from_dnet_with_pins(net: &DNet, owners: &PinOwners) -> Self {
        // Resolves a foreign endpoint to its net: directly by net name, or
        // through the cross-section pin map for pin-anchored caps.
        let foreign_net = |node: &crate::ast::SpefNode| -> String {
            node.tail
                .as_ref()
                .and_then(|tail| owners.get(&(node.base.clone(), tail.clone())))
                .cloned()
                .unwrap_or_else(|| node.base.clone())
        };
        let mut couplings: BTreeMap<String, f64> = BTreeMap::new();
        for cap in &net.caps {
            let Some(b) = &cap.b else { continue };
            // The foreign node names the partner net. Either endpoint may
            // be written first, and the endpoint on this net may be a net
            // node (`v:2`) *or* one of the net's connection pins
            // (`u2:A`) — extractors anchor coupling caps at pins too. Pins
            // must match base *and* tail: another pin of a shared instance
            // (`u2:Y`) belongs to a different net.
            let on_this_net = |node: &crate::ast::SpefNode| {
                node.base == net.name || net.conns.iter().any(|c| c.node == *node)
            };
            let partner = if on_this_net(&cap.a) {
                foreign_net(b)
            } else if on_this_net(b) {
                foreign_net(&cap.a)
            } else {
                // Neither endpoint is recognizably local; keep the SPEF
                // convention that the first node belongs to the section.
                foreign_net(b)
            };
            *couplings.entry(partner).or_insert(0.0) += cap.value;
        }
        let mut c_ground = net.ground_cap();
        if c_ground <= 0.0 {
            // Lumped-only extraction: fall back to the header total minus
            // the couplings it conventionally includes.
            c_ground = (net.total_cap - net.coupling_cap()).max(0.0);
        }
        let pin_load = net.conns.iter().filter_map(|c| c.load).sum();
        let defects = detect_defects(net, c_ground);
        ReducedNet {
            name: net.name.clone(),
            r_total: net.total_resistance(),
            c_ground,
            segments: net.ress.len().max(1),
            couplings,
            pin_load,
            defects,
        }
    }

    /// Total coupling capacitance to all partners (F).
    pub fn coupling_total(&self) -> f64 {
        self.couplings.values().sum()
    }

    /// The distributed-line spec of this net for the crosstalk substrate.
    ///
    /// Degenerate extractions (no resistors, no ground capacitance) are
    /// floored to tiny positive values rather than rejected: a zero-R net
    /// is an ideal wire, which the line model represents as a negligible
    /// impedance.
    ///
    /// # Errors
    ///
    /// Propagates [`RcLineSpec`] validation failures (non-finite totals).
    pub fn to_line_spec(&self) -> Result<RcLineSpec, SpefError> {
        RcLineSpec::new(
            self.r_total.max(MIN_RESISTANCE),
            self.c_ground.max(MIN_CAPACITANCE),
            self.segments,
        )
        .map_err(SpefError::from)
    }
}

/// Scans one extraction for electrical defects the lumped model would
/// silently paper over.
///
/// Two classes are detected. *Zero capacitance*: the section carries
/// explicit ground caps, yet they — and the header-total fallback — sum
/// to nothing, so the floored line `to_line_spec` would build bears no
/// relation to the real wire. *Disconnected node*: the section has a
/// resistor network, but some ground-cap-bearing node of this net is
/// unreachable from the net root through resistor segments, i.e. part of
/// the extracted charge can never couple to the driver. Lumped-only
/// sections (no `*RES`) carry no topology to check and are exempt from
/// the connectivity scan.
fn detect_defects(net: &DNet, c_ground: f64) -> Vec<String> {
    /// A SPEF node identity: (base name, optional `:tail` suffix).
    type NodeKey = (String, Option<String>);
    let mut defects = Vec::new();
    let has_ground_caps = net.caps.iter().any(|c| c.b.is_none());
    if has_ground_caps && c_ground <= 0.0 {
        defects.push("zero capacitance: explicit ground caps sum to 0 F".to_string());
    }
    if !net.ress.is_empty() {
        let key = |n: &crate::ast::SpefNode| -> NodeKey { (n.base.clone(), n.tail.clone()) };
        let mut adj: HashMap<NodeKey, Vec<NodeKey>> = HashMap::new();
        for r in &net.ress {
            adj.entry(key(&r.a)).or_default().push(key(&r.b));
            adj.entry(key(&r.b)).or_default().push(key(&r.a));
        }
        // Flood from the driver side: the bare net node when the
        // extraction names one, otherwise the first resistor endpoint.
        let root = adj
            .keys()
            .find(|(base, tail)| *base == net.name && tail.is_none())
            .cloned()
            .unwrap_or_else(|| key(&net.ress[0].a));
        let mut reached = std::collections::HashSet::new();
        let mut queue = std::collections::VecDeque::from([root]);
        while let Some(node) = queue.pop_front() {
            if !reached.insert(node.clone()) {
                continue;
            }
            if let Some(next) = adj.get(&node) {
                queue.extend(next.iter().cloned());
            }
        }
        for cap in &net.caps {
            if cap.b.is_some() {
                continue;
            }
            let k = key(&cap.a);
            // Only the net's own nodes participate: pin-anchored ground
            // caps (`u2:A`) sit at *CONN endpoints outside the resistor
            // mesh by construction.
            if k.0 == net.name && !reached.contains(&k) {
                let node = match &k.1 {
                    Some(tail) => format!("{}:{tail}", k.0),
                    None => k.0.clone(),
                };
                defects.push(format!(
                    "disconnected node {node}: no resistive path from the net root"
                ));
            }
        }
    }
    defects
}

/// Reduces every net of a parsed SPEF file, preserving file order.
/// Coupling caps anchored at another net's instance pins are attributed
/// to that net via the file's `*CONN` entries.
pub fn reduce_spef(spef: &SpefFile) -> Vec<ReducedNet> {
    let owners = pin_owners(spef);
    spef.nets
        .iter()
        .map(|net| ReducedNet::from_dnet_with_pins(net, &owners))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_spef;

    fn spef() -> SpefFile {
        parse_spef(
            "*C_UNIT 1 FF\n*R_UNIT 1 OHM\n*NAME_MAP\n*1 v\n*2 g\n*3 h\n\
             *D_NET *1 100.0\n\
             *CONN\n*I u2:A I *L 5.0\n*I u9:B I *L 7.0\n\
             *CAP\n1 *1:1 10.0\n2 *1:2 10.0\n3 *1:1 *2:1 30.0\n4 *1:2 *2:2 20.0\n\
             5 *1:2 *3:1 15.0\n\
             *RES\n1 *1 *1:1 8.0\n2 *1:1 *1:2 9.0\n*END\n\
             *D_NET *2 20.0\n*CAP\n1 *2:1 20.0\n*END\n",
        )
        .unwrap()
    }

    #[test]
    fn sums_r_c_and_per_partner_couplings() {
        let reduced = reduce_spef(&spef());
        assert_eq!(reduced.len(), 2);
        let v = &reduced[0];
        assert_eq!(v.name, "v");
        assert!((v.r_total - 17.0).abs() < 1e-12);
        assert!((v.c_ground - 20e-15).abs() < 1e-28);
        assert_eq!(v.segments, 2);
        assert!((v.couplings["g"] - 50e-15).abs() < 1e-28);
        assert!((v.couplings["h"] - 15e-15).abs() < 1e-28);
        assert!((v.coupling_total() - 65e-15).abs() < 1e-28);
        // Receiver loads sum (5 + 7 fF), matching the STA graph's
        // summed-fanout semantics.
        assert!((v.pin_load - 12e-15).abs() < 1e-28);
    }

    #[test]
    fn resistance_free_net_gets_floored_line() {
        let reduced = reduce_spef(&spef());
        let g = &reduced[1];
        assert_eq!(g.segments, 1);
        let line = g.to_line_spec().unwrap();
        assert!(line.r_total > 0.0);
        assert!((line.c_total - 20e-15).abs() < 1e-28);
    }

    #[test]
    fn lumped_only_net_falls_back_to_header_total() {
        let spef = parse_spef("*C_UNIT 1 FF\n*D_NET n 42.0\n*CAP\n1 n:1 x:1 12.0\n*END").unwrap();
        let r = ReducedNet::from_dnet(&spef.nets[0]);
        // Header total (42 fF) minus coupling (12 fF).
        assert!((r.c_ground - 30e-15).abs() < 1e-28);
        assert!((r.couplings["x"] - 12e-15).abs() < 1e-28);
    }

    #[test]
    fn pin_anchored_coupling_attributes_the_foreign_net() {
        // Extractors may anchor a coupling cap at one of the victim's
        // *pins* (`u2:A`) rather than a net node; the partner must still
        // be the other endpoint's net, not the pin's instance name.
        let spef = parse_spef(
            "*C_UNIT 1 FF\n*NAME_MAP\n*1 v\n*2 g\n\
             *D_NET *1 40.0\n\
             *CONN\n*I u2:A I *L 5.0\n\
             *CAP\n1 *1:1 10.0\n2 u2:A *2:1 30.0\n*END",
        )
        .unwrap();
        let r = ReducedNet::from_dnet(&spef.nets[0]);
        assert!((r.couplings["g"] - 30e-15).abs() < 1e-28);
        assert!(!r.couplings.contains_key("u2"));
    }

    #[test]
    fn foreign_pin_endpoint_resolves_to_owning_net() {
        // The coupling cap's foreign end is written as another net's
        // receiver pin (`u9:Z`); the partner must resolve to that net
        // through its *CONN entry, not to the instance name.
        let spef = parse_spef(
            "*C_UNIT 1 FF\n*NAME_MAP\n*1 v\n*2 g\n\
             *D_NET *1 40.0\n*CAP\n1 *1:1 10.0\n2 *1:1 u9:Z 30.0\n\
             *RES\n1 *1 *1:1 5.0\n*END\n\
             *D_NET *2 5.0\n*CONN\n*I u9:Z I *L 2.0\n*CAP\n1 *2:1 5.0\n*END\n",
        )
        .unwrap();
        let reduced = reduce_spef(&spef);
        let v = &reduced[0];
        assert!((v.couplings["g"] - 30e-15).abs() < 1e-28);
        assert!(!v.couplings.contains_key("u9"));
    }

    #[test]
    fn shared_instance_other_pin_is_foreign() {
        // u2:A is one of v's pins, but u2:Y drives net y. A cap written
        // foreign-endpoint-first (`u2:Y v:1`) must attribute partner y —
        // matching on the instance base alone would call u2:Y local and
        // produce a bogus v→v self-coupling.
        let spef = parse_spef(
            "*C_UNIT 1 FF\n*NAME_MAP\n*1 v\n*2 y\n\
             *D_NET *1 40.0\n*CONN\n*I u2:A I *L 5.0\n\
             *CAP\n1 *1:1 10.0\n2 u2:Y *1:1 30.0\n*END\n\
             *D_NET *2 5.0\n*CONN\n*I u2:Y O *D INVX1\n*CAP\n1 *2:1 5.0\n*END\n",
        )
        .unwrap();
        let reduced = reduce_spef(&spef);
        let v = &reduced[0];
        assert!((v.couplings["y"] - 30e-15).abs() < 1e-28);
        assert!(!v.couplings.contains_key("v"));
        assert!(!v.couplings.contains_key("u2"));
    }

    #[test]
    fn healthy_nets_report_no_defects() {
        for net in reduce_spef(&spef()) {
            assert!(net.defects.is_empty(), "{}: {:?}", net.name, net.defects);
        }
    }

    #[test]
    fn zero_capacitance_extraction_is_flagged() {
        // Explicit ground caps that sum to 0 F, and a header total that
        // the couplings fully consume: nothing left to drive.
        let spef = parse_spef(
            "*C_UNIT 1 FF\n*NAME_MAP\n*1 v\n*2 g\n\
             *D_NET *1 12.0\n\
             *CAP\n1 *1:1 0.0\n2 *1:1 *2:1 12.0\n\
             *RES\n1 *1 *1:1 5.0\n*END\n",
        )
        .unwrap();
        let r = ReducedNet::from_dnet(&spef.nets[0]);
        assert_eq!(r.defects.len(), 1);
        assert!(r.defects[0].contains("zero capacitance"), "{:?}", r.defects);
    }

    #[test]
    fn disconnected_ground_cap_node_is_flagged() {
        // v:9 carries charge but no resistor reaches it from the root.
        let spef = parse_spef(
            "*C_UNIT 1 FF\n*NAME_MAP\n*1 v\n\
             *D_NET *1 30.0\n\
             *CAP\n1 *1:1 10.0\n2 *1:9 20.0\n\
             *RES\n1 *1 *1:1 5.0\n*END\n",
        )
        .unwrap();
        let r = ReducedNet::from_dnet(&spef.nets[0]);
        assert_eq!(r.defects.len(), 1);
        assert!(
            r.defects[0].contains("disconnected node v:9"),
            "{:?}",
            r.defects
        );
    }

    #[test]
    fn lumped_only_sections_skip_the_connectivity_scan() {
        // No *RES section: there is no topology to be disconnected from,
        // so a lone ground cap on a net node is healthy.
        let spef = parse_spef("*C_UNIT 1 FF\n*D_NET n 20.0\n*CAP\n1 n:1 20.0\n*END").unwrap();
        let r = ReducedNet::from_dnet(&spef.nets[0]);
        assert!(r.defects.is_empty(), "{:?}", r.defects);
    }

    #[test]
    fn ports_loads_are_unit_scaled() {
        let spef = parse_spef("*C_UNIT 1 FF\n*PORTS\nout O *L 5.2").unwrap();
        assert!((spef.ports[0].load.unwrap() - 5.2e-15).abs() < 1e-27);
    }

    #[test]
    fn line_spec_reflects_totals() {
        let reduced = reduce_spef(&spef());
        let line = reduced[0].to_line_spec().unwrap();
        assert!((line.r_total - 17.0).abs() < 1e-12);
        assert!((line.c_total - 20e-15).abs() < 1e-28);
        assert_eq!(line.segments, 2);
    }
}
