use std::fmt;

/// Error type for SPEF lexing, parsing, reduction and design binding.
#[derive(Debug, Clone, PartialEq)]
pub enum SpefError {
    /// Lexical error with a 1-based line number.
    Lex {
        /// Line of the offending character.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// Parse error with a 1-based line number.
    Parse {
        /// Line of the offending token.
        line: usize,
        /// What the parser expected/found.
        message: String,
    },
    /// The file was syntactically valid SPEF but semantically unusable
    /// (unknown name-map index, bad unit, duplicate net section…).
    Semantic(String),
    /// RC reduction produced an electrically invalid line model.
    Reduction(String),
    /// Binding the extracted nets onto a design failed.
    Bind(String),
    /// Constructing circuit-level specs failed.
    Circuit(nsta_circuit::CircuitError),
}

impl fmt::Display for SpefError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpefError::Lex { line, message } => write!(f, "lex error at line {line}: {message}"),
            SpefError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            SpefError::Semantic(m) => write!(f, "semantic error: {m}"),
            SpefError::Reduction(m) => write!(f, "reduction error: {m}"),
            SpefError::Bind(m) => write!(f, "bind error: {m}"),
            SpefError::Circuit(e) => write!(f, "circuit failure: {e}"),
        }
    }
}

impl std::error::Error for SpefError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpefError::Circuit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<nsta_circuit::CircuitError> for SpefError {
    fn from(e: nsta_circuit::CircuitError) -> Self {
        SpefError::Circuit(e)
    }
}
