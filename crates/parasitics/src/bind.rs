//! Binding extracted parasitics onto a timing [`Design`].
//!
//! [`bind_couplings`] matches every reduced SPEF net against the design's
//! nets by name and auto-derives the [`CouplingSpec`]s that
//! `Sta::analyze_with_crosstalk` consumes: the victim's distributed line
//! from its own RC totals, each aggressor's line from *its* extraction, and
//! the per-aggressor coupling totals. This is the glue that makes the flow
//! drivable from a netlist + SPEF pair instead of hand-written specs.

use crate::ast::SpefFile;
use crate::reduce::{reduce_spef, ReducedNet};
use crate::SpefError;
use nsta_sta::{CouplingSpec, Design};
use std::collections::HashMap;

/// Knobs of the SPEF-to-design binder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BindOptions {
    /// Thevenin resistance modeling each driver's output stage (Ω).
    pub driver_resistance: f64,
    /// Couplings weaker than this are dropped as electrically irrelevant
    /// (F). Mirrors the aggressor-filtering thresholds of production SI
    /// flows.
    pub min_coupling: f64,
    /// Aggressor alignment offset forwarded to every generated spec (s).
    pub aggressor_skew: f64,
    /// Whether aggressors switch opposite to the victim (worst case).
    pub aggressors_oppose: bool,
}

impl Default for BindOptions {
    fn default() -> Self {
        BindOptions {
            driver_resistance: 200.0,
            min_coupling: 1e-18,
            aggressor_skew: 0.0,
            aggressors_oppose: true,
        }
    }
}

/// Why a SPEF net or coupling did not produce (part of) a spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DropReason {
    /// The net name does not exist in the design.
    UnknownNet,
    /// The coupling total fell below [`BindOptions::min_coupling`].
    BelowThreshold,
}

/// Result of binding a SPEF file onto a design.
#[derive(Debug, Clone)]
pub struct BoundCouplings {
    /// One spec per victim net that survived matching, in SPEF file order.
    pub specs: Vec<CouplingSpec>,
    /// SPEF victim nets skipped entirely, with the reason.
    pub skipped_victims: Vec<(String, DropReason)>,
    /// `(victim, aggressor)` pairs dropped from otherwise-bound specs.
    pub dropped_aggressors: Vec<(String, String, DropReason)>,
}

impl BoundCouplings {
    /// The spec whose victim is the named design net, if any.
    pub fn spec_for<'a>(&'a self, design: &Design, name: &str) -> Option<&'a CouplingSpec> {
        let id = design.find_net(name)?;
        self.specs.iter().find(|s| s.victim == id)
    }

    /// Victims whose spec differs between `self` and `other` (field-wise,
    /// including victims present in only one of the two), sorted and
    /// deduplicated. A single-net re-annotation
    /// ([`crate::SpefFile::replace_net`] + rebind) changes not just the
    /// edited victim's spec but also any spec that used the edited wire
    /// as an aggressor line model — this is the exact invalidation set an
    /// incremental session must re-solve.
    pub fn changed_victims(&self, other: &BoundCouplings) -> Vec<nsta_sta::NetId> {
        fn by_victim(
            b: &BoundCouplings,
        ) -> std::collections::HashMap<nsta_sta::NetId, &CouplingSpec> {
            b.specs.iter().map(|s| (s.victim, s)).collect()
        }
        let old = by_victim(self);
        let new = by_victim(other);
        let mut changed: Vec<nsta_sta::NetId> = old
            .iter()
            .filter(|(victim, spec)| new.get(victim) != Some(*spec))
            .map(|(&victim, _)| victim)
            .chain(new.keys().filter(|v| !old.contains_key(v)).copied())
            .collect();
        changed.sort_unstable();
        changed.dedup();
        changed
    }
}

/// Matches reduced SPEF nets to design nets and derives coupling specs.
///
/// Victim candidates are the SPEF nets with at least one coupling
/// capacitance. A candidate binds when its name exists in the design; each
/// of its coupling partners becomes an aggressor when *that* name exists
/// too and the coupling total clears `opts.min_coupling`. Aggressor wires
/// use their own extracted line model when the partner net has a `*D_NET`
/// section, falling back to the victim's line otherwise.
///
/// # Errors
///
/// [`SpefError::Reduction`] when a bound victim's extraction cannot form a
/// valid line model.
pub fn bind_couplings(
    spef: &SpefFile,
    design: &Design,
    opts: &BindOptions,
) -> Result<BoundCouplings, SpefError> {
    let mut span = nsta_obs::span!("parasitics.bind_couplings");
    span.set_arg("nets", spef.nets.len() as f64);
    let reduced = reduce_spef(spef);
    let by_name: HashMap<&str, &ReducedNet> =
        reduced.iter().map(|r| (r.name.as_str(), r)).collect();

    let mut specs = Vec::new();
    let mut skipped_victims = Vec::new();
    let mut dropped_aggressors = Vec::new();

    for net in &reduced {
        if net.couplings.is_empty() {
            continue; // uncoupled nets need no SI treatment
        }
        let Some(victim) = design.find_net(&net.name) else {
            skipped_victims.push((net.name.clone(), DropReason::UnknownNet));
            continue;
        };
        let victim_line = net.to_line_spec()?;

        let mut aggressors = Vec::new();
        let mut aggressor_lines = Vec::new();
        let mut cms = Vec::new();
        // Couplings to dropped partners still load the victim: their
        // quiet drivers ground the caps, exactly like window-pruned
        // aggressors in the SI analysis.
        let mut quiet_cm = 0.0;
        for (partner, &cm) in &net.couplings {
            if cm < opts.min_coupling {
                quiet_cm += cm;
                dropped_aggressors.push((
                    net.name.clone(),
                    partner.clone(),
                    DropReason::BelowThreshold,
                ));
                continue;
            }
            let Some(agg) = design.find_net(partner) else {
                quiet_cm += cm;
                dropped_aggressors.push((
                    net.name.clone(),
                    partner.clone(),
                    DropReason::UnknownNet,
                ));
                continue;
            };
            let line = match by_name.get(partner.as_str()) {
                Some(r) => r.to_line_spec()?,
                None => victim_line,
            };
            aggressors.push(agg);
            aggressor_lines.push(line);
            cms.push(cm);
        }
        if aggressors.is_empty() {
            skipped_victims.push((net.name.clone(), DropReason::BelowThreshold));
            continue;
        }

        let cm_total: f64 = cms.iter().sum();
        let mut spec = CouplingSpec::new(victim, aggressors, cm_total, victim_line);
        // Extraction defects travel with the spec: the SI flow fails or
        // degrades the victim per its fault policy instead of simulating
        // the floored stand-in.
        spec.defect = (!net.defects.is_empty()).then(|| net.defects.join("; "));
        spec.cm_per_aggressor = cms;
        spec.aggressor_lines = aggressor_lines;
        spec.quiet_cm = quiet_cm;
        // The extraction's own receiver pin load, when the *CONN section
        // carried one, overrides the library-derived fanout load.
        if net.pin_load > 0.0 {
            spec.receiver_load = Some(net.pin_load);
        }
        spec.driver_resistance = opts.driver_resistance;
        spec.aggressor_skew = opts.aggressor_skew;
        spec.aggressors_oppose = opts.aggressors_oppose;
        specs.push(spec);
    }
    Ok(BoundCouplings {
        specs,
        skipped_victims,
        dropped_aggressors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_spef;

    fn design() -> Design {
        let mut d = Design::new("m");
        let a = d.net("a");
        let v = d.net("v");
        let g = d.net("g");
        let y = d.net("y");
        d.mark_input(a);
        d.mark_output(y);
        let _ = (v, g);
        d
    }

    fn spef() -> SpefFile {
        parse_spef(
            "*C_UNIT 1 FF\n*R_UNIT 1 OHM\n*NAME_MAP\n*1 v\n*2 g\n*3 phantom\n\
             *D_NET *1 120.0\n\
             *CAP\n1 *1:1 20.0\n2 *1:1 *2:1 60.0\n3 *1:2 *3:1 39.0\n4 *1:2 *2:2 0.0005\n\
             *RES\n1 *1 *1:1 10.0\n2 *1:1 *1:2 10.0\n*END\n\
             *D_NET *2 30.0\n*CAP\n1 *2:1 30.0\n*RES\n1 *2 *2:1 4.0\n*END\n",
        )
        .unwrap()
    }

    #[test]
    fn binds_matching_nets_and_drops_the_rest() {
        let d = design();
        let opts = BindOptions {
            min_coupling: 1e-18,
            ..BindOptions::default()
        };
        let bound = bind_couplings(&spef(), &d, &opts).unwrap();
        assert_eq!(bound.specs.len(), 1);
        let spec = bound.spec_for(&d, "v").unwrap();
        assert_eq!(spec.aggressors, vec![d.find_net("g").unwrap()]);
        // Both v→g couplings summed: 60 fF + 0.0005 fF.
        assert!((spec.cm_per_aggressor[0] - 60.0005e-15).abs() < 1e-24);
        // The phantom partner's 39 fF still loads the victim as quiet
        // grounded capacitance.
        assert!((spec.quiet_cm - 39e-15).abs() < 1e-27);
        // The aggressor's own extraction supplies its line model.
        assert!((spec.aggressor_lines[0].r_total - 4.0).abs() < 1e-12);
        assert!((spec.line.r_total - 20.0).abs() < 1e-12);
        // The phantom partner is reported, not silently ignored.
        assert!(bound
            .dropped_aggressors
            .iter()
            .any(|(v, a, r)| v == "v" && a == "phantom" && *r == DropReason::UnknownNet));
    }

    #[test]
    fn threshold_prunes_weak_couplings() {
        let d = design();
        let opts = BindOptions {
            min_coupling: 70e-15,
            ..BindOptions::default()
        };
        let bound = bind_couplings(&spef(), &d, &opts).unwrap();
        // 60.0005 fF to g falls below 70 fF: no aggressors remain.
        assert!(bound.specs.is_empty());
        assert!(bound
            .skipped_victims
            .iter()
            .any(|(n, r)| n == "v" && *r == DropReason::BelowThreshold));
    }

    #[test]
    fn extraction_defects_ride_on_the_spec() {
        let d = design();
        let spef = parse_spef(
            "*C_UNIT 1 FF\n*NAME_MAP\n*1 v\n*2 g\n\
             *D_NET *1 12.0\n\
             *CAP\n1 *1:1 0.0\n2 *1:1 *2:1 12.0\n\
             *RES\n1 *1 *1:1 5.0\n*END\n\
             *D_NET *2 30.0\n*CAP\n1 *2:1 30.0\n*RES\n1 *2 *2:1 4.0\n*END\n",
        )
        .unwrap();
        let bound = bind_couplings(&spef, &d, &BindOptions::default()).unwrap();
        let spec = bound.spec_for(&d, "v").unwrap();
        let defect = spec.defect.as_deref().unwrap();
        assert!(defect.contains("zero capacitance"), "{defect}");
        // The healthy bound spec for a defect-free victim carries none.
        assert!(bound
            .specs
            .iter()
            .filter(|s| s.victim != spec.victim)
            .all(|s| s.defect.is_none()));
    }

    #[test]
    fn unknown_victims_are_reported() {
        let mut d = Design::new("m");
        d.net("unrelated");
        let bound = bind_couplings(&spef(), &d, &BindOptions::default()).unwrap();
        assert!(bound.specs.is_empty());
        assert!(bound
            .skipped_victims
            .iter()
            .any(|(n, r)| n == "v" && *r == DropReason::UnknownNet));
    }
}
