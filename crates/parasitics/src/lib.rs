//! SPEF parasitic extraction for crosstalk-aware STA.
//!
//! Commercial STA flows do not receive hand-written coupling descriptions:
//! they read extracted parasitics (SPEF, IEEE 1481) and derive the
//! victim/aggressor structure from the coupling capacitances in each net's
//! RC section. This crate closes that gap for the `noisy-sta` workspace,
//! making the paper's noisy-waveform propagation drivable end-to-end from a
//! netlist + SPEF pair:
//!
//! * [`parse_spef`] — lexer/parser for the SPEF subset that matters to
//!   timing: header + units, the name map, `*PORTS`, and `*D_NET` RC
//!   sections with `*CONN`, ground/coupling `*CAP` and `*RES` entries. All
//!   values are scaled to SI at parse time.
//! * [`write_spef`] — canonical serializer; `parse ∘ write` is the
//!   identity on the model (golden-file round trips).
//! * [`ReducedNet`]/[`reduce_spef`] — collapses each extracted net into
//!   the lumped model the STA substrate consumes: an
//!   [`RcLineSpec`](nsta_circuit::RcLineSpec) plus per-partner coupling
//!   totals.
//! * [`bind_couplings`] — matches SPEF nets to a timing
//!   [`Design`](nsta_sta::Design) by name and emits the
//!   [`CouplingSpec`](nsta_sta::CouplingSpec)s that
//!   `Sta::analyze_with_crosstalk` (and its timing-window variant) accept,
//!   reporting every unmatched net and pruned coupling instead of silently
//!   dropping them.
//!
//! ```
//! use nsta_parasitics::{bind_couplings, parse_spef, BindOptions};
//! use nsta_sta::verilog::parse_design;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let design = parse_design(
//!     "module m (a, b, y, z); input a, b; output y, z; wire v, g;\
//!      INVX1 u1 (.A(a), .Y(v)); INVX4 u2 (.A(v), .Y(y));\
//!      INVX1 u3 (.A(b), .Y(g)); INVX4 u4 (.A(g), .Y(z)); endmodule",
//! )?;
//! let spef = parse_spef(
//!     "*DESIGN \"m\"\n*C_UNIT 1 FF\n*R_UNIT 1 OHM\n\
//!      *NAME_MAP\n*1 v\n*2 g\n\
//!      *D_NET *1 128.8\n*CAP\n1 *1:1 14.4 \n2 *1:2 14.4\n\
//!      3 *1:1 *2:1 50.0\n4 *1:2 *2:2 50.0\n\
//!      *RES\n1 *1 *1:1 12.75\n2 *1:1 *1:2 12.75\n*END\n\
//!      *D_NET *2 28.8\n*CAP\n1 *2:1 28.8\n*RES\n1 *2 *2:1 25.5\n*END\n",
//! )?;
//! let bound = bind_couplings(&spef, &design, &BindOptions::default())?;
//! assert_eq!(bound.specs.len(), 1);
//! let spec = bound.spec_for(&design, "v").expect("victim bound");
//! assert_eq!(spec.aggressors.len(), 1);
//! assert!((spec.cm_per_aggressor[0] - 100e-15).abs() < 1e-24);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod ast;
mod bind;
mod error;
pub mod lexer;
mod parser;
mod reduce;
mod writer;

pub use ast::{CapElem, Conn, ConnDirection, ConnKind, DNet, ResElem, SpefFile, SpefNode, Units};
pub use bind::{bind_couplings, BindOptions, BoundCouplings, DropReason};
pub use error::SpefError;
pub use parser::parse_spef;
pub use reduce::{reduce_spef, ReducedNet};
pub use writer::write_spef;
