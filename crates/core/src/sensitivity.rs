//! Output-to-input sensitivity curves (the paper's `ρ`).
//!
//! Equation 1 of the paper defines the *noiseless sensitivity*
//! `ρ(t) = ∂v_out/∂v_in = (dv_out/dt)/(dv_in/dt)`, nonzero only inside the
//! noiseless critical region. SGDP's step 2 re-indexes this curve by
//! *voltage* so it can be transferred onto the (possibly non-monotone) noisy
//! waveform: `ρeff(tᵢ) = ρ(tⱼ)` where the noiseless input at `tⱼ` matches
//! the noisy voltage at `tᵢ`.

use crate::context::PropagationContext;
use crate::gate::{transition_gap, transitions_overlap};
use crate::SgdpError;
use nsta_numeric::interp;
use nsta_waveform::{Polarity, Waveform};

/// Internal sampling resolution for sensitivity extraction.
const CURVE_POINTS: usize = 400;
/// Sensitivities above this are clamped (they arise from near-flat input
/// segments and would otherwise dominate every fit).
const RHO_CLAMP: f64 = 100.0;

/// The noiseless sensitivity `ρ` sampled over the noiseless critical
/// region, with a voltage-indexed view for SGDP's step 2.
#[derive(Debug, Clone)]
pub struct SensitivityCurve {
    /// Sample times (ascending, spanning the noiseless critical region).
    times: Vec<f64>,
    /// `ρ(t)` at those times.
    rho: Vec<f64>,
    /// Voltage-indexed map: ascending voltages...
    map_volts: Vec<f64>,
    /// ...and the corresponding `ρ` values.
    map_rho: Vec<f64>,
    region: (f64, f64),
}

impl SensitivityCurve {
    /// Extracts `ρ` from a noiseless input/output waveform pair (Eq. 1).
    ///
    /// `polarity` is the *input* transition direction. The magnitude of the
    /// derivative ratio is used, so the output may transition either way.
    ///
    /// # Errors
    ///
    /// * [`SgdpError::Waveform`] if the input has no critical region.
    /// * [`SgdpError::DegenerateFit`] if the input is flat across its
    ///   entire critical region.
    pub fn from_noiseless(
        v_in: &Waveform,
        v_out: &Waveform,
        thresholds: nsta_waveform::Thresholds,
        polarity: Polarity,
    ) -> Result<Self, SgdpError> {
        let region = v_in.critical_region(thresholds, polarity)?;
        let (t0, t1) = region;
        let n = CURVE_POINTS;
        let h = (t1 - t0) / (n as f64) / 2.0;
        let mut times = Vec::with_capacity(n);
        let mut rho = Vec::with_capacity(n);
        let mut volts = Vec::with_capacity(n);
        // Slope floor: 0.1% of the mean transition slope. Below it the
        // sensitivity is treated as zero (flat input cannot transmit noise).
        let mean_slope = (v_in.value_at(t1) - v_in.value_at(t0)).abs() / (t1 - t0);
        if mean_slope <= 0.0 {
            return Err(SgdpError::DegenerateFit(
                "noiseless input flat across critical region",
            ));
        }
        let slope_floor = 1e-3 * mean_slope;
        for k in 0..n {
            let t = t0 + (t1 - t0) * k as f64 / (n - 1) as f64;
            let din = (v_in.value_at(t + h) - v_in.value_at(t - h)) / (2.0 * h);
            let dout = (v_out.value_at(t + h) - v_out.value_at(t - h)) / (2.0 * h);
            let r = if din.abs() < slope_floor {
                0.0
            } else {
                (dout / din).abs().min(RHO_CLAMP)
            };
            times.push(t);
            rho.push(r);
            volts.push(v_in.value_at(t));
        }
        // Voltage-indexed view: keep a strictly monotone voltage envelope
        // (noiseless inputs are monotone up to numerical wiggle).
        let mut map: Vec<(f64, f64)> = Vec::with_capacity(n);
        match polarity {
            Polarity::Rise => {
                for (&v, &r) in volts.iter().zip(&rho) {
                    if map.last().is_none_or(|&(lv, _)| v > lv + 1e-12) {
                        map.push((v, r));
                    }
                }
            }
            Polarity::Fall => {
                for (&v, &r) in volts.iter().zip(&rho) {
                    if map.last().is_none_or(|&(lv, _)| v < lv - 1e-12) {
                        map.push((v, r));
                    }
                }
                map.reverse();
            }
        }
        if map.len() < 2 {
            return Err(SgdpError::DegenerateFit(
                "noiseless input has no voltage span",
            ));
        }
        let (map_volts, map_rho): (Vec<f64>, Vec<f64>) = map.into_iter().unzip();
        Ok(SensitivityCurve {
            times,
            rho,
            map_volts,
            map_rho,
            region,
        })
    }

    /// The noiseless critical region this curve spans.
    pub fn region(&self) -> (f64, f64) {
        self.region
    }

    /// `ρ(t)`: linear interpolation inside the region, zero outside (the
    /// paper's weight-filter behaviour).
    pub fn rho_at_time(&self, t: f64) -> f64 {
        if t < self.region.0 || t > self.region.1 {
            return 0.0;
        }
        interp::interp1_clamped(&self.times, &self.rho, t)
    }

    /// `ρ` looked up by input *voltage* — SGDP's step-2 transfer.
    ///
    /// Voltages outside the noiseless critical region's span have no
    /// matching `tⱼ` (paper step 2.a), and `ρ` is zero outside the region:
    /// such lookups return 0. A noisy sample sitting on a settled rail
    /// therefore carries no weight, exactly as in the paper.
    pub fn rho_at_voltage(&self, v: f64) -> f64 {
        let lo = self.map_volts[0];
        let hi = self.map_volts[self.map_volts.len() - 1];
        if v < lo || v > hi {
            return 0.0;
        }
        interp::interp1_clamped(&self.map_volts, &self.map_rho, v)
    }

    /// `∂ρ/∂v_in` by central differencing of the voltage-indexed view;
    /// zero outside the characterized span (where `ρ` is identically zero).
    pub fn drho_dv(&self, v: f64) -> f64 {
        let lo = self.map_volts[0];
        let hi = self.map_volts[self.map_volts.len() - 1];
        if v < lo || v > hi {
            return 0.0;
        }
        let h = (hi - lo) / 200.0;
        if h <= 0.0 {
            return 0.0;
        }
        let va = (v - h).max(lo);
        let vb = (v + h).min(hi);
        let a = interp::interp1_clamped(&self.map_volts, &self.map_rho, va);
        let b = interp::interp1_clamped(&self.map_volts, &self.map_rho, vb);
        (b - a) / (vb - va).max(h)
    }

    /// Largest sensitivity over the region.
    pub fn max_rho(&self) -> f64 {
        self.rho.iter().fold(0.0, |m, &r| m.max(r))
    }
}

/// How SGDP references `Γeff` when the non-overlap pre-shift was applied.
///
/// The paper's prose says to shift the equivalent line *forward* by the
/// pre-shift amount `δ`; doing so re-expresses the line in the output time
/// frame and double-counts the intrinsic delay when the line is used as a
/// gate *input* (it breaks the identity `Γeff == input` for a noiseless
/// ramp). The default keeps `Γeff` input-referred; the literal behaviour is
/// provided for fidelity experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShiftPolicy {
    /// Keep `Γeff` in the input time frame (recommended; preserves the
    /// noiseless-identity invariant).
    #[default]
    InputReferred,
    /// Follow the paper text literally: shift `Γeff` forward by `δ`.
    PaperLiteral,
}

/// Result of the sensitivity extraction including non-overlap handling:
/// the curve plus the pre-shift `δ` that was applied to the output
/// (zero when transitions overlap).
#[derive(Debug, Clone)]
pub struct ShiftedSensitivity {
    /// The sensitivity curve (extracted from the δ-aligned output).
    pub curve: SensitivityCurve,
    /// The pre-shift applied to the output before extraction (s).
    pub delta: f64,
}

/// Extracts the noiseless sensitivity from the context, applying SGDP's
/// additional pre-shift step when the input and output transitions do not
/// overlap. Cached on the context — see
/// [`PropagationContext::sensitivity`].
///
/// # Errors
///
/// * [`SgdpError::MissingNoiselessOutput`] if the context has no output.
/// * Propagated waveform/fit failures.
pub fn noiseless_sensitivity(ctx: &PropagationContext) -> Result<ShiftedSensitivity, SgdpError> {
    ctx.sensitivity().cloned()
}

/// Uncached extraction (the cache's initializer).
pub(crate) fn compute_noiseless_sensitivity(
    ctx: &PropagationContext,
) -> Result<ShiftedSensitivity, SgdpError> {
    let v_in = ctx.noiseless_input();
    let v_out = ctx.noiseless_output_or_err()?;
    let th = ctx.thresholds();
    if transitions_overlap(v_in, v_out, th)? {
        let curve = SensitivityCurve::from_noiseless(v_in, v_out, th, ctx.polarity())?;
        Ok(ShiftedSensitivity { curve, delta: 0.0 })
    } else {
        let delta = transition_gap(v_in, v_out, th)?;
        let aligned = v_out.shifted(-delta);
        let curve = SensitivityCurve::from_noiseless(v_in, &aligned, th, ctx.polarity())?;
        Ok(ShiftedSensitivity { curve, delta })
    }
}

/// SGDP step 2: `ρeff` and `∂ρ/∂v` sampled at `P` points across the *noisy*
/// critical region, transferred from the noiseless curve through voltage
/// matching.
#[derive(Debug, Clone)]
pub struct EffectiveSensitivity {
    /// The `P` sample times across the noisy critical region.
    pub times: Vec<f64>,
    /// Noisy input voltage at each sample.
    pub voltages: Vec<f64>,
    /// `ρeff` at each sample.
    pub rho: Vec<f64>,
    /// `∂ρ/∂v_in` at each sample (for Eq. 3's second-order term).
    pub drho_dv: Vec<f64>,
}

/// Computes [`EffectiveSensitivity`] for the context's noisy waveform.
///
/// # Errors
///
/// Propagates region-extraction failures.
pub fn effective_sensitivity(
    curve: &SensitivityCurve,
    ctx: &PropagationContext,
) -> Result<EffectiveSensitivity, SgdpError> {
    let (t0, t1) = ctx.noisy_critical_region()?;
    let times = ctx.sample_times(t0, t1);
    let noisy = ctx.noisy_input();
    let mut voltages = Vec::with_capacity(times.len());
    let mut rho = Vec::with_capacity(times.len());
    let mut drho = Vec::with_capacity(times.len());
    for &t in &times {
        let v = noisy.value_at(t);
        voltages.push(v);
        rho.push(curve.rho_at_voltage(v));
        drho.push(curve.drho_dv(v));
    }
    Ok(EffectiveSensitivity {
        times,
        voltages,
        rho,
        drho_dv: drho,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::PropagationContext;
    use nsta_waveform::{SaturatedRamp, Thresholds};

    fn th() -> Thresholds {
        Thresholds::cmos(1.2)
    }

    fn ramp_wave(t50: f64, slew: f64, rising: bool) -> Waveform {
        SaturatedRamp::with_slew(t50, slew, th(), rising)
            .unwrap()
            .to_waveform(0.0, 4e-9, 1e-12)
            .unwrap()
    }

    #[test]
    fn slew_ratio_is_recovered() {
        // Input slew 200 ps, output slew 100 ps, overlapping mid-crossings:
        // ρ ≈ 2 wherever both ramps are active.
        let v_in = ramp_wave(1.0e-9, 200e-12, true);
        let v_out = ramp_wave(1.02e-9, 100e-12, false);
        let c = SensitivityCurve::from_noiseless(&v_in, &v_out, th(), Polarity::Rise).unwrap();
        // At mid-region both are in transition.
        let mid = 1.0e-9;
        let got = c.rho_at_time(mid);
        assert!((got - 2.0).abs() < 0.1, "rho at mid = {got}");
        assert_eq!(c.rho_at_time(0.0), 0.0, "zero outside the region");
        assert_eq!(c.rho_at_time(3.9e-9), 0.0);
        assert!(c.max_rho() >= got);
    }

    #[test]
    fn voltage_and_time_views_agree_for_monotone_input() {
        let v_in = ramp_wave(1.0e-9, 200e-12, true);
        let v_out = ramp_wave(1.0e-9, 120e-12, false);
        let c = SensitivityCurve::from_noiseless(&v_in, &v_out, th(), Polarity::Rise).unwrap();
        let (t0, t1) = c.region();
        for frac in [0.2, 0.4, 0.6, 0.8] {
            let t = t0 + (t1 - t0) * frac;
            let v = v_in.value_at(t);
            let by_t = c.rho_at_time(t);
            let by_v = c.rho_at_voltage(v);
            assert!((by_t - by_v).abs() < 0.05, "t={t:e}: {by_t} vs {by_v}");
        }
    }

    #[test]
    fn falling_input_builds_ascending_voltage_map() {
        let v_in = ramp_wave(1.0e-9, 200e-12, false);
        let v_out = ramp_wave(1.02e-9, 100e-12, true);
        let c = SensitivityCurve::from_noiseless(&v_in, &v_out, th(), Polarity::Fall).unwrap();
        // Lookup works across the swing.
        for v in [0.2, 0.6, 1.0] {
            assert!(c.rho_at_voltage(v) >= 0.0);
        }
        assert!((c.rho_at_voltage(0.6) - 2.0).abs() < 0.2);
    }

    #[test]
    fn drho_of_constant_ratio_is_small() {
        let v_in = ramp_wave(1.0e-9, 200e-12, true);
        let v_out = ramp_wave(1.0e-9, 100e-12, false);
        let c = SensitivityCurve::from_noiseless(&v_in, &v_out, th(), Polarity::Rise).unwrap();
        // Within the interior the ratio is constant ⇒ derivative ≈ 0.
        let d = c.drho_dv(0.6);
        assert!(d.abs() < 2.0, "drho/dv = {d}");
    }

    #[test]
    fn non_overlap_triggers_shift() {
        let v_in = ramp_wave(1.0e-9, 150e-12, true);
        // Output a full nanosecond later: no overlap.
        let v_out = ramp_wave(2.0e-9, 150e-12, false);
        let ctx = PropagationContext::new(v_in.clone(), v_in.clone(), Some(v_out), th()).unwrap();
        let s = noiseless_sensitivity(&ctx).unwrap();
        assert!((s.delta - 1.0e-9).abs() < 5e-12, "delta = {:e}", s.delta);
        // After alignment the sensitivity is meaningful.
        assert!(s.curve.max_rho() > 0.5);
    }

    #[test]
    fn overlap_keeps_delta_zero() {
        let v_in = ramp_wave(1.0e-9, 150e-12, true);
        let v_out = ramp_wave(1.05e-9, 100e-12, false);
        let ctx = PropagationContext::new(v_in.clone(), v_in.clone(), Some(v_out), th()).unwrap();
        let s = noiseless_sensitivity(&ctx).unwrap();
        assert_eq!(s.delta, 0.0);
    }

    #[test]
    fn effective_sensitivity_matches_noiseless_on_clean_input() {
        let v_in = ramp_wave(1.0e-9, 150e-12, true);
        let v_out = ramp_wave(1.04e-9, 90e-12, false);
        let ctx = PropagationContext::new(v_in.clone(), v_in.clone(), Some(v_out), th()).unwrap();
        let s = noiseless_sensitivity(&ctx).unwrap();
        let eff = effective_sensitivity(&s.curve, &ctx).unwrap();
        assert_eq!(eff.times.len(), ctx.samples());
        for (k, &t) in eff.times.iter().enumerate() {
            let direct = s.curve.rho_at_time(t);
            assert!(
                (eff.rho[k] - direct).abs() < 0.25,
                "k={k}: mapped {} vs direct {direct}",
                eff.rho[k]
            );
        }
    }

    #[test]
    fn missing_output_is_reported() {
        let v_in = ramp_wave(1.0e-9, 150e-12, true);
        let ctx = PropagationContext::new(v_in.clone(), v_in, None, th()).unwrap();
        assert!(matches!(
            noiseless_sensitivity(&ctx),
            Err(SgdpError::MissingNoiselessOutput)
        ));
    }
}
