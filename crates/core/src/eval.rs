//! Case evaluation: run techniques against a golden output and quantify the
//! resulting arrival/delay errors — the machinery behind Table 1.

use crate::context::PropagationContext;
use crate::delay::{gate_delay, GateDelay};
use crate::gate::GateModel;
use crate::techniques::MethodKind;
use crate::SgdpError;
use nsta_waveform::{SaturatedRamp, Waveform};

/// Outcome of one technique on one noise-injection case.
#[derive(Debug, Clone)]
pub struct MethodOutcome {
    /// Which technique produced this outcome.
    pub method: MethodKind,
    /// The equivalent ramp it computed.
    pub gamma: SaturatedRamp,
    /// The gate output predicted by driving the gate with `gamma`.
    pub predicted_output: Waveform,
    /// Delay measured from `gamma` to the predicted output (the technique's
    /// gate-delay estimate, as an STA engine would consume it).
    pub predicted_delay: GateDelay,
    /// Absolute error of the predicted output arrival vs the golden output
    /// arrival (s). This is the Table-1 "delay error": both delays are
    /// referenced to the same physical input event, so arrival error and
    /// delay error coincide.
    pub arrival_error: f64,
}

/// Golden measurements plus per-technique outcomes for one case.
#[derive(Debug, Clone)]
pub struct CaseReport {
    /// Golden (simulated, noisy) gate delay.
    pub golden_delay: GateDelay,
    /// Per-technique results, in the order requested.
    pub outcomes: Vec<(MethodKind, Result<MethodOutcome, SgdpError>)>,
}

/// Evaluates `methods` on one case.
///
/// `golden_output` must be the gate's *actual* response to the noisy input
/// (from the full nonlinear simulation); each technique's ramp is pushed
/// through `gate` and its output arrival compared against the golden one.
///
/// # Errors
///
/// Fails only if the golden waveforms themselves are unusable; individual
/// technique failures are captured per-outcome.
pub fn evaluate_case(
    ctx: &PropagationContext,
    gate: &dyn GateModel,
    golden_output: &Waveform,
    methods: &[MethodKind],
) -> Result<CaseReport, SgdpError> {
    let th = ctx.thresholds();
    let golden_delay = gate_delay(ctx.noisy_input(), golden_output, th)?;
    let t0 = ctx.noisy_input().t_start();
    let t1 = ctx.noisy_input().t_end();

    let mut outcomes = Vec::with_capacity(methods.len());
    for &method in methods {
        let outcome = method.equivalent(ctx).and_then(|gamma| {
            let dt = (gamma.slew(th) / 50.0).max(1e-13);
            // A very slow Γeff may depart before the noisy record starts or
            // settle after it ends; widen the window to the full ramp.
            let slack = 0.1 * gamma.slew(th);
            let t0 = t0.min(gamma.t_rail_departure() - slack);
            let t1 = t1.max(gamma.t_rail_arrival() + slack);
            let ramp_wave = gamma.to_waveform(t0, t1, dt)?;
            let predicted_output = gate.response(&ramp_wave)?;
            let predicted_delay = gate_delay(&ramp_wave, &predicted_output, th)?;
            let arrival_error = (predicted_delay.t_out_mid - golden_delay.t_out_mid).abs();
            Ok(MethodOutcome {
                method,
                gamma,
                predicted_output,
                predicted_delay,
                arrival_error,
            })
        });
        outcomes.push((method, outcome));
    }
    Ok(CaseReport {
        golden_delay,
        outcomes,
    })
}

impl CaseReport {
    /// The arrival error of a technique, if it succeeded.
    pub fn error_of(&self, method: MethodKind) -> Option<f64> {
        self.outcomes.iter().find_map(|(m, o)| {
            if *m == method {
                o.as_ref().ok().map(|out| out.arrival_error)
            } else {
                None
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::AnalyticInverterGate;
    use nsta_waveform::{SaturatedRamp, Thresholds};

    #[test]
    fn evaluation_orders_methods_and_measures_errors() {
        let th = Thresholds::cmos(1.2);
        let gate = AnalyticInverterGate::fast(th);
        let clean = SaturatedRamp::with_slew(1.0e-9, 150e-12, th, true)
            .unwrap()
            .to_waveform(0.0, 3.5e-9, 1e-12)
            .unwrap();
        // Glitch partially outside the noiseless region.
        let noisy = clean.with_triangular_pulse(1.15e-9, 220e-12, -0.7).unwrap();
        let out_noiseless = gate.response(&clean).unwrap();
        let golden = gate.response(&noisy).unwrap();
        let ctx = PropagationContext::new(clean, noisy, Some(out_noiseless), th).unwrap();
        let report = evaluate_case(&ctx, &gate, &golden, &MethodKind::all()).unwrap();
        assert_eq!(report.outcomes.len(), 6);
        // Everything succeeds on this benign case.
        for (m, o) in &report.outcomes {
            assert!(o.is_ok(), "{m} failed: {o:?}");
        }
        // Errors are finite and bounded by the simulation window.
        for m in MethodKind::all() {
            let e = report.error_of(m).unwrap();
            assert!(e.is_finite() && e < 1e-9, "{m}: error {e}");
        }
        // The golden delay is positive.
        assert!(report.golden_delay.value() > 0.0);
    }

    #[test]
    fn failures_are_captured_per_method() {
        let th = Thresholds::cmos(1.2);
        // Slow gate: WLS5 must fail with NonOverlapping, others succeed.
        let gate = AnalyticInverterGate::slow(th);
        let clean = SaturatedRamp::with_slew(1.0e-9, 150e-12, th, true)
            .unwrap()
            .to_waveform(0.0, 4e-9, 1e-12)
            .unwrap();
        let out_noiseless = gate.response(&clean).unwrap();
        let golden = gate.response(&clean).unwrap();
        let ctx = PropagationContext::new(clean.clone(), clean, Some(out_noiseless), th).unwrap();
        let report = evaluate_case(&ctx, &gate, &golden, &MethodKind::all()).unwrap();
        let wls = report
            .outcomes
            .iter()
            .find(|(m, _)| *m == MethodKind::Wls5)
            .map(|(_, o)| o)
            .unwrap();
        assert!(matches!(wls, Err(SgdpError::NonOverlapping { .. })));
        assert!(report.error_of(MethodKind::Wls5).is_none());
        assert!(report.error_of(MethodKind::Sgdp).is_some());
    }
}
