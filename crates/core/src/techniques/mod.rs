//! The equivalent-waveform techniques: P1, P2, LSF3, E4, WLS5 and SGDP.
//!
//! Every technique reduces a noisy input waveform to a [`SaturatedRamp`]
//! `Γeff` — the arrival-time-plus-slew abstraction STA engines propagate.
//! They differ in *which* features of the noisy waveform they preserve; the
//! paper's experiments (and this workspace's Table-1 harness) quantify the
//! resulting gate-delay error against a golden transistor-level simulation.

mod energy;
mod lsf;
mod point;
mod sgdp;
mod wls;

pub use energy::E4;
pub use lsf::Lsf3;
pub use point::{P1, P2};
pub use sgdp::{FitMode, Sgdp};
pub use wls::Wls5;

use crate::context::PropagationContext;
use crate::SgdpError;
use nsta_waveform::SaturatedRamp;

/// A technique that reduces a noisy waveform to an equivalent ramp.
pub trait EquivalentWaveform {
    /// Short, stable identifier (matches the paper's naming).
    fn name(&self) -> &'static str;

    /// Computes `Γeff` for the given context.
    ///
    /// # Errors
    ///
    /// Techniques report [`SgdpError::NonOverlapping`] when their
    /// theoretical preconditions fail (WLS5 on non-overlapping transitions)
    /// and [`SgdpError::DegenerateFit`] when the waveform carries no usable
    /// transition; see each implementation.
    fn equivalent(&self, ctx: &PropagationContext) -> Result<SaturatedRamp, SgdpError>;
}

/// Enumeration of all techniques studied in the paper, in its order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MethodKind {
    /// Point-based, noiseless slew (Section 2.1).
    P1,
    /// Point-based, earliest-to-latest noisy slew (Section 2.1).
    P2,
    /// Plain least-squares fit (Section 2.2).
    Lsf3,
    /// Elmore-inspired area matching (Section 2.3).
    E4,
    /// Sensitivity-weighted least squares of Hashimoto et al. (Section 2.4).
    Wls5,
    /// The paper's contribution (Section 3).
    Sgdp,
}

impl MethodKind {
    /// All techniques in the paper's presentation order.
    pub fn all() -> [MethodKind; 6] {
        [
            MethodKind::P1,
            MethodKind::P2,
            MethodKind::Lsf3,
            MethodKind::E4,
            MethodKind::Wls5,
            MethodKind::Sgdp,
        ]
    }

    /// The technique's display name.
    pub fn name(&self) -> &'static str {
        match self {
            MethodKind::P1 => "P1",
            MethodKind::P2 => "P2",
            MethodKind::Lsf3 => "LSF3",
            MethodKind::E4 => "E4",
            MethodKind::Wls5 => "WLS5",
            MethodKind::Sgdp => "SGDP",
        }
    }

    /// Computes `Γeff` with this technique's default configuration.
    ///
    /// # Errors
    ///
    /// See [`EquivalentWaveform::equivalent`].
    pub fn equivalent(&self, ctx: &PropagationContext) -> Result<SaturatedRamp, SgdpError> {
        match self {
            MethodKind::P1 => P1.equivalent(ctx),
            MethodKind::P2 => P2.equivalent(ctx),
            MethodKind::Lsf3 => Lsf3.equivalent(ctx),
            MethodKind::E4 => E4.equivalent(ctx),
            MethodKind::Wls5 => Wls5.equivalent(ctx),
            MethodKind::Sgdp => Sgdp::default().equivalent(ctx),
        }
    }
}

impl std::fmt::Display for MethodKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Validates that a fitted line transitions in the context's direction and
/// wraps it into a ramp.
pub(crate) fn ramp_from_fit(
    a: f64,
    b: f64,
    ctx: &PropagationContext,
) -> Result<SaturatedRamp, SgdpError> {
    if !a.is_finite() || !b.is_finite() {
        return Err(SgdpError::DegenerateFit(
            "fit produced non-finite coefficients",
        ));
    }
    let rising = ctx.polarity().is_rise();
    if (rising && a <= 0.0) || (!rising && a >= 0.0) {
        return Err(SgdpError::DegenerateFit(
            "fitted slope opposes the transition",
        ));
    }
    Ok(SaturatedRamp::from_coefficients(
        a,
        b,
        ctx.thresholds().vdd(),
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_kind_metadata() {
        assert_eq!(MethodKind::all().len(), 6);
        assert_eq!(MethodKind::Sgdp.name(), "SGDP");
        assert_eq!(MethodKind::Wls5.to_string(), "WLS5");
        // Names are unique.
        let names: std::collections::HashSet<_> =
            MethodKind::all().iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), 6);
    }
}
