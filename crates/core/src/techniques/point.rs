//! The point-based techniques P1 and P2 (Section 2.1 of the paper).
//!
//! Both anchor `Γeff`'s mid-rail point at the **latest** `0.5·Vdd` crossing
//! of the noisy waveform; they differ in the slew:
//!
//! * **P1** pretends the waveform was never distorted and reuses the
//!   *noiseless* 10–90 slew.
//! * **P2** spans the full noisy critical region: earliest `0.1·Vdd`
//!   crossing to latest `0.9·Vdd` crossing (for a rise).

use crate::context::PropagationContext;
use crate::techniques::EquivalentWaveform;
use crate::SgdpError;
use nsta_waveform::SaturatedRamp;

/// Point-based technique with the noiseless slew.
#[derive(Debug, Clone, Copy, Default)]
pub struct P1;

impl EquivalentWaveform for P1 {
    fn name(&self) -> &'static str {
        "P1"
    }

    fn equivalent(&self, ctx: &PropagationContext) -> Result<SaturatedRamp, SgdpError> {
        let th = ctx.thresholds();
        let pol = ctx.polarity();
        let slew = ctx.noiseless_input().slew_first_to_first(th, pol)?;
        let anchor = ctx.noisy_input().last_crossing_or_err(th.mid())?;
        Ok(SaturatedRamp::with_slew(anchor, slew, th, pol.is_rise())?)
    }
}

/// Point-based technique with the earliest-to-latest noisy slew.
#[derive(Debug, Clone, Copy, Default)]
pub struct P2;

impl EquivalentWaveform for P2 {
    fn name(&self) -> &'static str {
        "P2"
    }

    fn equivalent(&self, ctx: &PropagationContext) -> Result<SaturatedRamp, SgdpError> {
        let th = ctx.thresholds();
        let pol = ctx.polarity();
        let slew = ctx.noisy_input().slew_first_to_last(th, pol)?;
        let anchor = ctx.noisy_input().last_crossing_or_err(th.mid())?;
        Ok(SaturatedRamp::with_slew(anchor, slew, th, pol.is_rise())?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsta_waveform::{Thresholds, Waveform};

    fn th() -> Thresholds {
        Thresholds::cmos(1.2)
    }

    fn clean() -> Waveform {
        SaturatedRamp::with_slew(1.0e-9, 150e-12, th(), true)
            .unwrap()
            .to_waveform(0.0, 3e-9, 1e-12)
            .unwrap()
    }

    fn ctx_for(noisy: Waveform) -> PropagationContext {
        PropagationContext::new(clean(), noisy, None, th()).unwrap()
    }

    #[test]
    fn on_clean_input_both_reproduce_the_ramp() {
        let ctx = ctx_for(clean());
        for (name, g) in [
            ("p1", P1.equivalent(&ctx).unwrap()),
            ("p2", P2.equivalent(&ctx).unwrap()),
        ] {
            assert!(
                (g.arrival_mid() - 1.0e-9).abs() < 2e-12,
                "{name}: {:e}",
                g.arrival_mid()
            );
            assert!(
                (g.slew(th()) - 150e-12).abs() < 3e-12,
                "{name}: {:e}",
                g.slew(th())
            );
        }
    }

    #[test]
    fn glitch_moves_anchor_to_latest_mid_crossing() {
        // A dip below mid-rail after the main transition forces a later
        // final 0.5·Vdd crossing; both methods must anchor there.
        let noisy = clean()
            .with_triangular_pulse(1.25e-9, 200e-12, -0.8)
            .unwrap();
        let latest = noisy.last_crossing(th().mid()).unwrap();
        assert!(latest > 1.2e-9, "glitch must recross mid-rail");
        let ctx = ctx_for(noisy);
        let g1 = P1.equivalent(&ctx).unwrap();
        let g2 = P2.equivalent(&ctx).unwrap();
        assert!((g1.arrival_mid() - latest).abs() < 2e-12);
        assert!((g2.arrival_mid() - latest).abs() < 2e-12);
    }

    #[test]
    fn p1_keeps_noiseless_slew_p2_stretches() {
        let noisy = clean()
            .with_triangular_pulse(1.25e-9, 200e-12, -0.8)
            .unwrap();
        let ctx = ctx_for(noisy);
        let g1 = P1.equivalent(&ctx).unwrap();
        let g2 = P2.equivalent(&ctx).unwrap();
        assert!(
            (g1.slew(th()) - 150e-12).abs() < 3e-12,
            "p1 ignores the distortion"
        );
        assert!(
            g2.slew(th()) > 2.0 * g1.slew(th()),
            "p2 spans the whole critical region"
        );
    }

    #[test]
    fn falling_transitions_handled() {
        let clean_fall = SaturatedRamp::with_slew(1.0e-9, 150e-12, th(), false)
            .unwrap()
            .to_waveform(0.0, 3e-9, 1e-12)
            .unwrap();
        let noisy = clean_fall
            .with_triangular_pulse(1.2e-9, 150e-12, 0.7)
            .unwrap();
        let ctx = PropagationContext::new(clean_fall, noisy, None, th()).unwrap();
        let g1 = P1.equivalent(&ctx).unwrap();
        let g2 = P2.equivalent(&ctx).unwrap();
        assert!(!g1.polarity().is_rise());
        assert!(g2.slew(th()) >= g1.slew(th()));
    }
}
