//! LSF3: plain least-squares line fit (Section 2.2 of the paper).
//!
//! `Γeff` minimizes the sum of squared differences between the line and the
//! noisy waveform, sampled at `P` points across the noisy critical region —
//! "simply a mathematical approach to match a waveform without any
//! consideration of the logic gate behavior".

use crate::context::PropagationContext;
use crate::techniques::{ramp_from_fit, EquivalentWaveform};
use crate::SgdpError;
use nsta_numeric::LineFit;
use nsta_waveform::SaturatedRamp;

/// Plain least-squares technique.
#[derive(Debug, Clone, Copy, Default)]
pub struct Lsf3;

impl EquivalentWaveform for Lsf3 {
    fn name(&self) -> &'static str {
        "LSF3"
    }

    fn equivalent(&self, ctx: &PropagationContext) -> Result<SaturatedRamp, SgdpError> {
        let (t0, t1) = ctx.noisy_critical_region()?;
        let times = ctx.sample_times(t0, t1);
        let values: Vec<f64> = times
            .iter()
            .map(|&t| ctx.noisy_input().value_at(t))
            .collect();
        let fit = LineFit::least_squares(&times, &values)?;
        ramp_from_fit(fit.a, fit.b, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsta_waveform::{Thresholds, Waveform};

    fn th() -> Thresholds {
        Thresholds::cmos(1.2)
    }

    fn clean() -> Waveform {
        SaturatedRamp::with_slew(1.0e-9, 150e-12, th(), true)
            .unwrap()
            .to_waveform(0.0, 3e-9, 1e-12)
            .unwrap()
    }

    #[test]
    fn clean_ramp_is_a_fixed_point() {
        let ctx = PropagationContext::new(clean(), clean(), None, th()).unwrap();
        let g = Lsf3.equivalent(&ctx).unwrap();
        assert!((g.arrival_mid() - 1.0e-9).abs() < 2e-12);
        assert!((g.slew(th()) - 150e-12).abs() < 4e-12);
    }

    #[test]
    fn symmetric_mid_glitch_leaves_arrival_near_ramp() {
        // A symmetric dip centered on the ramp midpoint biases the fit's
        // intercept but barely moves its mid-crossing.
        let noisy = clean()
            .with_triangular_pulse(1.0e-9, 80e-12, -0.15)
            .unwrap();
        let ctx = PropagationContext::new(clean(), noisy, None, th()).unwrap();
        let g = Lsf3.equivalent(&ctx).unwrap();
        assert!((g.arrival_mid() - 1.0e-9).abs() < 25e-12);
    }

    #[test]
    fn fit_tracks_a_shifted_transition() {
        // The noisy waveform is simply the clean ramp arriving 120 ps late:
        // LSF3 must recover both slope and shift.
        let noisy = clean().shifted(120e-12);
        let ctx = PropagationContext::new(clean(), noisy, None, th()).unwrap();
        let g = Lsf3.equivalent(&ctx).unwrap();
        assert!((g.arrival_mid() - 1.12e-9).abs() < 3e-12);
        assert!((g.slew(th()) - 150e-12).abs() < 4e-12);
    }

    #[test]
    fn falling_input_gives_negative_slope() {
        let clean_fall = SaturatedRamp::with_slew(1.0e-9, 200e-12, th(), false)
            .unwrap()
            .to_waveform(0.0, 3e-9, 1e-12)
            .unwrap();
        let ctx = PropagationContext::new(clean_fall.clone(), clean_fall, None, th()).unwrap();
        let g = Lsf3.equivalent(&ctx).unwrap();
        assert!(g.slope() < 0.0);
    }
}
