//! WLS5: sensitivity-weighted least squares (Section 2.4 of the paper;
//! Hashimoto, Yamada, Onodera, IEEE TCAD 2004).
//!
//! Each squared term of the LSF3 objective is weighted by the *noiseless*
//! sensitivity `ρ_noiseless(t_k)` (Eq. 2), which is nonzero only inside the
//! noiseless critical region. Two consequences the paper highlights — and
//! that this implementation deliberately preserves:
//!
//! * noise arriving **outside** the noiseless critical region is ignored
//!   (the weight filter), and
//! * the method is undefined when the noiseless input and output do not
//!   overlap (multi-stage cells, heavy fanout): it reports
//!   [`SgdpError::NonOverlapping`].

use crate::context::PropagationContext;
use crate::gate::{transition_gap, transitions_overlap};
use crate::techniques::{ramp_from_fit, EquivalentWaveform};
use crate::SgdpError;
use nsta_numeric::LineFit;
use nsta_waveform::SaturatedRamp;

/// Sensitivity-weighted least-squares technique.
#[derive(Debug, Clone, Copy, Default)]
pub struct Wls5;

impl EquivalentWaveform for Wls5 {
    fn name(&self) -> &'static str {
        "WLS5"
    }

    fn equivalent(&self, ctx: &PropagationContext) -> Result<SaturatedRamp, SgdpError> {
        let th = ctx.thresholds();
        let v_in = ctx.noiseless_input();
        let v_out = ctx.noiseless_output_or_err()?;
        if !transitions_overlap(v_in, v_out, th)? {
            let gap = transition_gap(v_in, v_out, th)?;
            return Err(SgdpError::NonOverlapping { gap });
        }
        // Overlap established, so the cached curve is unshifted (δ = 0).
        let shifted = ctx.sensitivity()?;
        let curve = &shifted.curve;
        // Eq. 2: sample across the *noiseless* critical region; the weight
        // ρ² vanishes outside it by construction.
        let (t0, t1) = ctx.noiseless_critical_region()?;
        let times = ctx.sample_times(t0, t1);
        let values: Vec<f64> = times
            .iter()
            .map(|&t| ctx.noisy_input().value_at(t))
            .collect();
        let weights: Vec<f64> = times
            .iter()
            .map(|&t| {
                let r = curve.rho_at_time(t);
                r * r
            })
            .collect();
        let fit = LineFit::weighted_least_squares(&times, &values, &weights)?;
        ramp_from_fit(fit.a, fit.b, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::{AnalyticInverterGate, GateModel};
    use nsta_waveform::{Thresholds, Waveform};

    fn th() -> Thresholds {
        Thresholds::cmos(1.2)
    }

    fn clean() -> Waveform {
        SaturatedRamp::with_slew(1.0e-9, 150e-12, th(), true)
            .unwrap()
            .to_waveform(0.0, 3e-9, 1e-12)
            .unwrap()
    }

    fn ctx_with_gate(noisy: Waveform, gate: &dyn GateModel) -> PropagationContext {
        let out = gate.response(&clean()).unwrap();
        PropagationContext::new(clean(), noisy, Some(out), th()).unwrap()
    }

    #[test]
    fn clean_ramp_is_a_fixed_point() {
        let gate = AnalyticInverterGate::fast(th());
        let ctx = ctx_with_gate(clean(), &gate);
        let g = Wls5.equivalent(&ctx).unwrap();
        assert!(
            (g.arrival_mid() - 1.0e-9).abs() < 3e-12,
            "{:e}",
            g.arrival_mid()
        );
        assert!((g.slew(th()) - 150e-12).abs() < 6e-12, "{:e}", g.slew(th()));
    }

    #[test]
    fn noise_outside_noiseless_region_is_ignored() {
        // The paper's central criticism: put the glitch after the noiseless
        // critical region (which ends at ~1.075 ns) and WLS5 cannot see it.
        let gate = AnalyticInverterGate::fast(th());
        let noisy = clean()
            .with_triangular_pulse(1.5e-9, 250e-12, -0.9)
            .unwrap();
        // The glitch does move the latest mid-rail crossing...
        assert!(noisy.last_crossing(th().mid()).unwrap() > 1.4e-9);
        let ctx = ctx_with_gate(noisy, &gate);
        let g = Wls5.equivalent(&ctx).unwrap();
        // ...yet WLS5's answer is indistinguishable from the clean fit.
        assert!(
            (g.arrival_mid() - 1.0e-9).abs() < 5e-12,
            "wls5 must ignore late noise: {:e}",
            g.arrival_mid()
        );
    }

    #[test]
    fn noise_inside_region_shifts_the_fit() {
        let gate = AnalyticInverterGate::fast(th());
        let noisy = clean()
            .with_triangular_pulse(1.0e-9, 120e-12, -0.5)
            .unwrap();
        let ctx = ctx_with_gate(noisy, &gate);
        let g = Wls5.equivalent(&ctx).unwrap();
        assert!(
            g.arrival_mid() > 1.0e-9 + 5e-12,
            "in-region noise must register"
        );
    }

    #[test]
    fn non_overlapping_transitions_are_rejected() {
        let gate = AnalyticInverterGate::slow(th());
        let ctx = ctx_with_gate(clean(), &gate);
        match Wls5.equivalent(&ctx) {
            Err(SgdpError::NonOverlapping { gap }) => assert!(gap > 0.5e-9),
            other => panic!("expected NonOverlapping, got {other:?}"),
        }
    }

    #[test]
    fn missing_output_is_reported() {
        let ctx = PropagationContext::new(clean(), clean(), None, th()).unwrap();
        assert!(matches!(
            Wls5.equivalent(&ctx),
            Err(SgdpError::MissingNoiselessOutput)
        ));
    }
}
