//! E4: Elmore-inspired area matching (Section 2.3 of the paper).
//!
//! `Γeff` passes through the **latest** `0.5·Vdd` crossing of the noisy
//! waveform; the slope is chosen so that the area enclosed between the line
//! and the levels `v₁ = 0.5·Vdd`, `v₂ = Vdd` (for a rise) equals the area
//! enclosed by the noisy waveform and the same levels.
//!
//! For a line of slope `a` through `(t₅₀, 0.5·Vdd)` the enclosed area is the
//! triangle `(0.5·Vdd)² / (2a)`, so matching areas gives
//! `a = (0.5·Vdd)² / (2·A_noisy)`.

use crate::context::PropagationContext;
use crate::techniques::EquivalentWaveform;
use crate::SgdpError;
use nsta_waveform::{metrics, Polarity, SaturatedRamp};

/// Energy/area-matching technique.
#[derive(Debug, Clone, Copy, Default)]
pub struct E4;

impl EquivalentWaveform for E4 {
    fn name(&self) -> &'static str {
        "E4"
    }

    fn equivalent(&self, ctx: &PropagationContext) -> Result<SaturatedRamp, SgdpError> {
        let th = ctx.thresholds();
        let noisy = ctx.noisy_input();
        let t50 = noisy.last_crossing_or_err(th.mid())?;
        let t_end = noisy.t_end();
        if t_end <= t50 {
            return Err(SgdpError::DegenerateFit("no record after the mid crossing"));
        }
        let half = 0.5 * th.vdd();
        // Area between the waveform and its destination rail, within the
        // band above (rise) or below (fall) mid-rail.
        let area = match ctx.polarity() {
            Polarity::Rise => {
                // ∫ (Vdd − clamp(v, mid, Vdd)) dt  =  band_height·T − band_area.
                let covered = metrics::band_area(noisy, t50, t_end, half, th.vdd())?;
                half * (t_end - t50) - covered
            }
            Polarity::Fall => metrics::band_area(noisy, t50, t_end, 0.0, half)?,
        };
        if !(area > 0.0) {
            return Err(SgdpError::DegenerateFit(
                "area match degenerate (instant settle)",
            ));
        }
        let magnitude = half * half / (2.0 * area);
        let a = if ctx.polarity().is_rise() {
            magnitude
        } else {
            -magnitude
        };
        let b = half - a * t50;
        Ok(SaturatedRamp::from_coefficients(a, b, th.vdd())?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsta_waveform::{Thresholds, Waveform};

    fn th() -> Thresholds {
        Thresholds::cmos(1.2)
    }

    fn clean(slew: f64, rising: bool) -> Waveform {
        SaturatedRamp::with_slew(1.0e-9, slew, th(), rising)
            .unwrap()
            .to_waveform(0.0, 3e-9, 0.5e-12)
            .unwrap()
    }

    fn ctx_for(noiseless: Waveform, noisy: Waveform) -> PropagationContext {
        PropagationContext::new(noiseless, noisy, None, th()).unwrap()
    }

    #[test]
    fn clean_ramp_is_a_fixed_point() {
        // For an exact saturated ramp the enclosed area equals the line's
        // triangle, so E4 returns the ramp itself.
        let ctx = ctx_for(clean(150e-12, true), clean(150e-12, true));
        let g = E4.equivalent(&ctx).unwrap();
        assert!(
            (g.arrival_mid() - 1.0e-9).abs() < 1e-12,
            "{:e}",
            g.arrival_mid()
        );
        assert!((g.slew(th()) - 150e-12).abs() < 2e-12, "{:e}", g.slew(th()));
    }

    #[test]
    fn clean_falling_ramp_is_a_fixed_point() {
        let ctx = ctx_for(clean(200e-12, false), clean(200e-12, false));
        let g = E4.equivalent(&ctx).unwrap();
        assert!((g.arrival_mid() - 1.0e-9).abs() < 1e-12);
        assert!((g.slew(th()) - 200e-12).abs() < 2e-12);
        assert!(g.slope() < 0.0);
    }

    #[test]
    fn anchored_at_latest_mid_crossing() {
        let noisy = clean(150e-12, true)
            .with_triangular_pulse(1.3e-9, 200e-12, -0.8)
            .unwrap();
        let latest = noisy.last_crossing(th().mid()).unwrap();
        let ctx = ctx_for(clean(150e-12, true), noisy);
        let g = E4.equivalent(&ctx).unwrap();
        assert!((g.arrival_mid() - latest).abs() < 1e-12);
    }

    #[test]
    fn slow_settling_tail_flattens_the_slope() {
        // A bump that keeps the waveform away from the rail after t50
        // increases the enclosed area ⇒ smaller slope ⇒ larger slew.
        let base = clean(150e-12, true);
        let noisy = base.with_triangular_pulse(1.35e-9, 400e-12, -0.45).unwrap();
        let ctx = ctx_for(base.clone(), noisy);
        let g = E4.equivalent(&ctx).unwrap();
        let ctx_clean = ctx_for(base.clone(), base);
        let g_clean = E4.equivalent(&ctx_clean).unwrap();
        assert!(g.slew(th()) > 1.5 * g_clean.slew(th()));
    }
}
