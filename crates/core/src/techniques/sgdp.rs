//! SGDP: sensitivity-based gate delay propagation — the paper's
//! contribution (Section 3).
//!
//! 1. **Step 1** — extract the noiseless sensitivity `ρ_noiseless` (Eq. 1),
//!    exactly as WLS5 does.
//! 2. **Step 2** — transfer it onto the *noisy* critical region by matching
//!    voltage levels: `ρeff(tᵢ) = ρ_noiseless(tⱼ)` with
//!    `v_in_noiseless(tⱼ) = v_in_noisy(tᵢ)`. Distortion outside the
//!    noiseless critical region is therefore **not** filtered away — the
//!    fix for WLS5's first weakness.
//! 3. **Step 3** — choose `(a, b)` minimizing the 2-term Taylor expansion
//!    of the squared output error (Eq. 3):
//!    `Σ [ρ_k·r_k + ½·(∂ρ/∂v)_k·r_k²]²` with `r_k = v_noisy(t_k) − Γ(t_k)`.
//!
//! The minimization strategy is configurable via [`FitMode`]; the paper's
//! reported runtime (≈ WLS5's) implies a closed-form weighted solve with at
//! most light refinement, which [`FitMode::Taylor2`] (default) implements as
//! iteratively reweighted least squares. A damped Gauss–Newton variant is
//! provided for the ablation benches.
//!
//! For gates whose input/output transitions do not overlap (multi-stage
//! cells, heavy fanout) the sensitivity is extracted after shifting the
//! output back by `δ = t50(out) − t50(in)` — WLS5's second weakness,
//! addressed by the paper's additional pre/post-processing step. See
//! [`ShiftPolicy`] for the post-shift interpretation.
//!
//! **Degenerate-hang guard.** Eq. 3 is non-convex; when the noisy waveform
//! stalls near a rail for a long time (strong near-DC coupling) its global
//! minimum can be a near-flat line whose mid-crossing lies far outside the
//! waveform's own mid-crossing span — useless as an arrival. Γeff is
//! accepted only if its mid-crossing lies within that span (± half the
//! noiseless slew); otherwise the slope is re-fit from the samples around
//! the **latest** mid-rail crossing and anchored there, the same anchoring
//! convention P1/P2/E4 use. This guard is an engineering robustness
//! addition documented in `EXPERIMENTS.md`.

use crate::context::PropagationContext;
use crate::sensitivity::{effective_sensitivity, ShiftPolicy};
use crate::techniques::{ramp_from_fit, EquivalentWaveform};
use crate::SgdpError;
use nsta_numeric::{GaussNewton, LineFit};
use nsta_waveform::SaturatedRamp;

/// How SGDP's step 3 minimizes Eq. 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FitMode {
    /// First-order only: `ρeff²`-weighted least squares (closed form).
    /// Default.
    #[default]
    Weighted,
    /// Both Taylor terms via iteratively reweighted least squares
    /// (2 refinement passes; runtime ≈ 3 weighted solves).
    Taylor2,
    /// Damped Gauss–Newton on the full nonlinear residual (ablation).
    GaussNewton,
}

/// The SGDP technique.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sgdp {
    /// How `Γeff` is referenced after a non-overlap pre-shift.
    pub shift_policy: ShiftPolicy,
    /// Minimization strategy for step 3.
    pub fit: FitMode,
}

impl Sgdp {
    /// SGDP with an explicit shift policy.
    pub fn with_policy(shift_policy: ShiftPolicy) -> Self {
        Sgdp {
            shift_policy,
            ..Sgdp::default()
        }
    }

    /// SGDP with an explicit step-3 fit mode.
    pub fn with_fit(fit: FitMode) -> Self {
        Sgdp {
            fit,
            ..Sgdp::default()
        }
    }
}

impl EquivalentWaveform for Sgdp {
    fn name(&self) -> &'static str {
        "SGDP"
    }

    fn equivalent(&self, ctx: &PropagationContext) -> Result<SaturatedRamp, SgdpError> {
        // Steps 1 (+ non-overlap pre-shift) and 2; ρ is cached on the
        // context, mirroring its per-arc nature in a production flow.
        let shifted = ctx.sensitivity()?;
        let eff = effective_sensitivity(&shifted.curve, ctx)?;

        // Normalize for conditioning: times to the unit interval across the
        // noisy critical region, voltages to units of Vdd.
        let vdd = ctx.thresholds().vdd();
        let (t0, t1) = ctx.noisy_critical_region()?;
        let width = t1 - t0;
        if !(width > 0.0) {
            return Err(SgdpError::DegenerateFit("empty noisy critical region"));
        }
        let tau: Vec<f64> = eff.times.iter().map(|&t| (t - t0) / width).collect();
        let u: Vec<f64> = eff.voltages.iter().map(|&v| v / vdd).collect();
        let rho = &eff.rho;
        // ∂ρ/∂v in normalized voltage units.
        let drho: Vec<f64> = eff.drho_dv.iter().map(|&d| d * vdd).collect();
        let rising = ctx.polarity().is_rise();

        // Saturated residual of Eq. 3 (Γeff is a saturated ramp: beyond the
        // rails its value is the rail, not the extrapolated line).
        let residuals = |p: [f64; 2], res: &mut Vec<f64>, jac: &mut Vec<[f64; 2]>| {
            res.clear();
            jac.clear();
            for k in 0..tau.len() {
                let line = p[0] * tau[k] + p[1];
                let saturated = !(0.0..=1.0).contains(&line);
                let r = u[k] - line.clamp(0.0, 1.0);
                let w = rho[k] + drho[k] * r; // d(residual)/d(r)
                res.push(rho[k] * r + 0.5 * drho[k] * r * r);
                if saturated {
                    jac.push([0.0, 0.0]);
                } else {
                    jac.push([-w * tau[k], -w]);
                }
            }
        };

        // First-order closed form: ρeff²-weighted least squares.
        let weighted_fit = |weights: &[f64]| -> Result<[f64; 2], SgdpError> {
            let fit = LineFit::weighted_least_squares(&tau, &u, weights)?;
            Ok([fit.a, fit.b])
        };
        let w0: Vec<f64> = rho.iter().map(|&r| r * r).collect();

        let fitted: Result<[f64; 2], SgdpError> = match self.fit {
            FitMode::Weighted => weighted_fit(&w0),
            FitMode::Taylor2 => {
                // IRLS: effective weight (ρ + ½ρ'·r)² with r from the
                // previous iterate — the exact Eq. 3 objective at its fixed
                // point, at the cost of three closed-form solves.
                let mut p = weighted_fit(&w0)?;
                let mut w = w0.clone();
                for _ in 0..2 {
                    for k in 0..tau.len() {
                        let line = (p[0] * tau[k] + p[1]).clamp(0.0, 1.0);
                        let r = u[k] - line;
                        let wk = rho[k] + 0.5 * drho[k] * r;
                        w[k] = wk * wk;
                    }
                    match weighted_fit(&w) {
                        Ok(next) => p = next,
                        Err(_) => break,
                    }
                }
                Ok(p)
            }
            FitMode::GaussNewton => {
                let gn = GaussNewton::default();
                let seed = weighted_fit(&w0).or_else(|_| {
                    LineFit::least_squares(&tau, &u)
                        .map(|f| [f.a, f.b])
                        .map_err(SgdpError::from)
                })?;
                gn.minimize(seed, residuals)
                    .map(|r| r.params)
                    .map_err(SgdpError::from)
            }
        };

        // Degenerate-hang guard (see module docs): Γeff's mid-crossing must
        // lie within the noisy waveform's mid-crossing span.
        let th = ctx.thresholds();
        let mid_first = ctx.noisy_input().first_crossing(th.mid());
        let mid_last = ctx.noisy_input().last_crossing(th.mid());
        let margin = ctx
            .noiseless_input()
            .slew_first_to_first(th, ctx.polarity())
            .unwrap_or(width)
            / 2.0;
        let arrival_ok = |p: &[f64; 2]| -> bool {
            if p[0] == 0.0 || (rising && p[0] < 0.0) || (!rising && p[0] > 0.0) {
                return false;
            }
            let t_mid = t0 + width * (0.5 - p[1]) / p[0];
            match (mid_first, mid_last) {
                (Some(a), Some(b)) => t_mid >= a - margin && t_mid <= b + margin,
                _ => true,
            }
        };

        let accepted = match fitted {
            Ok(p) if arrival_ok(&p) => p,
            _ => {
                // Anchored fallback: re-fit the slope from samples within
                // one noiseless slew of the latest mid crossing, anchor the
                // line there (the P1/P2/E4 anchoring convention).
                let anchor = mid_last.ok_or(SgdpError::DegenerateFit("no mid-rail crossing"))?;
                let near = 2.0 * margin; // one noiseless slew
                let mut w = w0.clone();
                for k in 0..tau.len() {
                    if (eff.times[k] - anchor).abs() > near {
                        w[k] = 0.0;
                    }
                }
                let slope = match LineFit::weighted_least_squares(&tau, &u, &w) {
                    Ok(fit) if (rising && fit.a > 0.0) || (!rising && fit.a < 0.0) => fit.a,
                    _ => {
                        // Last resort: the noiseless slew.
                        let span = th.high_frac() - th.low_frac();
                        let s = (2.0 * margin).max(width * 1e-3);
                        let mag = span * width / s;
                        if rising {
                            mag
                        } else {
                            -mag
                        }
                    }
                };
                let anchor_tau = (anchor - t0) / width;
                [slope, 0.5 - slope * anchor_tau]
            }
        };

        // De-normalize: v = a·t + b with a = â·Vdd/width.
        let a = accepted[0] * vdd / width;
        let b = (accepted[1] - accepted[0] * t0 / width) * vdd;
        let gamma = ramp_from_fit(a, b, ctx)?;
        Ok(match self.shift_policy {
            ShiftPolicy::InputReferred => gamma,
            ShiftPolicy::PaperLiteral => gamma.shifted(shifted.delta),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::{AnalyticInverterGate, GateModel};
    use crate::techniques::Wls5;
    use nsta_waveform::{Thresholds, Waveform};

    fn th() -> Thresholds {
        Thresholds::cmos(1.2)
    }

    fn clean() -> Waveform {
        SaturatedRamp::with_slew(1.0e-9, 150e-12, th(), true)
            .unwrap()
            .to_waveform(0.0, 3e-9, 1e-12)
            .unwrap()
    }

    fn ctx_with_gate(noisy: Waveform, gate: &dyn GateModel) -> PropagationContext {
        let out = gate.response(&clean()).unwrap();
        PropagationContext::new(clean(), noisy, Some(out), th()).unwrap()
    }

    #[test]
    fn clean_ramp_is_a_fixed_point_in_every_mode() {
        let gate = AnalyticInverterGate::fast(th());
        let ctx = ctx_with_gate(clean(), &gate);
        for fit in [FitMode::Weighted, FitMode::Taylor2, FitMode::GaussNewton] {
            let g = Sgdp::with_fit(fit).equivalent(&ctx).unwrap();
            assert!(
                (g.arrival_mid() - 1.0e-9).abs() < 3e-12,
                "{fit:?}: {:e}",
                g.arrival_mid()
            );
            assert!(
                (g.slew(th()) - 150e-12).abs() < 8e-12,
                "{fit:?}: {:e}",
                g.slew(th())
            );
        }
    }

    #[test]
    fn sgdp_sees_noise_outside_noiseless_region() {
        // The defining improvement over WLS5: a glitch after the noiseless
        // critical region must influence Γeff.
        let gate = AnalyticInverterGate::fast(th());
        let noisy = clean()
            .with_triangular_pulse(1.5e-9, 250e-12, -0.9)
            .unwrap();
        let ctx = ctx_with_gate(noisy, &gate);
        let g_sgdp = Sgdp::default().equivalent(&ctx).unwrap();
        let g_wls = Wls5.equivalent(&ctx).unwrap();
        // WLS5 stays at the clean answer; SGDP moves late.
        assert!((g_wls.arrival_mid() - 1.0e-9).abs() < 5e-12);
        assert!(
            g_sgdp.arrival_mid() > g_wls.arrival_mid() + 20e-12,
            "sgdp {:e} vs wls {:e}",
            g_sgdp.arrival_mid(),
            g_wls.arrival_mid()
        );
    }

    #[test]
    fn sgdp_handles_non_overlapping_gates() {
        // WLS5 refuses; SGDP's pre-shift recovers a sane input-referred ramp.
        let gate = AnalyticInverterGate::slow(th());
        let ctx = ctx_with_gate(clean(), &gate);
        assert!(matches!(
            Wls5.equivalent(&ctx),
            Err(SgdpError::NonOverlapping { .. })
        ));
        let g = Sgdp::default().equivalent(&ctx).unwrap();
        assert!(
            (g.arrival_mid() - 1.0e-9).abs() < 10e-12,
            "input-referred identity: {:e}",
            g.arrival_mid()
        );
        // The literal policy shifts the line by the gate's intrinsic delay.
        let g_lit = Sgdp::with_policy(ShiftPolicy::PaperLiteral)
            .equivalent(&ctx)
            .unwrap();
        assert!(g_lit.arrival_mid() > g.arrival_mid() + 0.5e-9);
    }

    #[test]
    fn time_shift_equivariance() {
        let gate = AnalyticInverterGate::fast(th());
        let noisy = clean()
            .with_triangular_pulse(1.05e-9, 120e-12, -0.4)
            .unwrap();
        let ctx = ctx_with_gate(noisy, &gate);
        let g0 = Sgdp::default().equivalent(&ctx).unwrap();
        let dt = 0.37e-9;
        let g1 = Sgdp::default().equivalent(&ctx.shifted(dt)).unwrap();
        assert!(
            (g1.arrival_mid() - g0.arrival_mid() - dt).abs() < 2e-12,
            "shift equivariance: {:e} vs {:e}",
            g0.arrival_mid(),
            g1.arrival_mid()
        );
        assert!((g1.slew(th()) - g0.slew(th())).abs() < 1e-12);
    }

    #[test]
    fn in_region_glitch_moves_arrival_late() {
        let gate = AnalyticInverterGate::fast(th());
        let noisy = clean()
            .with_triangular_pulse(1.02e-9, 150e-12, -0.5)
            .unwrap();
        let ctx = ctx_with_gate(noisy, &gate);
        let g = Sgdp::default().equivalent(&ctx).unwrap();
        assert!(
            g.arrival_mid() > 1.0e-9,
            "glitch against the edge delays Γeff"
        );
    }

    #[test]
    fn hang_guard_keeps_arrival_inside_crossing_span() {
        // A long stall just below the high threshold after the transition:
        // the raw Eq. 3 optimum is a useless near-flat line; the guard must
        // anchor Γeff near the real crossing.
        let gate = AnalyticInverterGate::fast(th());
        let base = clean();
        // Stall: pull the settled waveform down to 0.95 V for ~1 ns.
        let noisy = base
            .with_trapezoidal_pulse(1.15e-9, 0.1e-9, 0.9e-9, -0.25)
            .unwrap();
        let ctx = ctx_with_gate(noisy.clone(), &gate);
        let g = Sgdp::default().equivalent(&ctx).unwrap();
        let first = noisy.first_crossing(th().mid()).unwrap();
        let last = noisy.last_crossing(th().mid()).unwrap();
        let margin = 100e-12;
        assert!(
            g.arrival_mid() >= first - margin && g.arrival_mid() <= last + margin,
            "arrival {:e} outside [{:e}, {:e}]",
            g.arrival_mid(),
            first,
            last
        );
    }

    #[test]
    fn sampling_budget_is_respected() {
        let gate = AnalyticInverterGate::fast(th());
        let noisy = clean()
            .with_triangular_pulse(1.0e-9, 100e-12, -0.3)
            .unwrap();
        let ctx = ctx_with_gate(noisy, &gate).with_samples(7).unwrap();
        let g = Sgdp::default().equivalent(&ctx).unwrap();
        assert!(g.slew(th()) > 0.0);
    }
}
