//! Delay measurement, exactly as the paper's Table 1 defines it:
//! "the gate delay was calculated as the difference between the 0.5·Vdd
//! crossing points of the input and output waveforms."
//!
//! For noisy waveforms the *latest* mid-rail crossing is used (the
//! worst-case arrival STA must honour).

use crate::SgdpError;
use nsta_waveform::{Thresholds, Waveform};

/// A measured input-to-output gate delay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateDelay {
    /// Latest mid-rail crossing of the input (s).
    pub t_in_mid: f64,
    /// Latest mid-rail crossing of the output (s).
    pub t_out_mid: f64,
}

impl GateDelay {
    /// The propagation delay `t_out − t_in` (s).
    pub fn value(&self) -> f64 {
        self.t_out_mid - self.t_in_mid
    }
}

/// Measures the gate delay between an input and output waveform at the
/// mid-rail threshold (latest crossings).
///
/// # Errors
///
/// [`SgdpError::Waveform`] if either waveform never crosses mid-rail.
pub fn gate_delay(
    input: &Waveform,
    output: &Waveform,
    th: Thresholds,
) -> Result<GateDelay, SgdpError> {
    let t_in_mid = input.last_crossing_or_err(th.mid())?;
    let t_out_mid = output.last_crossing_or_err(th.mid())?;
    Ok(GateDelay {
        t_in_mid,
        t_out_mid,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsta_waveform::SaturatedRamp;

    #[test]
    fn delay_between_two_ramps() {
        let th = Thresholds::cmos(1.2);
        let a = SaturatedRamp::with_slew(1.0e-9, 100e-12, th, true)
            .unwrap()
            .to_waveform(0.0, 3e-9, 1e-12)
            .unwrap();
        let b = SaturatedRamp::with_slew(1.4e-9, 100e-12, th, false)
            .unwrap()
            .to_waveform(0.0, 3e-9, 1e-12)
            .unwrap();
        let d = gate_delay(&a, &b, th).unwrap();
        assert!((d.value() - 0.4e-9).abs() < 2e-12);
        assert!((d.t_in_mid - 1.0e-9).abs() < 1e-12);
    }

    #[test]
    fn uses_latest_crossing_of_noisy_input() {
        let th = Thresholds::cmos(1.2);
        let base = SaturatedRamp::with_slew(1.0e-9, 100e-12, th, true)
            .unwrap()
            .to_waveform(0.0, 3e-9, 1e-12)
            .unwrap();
        let noisy = base.with_triangular_pulse(1.3e-9, 200e-12, -0.9).unwrap();
        let out = SaturatedRamp::with_slew(1.8e-9, 100e-12, th, false)
            .unwrap()
            .to_waveform(0.0, 3e-9, 1e-12)
            .unwrap();
        let d_clean = gate_delay(&base, &out, th).unwrap();
        let d_noisy = gate_delay(&noisy, &out, th).unwrap();
        // The later input reference shrinks the measured delay.
        assert!(d_noisy.value() < d_clean.value());
    }

    #[test]
    fn missing_crossing_is_an_error() {
        let th = Thresholds::cmos(1.2);
        let flat = Waveform::constant(0.0, 0.0, 1e-9).unwrap();
        let ramp = SaturatedRamp::with_slew(0.5e-9, 100e-12, th, true)
            .unwrap()
            .to_waveform(0.0, 1e-9, 1e-12)
            .unwrap();
        assert!(gate_delay(&flat, &ramp, th).is_err());
        assert!(gate_delay(&ramp, &flat, th).is_err());
    }
}
