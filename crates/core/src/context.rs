use crate::gate::GateModel;
use crate::sensitivity::ShiftedSensitivity;
use crate::SgdpError;
use nsta_waveform::{Polarity, SaturatedRamp, Thresholds, Waveform};
use std::cell::OnceCell;

/// Default number of sampling points `P` (the paper's value).
pub const DEFAULT_SAMPLES: usize = 35;

/// Everything a technique needs to reduce a noisy input waveform to an
/// equivalent ramp `Γeff`:
///
/// * the **noisy input** waveform observed at the gate input,
/// * the **noiseless input** — what the transition would look like with all
///   aggressors quiet (conventional STA's view of the signal),
/// * optionally the **noiseless output** — the gate's response to the
///   noiseless input, required by the sensitivity-based methods (WLS5,
///   SGDP),
/// * measurement [`Thresholds`] and the sampling budget `P`.
#[derive(Debug, Clone)]
pub struct PropagationContext {
    noiseless_input: Waveform,
    noisy_input: Waveform,
    noiseless_output: Option<Waveform>,
    thresholds: Thresholds,
    polarity: Polarity,
    samples: usize,
    /// Lazily computed noiseless sensitivity. In a production flow `ρ` is
    /// per-arc characterization data, computed once and reused across every
    /// noise case; the cache reproduces that amortization (and the paper's
    /// runtime claim that SGDP ≈ WLS5 ≈ 1.5× the point methods).
    sensitivity: OnceCell<Result<ShiftedSensitivity, SgdpError>>,
}

impl PropagationContext {
    /// Builds a context from explicit waveforms.
    ///
    /// # Errors
    ///
    /// * [`SgdpError::Waveform`] if the noisy or noiseless input never
    ///   completes a transition at the given thresholds.
    /// * [`SgdpError::InvalidParameter`] if the two inputs transition with
    ///   opposite polarities.
    pub fn new(
        noiseless_input: Waveform,
        noisy_input: Waveform,
        noiseless_output: Option<Waveform>,
        thresholds: Thresholds,
    ) -> Result<Self, SgdpError> {
        let polarity = noiseless_input.polarity(thresholds)?;
        let noisy_pol = noisy_input.polarity(thresholds)?;
        if polarity != noisy_pol {
            return Err(SgdpError::InvalidParameter(
                "noisy and noiseless inputs must transition with the same polarity",
            ));
        }
        // Both must actually cross the slew thresholds.
        noiseless_input.critical_region(thresholds, polarity)?;
        noisy_input.critical_region(thresholds, polarity)?;
        Ok(PropagationContext {
            noiseless_input,
            noisy_input,
            noiseless_output,
            thresholds,
            polarity,
            samples: DEFAULT_SAMPLES,
            sensitivity: OnceCell::new(),
        })
    }

    /// The noiseless sensitivity (`ρ_noiseless` with non-overlap pre-shift
    /// handling), computed on first use and cached.
    ///
    /// # Errors
    ///
    /// [`SgdpError::MissingNoiselessOutput`] when the context carries no
    /// output waveform; propagated extraction failures otherwise.
    pub fn sensitivity(&self) -> Result<&ShiftedSensitivity, SgdpError> {
        self.sensitivity
            .get_or_init(|| crate::sensitivity::compute_noiseless_sensitivity(self))
            .as_ref()
            .map_err(Clone::clone)
    }

    /// Builds a context from a noiseless *ramp* (how conventional STA
    /// carries the clean transition) and the observed noisy waveform,
    /// computing the noiseless output through `gate`.
    ///
    /// # Errors
    ///
    /// Propagates waveform/gate failures as in [`PropagationContext::new`].
    pub fn with_gate(
        noiseless: SaturatedRamp,
        noisy_input: Waveform,
        gate: &dyn GateModel,
        thresholds: Thresholds,
    ) -> Result<Self, SgdpError> {
        let t0 = noisy_input.t_start();
        let t1 = noisy_input.t_end();
        let dt = (noiseless.slew(thresholds) / 50.0).max(1e-13);
        let clean = noiseless.to_waveform(t0, t1, dt)?;
        let out = gate.response(&clean)?;
        PropagationContext::new(clean, noisy_input, Some(out), thresholds)
    }

    /// Overrides the number of sampling points `P` (minimum 5).
    ///
    /// # Errors
    ///
    /// [`SgdpError::InvalidParameter`] if `samples < 5`.
    pub fn with_samples(mut self, samples: usize) -> Result<Self, SgdpError> {
        if samples < 5 {
            return Err(SgdpError::InvalidParameter(
                "need at least 5 sampling points",
            ));
        }
        self.samples = samples;
        Ok(self)
    }

    /// The noiseless input waveform.
    pub fn noiseless_input(&self) -> &Waveform {
        &self.noiseless_input
    }

    /// The noisy input waveform.
    pub fn noisy_input(&self) -> &Waveform {
        &self.noisy_input
    }

    /// The noiseless output waveform, when available.
    pub fn noiseless_output(&self) -> Option<&Waveform> {
        self.noiseless_output.as_ref()
    }

    /// The noiseless output, or the error the sensitivity methods report.
    ///
    /// # Errors
    ///
    /// [`SgdpError::MissingNoiselessOutput`] when absent.
    pub fn noiseless_output_or_err(&self) -> Result<&Waveform, SgdpError> {
        self.noiseless_output
            .as_ref()
            .ok_or(SgdpError::MissingNoiselessOutput)
    }

    /// Measurement thresholds.
    pub fn thresholds(&self) -> Thresholds {
        self.thresholds
    }

    /// Polarity of the input transition.
    pub fn polarity(&self) -> Polarity {
        self.polarity
    }

    /// Sampling budget `P`.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// The noisy critical region `[t_first(start level), t_last(end level)]`.
    ///
    /// # Errors
    ///
    /// Propagates [`SgdpError::Waveform`] (cannot happen after successful
    /// construction, but the signature stays honest).
    pub fn noisy_critical_region(&self) -> Result<(f64, f64), SgdpError> {
        Ok(self
            .noisy_input
            .critical_region(self.thresholds, self.polarity)?)
    }

    /// The noiseless critical region.
    ///
    /// # Errors
    ///
    /// Propagates [`SgdpError::Waveform`].
    pub fn noiseless_critical_region(&self) -> Result<(f64, f64), SgdpError> {
        Ok(self
            .noiseless_input
            .critical_region(self.thresholds, self.polarity)?)
    }

    /// `P` uniformly spaced sample times across `[t0, t1]` (inclusive).
    pub fn sample_times(&self, t0: f64, t1: f64) -> Vec<f64> {
        let p = self.samples;
        (0..p)
            .map(|k| t0 + (t1 - t0) * k as f64 / (p - 1) as f64)
            .collect()
    }

    /// Returns a copy whose inputs (and output, if any) are shifted by `dt`
    /// — used by equivariance tests.
    #[must_use]
    pub fn shifted(&self, dt: f64) -> PropagationContext {
        PropagationContext {
            noiseless_input: self.noiseless_input.shifted(dt),
            noisy_input: self.noisy_input.shifted(dt),
            noiseless_output: self.noiseless_output.as_ref().map(|w| w.shifted(dt)),
            thresholds: self.thresholds,
            polarity: self.polarity,
            samples: self.samples,
            sensitivity: OnceCell::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::AnalyticInverterGate;

    fn th() -> Thresholds {
        Thresholds::cmos(1.2)
    }

    fn clean_ramp() -> SaturatedRamp {
        SaturatedRamp::with_slew(1.0e-9, 150e-12, th(), true).unwrap()
    }

    #[test]
    fn construction_checks_polarity_agreement() {
        let clean = clean_ramp().to_waveform(0.0, 3e-9, 1e-12).unwrap();
        let falling = clean.map_values(|v| 1.2 - v).unwrap();
        assert!(matches!(
            PropagationContext::new(clean.clone(), falling, None, th()),
            Err(SgdpError::InvalidParameter(_))
        ));
        let ok = PropagationContext::new(clean.clone(), clean.clone(), None, th()).unwrap();
        assert_eq!(ok.polarity(), Polarity::Rise);
        assert_eq!(ok.samples(), DEFAULT_SAMPLES);
    }

    #[test]
    fn with_gate_fills_noiseless_output() {
        let gate = AnalyticInverterGate::fast(th());
        let noisy = clean_ramp()
            .to_waveform(0.0, 3e-9, 1e-12)
            .unwrap()
            .with_triangular_pulse(1.0e-9, 100e-12, -0.2)
            .unwrap();
        let ctx = PropagationContext::with_gate(clean_ramp(), noisy, &gate, th()).unwrap();
        let out = ctx.noiseless_output_or_err().unwrap();
        assert_eq!(out.polarity(th()).unwrap(), Polarity::Fall);
    }

    #[test]
    fn sample_times_cover_region_inclusively() {
        let clean = clean_ramp().to_waveform(0.0, 3e-9, 1e-12).unwrap();
        let ctx = PropagationContext::new(clean.clone(), clean, None, th())
            .unwrap()
            .with_samples(11)
            .unwrap();
        let ts = ctx.sample_times(1.0, 2.0);
        assert_eq!(ts.len(), 11);
        assert_eq!(ts[0], 1.0);
        assert_eq!(*ts.last().unwrap(), 2.0);
        assert!(ctx.clone().with_samples(2).is_err());
    }

    #[test]
    fn missing_output_is_a_typed_error() {
        let clean = clean_ramp().to_waveform(0.0, 3e-9, 1e-12).unwrap();
        let ctx = PropagationContext::new(clean.clone(), clean, None, th()).unwrap();
        assert!(matches!(
            ctx.noiseless_output_or_err(),
            Err(SgdpError::MissingNoiselessOutput)
        ));
    }

    #[test]
    fn shifted_context_shifts_regions() {
        let clean = clean_ramp().to_waveform(0.0, 3e-9, 1e-12).unwrap();
        let ctx = PropagationContext::new(clean.clone(), clean, None, th()).unwrap();
        let (a, b) = ctx.noisy_critical_region().unwrap();
        let sh = ctx.shifted(0.5e-9);
        let (a2, b2) = sh.noisy_critical_region().unwrap();
        assert!((a2 - a - 0.5e-9).abs() < 1e-15);
        assert!((b2 - b - 0.5e-9).abs() < 1e-15);
    }
}
