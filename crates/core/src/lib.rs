//! # sgdp — sensitivity-based gate delay propagation
//!
//! Implementation of *"Modeling and Propagation of Noisy Waveforms in
//! Static Timing Analysis"* (Nazarian, Pedram, Tuncer, Lin, Ajami —
//! DATE 2005): the **SGDP** technique and the five baselines it is compared
//! against (P1, P2, LSF3, E4, WLS5).
//!
//! Conventional STA reduces every transition to an arrival time plus a slew
//! — a [`SaturatedRamp`](nsta_waveform::SaturatedRamp). When crosstalk
//! distorts the waveform, *how* that reduction is performed dominates the
//! timing accuracy. Each [`MethodKind`] implements one published reduction;
//! [`eval::evaluate_case`] quantifies their gate-delay error against a
//! golden transistor-level simulation ([`gate::SpiceReceiverGate`]).
//!
//! ```
//! use sgdp::{MethodKind, PropagationContext};
//! use sgdp::gate::{AnalyticInverterGate, GateModel};
//! use nsta_waveform::{SaturatedRamp, Thresholds};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let th = Thresholds::cmos(1.2);
//! let gate = AnalyticInverterGate::fast(th);
//! // The clean 150 ps transition conventional STA would propagate...
//! let clean = SaturatedRamp::with_slew(1.0e-9, 150e-12, th, true)?;
//! // ...observed with a deep crosstalk glitch on the real silicon:
//! let noisy = clean
//!     .to_waveform(0.0, 3.0e-9, 1e-12)?
//!     .with_triangular_pulse(1.15e-9, 200e-12, -0.8)?;
//! let ctx = PropagationContext::with_gate(clean, noisy, &gate, th)?;
//! let gamma = MethodKind::Sgdp.equivalent(&ctx)?;
//! // The equivalent ramp arrives later than the clean one: the glitch
//! // pushed the transition out.
//! assert!(gamma.arrival_mid() > 1.0e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod context;
pub mod delay;
mod error;
pub mod eval;
pub mod gate;
pub mod sensitivity;
pub mod techniques;

pub use context::{PropagationContext, DEFAULT_SAMPLES};
pub use error::SgdpError;
pub use sensitivity::ShiftPolicy;
pub use techniques::FitMode;
pub use techniques::{EquivalentWaveform, MethodKind};
