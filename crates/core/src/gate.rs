//! Gate response models.
//!
//! Equivalent-waveform techniques need two things from the driven gate: the
//! *noiseless output waveform* (for the sensitivity `ρ`), and — when a
//! technique's ramp is evaluated against the golden reference — the output
//! produced by an arbitrary input. [`GateModel`] abstracts both; three
//! fidelity levels are provided across the workspace:
//!
//! * [`SpiceReceiverGate`] — transistor-level simulation of the paper's
//!   receiver stage (golden),
//! * `TableGate` (in this crate, once a characterized library is loaded) —
//!   NLDM delay/slew lookup, the "current level of gate characterization",
//! * [`AnalyticInverterGate`] — a closed-form inverter response used by
//!   unit tests and examples where simulation cost is unwarranted.

use crate::SgdpError;
use nsta_spice::fig1::{self, Fig1Config};
use nsta_waveform::{SaturatedRamp, Thresholds, Waveform};

/// A model that maps an input waveform to the gate's output waveform.
pub trait GateModel {
    /// Computes the gate output for `input`.
    ///
    /// # Errors
    ///
    /// Implementations report their own failure modes (simulation
    /// divergence, table extrapolation, degenerate inputs).
    fn response(&self, input: &Waveform) -> Result<Waveform, SgdpError>;

    /// Supply voltage of the gate (V).
    fn vdd(&self) -> f64;
}

/// Golden gate model: the paper's receiver stage (4× inverter plus its full
/// downstream load network) simulated at transistor level.
#[derive(Debug, Clone)]
pub struct SpiceReceiverGate {
    cfg: Fig1Config,
}

impl SpiceReceiverGate {
    /// Wraps the receiver of the given testbench configuration.
    pub fn new(cfg: Fig1Config) -> Self {
        SpiceReceiverGate { cfg }
    }

    /// The underlying testbench configuration.
    pub fn config(&self) -> &Fig1Config {
        &self.cfg
    }
}

impl GateModel for SpiceReceiverGate {
    fn response(&self, input: &Waveform) -> Result<Waveform, SgdpError> {
        Ok(fig1::run_receiver(&self.cfg, input)?)
    }

    fn vdd(&self) -> f64 {
        self.cfg.proc.vdd
    }
}

/// Closed-form inverting gate for tests and lightweight examples.
///
/// The response is a saturated ramp whose mid-crossing trails the input's
/// *last* mid-crossing by `delay0 + delay_slew_factor · slew_in`, with output
/// slew `slew0 + slew_slew_factor · slew_in` — the shape of a first-order
/// NLDM model. Deliberately simple: it gives techniques a smooth,
/// deterministic gate with tunable intrinsic delay (including large delays
/// that produce non-overlapping transitions).
#[derive(Debug, Clone, Copy)]
pub struct AnalyticInverterGate {
    /// Measurement thresholds (also fixes Vdd).
    pub thresholds: Thresholds,
    /// Intrinsic delay at zero input slew (s).
    pub delay0: f64,
    /// Delay added per second of input slew (dimensionless).
    pub delay_slew_factor: f64,
    /// Output slew at zero input slew (s).
    pub slew0: f64,
    /// Output slew added per second of input slew (dimensionless).
    pub slew_slew_factor: f64,
}

impl AnalyticInverterGate {
    /// A fast inverter whose output overlaps a typical input transition.
    pub fn fast(thresholds: Thresholds) -> Self {
        AnalyticInverterGate {
            thresholds,
            delay0: 30e-12,
            delay_slew_factor: 0.25,
            slew0: 60e-12,
            slew_slew_factor: 0.5,
        }
    }

    /// A slow multi-stage-like gate whose output does *not* overlap the
    /// input transition — the WLS5 failure case.
    pub fn slow(thresholds: Thresholds) -> Self {
        AnalyticInverterGate {
            thresholds,
            delay0: 800e-12,
            delay_slew_factor: 0.25,
            slew0: 80e-12,
            slew_slew_factor: 0.3,
        }
    }
}

impl GateModel for AnalyticInverterGate {
    fn response(&self, input: &Waveform) -> Result<Waveform, SgdpError> {
        let th = self.thresholds;
        let in_pol = input.polarity(th)?;
        let slew_in = input.slew_first_to_last(th, in_pol)?;
        let t50_in = input.last_crossing_or_err(th.mid())?;
        let t50_out = t50_in + self.delay0 + self.delay_slew_factor * slew_in;
        let slew_out = self.slew0 + self.slew_slew_factor * slew_in;
        let out = SaturatedRamp::with_slew(t50_out, slew_out, th, !in_pol.is_rise())?;
        let t_end = input.t_end().max(t50_out + 2.0 * slew_out);
        let dt = (slew_out / 40.0).max(1e-13);
        Ok(out.to_waveform(input.t_start(), t_end, dt)?)
    }

    fn vdd(&self) -> f64 {
        self.thresholds.vdd()
    }
}

/// NLDM table-driven gate model — "the current level of gate
/// characterization in conventional ASIC cell libraries" the paper targets.
///
/// The response is a saturated ramp placed by the cell's delay table and
/// shaped by its transition table, looked up at the input's measured slew
/// and the configured output load. Only single-arc (inverter-like) cells
/// are supported; the arc's unateness decides the output polarity.
#[derive(Debug, Clone)]
pub struct TableGate {
    cell: nsta_liberty::Cell,
    load: f64,
    thresholds: Thresholds,
}

impl TableGate {
    /// Wraps a characterized cell driving `load` farads.
    ///
    /// # Errors
    ///
    /// [`SgdpError::InvalidParameter`] if the cell has no output arc or the
    /// load is not positive and finite.
    pub fn new(
        cell: &nsta_liberty::Cell,
        load: f64,
        thresholds: Thresholds,
    ) -> Result<Self, SgdpError> {
        if !(load.is_finite() && load > 0.0) {
            return Err(SgdpError::InvalidParameter(
                "load must be positive and finite",
            ));
        }
        let has_arc = cell.output().is_some_and(|p| !p.timing.is_empty());
        if !has_arc {
            return Err(SgdpError::InvalidParameter(
                "cell has no characterized output arc",
            ));
        }
        Ok(TableGate {
            cell: cell.clone(),
            load,
            thresholds,
        })
    }

    /// The configured output load (farads).
    pub fn load(&self) -> f64 {
        self.load
    }
}

impl GateModel for TableGate {
    fn response(&self, input: &Waveform) -> Result<Waveform, SgdpError> {
        let th = self.thresholds;
        let in_pol = input.polarity(th)?;
        let slew_in = input.slew_first_to_last(th, in_pol)?;
        let t50_in = input.last_crossing_or_err(th.mid())?;
        let arc = &self
            .cell
            .output()
            .ok_or(SgdpError::InvalidParameter("cell has no output pin"))?
            .timing[0];
        let out_rises = match arc.sense {
            nsta_liberty::TimingSense::NegativeUnate => !in_pol.is_rise(),
            nsta_liberty::TimingSense::PositiveUnate => in_pol.is_rise(),
        };
        let (delay_table, slew_table) = if out_rises {
            (&arc.cell_rise, &arc.rise_transition)
        } else {
            (&arc.cell_fall, &arc.fall_transition)
        };
        let delay = delay_table
            .lookup(slew_in, self.load)
            .map_err(|_| SgdpError::InvalidParameter("nldm delay lookup failed"))?;
        let slew_out = slew_table
            .lookup(slew_in, self.load)
            .map_err(|_| SgdpError::InvalidParameter("nldm slew lookup failed"))?
            .max(1e-12);
        let out = SaturatedRamp::with_slew(t50_in + delay, slew_out, th, out_rises)?;
        let t_end = input.t_end().max(t50_in + delay + 2.0 * slew_out);
        let dt = (slew_out / 40.0).max(1e-13);
        Ok(out.to_waveform(
            input.t_start().min(t50_in + delay - 2.0 * slew_out),
            t_end,
            dt,
        )?)
    }

    fn vdd(&self) -> f64 {
        self.thresholds.vdd()
    }
}

/// Checks whether input and output transitions overlap: the output must
/// start moving (leave its start level) before the input finishes its
/// critical region. Returns the mid-crossing gap `δ = t50(out) − t50(in)`.
pub(crate) fn transition_gap(
    input: &Waveform,
    output: &Waveform,
    th: Thresholds,
) -> Result<f64, SgdpError> {
    let t50_in = input.last_crossing_or_err(th.mid())?;
    let t50_out = output.last_crossing_or_err(th.mid())?;
    Ok(t50_out - t50_in)
}

/// `true` when the output's critical region overlaps the input's.
pub(crate) fn transitions_overlap(
    input: &Waveform,
    output: &Waveform,
    th: Thresholds,
) -> Result<bool, SgdpError> {
    let in_pol = input.polarity(th)?;
    let out_pol = output.polarity(th)?;
    let (in_a, in_b) = input.critical_region(th, in_pol)?;
    let (out_a, out_b) = output.critical_region(th, out_pol)?;
    Ok(out_a < in_b && in_a < out_b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsta_waveform::Polarity;

    fn ramp_in(th: Thresholds) -> Waveform {
        SaturatedRamp::with_slew(1.0e-9, 150e-12, th, true)
            .unwrap()
            .to_waveform(0.0, 3e-9, 1e-12)
            .unwrap()
    }

    #[test]
    fn analytic_gate_inverts_and_delays() {
        let th = Thresholds::cmos(1.2);
        let gate = AnalyticInverterGate::fast(th);
        let inp = ramp_in(th);
        let out = gate.response(&inp).unwrap();
        assert_eq!(out.polarity(th).unwrap(), Polarity::Fall);
        let gap = transition_gap(&inp, &out, th).unwrap();
        assert!(gap > 0.0, "output must trail input");
        assert!(transitions_overlap(&inp, &out, th).unwrap());
        assert_eq!(gate.vdd(), 1.2);
    }

    #[test]
    fn slow_gate_does_not_overlap() {
        let th = Thresholds::cmos(1.2);
        let gate = AnalyticInverterGate::slow(th);
        let inp = ramp_in(th);
        let out = gate.response(&inp).unwrap();
        assert!(!transitions_overlap(&inp, &out, th).unwrap());
        assert!(transition_gap(&inp, &out, th).unwrap() > 500e-12);
    }

    #[test]
    fn table_gate_places_output_by_lookup() {
        use nsta_liberty::{Cell, Direction, NldmTable, Pin, TimingArc, TimingSense};
        let th = Thresholds::cmos(1.2);
        let table = |scale: f64| {
            NldmTable::new(
                vec![50e-12, 400e-12],
                vec![1e-15, 50e-15],
                vec![scale, 2.0 * scale, 1.5 * scale, 3.0 * scale],
            )
            .unwrap()
        };
        let cell = Cell {
            name: "INVX1".into(),
            area: 1.0,
            pins: vec![Pin {
                name: "Y".into(),
                direction: Direction::Output,
                capacitance: 0.0,
                function: Some("!A".into()),
                timing: vec![TimingArc {
                    related_pin: "A".into(),
                    sense: TimingSense::NegativeUnate,
                    cell_rise: table(40e-12),
                    rise_transition: table(60e-12),
                    cell_fall: table(35e-12),
                    fall_transition: table(55e-12),
                }],
            }],
        };
        let gate = TableGate::new(&cell, 1e-15, th).unwrap();
        let inp = ramp_in(th); // rising, slew 150 ps, t50 = 1 ns
        let out = gate.response(&inp).unwrap();
        assert_eq!(out.polarity(th).unwrap(), Polarity::Fall);
        // Expected delay: cell_fall at (150 ps, 1 fF) interpolates the slew
        // axis between 35 ps (at 50 ps) and 52.5 ps (at 400 ps).
        let expect = 35e-12 + (150.0 - 50.0) / 350.0 * 17.5e-12;
        let got = out.last_crossing(th.mid()).unwrap() - 1.0e-9;
        assert!((got - expect).abs() < 2e-12, "delay {got:e} vs {expect:e}");
        // Invalid configurations rejected.
        assert!(TableGate::new(&cell, -1.0, th).is_err());
        let mut no_arc = cell.clone();
        no_arc.pins[0].timing.clear();
        assert!(TableGate::new(&no_arc, 1e-15, th).is_err());
    }

    #[test]
    fn analytic_gate_delay_scales_with_slew() {
        let th = Thresholds::cmos(1.2);
        let gate = AnalyticInverterGate::fast(th);
        let fast_in = SaturatedRamp::with_slew(1.0e-9, 80e-12, th, true)
            .unwrap()
            .to_waveform(0.0, 3e-9, 1e-12)
            .unwrap();
        let slow_in = SaturatedRamp::with_slew(1.0e-9, 400e-12, th, true)
            .unwrap()
            .to_waveform(0.0, 3e-9, 1e-12)
            .unwrap();
        let g_fast = transition_gap(&fast_in, &gate.response(&fast_in).unwrap(), th).unwrap();
        let g_slow = transition_gap(&slow_in, &gate.response(&slow_in).unwrap(), th).unwrap();
        assert!(g_slow > g_fast);
    }
}
