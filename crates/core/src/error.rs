use std::fmt;

/// Error type for equivalent-waveform computation.
#[derive(Debug, Clone, PartialEq)]
pub enum SgdpError {
    /// The noisy/noiseless waveform pair was unusable (no transition, no
    /// threshold crossing…).
    Waveform(nsta_waveform::WaveformError),
    /// A numeric kernel failed (degenerate fit, no convergence…).
    Numeric(nsta_numeric::NumericError),
    /// The golden simulator failed while producing a gate response.
    Spice(nsta_spice::SpiceError),
    /// The noiseless input and output transitions do not overlap, so the
    /// output-to-input sensitivity is undefined. WLS5 cannot proceed
    /// (the paper's stated limitation); SGDP recovers via its pre/post
    /// time-shift step.
    NonOverlapping {
        /// Gap between the output and input mid-crossings (s).
        gap: f64,
    },
    /// A technique required the noiseless output waveform but the context
    /// carries none.
    MissingNoiselessOutput,
    /// A parameter was outside its documented domain.
    InvalidParameter(&'static str),
    /// The fit produced a slope inconsistent with the transition (zero or
    /// wrong sign) — the input carried no usable transition energy.
    DegenerateFit(&'static str),
}

impl fmt::Display for SgdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SgdpError::Waveform(e) => write!(f, "waveform failure: {e}"),
            SgdpError::Numeric(e) => write!(f, "numeric failure: {e}"),
            SgdpError::Spice(e) => write!(f, "simulator failure: {e}"),
            SgdpError::NonOverlapping { gap } => {
                write!(
                    f,
                    "input and output transitions do not overlap (gap {gap:.3e}s)"
                )
            }
            SgdpError::MissingNoiselessOutput => {
                write!(f, "technique requires the noiseless output waveform")
            }
            SgdpError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            SgdpError::DegenerateFit(what) => write!(f, "degenerate fit: {what}"),
        }
    }
}

impl std::error::Error for SgdpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SgdpError::Waveform(e) => Some(e),
            SgdpError::Numeric(e) => Some(e),
            SgdpError::Spice(e) => Some(e),
            _ => None,
        }
    }
}

impl From<nsta_waveform::WaveformError> for SgdpError {
    fn from(e: nsta_waveform::WaveformError) -> Self {
        SgdpError::Waveform(e)
    }
}

impl From<nsta_numeric::NumericError> for SgdpError {
    fn from(e: nsta_numeric::NumericError) -> Self {
        SgdpError::Numeric(e)
    }
}

impl From<nsta_spice::SpiceError> for SgdpError {
    fn from(e: nsta_spice::SpiceError) -> Self {
        SgdpError::Spice(e)
    }
}
