use crate::NumericError;

/// Dot product with four-way accumulation.
///
/// A strictly left-to-right `f64` sum is one long dependency chain; four
/// independent partial sums let superscalar cores overlap the
/// multiply-adds, which is worth ~4× on the transient hot loop. The
/// summation order is fixed by the input alone — never by thread count or
/// timing — so results stay deterministic.
///
/// Trailing elements beyond the common length of `a` and `b` are ignored.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut chunks_a = a.chunks_exact(4);
    let mut chunks_b = b.chunks_exact(4);
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for (ca, cb) in (&mut chunks_a).zip(&mut chunks_b) {
        s0 += ca[0] * cb[0];
        s1 += ca[1] * cb[1];
        s2 += ca[2] * cb[2];
        s3 += ca[3] * cb[3];
    }
    let mut rest = 0.0;
    for (x, y) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
        rest += x * y;
    }
    (s0 + s2) + (s1 + s3) + rest
}

/// A dense, row-major, square-or-rectangular matrix of `f64`.
///
/// The circuit engines assemble modified-nodal-analysis systems of at most a
/// few hundred unknowns, for which a dense representation is both simpler and
/// faster than sparse bookkeeping.
///
/// ```
/// use nsta_numeric::DenseMatrix;
/// # fn main() -> Result<(), nsta_numeric::NumericError> {
/// let mut m = DenseMatrix::zeros(2, 2);
/// m.add(0, 0, 1.0);
/// m.add(1, 1, 2.0);
/// assert_eq!(m.get(1, 1), 2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::ShapeMismatch`] if the rows have differing
    /// lengths, and [`NumericError::InvalidGrid`] if `rows` is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, NumericError> {
        let first = rows
            .first()
            .ok_or(NumericError::InvalidGrid("empty row set"))?;
        let cols = first.len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            if row.len() != cols {
                return Err(NumericError::ShapeMismatch {
                    got: row.len(),
                    expected: cols,
                });
            }
            data.extend_from_slice(row);
        }
        Ok(DenseMatrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reads element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Writes element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Adds `v` to element `(r, c)` — the natural operation for MNA stamps.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of bounds.
    #[inline]
    pub fn add(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] += v;
    }

    /// Resets every entry to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Overwrites this matrix with `other`'s contents, keeping the
    /// allocation — the Newton loops reset their Jacobian to a precomputed
    /// base this way instead of re-deriving it element by element.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::ShapeMismatch`] on dimension mismatch.
    pub fn copy_from(&mut self, other: &DenseMatrix) -> Result<(), NumericError> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(NumericError::ShapeMismatch {
                got: other.rows * other.cols,
                expected: self.rows * self.cols,
            });
        }
        self.data.copy_from_slice(&other.data);
        Ok(())
    }

    /// Contiguous row `r` as a slice — lets hot loops dot rows against a
    /// vector without per-element bounds checks.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::ShapeMismatch`] if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>, NumericError> {
        if x.len() != self.cols {
            return Err(NumericError::ShapeMismatch {
                got: x.len(),
                expected: self.cols,
            });
        }
        let mut y = vec![0.0; self.rows];
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            y[r] = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        Ok(y)
    }

    /// Returns `self + scale * other`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::ShapeMismatch`] on dimension mismatch.
    pub fn add_scaled(&self, other: &DenseMatrix, scale: f64) -> Result<DenseMatrix, NumericError> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(NumericError::ShapeMismatch {
                got: other.rows * other.cols,
                expected: self.rows * self.cols,
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + scale * b)
            .collect::<Vec<_>>();
        Ok(DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Maximum absolute entry (∞-norm of the flattened matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, v| m.max(v.abs()))
    }
}

/// LU factorization with partial pivoting of a square [`DenseMatrix`].
///
/// Factor once, then solve against many right-hand sides — the transient
/// engines reuse a factorization for every timestep at a fixed step size.
///
/// ```
/// use nsta_numeric::{DenseMatrix, LuFactors};
/// # fn main() -> Result<(), nsta_numeric::NumericError> {
/// let a = DenseMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]])?;
/// let lu = LuFactors::factor(&a)?;
/// let x = lu.solve(&[3.0, 5.0])?;
/// let back = a.mul_vec(&x)?;
/// assert!((back[0] - 3.0).abs() < 1e-12 && (back[1] - 5.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LuFactors {
    n: usize,
    /// Combined L (unit diagonal, below) and U (diagonal and above).
    lu: Vec<f64>,
    /// Row permutation applied during elimination.
    perm: Vec<usize>,
    /// Reciprocals of U's diagonal: back substitution multiplies instead
    /// of dividing, which matters in per-timestep solve loops.
    inv_diag: Vec<f64>,
}

/// Pivots smaller than this are treated as structural singularities.
const PIVOT_TOL: f64 = 1e-300;

impl LuFactors {
    /// Factors a square matrix.
    ///
    /// # Errors
    ///
    /// * [`NumericError::ShapeMismatch`] if the matrix is not square.
    /// * [`NumericError::SingularMatrix`] if no usable pivot exists.
    /// * [`NumericError::NonFinite`] if the matrix contains NaN/inf.
    pub fn factor(a: &DenseMatrix) -> Result<Self, NumericError> {
        if a.rows() != a.cols() {
            return Err(NumericError::ShapeMismatch {
                got: a.cols(),
                expected: a.rows(),
            });
        }
        let n = a.rows();
        let mut lu = a.data.clone();
        if lu.iter().any(|v| !v.is_finite()) {
            return Err(NumericError::NonFinite("matrix entries"));
        }
        let mut perm: Vec<usize> = (0..n).collect();

        for k in 0..n {
            // Partial pivoting: choose the largest magnitude in column k.
            let mut p = k;
            let mut best = lu[k * n + k].abs();
            for r in (k + 1)..n {
                let cand = lu[r * n + k].abs();
                if cand > best {
                    best = cand;
                    p = r;
                }
            }
            if best < PIVOT_TOL {
                return Err(NumericError::SingularMatrix {
                    column: k,
                    pivot: best,
                });
            }
            if p != k {
                perm.swap(p, k);
                for c in 0..n {
                    lu.swap(p * n + c, k * n + c);
                }
            }
            let pivot = lu[k * n + k];
            for r in (k + 1)..n {
                let factor = lu[r * n + k] / pivot;
                lu[r * n + k] = factor;
                if factor != 0.0 {
                    for c in (k + 1)..n {
                        lu[r * n + c] -= factor * lu[k * n + c];
                    }
                }
            }
        }
        let inv_diag: Vec<f64> = (0..n).map(|i| 1.0 / lu[i * n + i]).collect();
        Ok(LuFactors {
            n,
            lu,
            perm,
            inv_diag,
        })
    }

    /// Dimension of the factored system.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// The row permutation applied during factorization: row `i` of the
    /// factored system corresponds to row `perm()[i]` of the original
    /// matrix. Callers that assemble right-hand sides row by row can write
    /// them directly in permuted order and use
    /// [`LuFactors::solve_prepermuted_in_place`], skipping the permutation
    /// copy of [`LuFactors::solve`].
    pub fn perm(&self) -> &[usize] {
        &self.perm
    }

    /// Solves `A·x = b` in place, where `x` already holds `b` *in permuted
    /// order* (`x[i] = b[perm()[i]]`).
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::ShapeMismatch`] if `x.len() != self.dim()`.
    pub fn solve_prepermuted_in_place(&self, x: &mut [f64]) -> Result<(), NumericError> {
        if x.len() != self.n {
            return Err(NumericError::ShapeMismatch {
                got: x.len(),
                expected: self.n,
            });
        }
        self.solve_permuted_in_place(x);
        Ok(())
    }

    /// Solves `A·x = b` for `x`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::ShapeMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, NumericError> {
        if b.len() != self.n {
            return Err(NumericError::ShapeMismatch {
                got: b.len(),
                expected: self.n,
            });
        }
        let mut x = vec![0.0; self.n];
        for i in 0..self.n {
            x[i] = b[self.perm[i]];
        }
        self.solve_permuted_in_place(&mut x);
        Ok(x)
    }

    /// Solves `A·x = b` writing the solution back into `b`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::ShapeMismatch`] if `b.len() != self.dim()`.
    pub fn solve_in_place(&self, b: &mut [f64]) -> Result<(), NumericError> {
        let x = self.solve(b)?;
        b.copy_from_slice(&x);
        Ok(())
    }

    /// Solves `A·x = b` into a caller-provided buffer without allocating —
    /// the transient steppers call this once per timestep.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::ShapeMismatch`] if `b.len()` or `x.len()`
    /// differs from `self.dim()`.
    pub fn solve_into(&self, b: &[f64], x: &mut [f64]) -> Result<(), NumericError> {
        if b.len() != self.n || x.len() != self.n {
            return Err(NumericError::ShapeMismatch {
                got: b.len().min(x.len()),
                expected: self.n,
            });
        }
        for i in 0..self.n {
            x[i] = b[self.perm[i]];
        }
        self.solve_permuted_in_place(x);
        Ok(())
    }

    fn solve_permuted_in_place(&self, x: &mut [f64]) {
        let n = self.n;
        // Forward substitution with unit-diagonal L.
        for i in 1..n {
            let row = &self.lu[i * n..i * n + i];
            x[i] -= dot(row, &x[..i]);
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            let row = &self.lu[i * n + i + 1..(i + 1) * n];
            let sum = x[i] - dot(row, &x[i + 1..]);
            x[i] = sum * self.inv_diag[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve_is_identity() {
        let a = DenseMatrix::identity(4);
        let lu = LuFactors::factor(&a).unwrap();
        let b = [1.0, -2.0, 3.5, 0.0];
        let x = lu.solve(&b).unwrap();
        assert_eq!(x, b.to_vec());
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // Leading zero forces a row swap.
        let a = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let lu = LuFactors::factor(&a).unwrap();
        let x = lu.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        match LuFactors::factor(&a) {
            Err(NumericError::SingularMatrix { column, .. }) => assert_eq!(column, 1),
            other => panic!("expected singular matrix, got {other:?}"),
        }
    }

    #[test]
    fn non_square_rejected() {
        let a = DenseMatrix::zeros(2, 3);
        assert!(matches!(
            LuFactors::factor(&a),
            Err(NumericError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn nan_rejected() {
        let mut a = DenseMatrix::identity(2);
        a.set(0, 1, f64::NAN);
        assert!(matches!(
            LuFactors::factor(&a),
            Err(NumericError::NonFinite(_))
        ));
    }

    #[test]
    fn random_systems_round_trip() {
        // Deterministic pseudo-random fill; checks A·x == b to tight tolerance.
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for n in [1usize, 2, 5, 17, 40] {
            let mut a = DenseMatrix::zeros(n, n);
            for r in 0..n {
                for c in 0..n {
                    a.set(r, c, next());
                }
                // Diagonal dominance keeps the condition number tame.
                a.add(r, r, 2.0 * n as f64);
            }
            let b: Vec<f64> = (0..n).map(|_| next()).collect();
            let lu = LuFactors::factor(&a).unwrap();
            let x = lu.solve(&b).unwrap();
            let back = a.mul_vec(&x).unwrap();
            for (bi, yi) in b.iter().zip(back) {
                assert!((bi - yi).abs() < 1e-9, "n={n} residual too large");
            }
        }
    }

    #[test]
    fn dot_matches_naive_sum() {
        for n in 0..13 {
            let a: Vec<f64> = (0..n).map(|i| 1.0 + i as f64 * 0.5).collect();
            let b: Vec<f64> = (0..n).map(|i| 2.0 - i as f64 * 0.25).collect();
            let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!(
                (dot(&a, &b) - naive).abs() < 1e-12 * naive.abs().max(1.0),
                "n={n}"
            );
        }
        // Length mismatch uses the common prefix.
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[10.0]), 10.0);
    }

    #[test]
    fn solve_into_matches_solve() {
        let a = DenseMatrix::from_rows(&[&[0.0, 2.0, 1.0], &[3.0, 0.5, -1.0], &[1.0, 1.0, 4.0]])
            .unwrap();
        let lu = LuFactors::factor(&a).unwrap();
        let b = [1.0, -2.0, 0.5];
        let via_solve = lu.solve(&b).unwrap();
        let mut x = [0.0; 3];
        lu.solve_into(&b, &mut x).unwrap();
        assert_eq!(x.to_vec(), via_solve);
        let mut short = [0.0; 2];
        assert!(lu.solve_into(&b, &mut short).is_err());
        assert!(lu.solve_into(&b[..2], &mut x).is_err());
    }

    #[test]
    fn row_returns_contiguous_slice() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(a.row(0), &[1.0, 2.0]);
        assert_eq!(a.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn add_scaled_and_mul_vec() {
        let a = DenseMatrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]).unwrap();
        let b = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let c = a.add_scaled(&b, 2.0).unwrap();
        assert_eq!(c.mul_vec(&[1.0, 1.0]).unwrap(), vec![3.0, 3.0]);
        assert_eq!(c.max_abs(), 2.0);
    }
}
