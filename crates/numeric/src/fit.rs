//! Line fitting and a small damped Gauss–Newton loop.
//!
//! Every equivalent-waveform technique in the paper reduces to choosing the
//! two coefficients `(a, b)` of a line `v(t) = a·t + b`. LSF3 and WLS5 have
//! closed forms captured by [`LineFit`]; SGDP's Eq. 3 is a genuinely
//! nonlinear 2-parameter least-squares problem solved by [`GaussNewton`].

use crate::NumericError;

/// Result of fitting the line `y = a·x + b`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineFit {
    /// Slope of the fitted line.
    pub a: f64,
    /// Intercept of the fitted line.
    pub b: f64,
}

impl LineFit {
    /// Ordinary least squares over `(xs, ys)`.
    ///
    /// # Errors
    ///
    /// * [`NumericError::ShapeMismatch`] if the slices differ in length.
    /// * [`NumericError::InsufficientData`] with fewer than 2 points.
    /// * [`NumericError::SingularMatrix`] if all `xs` coincide.
    pub fn least_squares(xs: &[f64], ys: &[f64]) -> Result<Self, NumericError> {
        let w = vec![1.0; xs.len()];
        Self::weighted_least_squares(xs, ys, &w)
    }

    /// Weighted least squares minimizing `Σ w_k (y_k − (a·x_k + b))²`.
    ///
    /// Weights must be non-negative; zero-weight samples are ignored. This is
    /// exactly the WLS5 normal-equation solve when `w_k = ρ_noiseless(t_k)²`.
    ///
    /// # Errors
    ///
    /// * [`NumericError::ShapeMismatch`] if slice lengths differ.
    /// * [`NumericError::InsufficientData`] if fewer than 2 samples carry
    ///   positive weight.
    /// * [`NumericError::SingularMatrix`] if the weighted abscissae are
    ///   degenerate (all effective `xs` equal).
    /// * [`NumericError::NonFinite`] on NaN/inf inputs.
    pub fn weighted_least_squares(
        xs: &[f64],
        ys: &[f64],
        ws: &[f64],
    ) -> Result<Self, NumericError> {
        if xs.len() != ys.len() {
            return Err(NumericError::ShapeMismatch {
                got: ys.len(),
                expected: xs.len(),
            });
        }
        if xs.len() != ws.len() {
            return Err(NumericError::ShapeMismatch {
                got: ws.len(),
                expected: xs.len(),
            });
        }
        let mut effective = 0usize;
        // Shift the abscissa origin to the weighted mean for conditioning:
        // raw times are ~1e-9 s, so x² sums would otherwise lose precision.
        let (mut sw, mut swx, mut swy) = (0.0, 0.0, 0.0);
        for ((&x, &y), &w) in xs.iter().zip(ys).zip(ws) {
            if !(x.is_finite() && y.is_finite() && w.is_finite()) {
                return Err(NumericError::NonFinite("fit samples"));
            }
            if w > 0.0 {
                effective += 1;
                sw += w;
                swx += w * x;
                swy += w * y;
            }
        }
        if effective < 2 {
            return Err(NumericError::InsufficientData {
                got: effective,
                required: 2,
            });
        }
        let xbar = swx / sw;
        let ybar = swy / sw;
        let (mut sxx, mut sxy) = (0.0, 0.0);
        for ((&x, &y), &w) in xs.iter().zip(ys).zip(ws) {
            if w > 0.0 {
                let dx = x - xbar;
                sxx += w * dx * dx;
                sxy += w * dx * (y - ybar);
            }
        }
        if sxx <= 0.0 {
            return Err(NumericError::SingularMatrix {
                column: 0,
                pivot: sxx,
            });
        }
        let a = sxy / sxx;
        let b = ybar - a * xbar;
        Ok(LineFit { a, b })
    }

    /// Evaluates the fitted line at `x`.
    pub fn eval(&self, x: f64) -> f64 {
        self.a * x + self.b
    }
}

/// Convergence report for [`GaussNewton::minimize`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussNewtonReport {
    /// Final parameter vector `(a, b)`.
    pub params: [f64; 2],
    /// Sum of squared residuals at the final iterate.
    pub cost: f64,
    /// Iterations consumed.
    pub iterations: usize,
    /// Whether the step-size tolerance was met within the budget.
    pub converged: bool,
}

/// Damped Gauss–Newton minimizer for 2-parameter nonlinear least squares.
///
/// The caller supplies a closure that fills residuals `f_k(a, b)` and the
/// Jacobian rows `(∂f_k/∂a, ∂f_k/∂b)`. The solver performs Levenberg-style
/// damping: if a step increases the cost, the damping factor grows and the
/// step is retried.
#[derive(Debug, Clone, Copy)]
pub struct GaussNewton {
    /// Maximum outer iterations.
    pub max_iterations: usize,
    /// Relative step-size tolerance for declaring convergence.
    pub step_tolerance: f64,
    /// Initial Levenberg damping added to the normal-equation diagonal.
    pub initial_damping: f64,
}

impl Default for GaussNewton {
    fn default() -> Self {
        GaussNewton {
            max_iterations: 40,
            step_tolerance: 1e-10,
            initial_damping: 1e-12,
        }
    }
}

impl GaussNewton {
    /// Minimizes `Σ f_k²` starting from `start`.
    ///
    /// `model` writes residuals into its `&mut Vec<f64>` argument and
    /// Jacobian rows `[∂f/∂a, ∂f/∂b]` into the second; both are cleared by
    /// the solver before each call.
    ///
    /// # Errors
    ///
    /// * [`NumericError::InsufficientData`] if the model produces fewer than
    ///   two residuals.
    /// * [`NumericError::NonFinite`] if residuals or Jacobian go NaN/inf.
    /// * [`NumericError::NoConvergence`] if damping cannot find a decreasing
    ///   step (the last iterate is still returned inside the error-free path
    ///   whenever any progress was made; this error means no step ever
    ///   succeeded).
    pub fn minimize<F>(
        &self,
        start: [f64; 2],
        mut model: F,
    ) -> Result<GaussNewtonReport, NumericError>
    where
        F: FnMut([f64; 2], &mut Vec<f64>, &mut Vec<[f64; 2]>),
    {
        let mut params = start;
        let mut residuals = Vec::new();
        let mut jacobian = Vec::new();

        let eval_cost = |r: &[f64]| -> f64 { r.iter().map(|v| v * v).sum() };

        model(params, &mut residuals, &mut jacobian);
        if residuals.len() < 2 {
            return Err(NumericError::InsufficientData {
                got: residuals.len(),
                required: 2,
            });
        }
        if residuals.iter().any(|v| !v.is_finite()) {
            return Err(NumericError::NonFinite("residuals"));
        }
        let mut cost = eval_cost(&residuals);
        let mut damping = self.initial_damping;
        let mut converged = false;
        let mut iterations = 0;

        while iterations < self.max_iterations {
            iterations += 1;
            // Normal equations J^T J Δ = -J^T f  (2×2, solved in closed form).
            let (mut jtj00, mut jtj01, mut jtj11) = (0.0, 0.0, 0.0);
            let (mut jtf0, mut jtf1) = (0.0, 0.0);
            for (f, j) in residuals.iter().zip(&jacobian) {
                jtj00 += j[0] * j[0];
                jtj01 += j[0] * j[1];
                jtj11 += j[1] * j[1];
                jtf0 += j[0] * f;
                jtf1 += j[1] * f;
            }
            if ![jtj00, jtj01, jtj11, jtf0, jtf1]
                .iter()
                .all(|v| v.is_finite())
            {
                return Err(NumericError::NonFinite("jacobian"));
            }

            // Scale-aware damping and step attempt loop.
            let diag_scale = (jtj00.max(jtj11)).max(1e-300);
            let mut stepped = false;
            for _ in 0..12 {
                let d00 = jtj00 + damping * diag_scale;
                let d11 = jtj11 + damping * diag_scale;
                let det = d00 * d11 - jtj01 * jtj01;
                if det.abs() < 1e-300 {
                    damping = (damping * 10.0).max(1e-9);
                    continue;
                }
                let da = (-jtf0 * d11 + jtf1 * jtj01) / det;
                let db = (-jtf1 * d00 + jtf0 * jtj01) / det;
                let trial = [params[0] + da, params[1] + db];
                model(trial, &mut residuals, &mut jacobian);
                if residuals.iter().any(|v| !v.is_finite()) {
                    damping = (damping * 10.0).max(1e-9);
                    continue;
                }
                let trial_cost = eval_cost(&residuals);
                if trial_cost <= cost * (1.0 + 1e-15) {
                    // Accept; relax damping for the next iteration.
                    let rel_step = (da.abs() / params[0].abs().max(1e-30))
                        .max(db.abs() / params[1].abs().max(1e-30));
                    params = trial;
                    cost = trial_cost;
                    damping = (damping * 0.25).max(self.initial_damping);
                    stepped = true;
                    if rel_step < self.step_tolerance {
                        converged = true;
                    }
                    break;
                }
                damping = (damping * 10.0).max(1e-9);
            }
            if !stepped {
                // Cost cannot be decreased further: treat the current point
                // as the (local) minimum.
                converged = true;
            }
            if converged {
                break;
            }
        }
        // Refresh residuals at the accepted parameters for the cost report.
        model(params, &mut residuals, &mut jacobian);
        Ok(GaussNewtonReport {
            params,
            cost: eval_cost(&residuals),
            iterations,
            converged,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_fit_recovers_exact_line() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.5 * x - 1.0).collect();
        let fit = LineFit::least_squares(&xs, &ys).unwrap();
        assert!((fit.a - 2.5).abs() < 1e-12);
        assert!((fit.b + 1.0).abs() < 1e-12);
        assert!((fit.eval(4.0) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_fit_ignores_zero_weight_outliers() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [0.0, 1.0, 2.0, 100.0];
        let ws = [1.0, 1.0, 1.0, 0.0];
        let fit = LineFit::weighted_least_squares(&xs, &ys, &ws).unwrap();
        assert!((fit.a - 1.0).abs() < 1e-12);
        assert!(fit.b.abs() < 1e-12);
    }

    #[test]
    fn weighted_fit_matches_duplication_semantics() {
        // A weight of 2 must act like duplicating the sample.
        let xs = [0.0, 1.0, 2.0];
        let ys = [0.1, 0.8, 2.2];
        let ws = [1.0, 2.0, 1.0];
        let fit_w = LineFit::weighted_least_squares(&xs, &ys, &ws).unwrap();
        let xs_dup = [0.0, 1.0, 1.0, 2.0];
        let ys_dup = [0.1, 0.8, 0.8, 2.2];
        let fit_d = LineFit::least_squares(&xs_dup, &ys_dup).unwrap();
        assert!((fit_w.a - fit_d.a).abs() < 1e-12);
        assert!((fit_w.b - fit_d.b).abs() < 1e-12);
    }

    #[test]
    fn fit_is_well_conditioned_at_nanosecond_scale() {
        // Times around 1e-9 with picosecond spreads: naive normal equations
        // in raw coordinates lose ~18 digits; the centered form must not.
        let xs: Vec<f64> = (0..35).map(|i| 1.0e-9 + i as f64 * 1.0e-12).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 8.0e9 * (x - 1.0e-9)).collect();
        let fit = LineFit::least_squares(&xs, &ys).unwrap();
        assert!((fit.a - 8.0e9).abs() / 8.0e9 < 1e-9);
    }

    #[test]
    fn degenerate_fits_rejected() {
        assert!(matches!(
            LineFit::least_squares(&[1.0], &[1.0]),
            Err(NumericError::InsufficientData { .. })
        ));
        assert!(matches!(
            LineFit::least_squares(&[1.0, 1.0], &[0.0, 2.0]),
            Err(NumericError::SingularMatrix { .. })
        ));
        assert!(LineFit::weighted_least_squares(&[0.0, 1.0], &[0.0, 1.0], &[1.0]).is_err());
        assert!(LineFit::least_squares(&[0.0, f64::NAN], &[0.0, 1.0]).is_err());
    }

    #[test]
    fn gauss_newton_solves_linear_problem_in_one_step() {
        // Linear residuals: f_k = y_k - (a x_k + b). GN == closed form.
        let xs: Vec<f64> = (0..20).map(|i| i as f64 * 0.1).collect();
        let ys: Vec<f64> = xs.iter().map(|x| -3.0 * x + 0.7).collect();
        let gn = GaussNewton::default();
        let report = gn
            .minimize([0.0, 0.0], |p, r, j| {
                r.clear();
                j.clear();
                for (&x, &y) in xs.iter().zip(&ys) {
                    r.push(y - (p[0] * x + p[1]));
                    j.push([-x, -1.0]);
                }
            })
            .unwrap();
        assert!(report.converged);
        assert!((report.params[0] + 3.0).abs() < 1e-8);
        assert!((report.params[1] - 0.7).abs() < 1e-8);
        assert!(report.cost < 1e-16);
    }

    #[test]
    fn gauss_newton_solves_quadratic_residuals() {
        // f_k = (y_k - (a x_k + b))² — the same shape as SGDP's Eq. 3
        // second-order term. Minimum still at the exact line.
        let xs: Vec<f64> = (0..30).map(|i| i as f64 * 0.05).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 1.5 * x + 0.2).collect();
        let gn = GaussNewton::default();
        let report = gn
            .minimize([1.0, 0.0], |p, r, j| {
                r.clear();
                j.clear();
                for (&x, &y) in xs.iter().zip(&ys) {
                    let e = y - (p[0] * x + p[1]);
                    r.push(e * e);
                    j.push([-2.0 * e * x, -2.0 * e]);
                }
            })
            .unwrap();
        assert!(
            (report.params[0] - 1.5).abs() < 1e-5,
            "a = {}",
            report.params[0]
        );
        assert!(
            (report.params[1] - 0.2).abs() < 1e-5,
            "b = {}",
            report.params[1]
        );
    }

    #[test]
    fn gauss_newton_rejects_tiny_models() {
        let gn = GaussNewton::default();
        let err = gn.minimize([0.0, 0.0], |_p, r, j| {
            r.clear();
            j.clear();
            r.push(1.0);
            j.push([1.0, 0.0]);
        });
        assert!(matches!(err, Err(NumericError::InsufficientData { .. })));
    }
}
