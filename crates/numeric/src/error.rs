use std::fmt;

/// Error type for the numeric kernels.
///
/// Every failure carries enough context to diagnose the offending call
/// without a debugger; messages are lowercase without trailing punctuation
/// per the Rust API guidelines.
#[derive(Debug, Clone, PartialEq)]
pub enum NumericError {
    /// A matrix was constructed from rows of inconsistent length, or an
    /// operation was attempted on incompatible dimensions.
    ShapeMismatch {
        /// What the caller supplied.
        got: usize,
        /// What the operation required.
        expected: usize,
    },
    /// LU factorization hit a pivot below the singularity threshold.
    SingularMatrix {
        /// Column at which elimination broke down.
        column: usize,
        /// Magnitude of the best available pivot.
        pivot: f64,
    },
    /// An interpolation grid was empty or not strictly increasing.
    InvalidGrid(&'static str),
    /// A fit was requested with fewer effective points than unknowns.
    InsufficientData {
        /// Number of usable samples found.
        got: usize,
        /// Minimum required.
        required: usize,
    },
    /// An iterative solver exhausted its iteration budget.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
        /// Residual norm at the last iterate.
        residual: f64,
    },
    /// A non-finite value (NaN/inf) reached a kernel input.
    NonFinite(&'static str),
}

impl fmt::Display for NumericError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericError::ShapeMismatch { got, expected } => {
                write!(f, "shape mismatch: got {got}, expected {expected}")
            }
            NumericError::SingularMatrix { column, pivot } => {
                write!(f, "singular matrix at column {column} (pivot {pivot:.3e})")
            }
            NumericError::InvalidGrid(what) => write!(f, "invalid grid: {what}"),
            NumericError::InsufficientData { got, required } => {
                write!(f, "insufficient data: got {got} samples, need {required}")
            }
            NumericError::NoConvergence {
                iterations,
                residual,
            } => {
                write!(
                    f,
                    "no convergence after {iterations} iterations (residual {residual:.3e})"
                )
            }
            NumericError::NonFinite(what) => write!(f, "non-finite value in {what}"),
        }
    }
}

impl std::error::Error for NumericError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            NumericError::ShapeMismatch {
                got: 1,
                expected: 2,
            },
            NumericError::SingularMatrix {
                column: 3,
                pivot: 0.0,
            },
            NumericError::InvalidGrid("empty"),
            NumericError::InsufficientData {
                got: 0,
                required: 2,
            },
            NumericError::NoConvergence {
                iterations: 10,
                residual: 1.0,
            },
            NumericError::NonFinite("rhs"),
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
            assert!(!s.ends_with('.'));
        }
    }
}
