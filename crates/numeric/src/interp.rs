//! Linear and bilinear interpolation on monotone grids.
//!
//! Waveform sampling, NLDM table lookup and the SGDP voltage-domain mapping
//! all reduce to the primitives in this module.

use crate::NumericError;

/// Returns the index of the last grid point `<= x`, clamped to
/// `[0, grid.len() - 2]` so the result always names a valid segment.
///
/// The grid must be sorted ascending; this is checked by [`validate_grid`]
/// at construction sites rather than on every query.
#[inline]
pub fn segment_index(grid: &[f64], x: f64) -> usize {
    debug_assert!(grid.len() >= 2);
    match grid.binary_search_by(|g| g.total_cmp(&x)) {
        Ok(i) => i.min(grid.len() - 2),
        Err(0) => 0,
        Err(i) => (i - 1).min(grid.len() - 2),
    }
}

/// Checks that a grid is usable for interpolation: at least `min_len`
/// entries, strictly increasing, all finite.
///
/// # Errors
///
/// Returns [`NumericError::InvalidGrid`] describing the violation.
pub fn validate_grid(grid: &[f64], min_len: usize) -> Result<(), NumericError> {
    if grid.len() < min_len {
        return Err(NumericError::InvalidGrid("fewer grid points than required"));
    }
    if grid.iter().any(|v| !v.is_finite()) {
        return Err(NumericError::InvalidGrid("non-finite grid point"));
    }
    if grid.windows(2).any(|w| w[1] <= w[0]) {
        return Err(NumericError::InvalidGrid("grid not strictly increasing"));
    }
    Ok(())
}

/// Linear interpolation of tabulated `(xs, ys)` at `x`, with linear
/// extrapolation beyond the ends.
///
/// # Panics
///
/// Debug-panics if `xs.len() != ys.len()` or fewer than two points are
/// supplied; callers validate via [`validate_grid`] first.
#[inline]
pub fn interp1(xs: &[f64], ys: &[f64], x: f64) -> f64 {
    debug_assert_eq!(xs.len(), ys.len());
    let i = segment_index(xs, x);
    let (x0, x1) = (xs[i], xs[i + 1]);
    let (y0, y1) = (ys[i], ys[i + 1]);
    let t = (x - x0) / (x1 - x0);
    y0 + t * (y1 - y0)
}

/// Linear interpolation clamped to the table range (no extrapolation).
#[inline]
pub fn interp1_clamped(xs: &[f64], ys: &[f64], x: f64) -> f64 {
    let lo = xs[0];
    let hi = xs[xs.len() - 1];
    interp1(xs, ys, x.clamp(lo, hi))
}

/// Bilinear interpolation on a rectangular grid.
///
/// `values` is row-major over `(xs, ys)`: `values[i * ys.len() + j]`
/// corresponds to `(xs[i], ys[j])`. Queries outside the grid extrapolate
/// linearly along each axis (the conventional NLDM behaviour).
///
/// # Errors
///
/// Returns [`NumericError::ShapeMismatch`] if `values.len() != xs.len() *
/// ys.len()`, or [`NumericError::InvalidGrid`] for degenerate axes.
pub fn bilinear(
    xs: &[f64],
    ys: &[f64],
    values: &[f64],
    x: f64,
    y: f64,
) -> Result<f64, NumericError> {
    validate_grid(xs, 2)?;
    validate_grid(ys, 2)?;
    if values.len() != xs.len() * ys.len() {
        return Err(NumericError::ShapeMismatch {
            got: values.len(),
            expected: xs.len() * ys.len(),
        });
    }
    let i = segment_index(xs, x);
    let j = segment_index(ys, y);
    let (x0, x1) = (xs[i], xs[i + 1]);
    let (y0, y1) = (ys[j], ys[j + 1]);
    let tx = (x - x0) / (x1 - x0);
    let ty = (y - y0) / (y1 - y0);
    let v = |ii: usize, jj: usize| values[ii * ys.len() + jj];
    let a = v(i, j) * (1.0 - tx) + v(i + 1, j) * tx;
    let b = v(i, j + 1) * (1.0 - tx) + v(i + 1, j + 1) * tx;
    Ok(a * (1.0 - ty) + b * ty)
}

/// Finds all parameter values `x` in `[xs[k], xs[k+1]]` segments where the
/// piecewise-linear curve `(xs, ys)` crosses level `level`.
///
/// Exact grid hits are reported once; a segment lying entirely on the level
/// contributes its left endpoint. Returned crossings are ascending in `x`.
pub fn crossings(xs: &[f64], ys: &[f64], level: f64) -> Vec<f64> {
    debug_assert_eq!(xs.len(), ys.len());
    let mut out = Vec::new();
    if xs.len() < 2 {
        return out;
    }
    for k in 0..xs.len() - 1 {
        let (y0, y1) = (ys[k] - level, ys[k + 1] - level);
        if y0 == 0.0 {
            if out.last().is_none_or(|&last| last < xs[k]) {
                out.push(xs[k]);
            }
        } else if y0 * y1 < 0.0 {
            let t = y0 / (y0 - y1);
            out.push(xs[k] + t * (xs[k + 1] - xs[k]));
        }
    }
    // Trailing endpoint exactly on the level.
    if let (Some(&y_last), Some(&x_last)) = (ys.last(), xs.last()) {
        if y_last == level && out.last().is_none_or(|&last| last < x_last) {
            out.push(x_last);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_index_clamps() {
        let grid = [0.0, 1.0, 2.0, 3.0];
        assert_eq!(segment_index(&grid, -5.0), 0);
        assert_eq!(segment_index(&grid, 0.5), 0);
        assert_eq!(segment_index(&grid, 1.0), 1);
        assert_eq!(segment_index(&grid, 2.7), 2);
        assert_eq!(segment_index(&grid, 99.0), 2);
    }

    #[test]
    fn interp1_reproduces_line() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [1.0, 3.0, 5.0];
        for x in [-1.0, 0.0, 0.25, 1.5, 2.0, 4.0] {
            assert!((interp1(&xs, &ys, x) - (1.0 + 2.0 * x)).abs() < 1e-12);
        }
    }

    #[test]
    fn clamped_interp_stops_at_ends() {
        let xs = [0.0, 1.0];
        let ys = [0.0, 1.0];
        assert_eq!(interp1_clamped(&xs, &ys, -5.0), 0.0);
        assert_eq!(interp1_clamped(&xs, &ys, 5.0), 1.0);
    }

    #[test]
    fn bilinear_matches_plane() {
        // f(x, y) = 2x + 3y + 1 is reproduced exactly by bilinear interp.
        let xs = [0.0, 1.0, 2.0];
        let ys = [0.0, 2.0];
        let mut values = Vec::new();
        for &x in &xs {
            for &y in &ys {
                values.push(2.0 * x + 3.0 * y + 1.0);
            }
        }
        for (x, y) in [(0.5, 1.0), (1.7, 0.3), (2.0, 2.0), (-0.5, 3.0)] {
            let v = bilinear(&xs, &ys, &values, x, y).unwrap();
            assert!(
                (v - (2.0 * x + 3.0 * y + 1.0)).abs() < 1e-12,
                "at ({x},{y})"
            );
        }
    }

    #[test]
    fn bilinear_validates_shapes() {
        assert!(bilinear(&[0.0, 1.0], &[0.0, 1.0], &[0.0; 3], 0.0, 0.0).is_err());
        assert!(bilinear(&[0.0], &[0.0, 1.0], &[0.0; 2], 0.0, 0.0).is_err());
        assert!(bilinear(&[1.0, 0.0], &[0.0, 1.0], &[0.0; 4], 0.0, 0.0).is_err());
    }

    #[test]
    fn crossings_finds_all() {
        // Triangle wave crossing 0.5 four times.
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let ys = [0.0, 1.0, 0.0, 1.0, 0.0];
        let c = crossings(&xs, &ys, 0.5);
        assert_eq!(c.len(), 4);
        let expect = [0.5, 1.5, 2.5, 3.5];
        for (got, want) in c.iter().zip(expect) {
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn crossings_handles_exact_grid_hits() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [0.5, 1.0, 0.5];
        let c = crossings(&xs, &ys, 0.5);
        assert_eq!(c, vec![0.0, 2.0]);
    }

    #[test]
    fn validate_grid_rejects_bad_input() {
        assert!(validate_grid(&[], 1).is_err());
        assert!(validate_grid(&[0.0, 0.0], 2).is_err());
        assert!(validate_grid(&[0.0, f64::NAN], 2).is_err());
        assert!(validate_grid(&[1.0, 0.0], 2).is_err());
        assert!(validate_grid(&[0.0, 1.0], 2).is_ok());
    }
}
