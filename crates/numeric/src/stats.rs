//! Summary statistics for experiment reporting.
//!
//! The evaluation section of the paper reports maximum and average absolute
//! errors over hundreds of noise-injection cases; [`Summary`] accumulates
//! exactly those (plus a few extras useful for debugging distributions).

/// Streaming accumulator for min/max/mean/rms of a sample set.
///
/// ```
/// use nsta_numeric::stats::Summary;
/// let s: Summary = [1.0, 2.0, 3.0].into_iter().collect();
/// assert_eq!(s.count(), 3);
/// assert_eq!(s.max(), 3.0);
/// assert!((s.mean() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    count: usize,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
}

impl Default for Summary {
    fn default() -> Self {
        Summary::new()
    }
}

impl Summary {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Summary {
            count: 0,
            sum: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.sum_sq += v * v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples seen.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Arithmetic mean; `0.0` for an empty accumulator.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Root mean square; `0.0` for an empty accumulator.
    pub fn rms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.sum_sq / self.count as f64).sqrt()
        }
    }

    /// Smallest sample; `+inf` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample; `-inf` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for v in iter {
            s.push(v);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }
}

/// Returns the `q`-quantile (0 ≤ q ≤ 1) of `samples` by linear
/// interpolation between order statistics. Returns `None` when empty.
///
/// The input slice is not required to be sorted; a sorted copy is made.
pub fn quantile(samples: &[f64], q: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_tracks_extremes_and_moments() {
        let mut s = Summary::new();
        s.extend([2.0, -1.0, 4.0, 3.0]);
        assert_eq!(s.count(), 4);
        assert_eq!(s.min(), -1.0);
        assert_eq!(s.max(), 4.0);
        assert!((s.mean() - 2.0).abs() < 1e-12);
        assert!((s.rms() - (30.0f64 / 4.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_is_sane() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.rms(), 0.0);
        assert!(s.min().is_infinite());
    }

    #[test]
    fn quantiles_interpolate() {
        let data = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(quantile(&data, 0.0), Some(1.0));
        assert_eq!(quantile(&data, 1.0), Some(4.0));
        assert_eq!(quantile(&data, 0.5), Some(2.5));
        assert_eq!(quantile(&[], 0.5), None);
    }
}
