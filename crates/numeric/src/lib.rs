//! Small, dependency-free numeric kernels shared across the `noisy-sta`
//! workspace.
//!
//! The modified-nodal-analysis systems stamped by the circuit engines are
//! nearly tridiagonal (star-coupled RC lines), so the hot solvers exploit
//! sparsity; the dense kernels remain as the small-system and
//! partial-pivoting fallback:
//!
//! * [`sparse`] — [`TripletMatrix`] assembly, [`CsrMatrix`] storage/mat-vec
//!   and the no-pivot [`SparseLu`] with reusable symbolic factorization.
//!   Elimination is in **natural order without pivoting**, which is valid
//!   exactly for the diagonally dominant stamps the engines produce (see
//!   the module docs for the ordering assumptions); O(nnz) factor and step
//!   for banded meshes instead of O(n³)/O(n²),
//! * [`DenseMatrix`] / [`LuFactors`] — row-major dense matrices with LU
//!   factorization (partial pivoting): the escape hatch for systems that
//!   are small or not no-pivot factorable,
//! * [`interp`] — monotone-grid linear and bilinear interpolation used by
//!   waveform sampling and NLDM table lookup,
//! * [`fit`] — closed-form (weighted) line fits and a damped Gauss–Newton
//!   loop used by the equivalent-waveform techniques,
//! * [`stats`] — tiny summary-statistics helpers for the experiment harness.
//!
//! ```
//! use nsta_numeric::{DenseMatrix, LuFactors};
//! # fn main() -> Result<(), nsta_numeric::NumericError> {
//! let a = DenseMatrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
//! let lu = LuFactors::factor(&a)?;
//! let x = lu.solve(&[1.0, 2.0])?;
//! assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod error;
pub mod fit;
pub mod interp;
mod matrix;
pub mod sparse;
pub mod stats;

pub use error::NumericError;
pub use fit::{GaussNewton, GaussNewtonReport, LineFit};
pub use matrix::{dot, DenseMatrix, LuFactors};
pub use sparse::{CsrMatrix, SparseLu, TripletMatrix};
