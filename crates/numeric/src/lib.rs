//! Small, dependency-free numeric kernels shared across the `noisy-sta`
//! workspace.
//!
//! EDA workloads in this repository never need large-scale linear algebra —
//! modified-nodal-analysis systems stay below a few hundred unknowns — so the
//! kernels here favour robustness and clarity over blocked performance:
//!
//! * [`DenseMatrix`] / [`LuFactors`] — row-major dense matrices with LU
//!   factorization (partial pivoting) used by both the linear and the
//!   nonlinear circuit engines,
//! * [`interp`] — monotone-grid linear and bilinear interpolation used by
//!   waveform sampling and NLDM table lookup,
//! * [`fit`] — closed-form (weighted) line fits and a damped Gauss–Newton
//!   loop used by the equivalent-waveform techniques,
//! * [`stats`] — tiny summary-statistics helpers for the experiment harness.
//!
//! ```
//! use nsta_numeric::{DenseMatrix, LuFactors};
//! # fn main() -> Result<(), nsta_numeric::NumericError> {
//! let a = DenseMatrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
//! let lu = LuFactors::factor(&a)?;
//! let x = lu.solve(&[1.0, 2.0])?;
//! assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

mod error;
pub mod fit;
pub mod interp;
mod matrix;
pub mod stats;

pub use error::NumericError;
pub use fit::{GaussNewton, GaussNewtonReport, LineFit};
pub use matrix::{dot, DenseMatrix, LuFactors};
