//! Sparse linear algebra for the circuit engines: triplet assembly,
//! compressed-sparse-row storage, and a no-pivot LU factorization with a
//! reusable symbolic analysis.
//!
//! # Formats
//!
//! * [`TripletMatrix`] — the assembly format. MNA stamping appends
//!   `(row, col, value)` entries in element order; duplicates are legal and
//!   are **summed in insertion order** during conversion, so the assembled
//!   values are bit-identical to stamping the same element sequence into a
//!   dense matrix.
//! * [`CsrMatrix`] — the compute format: row pointers, column indices
//!   sorted ascending within each row (empty rows are fine), and one value
//!   per stored entry. Mat-vec ([`CsrMatrix::mul_vec_into`]) touches only
//!   stored entries, so a step over an RC mesh costs O(nnz), not O(n²).
//!
//! # Ordering and pivoting assumptions
//!
//! [`SparseLu`] eliminates **without pivoting**, in a fill-reducing
//! reverse Cuthill–McKee order computed from the pattern (a *symmetric*
//! permutation — rows and columns move together, so the diagonal stays
//! the diagonal). No-pivot elimination is only valid when the matrix
//! keeps a usable diagonal throughout — which the workspace's stamped
//! systems guarantee by construction: MNA conductance/capacitance stamps
//! of RC meshes (with the gmin leak on every diagonal) are diagonally
//! dominant with non-positive off-diagonals, diagonal dominance is
//! invariant under symmetric permutation, and it is preserved by Gaussian
//! elimination, so the pivot can never vanish in any elimination order.
//! Matrices that violate the assumption (a device Jacobian pushed far off
//! dominance) fail loudly with [`NumericError::SingularMatrix`] instead
//! of silently losing precision; callers keep a dense partial-pivot
//! fallback for that case.
//!
//! The **symbolic factorization** (fill-in pattern of L and U) depends only
//! on the sparsity pattern, never on the values, so it is computed once and
//! reused: [`SparseLu::refactor`] re-eliminates new values into the existing
//! pattern with zero allocation — the shape the circuit engines need, where
//! one topology is factored once and then re-valued every Newton iteration.

use crate::{DenseMatrix, NumericError};

/// Assembly-format sparse matrix: an append-only list of
/// `(row, col, value)` entries. Duplicate coordinates are summed (in
/// insertion order) when converting to [`CsrMatrix`].
#[derive(Debug, Clone, Default)]
pub struct TripletMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl TripletMatrix {
    /// Creates an empty `rows × cols` assembly buffer.
    pub fn new(rows: usize, cols: usize) -> Self {
        TripletMatrix {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Appends `v` at `(r, c)` — the natural operation for MNA stamps.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of bounds.
    #[inline]
    pub fn add(&mut self, r: usize, c: usize, v: f64) {
        assert!(
            r < self.rows && c < self.cols,
            "triplet index out of bounds"
        );
        self.entries.push((r, c, v));
    }

    /// Number of raw (pre-merge) entries.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Appends every entry of `other`, scaled by `scale` — combining
    /// separately stamped matrices (e.g. `C/h + G/2` for a trapezoidal
    /// Jacobian) into one assembly buffer before conversion.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn extend_scaled(&mut self, other: &TripletMatrix, scale: f64) {
        assert!(
            self.rows == other.rows && self.cols == other.cols,
            "triplet dimensions must match"
        );
        self.entries
            .extend(other.entries.iter().map(|&(r, c, v)| (r, c, scale * v)));
    }

    /// Converts to CSR, summing duplicate coordinates in insertion order.
    pub fn to_csr(&self) -> CsrMatrix {
        // Counting sort by row keeps the conversion O(nnz + rows) and —
        // because it is stable in insertion order within a row — makes the
        // duplicate sums bit-identical to sequential dense stamping.
        let mut counts = vec![0usize; self.rows + 1];
        for &(r, _, _) in &self.entries {
            counts[r + 1] += 1;
        }
        for i in 0..self.rows {
            counts[i + 1] += counts[i];
        }
        let mut by_row: Vec<(usize, f64)> = vec![(0, 0.0); self.entries.len()];
        {
            let mut next = counts.clone();
            for &(r, c, v) in &self.entries {
                by_row[next[r]] = (c, v);
                next[r] += 1;
            }
        }
        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        // Per-row: stable sort by column, then merge runs of equal columns.
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for r in 0..self.rows {
            scratch.clear();
            scratch.extend_from_slice(&by_row[counts[r]..counts[r + 1]]);
            scratch.sort_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let c = scratch[i].0;
                let mut sum = 0.0;
                while i < scratch.len() && scratch[i].0 == c {
                    sum += scratch[i].1;
                    i += 1;
                }
                col_idx.push(c);
                values.push(sum);
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_idx,
            values,
        }
    }
}

/// Compressed-sparse-row matrix: the compute format of the sparse solver.
///
/// Column indices are sorted ascending within each row and unique; empty
/// rows are represented naturally by equal consecutive row pointers.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Row pointers (`rows + 1` entries).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column indices, row-major, ascending within each row.
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// Stored values, aligned with [`CsrMatrix::col_idx`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable stored values — re-valuing a fixed pattern (the Newton-loop
    /// shape) writes here and then calls [`SparseLu::refactor`].
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// The columns and values of row `r` as parallel slices.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[inline]
    pub fn row(&self, r: usize) -> (&[usize], &[f64]) {
        let span = self.row_ptr[r]..self.row_ptr[r + 1];
        (&self.col_idx[span.clone()], &self.values[span])
    }

    /// Storage index of entry `(r, c)`, or `None` if the pattern has no
    /// such entry. Binary search within the row: O(log row-nnz).
    pub fn value_index(&self, r: usize, c: usize) -> Option<usize> {
        if r >= self.rows {
            return None;
        }
        let span = &self.col_idx[self.row_ptr[r]..self.row_ptr[r + 1]];
        span.binary_search(&c).ok().map(|k| self.row_ptr[r] + k)
    }

    /// Adds `v` to the stored entry at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the pattern has no entry at `(r, c)` — re-valuing must
    /// stay inside the analyzed pattern.
    #[inline]
    pub fn add_at(&mut self, r: usize, c: usize, v: f64) {
        let k = self
            .value_index(r, c)
            .unwrap_or_else(|| panic!("entry ({r}, {c}) outside the assembled sparsity pattern"));
        self.values[k] += v;
    }

    /// Reads `(r, c)` — zero for entries outside the pattern.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.value_index(r, c).map_or(0.0, |k| self.values[k])
    }

    /// `y = A·x` into a caller-provided buffer without allocating.
    ///
    /// # Errors
    ///
    /// [`NumericError::ShapeMismatch`] unless `x.len() == cols` and
    /// `y.len() == rows`.
    pub fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) -> Result<(), NumericError> {
        if x.len() != self.cols {
            return Err(NumericError::ShapeMismatch {
                got: x.len(),
                expected: self.cols,
            });
        }
        if y.len() != self.rows {
            return Err(NumericError::ShapeMismatch {
                got: y.len(),
                expected: self.rows,
            });
        }
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            let mut acc = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                acc += v * x[c];
            }
            y[r] = acc;
        }
        Ok(())
    }

    /// Densifies — handy for the dense-backend escape hatch and for tests.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut m = DenseMatrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                m.add(r, c, v);
            }
        }
        m
    }

    /// Returns `self + scale · other` on the union pattern, merged row by
    /// row in ascending column order — the sparse analogue of
    /// [`DenseMatrix::add_scaled`], used to combine the stamped `G`/`C`
    /// matrices into the trapezoidal step matrices. Entries present in both
    /// operands compute exactly `a + scale * b`, so the combined values are
    /// bit-identical to the dense formulation.
    ///
    /// # Errors
    ///
    /// [`NumericError::ShapeMismatch`] on dimension mismatch.
    pub fn add_scaled(&self, other: &CsrMatrix, scale: f64) -> Result<CsrMatrix, NumericError> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(NumericError::ShapeMismatch {
                got: other.rows * other.cols,
                expected: self.rows * self.cols,
            });
        }
        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in 0..self.rows {
            let (ac, av) = self.row(r);
            let (bc, bv) = other.row(r);
            let (mut i, mut j) = (0, 0);
            while i < ac.len() || j < bc.len() {
                let ca = ac.get(i).copied().unwrap_or(usize::MAX);
                let cb = bc.get(j).copied().unwrap_or(usize::MAX);
                if ca < cb {
                    col_idx.push(ca);
                    values.push(av[i]);
                    i += 1;
                } else if cb < ca {
                    col_idx.push(cb);
                    values.push(scale * bv[j]);
                    j += 1;
                } else {
                    col_idx.push(ca);
                    values.push(av[i] + scale * bv[j]);
                    i += 1;
                    j += 1;
                }
            }
            row_ptr.push(col_idx.len());
        }
        Ok(CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// `true` if `other` has the identical sparsity pattern (shape, row
    /// pointers, column indices) — the precondition of
    /// [`SparseLu::refactor`].
    pub fn same_pattern(&self, other: &CsrMatrix) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self.row_ptr == other.row_ptr
            && self.col_idx == other.col_idx
    }
}

/// Pivots smaller than this are treated as structural singularities —
/// matching the dense [`crate::LuFactors`] threshold.
const PIVOT_TOL: f64 = 1e-300;

/// Computes a reverse Cuthill–McKee ordering of the symmetrized pattern of
/// `a`: `perm[new] = old`. BFS from a pseudo-peripheral start of every
/// connected component, visiting neighbours in ascending-degree order,
/// reversed at the end — the classic bandwidth-reducing ordering for the
/// chain-and-rung graphs RC meshes stamp. Deterministic: ties break on the
/// lower node index.
fn rcm_ordering(a: &CsrMatrix) -> Vec<usize> {
    let n = a.rows();
    // Symmetrized adjacency without the diagonal.
    let mut deg = vec![0usize; n];
    for r in 0..n {
        let (cols, _) = a.row(r);
        for &c in cols {
            if c != r {
                deg[r] += 1;
                deg[c] += 1;
            }
        }
    }
    let mut adj_ptr = vec![0usize; n + 1];
    for i in 0..n {
        adj_ptr[i + 1] = adj_ptr[i] + deg[i];
    }
    let mut adj = vec![0usize; adj_ptr[n]];
    {
        let mut next = adj_ptr.clone();
        for r in 0..n {
            let (cols, _) = a.row(r);
            for &c in cols {
                if c != r {
                    adj[next[r]] = c;
                    next[r] += 1;
                    adj[next[c]] = r;
                    next[c] += 1;
                }
            }
        }
    }
    // The symmetrization can duplicate edges present in both triangles;
    // duplicates only cost a little BFS work, so they are left in place,
    // but degrees used for tie-breaking stay as computed above.
    let neighbours = |v: usize| &adj[adj_ptr[v]..adj_ptr[v + 1]];

    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut frontier = Vec::new();
    // BFS recording (order of discovery) from `start`; returns the last
    // discovered node (an eccentric vertex).
    let bfs = |start: usize, visited: &mut Vec<bool>, out: &mut Vec<usize>| -> usize {
        let base = out.len();
        visited[start] = true;
        out.push(start);
        let mut head = base;
        while head < out.len() {
            let v = out[head];
            head += 1;
            let mut fresh: Vec<usize> = neighbours(v)
                .iter()
                .copied()
                .filter(|&u| !visited[u])
                .collect();
            fresh.sort_unstable_by_key(|&u| (deg[u], u));
            fresh.dedup();
            for u in fresh {
                if !visited[u] {
                    visited[u] = true;
                    out.push(u);
                }
            }
        }
        // BFS pushed at least the start node before the loop ran.
        out[out.len() - 1]
    };
    for seed in 0..n {
        if visited[seed] {
            continue;
        }
        // Pseudo-peripheral start: BFS twice from the component's
        // min-degree node, restarting from the farthest node found.
        frontier.clear();
        let mut probe = visited.clone();
        let far = bfs(seed, &mut probe, &mut frontier);
        let start = if far == seed {
            seed
        } else {
            frontier.clear();
            let mut probe2 = visited.clone();
            bfs(far, &mut probe2, &mut frontier)
        };
        bfs(start, &mut visited, &mut order);
    }
    order.reverse();
    order
}

/// No-pivot sparse LU factors of a square [`CsrMatrix`], with the symbolic
/// (fill-in) analysis separated from the numeric elimination so one
/// topology can be re-valued and re-factored without allocation.
///
/// Rows are eliminated in **reverse Cuthill–McKee order** (a symmetric
/// permutation computed from the pattern at analysis time), which keeps
/// the fill-in of banded and chain-and-rung RC meshes near the original
/// nnz; diagonal dominance — the property that makes no-pivot elimination
/// valid (see the [module docs](self)) — is preserved under any symmetric
/// permutation, so the reordering never costs robustness. Solves run
/// directly on original-index vectors (the permutation is folded into the
/// stored factor indices), so no permutation copies are paid per step.
///
/// ```
/// use nsta_numeric::{SparseLu, TripletMatrix};
/// # fn main() -> Result<(), nsta_numeric::NumericError> {
/// let mut t = TripletMatrix::new(2, 2);
/// t.add(0, 0, 2.0);
/// t.add(0, 1, 1.0);
/// t.add(1, 0, 1.0);
/// t.add(1, 1, 3.0);
/// let a = t.to_csr();
/// let lu = SparseLu::factor(&a)?;
/// let x = lu.solve(&[3.0, 5.0])?;
/// assert!((2.0 * x[0] + x[1] - 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SparseLu {
    n: usize,
    /// Pattern of the analyzed matrix (for the `refactor` precondition).
    a_row_ptr: Vec<usize>,
    a_col_idx: Vec<usize>,
    /// Elimination order: `perm[step] = original row/column`.
    perm: Vec<usize>,
    /// Permuted view of A for the numeric scatter: per elimination row,
    /// the permuted column and the source index into `a.values()`.
    ap_ptr: Vec<usize>,
    ap_cols: Vec<usize>,
    ap_src: Vec<usize>,
    /// Strictly-lower factor L (unit diagonal implied), CSR over
    /// elimination rows, permuted cols < row, ascending.
    l_ptr: Vec<usize>,
    l_cols: Vec<usize>,
    l_vals: Vec<f64>,
    /// Strictly-upper factor U (diagonal held separately).
    u_ptr: Vec<usize>,
    u_cols: Vec<usize>,
    u_vals: Vec<f64>,
    /// `l_cols`/`u_cols` translated back to original indices, so the
    /// substitutions read and write the caller's vector directly.
    l_cols_orig: Vec<usize>,
    u_cols_orig: Vec<usize>,
    /// Reciprocals of U's diagonal (multiply instead of divide in the
    /// per-timestep back substitution).
    inv_diag: Vec<f64>,
    /// Dense elimination workspace, kept across `refactor` calls.
    work: Vec<f64>,
}

impl SparseLu {
    /// Analyzes the fill-in pattern of `a` (including the fill-reducing
    /// ordering) and performs the first numeric factorization.
    ///
    /// # Errors
    ///
    /// * [`NumericError::ShapeMismatch`] if `a` is not square.
    /// * [`NumericError::NonFinite`] if `a` contains NaN/inf.
    /// * [`NumericError::SingularMatrix`] if an elimination pivot
    ///   vanishes (the matrix is not no-pivot factorable).
    pub fn factor(a: &CsrMatrix) -> Result<Self, NumericError> {
        if a.rows != a.cols {
            return Err(NumericError::ShapeMismatch {
                got: a.cols,
                expected: a.rows,
            });
        }
        let n = a.rows;
        let perm = rcm_ordering(a);
        let mut iperm = vec![0usize; n];
        for (new, &old) in perm.iter().enumerate() {
            iperm[old] = new;
        }
        // Permuted pattern with source indices for the value scatter.
        let mut ap_ptr = Vec::with_capacity(n + 1);
        let mut ap_cols = Vec::with_capacity(a.nnz());
        let mut ap_src = Vec::with_capacity(a.nnz());
        ap_ptr.push(0);
        let mut row_buf: Vec<(usize, usize)> = Vec::new();
        for &old in &perm {
            row_buf.clear();
            for k in a.row_ptr[old]..a.row_ptr[old + 1] {
                row_buf.push((iperm[a.col_idx[k]], k));
            }
            row_buf.sort_unstable();
            for &(c, k) in &row_buf {
                ap_cols.push(c);
                ap_src.push(k);
            }
            ap_ptr.push(ap_cols.len());
        }
        let mut lu = SparseLu {
            n,
            a_row_ptr: a.row_ptr.clone(),
            a_col_idx: a.col_idx.clone(),
            perm,
            ap_ptr,
            ap_cols,
            ap_src,
            l_ptr: Vec::with_capacity(n + 1),
            l_cols: Vec::new(),
            l_vals: Vec::new(),
            u_ptr: Vec::with_capacity(n + 1),
            u_cols: Vec::new(),
            u_vals: Vec::new(),
            l_cols_orig: Vec::new(),
            u_cols_orig: Vec::new(),
            inv_diag: vec![0.0; n],
            work: vec![0.0; n],
        };
        lu.analyze();
        lu.l_vals = vec![0.0; lu.l_cols.len()];
        lu.u_vals = vec![0.0; lu.u_cols.len()];
        lu.l_cols_orig = lu.l_cols.iter().map(|&c| lu.perm[c]).collect();
        lu.u_cols_orig = lu.u_cols.iter().map(|&c| lu.perm[c]).collect();
        lu.refactor(a)?;
        // Full symbolic-plus-numeric factorizations, as opposed to the
        // pattern-reusing `refactors` counter (which also ticks once here).
        nsta_obs::count!("numeric.sparse_lu.factors");
        nsta_obs::recorder().gauge_max("numeric.sparse_lu.max_factor_nnz", lu.factor_nnz() as f64);
        Ok(lu)
    }

    /// Symbolic phase: computes the merged fill-in pattern of every
    /// elimination row.
    ///
    /// Row `i`'s pattern starts as the permuted A row and, processing its
    /// below-diagonal columns `k` in ascending order, unions in U's row `k`
    /// (the classic row-merge formulation). A min-heap drives the ascending
    /// traversal because fill can introduce new below-diagonal columns
    /// mid-merge.
    fn analyze(&mut self) {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let n = self.n;
        let mut marked = vec![false; n];
        let mut touched: Vec<usize> = Vec::new();
        let mut heap: BinaryHeap<Reverse<usize>> = BinaryHeap::new();
        self.l_ptr.push(0);
        self.u_ptr.push(0);
        for i in 0..n {
            // Seed with the permuted A row (plus the diagonal, which the
            // stamped systems always carry but degenerate inputs may not).
            for &c in &self.ap_cols[self.ap_ptr[i]..self.ap_ptr[i + 1]] {
                if !marked[c] {
                    marked[c] = true;
                    touched.push(c);
                    if c < i {
                        heap.push(Reverse(c));
                    }
                }
            }
            if !marked[i] {
                marked[i] = true;
                touched.push(i);
            }
            // Merge U rows of every below-diagonal column, ascending.
            while let Some(Reverse(k)) = heap.pop() {
                self.l_cols.push(k);
                for &j in &self.u_cols[self.u_ptr[k]..self.u_ptr[k + 1]] {
                    if !marked[j] {
                        marked[j] = true;
                        touched.push(j);
                        if j < i {
                            heap.push(Reverse(j));
                        }
                    }
                }
            }
            self.l_ptr.push(self.l_cols.len());
            // Above-diagonal pattern, sorted.
            let mut uppers: Vec<usize> = touched.iter().copied().filter(|&c| c > i).collect();
            uppers.sort_unstable();
            self.u_cols.extend_from_slice(&uppers);
            self.u_ptr.push(self.u_cols.len());
            for c in touched.drain(..) {
                marked[c] = false;
            }
        }
        // L columns were pushed in heap order, which is already ascending
        // per row; nothing to sort.
    }

    /// Re-eliminates new values into the existing symbolic pattern without
    /// allocating. `a` must have the **identical pattern** to the matrix
    /// this factorization was analyzed from (same topology, new values).
    ///
    /// # Errors
    ///
    /// * [`NumericError::ShapeMismatch`] if the pattern differs.
    /// * [`NumericError::NonFinite`] if `a` contains NaN/inf.
    /// * [`NumericError::SingularMatrix`] on a vanishing pivot.
    pub fn refactor(&mut self, a: &CsrMatrix) -> Result<(), NumericError> {
        if a.rows != self.n
            || a.cols != self.n
            || a.row_ptr != self.a_row_ptr
            || a.col_idx != self.a_col_idx
        {
            return Err(NumericError::ShapeMismatch {
                got: a.nnz(),
                expected: self.a_col_idx.len(),
            });
        }
        if a.values.iter().any(|v| !v.is_finite()) {
            return Err(NumericError::NonFinite("matrix entries"));
        }
        // Fault-injection site: pretend the no-pivot elimination lost its
        // pivot, as a genuinely singular mesh would. `factor` funnels
        // through here, so both first-factor and refactor paths are
        // covered. Inert (one relaxed load) unless a plan is armed.
        if nsta_obs::fault::should_fire(nsta_obs::fault::PIVOT_LOSS) {
            return Err(NumericError::SingularMatrix {
                column: 0,
                pivot: 0.0,
            });
        }
        let w = &mut self.work;
        for i in 0..self.n {
            // Scatter the permuted A row into the dense workspace. Entries
            // of the factored pattern not present in A start at zero — `w`
            // is restored to zeros after every row below.
            for t in self.ap_ptr[i]..self.ap_ptr[i + 1] {
                w[self.ap_cols[t]] = a.values[self.ap_src[t]];
            }
            // Up-looking elimination along this row's L pattern
            // (ascending): divide by the pivot of row k, then subtract its
            // U row.
            for li in self.l_ptr[i]..self.l_ptr[i + 1] {
                let k = self.l_cols[li];
                let factor = w[k] * self.inv_diag[k];
                self.l_vals[li] = factor;
                w[k] = 0.0;
                if factor != 0.0 {
                    for ui in self.u_ptr[k]..self.u_ptr[k + 1] {
                        w[self.u_cols[ui]] -= factor * self.u_vals[ui];
                    }
                }
            }
            let pivot = w[i];
            w[i] = 0.0;
            if !(pivot.abs() >= PIVOT_TOL) {
                // Restore the workspace before bailing so a later
                // refactor starts clean.
                for ui in self.u_ptr[i]..self.u_ptr[i + 1] {
                    w[self.u_cols[ui]] = 0.0;
                }
                return Err(NumericError::SingularMatrix {
                    column: self.perm[i],
                    pivot: pivot.abs(),
                });
            }
            self.inv_diag[i] = 1.0 / pivot;
            for ui in self.u_ptr[i]..self.u_ptr[i + 1] {
                let c = self.u_cols[ui];
                self.u_vals[ui] = w[c];
                w[c] = 0.0;
            }
        }
        nsta_obs::count!("numeric.sparse_lu.refactors");
        Ok(())
    }

    /// Dimension of the factored system.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Stored entries of the factors (L strictly-lower + diagonal +
    /// U strictly-upper) — the fill-in-inclusive cost of one solve.
    pub fn factor_nnz(&self) -> usize {
        self.l_vals.len() + self.n + self.u_vals.len()
    }

    /// Solves `A·x = b` in place on original-index vectors. The
    /// fill-reducing permutation is symmetric and folded into the stored
    /// factor indices, so no permutation copies are performed: the
    /// substitutions simply visit `x` in elimination order.
    ///
    /// # Errors
    ///
    /// [`NumericError::ShapeMismatch`] if `x.len() != self.dim()`.
    pub fn solve_in_place(&self, x: &mut [f64]) -> Result<(), NumericError> {
        if x.len() != self.n {
            return Err(NumericError::ShapeMismatch {
                got: x.len(),
                expected: self.n,
            });
        }
        // Forward substitution with unit-diagonal L, in elimination order.
        // `x[perm[i]]` plays the role of the permuted vector's slot `i`.
        for i in 0..self.n {
            let oi = self.perm[i];
            let mut acc = x[oi];
            for li in self.l_ptr[i]..self.l_ptr[i + 1] {
                acc -= self.l_vals[li] * x[self.l_cols_orig[li]];
            }
            x[oi] = acc;
        }
        // Back substitution with U.
        for i in (0..self.n).rev() {
            let oi = self.perm[i];
            let mut acc = x[oi];
            for ui in self.u_ptr[i]..self.u_ptr[i + 1] {
                acc -= self.u_vals[ui] * x[self.u_cols_orig[ui]];
            }
            x[oi] = acc * self.inv_diag[i];
        }
        Ok(())
    }

    /// Solves `A·x = b` into a fresh vector.
    ///
    /// # Errors
    ///
    /// [`NumericError::ShapeMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, NumericError> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x)?;
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LuFactors;

    /// Deterministic xorshift PRNG matching the dense-matrix tests.
    fn rng(mut seed: u64) -> impl FnMut() -> f64 {
        move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        }
    }

    #[test]
    fn triplets_sum_duplicates_in_insertion_order() {
        let mut t = TripletMatrix::new(2, 3);
        t.add(0, 2, 1.0);
        t.add(0, 0, 2.0);
        t.add(0, 2, 0.5); // duplicate of (0, 2)
        t.add(1, 1, -1.0);
        assert_eq!(t.entry_count(), 4);
        let a = t.to_csr();
        assert_eq!(a.rows(), 2);
        assert_eq!(a.cols(), 3);
        assert_eq!(a.nnz(), 3);
        assert_eq!(a.row_ptr(), &[0, 2, 3]);
        assert_eq!(a.col_idx(), &[0, 2, 1]);
        assert_eq!(a.get(0, 2), 1.5);
        assert_eq!(a.get(0, 0), 2.0);
        assert_eq!(a.get(1, 1), -1.0);
        assert_eq!(a.get(1, 0), 0.0); // outside the pattern
    }

    #[test]
    fn empty_rows_are_represented() {
        let mut t = TripletMatrix::new(4, 4);
        t.add(0, 0, 1.0);
        t.add(3, 3, 2.0);
        let a = t.to_csr();
        assert_eq!(a.row_ptr(), &[0, 1, 1, 1, 2]);
        let (cols, vals) = a.row(1);
        assert!(cols.is_empty() && vals.is_empty());
        // Mat-vec over empty rows yields zero.
        let mut y = vec![9.0; 4];
        a.mul_vec_into(&[1.0, 1.0, 1.0, 1.0], &mut y).unwrap();
        assert_eq!(y, vec![1.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn fully_empty_matrix_round_trips() {
        let t = TripletMatrix::new(3, 3);
        let a = t.to_csr();
        assert_eq!(a.nnz(), 0);
        assert_eq!(a.row_ptr(), &[0, 0, 0, 0]);
        let mut y = vec![1.0; 3];
        a.mul_vec_into(&[1.0; 3], &mut y).unwrap();
        assert_eq!(y, vec![0.0; 3]);
    }

    #[test]
    fn mat_vec_matches_dense() {
        let mut next = rng(0xfeed_beef);
        let n = 17;
        let mut t = TripletMatrix::new(n, n);
        for r in 0..n {
            for c in 0..n {
                // ~30% fill.
                if next() > 0.2 {
                    continue;
                }
                t.add(r, c, next());
            }
        }
        let a = t.to_csr();
        let d = a.to_dense();
        let x: Vec<f64> = (0..n).map(|_| next()).collect();
        let mut y = vec![0.0; n];
        a.mul_vec_into(&x, &mut y).unwrap();
        let yd = d.mul_vec(&x).unwrap();
        for (s, dd) in y.iter().zip(&yd) {
            assert!((s - dd).abs() < 1e-12);
        }
        // Shape mismatches are rejected.
        assert!(a.mul_vec_into(&x[..n - 1], &mut y).is_err());
    }

    /// Tridiagonal RC-style stamp: the shape the transient solver factors.
    fn tridiagonal(n: usize, diag: f64, off: f64) -> CsrMatrix {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.add(i, i, diag);
            if i > 0 {
                t.add(i, i - 1, off);
            }
            if i + 1 < n {
                t.add(i, i + 1, off);
            }
        }
        t.to_csr()
    }

    #[test]
    fn tridiagonal_factor_has_no_fill_and_matches_dense() {
        let a = tridiagonal(40, 4.0, -1.0);
        let lu = SparseLu::factor(&a).unwrap();
        // A tridiagonal no-pivot LU fills nothing: nnz(L+D+U) == nnz(A).
        assert_eq!(lu.factor_nnz(), a.nnz());
        let dense = LuFactors::factor(&a.to_dense()).unwrap();
        let b: Vec<f64> = (0..40).map(|i| (i as f64 * 0.37).sin()).collect();
        let xs = lu.solve(&b).unwrap();
        let xd = dense.solve(&b).unwrap();
        for (s, d) in xs.iter().zip(&xd) {
            assert!((s - d).abs() < 1e-11);
        }
    }

    #[test]
    fn random_diagonally_dominant_systems_match_dense() {
        let mut next = rng(0x9e3779b97f4a7c15);
        for n in [1usize, 2, 5, 17, 40, 80] {
            let mut t = TripletMatrix::new(n, n);
            for r in 0..n {
                for c in 0..n {
                    if r != c && next() > 0.1 {
                        continue; // ~20% off-diagonal fill
                    }
                    t.add(r, c, next());
                }
                t.add(r, r, 2.0 * n as f64);
            }
            let a = t.to_csr();
            let b: Vec<f64> = (0..n).map(|_| next()).collect();
            let lu = SparseLu::factor(&a).unwrap();
            let x = lu.solve(&b).unwrap();
            let mut back = vec![0.0; n];
            a.mul_vec_into(&x, &mut back).unwrap();
            for (bi, yi) in b.iter().zip(&back) {
                assert!((bi - yi).abs() < 1e-9, "n={n} residual too large");
            }
        }
    }

    #[test]
    fn symbolic_refactor_reuses_the_pattern() {
        let a1 = tridiagonal(25, 4.0, -1.0);
        let mut lu = SparseLu::factor(&a1).unwrap();
        let b: Vec<f64> = (0..25).map(|i| 1.0 + i as f64).collect();
        let x1 = lu.solve(&b).unwrap();

        // Same pattern, different values: refactor in place.
        let a2 = tridiagonal(25, 6.5, -2.0);
        lu.refactor(&a2).unwrap();
        let x2 = lu.solve(&b).unwrap();
        let fresh = SparseLu::factor(&a2).unwrap().solve(&b).unwrap();
        assert_eq!(x2, fresh, "refactor must reproduce a fresh factorization");
        assert_ne!(x1, x2);

        // Refactoring back reproduces the original solution exactly.
        lu.refactor(&a1).unwrap();
        assert_eq!(lu.solve(&b).unwrap(), x1);

        // A different pattern is rejected.
        let bigger = tridiagonal(26, 4.0, -1.0);
        assert!(matches!(
            lu.refactor(&bigger),
            Err(NumericError::ShapeMismatch { .. })
        ));
        let mut t = TripletMatrix::new(25, 25);
        for i in 0..25 {
            t.add(i, i, 4.0);
        }
        assert!(matches!(
            lu.refactor(&t.to_csr()),
            Err(NumericError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn fill_in_is_handled() {
        // Arrow matrix: dense last row/column forces fill into the last
        // row during elimination of every leading column.
        let n = 12;
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.add(i, i, 10.0);
            if i + 1 < n {
                t.add(i, n - 1, 1.0);
                t.add(n - 1, i, 1.0);
            }
        }
        let a = t.to_csr();
        let lu = SparseLu::factor(&a).unwrap();
        let dense = LuFactors::factor(&a.to_dense()).unwrap();
        let b: Vec<f64> = (0..n).map(|i| i as f64 - 3.0).collect();
        let xs = lu.solve(&b).unwrap();
        let xd = dense.solve(&b).unwrap();
        for (s, d) in xs.iter().zip(&xd) {
            assert!((s - d).abs() < 1e-11);
        }
    }

    #[test]
    fn reverse_arrow_fill_propagates() {
        // Dense FIRST row/column: eliminating column 0 fills the entire
        // trailing submatrix — the worst case for the symbolic merge.
        let n = 9;
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.add(i, i, 10.0);
            if i > 0 {
                t.add(0, i, 1.0);
                t.add(i, 0, 1.0);
            }
        }
        let a = t.to_csr();
        let lu = SparseLu::factor(&a).unwrap();
        let dense = LuFactors::factor(&a.to_dense()).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let xs = lu.solve(&b).unwrap();
        let xd = dense.solve(&b).unwrap();
        for (s, d) in xs.iter().zip(&xd) {
            assert!((s - d).abs() < 1e-11);
        }
    }

    #[test]
    fn singular_and_nonfinite_are_reported() {
        // A structurally zero diagonal entry cannot be repaired without
        // pivoting, whatever the elimination order.
        let mut t = TripletMatrix::new(2, 2);
        t.add(0, 0, 1.0);
        t.add(1, 1, 0.0);
        match SparseLu::factor(&t.to_csr()) {
            Err(NumericError::SingularMatrix { column, .. }) => assert_eq!(column, 1),
            other => panic!("expected singular, got {other:?}"),
        }
        let mut t = TripletMatrix::new(2, 2);
        t.add(0, 0, f64::NAN);
        t.add(1, 1, 1.0);
        assert!(matches!(
            SparseLu::factor(&t.to_csr()),
            Err(NumericError::NonFinite(_))
        ));
        // Non-square.
        let t = TripletMatrix::new(2, 3);
        assert!(matches!(
            SparseLu::factor(&t.to_csr()),
            Err(NumericError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn failed_refactor_leaves_workspace_clean() {
        let good = tridiagonal(10, 4.0, -1.0);
        let mut lu = SparseLu::factor(&good).unwrap();
        // Same pattern, singular values: an all-zero row is singular in
        // every elimination order, so the no-pivot refactor must fail
        // partway through (leaving rows before it already eliminated).
        let mut bad = good.clone();
        for c in [4, 5, 6] {
            let k = bad.value_index(5, c).unwrap();
            bad.values_mut()[k] = 0.0;
        }
        assert!(lu.refactor(&bad).is_err());
        // The workspace must be clean: a subsequent good refactor solves
        // exactly like a fresh factorization.
        lu.refactor(&good).unwrap();
        let b: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert_eq!(
            lu.solve(&b).unwrap(),
            SparseLu::factor(&good).unwrap().solve(&b).unwrap()
        );
    }

    #[test]
    fn value_index_and_add_at() {
        let a = tridiagonal(4, 2.0, -1.0);
        assert!(a.value_index(0, 0).is_some());
        assert!(a.value_index(0, 2).is_none());
        assert!(a.value_index(9, 0).is_none());
        let mut b = a.clone();
        b.add_at(1, 2, 0.5);
        assert_eq!(b.get(1, 2), -0.5);
        assert!(a.same_pattern(&b));
        assert!(!a.same_pattern(&tridiagonal(5, 2.0, -1.0)));
    }

    #[test]
    fn add_scaled_merges_union_patterns() {
        let mut tc = TripletMatrix::new(3, 3);
        tc.add(0, 0, 2.0);
        tc.add(1, 2, 5.0);
        let c = tc.to_csr();
        let mut tg = TripletMatrix::new(3, 3);
        tg.add(0, 0, 4.0);
        tg.add(0, 1, -4.0);
        tg.add(2, 2, 1.0);
        let g = tg.to_csr();
        let s = c.add_scaled(&g, 0.5).unwrap();
        let expect = c.to_dense().add_scaled(&g.to_dense(), 0.5).unwrap();
        assert_eq!(s.to_dense(), expect);
        // Shared entries compute a + scale·b exactly.
        assert_eq!(s.get(0, 0), 2.0 + 0.5 * 4.0);
        assert_eq!(s.get(0, 1), 0.5 * -4.0);
        assert_eq!(s.get(1, 2), 5.0);
        assert_eq!(s.nnz(), 4);
        // Shape mismatch is rejected.
        let other = TripletMatrix::new(2, 3).to_csr();
        assert!(c.add_scaled(&other, 1.0).is_err());
    }

    #[test]
    fn one_by_one_system() {
        let mut t = TripletMatrix::new(1, 1);
        t.add(0, 0, 4.0);
        let lu = SparseLu::factor(&t.to_csr()).unwrap();
        assert_eq!(lu.solve(&[2.0]).unwrap(), vec![0.5]);
        assert!(lu.solve(&[1.0, 2.0]).is_err());
    }
}
