//! Property-based tests of the numeric kernels.

use nsta_numeric::interp;
use nsta_numeric::{DenseMatrix, LineFit, LuFactors};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Interpolation reproduces the tabulated points exactly.
    #[test]
    fn interp_hits_knots(ys in prop::collection::vec(-10.0f64..10.0, 2..20)) {
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        for (x, y) in xs.iter().zip(&ys) {
            let v = interp::interp1(&xs, &ys, *x);
            prop_assert!((v - y).abs() < 1e-12);
        }
    }

    /// Interpolation is monotone between adjacent knots for monotone data.
    #[test]
    fn interp_preserves_monotonicity(mut ys in prop::collection::vec(0.0f64..10.0, 3..15)) {
        ys.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        let mut prev = f64::NEG_INFINITY;
        for k in 0..100 {
            let x = (ys.len() - 1) as f64 * k as f64 / 99.0;
            let v = interp::interp1(&xs, &ys, x);
            prop_assert!(v >= prev - 1e-12);
            prev = v;
        }
    }

    /// Bilinear interpolation is exact on affine surfaces.
    #[test]
    fn bilinear_reproduces_planes(
        a in -3.0f64..3.0,
        b in -3.0f64..3.0,
        c in -3.0f64..3.0,
        x in -1.0f64..4.0,
        y in -1.0f64..4.0,
    ) {
        let xs = [0.0, 1.0, 3.0];
        let ys = [0.0, 2.0];
        let mut values = Vec::new();
        for &xi in &xs {
            for &yi in &ys {
                values.push(a * xi + b * yi + c);
            }
        }
        let v = interp::bilinear(&xs, &ys, &values, x, y).expect("valid grid");
        prop_assert!((v - (a * x + b * y + c)).abs() < 1e-10);
    }

    /// Weighted least squares with uniform weights equals plain least
    /// squares.
    #[test]
    fn uniform_weights_match_ols(
        ys in prop::collection::vec(-5.0f64..5.0, 3..25),
        w in 0.1f64..10.0,
    ) {
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64 * 0.5).collect();
        let ws = vec![w; ys.len()];
        let plain = LineFit::least_squares(&xs, &ys).expect("fit");
        let weighted = LineFit::weighted_least_squares(&xs, &ys, &ws).expect("fit");
        prop_assert!((plain.a - weighted.a).abs() < 1e-9);
        prop_assert!((plain.b - weighted.b).abs() < 1e-9);
    }

    /// The fitted line passes through the (weighted) centroid.
    #[test]
    fn fit_passes_through_centroid(ys in prop::collection::vec(-5.0f64..5.0, 3..25)) {
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        let fit = LineFit::least_squares(&xs, &ys).expect("fit");
        let xbar = xs.iter().sum::<f64>() / xs.len() as f64;
        let ybar = ys.iter().sum::<f64>() / ys.len() as f64;
        prop_assert!((fit.eval(xbar) - ybar).abs() < 1e-9);
    }

    /// LU: solving against the identity recovers matrix columns (A·A⁻¹ = I).
    #[test]
    fn lu_inverse_columns(n in 2usize..8, seed in any::<u64>()) {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut a = DenseMatrix::zeros(n, n);
        for r in 0..n {
            for c in 0..n {
                a.set(r, c, next());
            }
            a.add(r, r, 2.0 * n as f64);
        }
        let lu = LuFactors::factor(&a).expect("dominant");
        for col in 0..n {
            let mut e = vec![0.0; n];
            e[col] = 1.0;
            let x = lu.solve(&e).expect("solve");
            let back = a.mul_vec(&x).expect("shape");
            for (i, v) in back.iter().enumerate() {
                let want = if i == col { 1.0 } else { 0.0 };
                prop_assert!((v - want).abs() < 1e-9);
            }
        }
    }
}
