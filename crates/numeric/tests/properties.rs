//! Property-style tests of the numeric kernels.
//!
//! The workspace builds offline, so instead of a property-testing framework
//! these run each invariant over a deterministic seeded sweep of inputs.

// Integration tests panic on failure by design; the workspace's
// library-only unwrap/expect denies do not apply here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use nsta_numeric::interp;
use nsta_numeric::{DenseMatrix, LineFit, LuFactors};

/// Deterministic xorshift64 sampler shared by the sweeps below.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next_unit(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_unit()
    }

    fn usize_range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_unit() * (hi - lo) as f64) as usize
    }

    fn vec(&mut self, lo: f64, hi: f64, len: usize) -> Vec<f64> {
        (0..len).map(|_| self.range(lo, hi)).collect()
    }
}

/// Interpolation reproduces the tabulated points exactly.
#[test]
fn interp_hits_knots() {
    let mut rng = Rng::new(0xA11CE);
    for _ in 0..128 {
        let n = rng.usize_range(2, 20);
        let ys = rng.vec(-10.0, 10.0, n);
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        for (x, y) in xs.iter().zip(&ys) {
            let v = interp::interp1(&xs, &ys, *x);
            assert!((v - y).abs() < 1e-12);
        }
    }
}

/// Interpolation is monotone between adjacent knots for monotone data.
#[test]
fn interp_preserves_monotonicity() {
    let mut rng = Rng::new(0xB0B);
    for _ in 0..128 {
        let n = rng.usize_range(3, 15);
        let mut ys = rng.vec(0.0, 10.0, n);
        ys.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut prev = f64::NEG_INFINITY;
        for k in 0..100 {
            let x = (n - 1) as f64 * k as f64 / 99.0;
            let v = interp::interp1(&xs, &ys, x);
            assert!(v >= prev - 1e-12);
            prev = v;
        }
    }
}

/// Bilinear interpolation is exact on affine surfaces.
#[test]
fn bilinear_reproduces_planes() {
    let mut rng = Rng::new(0xCAFE);
    for _ in 0..128 {
        let a = rng.range(-3.0, 3.0);
        let b = rng.range(-3.0, 3.0);
        let c = rng.range(-3.0, 3.0);
        let x = rng.range(-1.0, 4.0);
        let y = rng.range(-1.0, 4.0);
        let xs = [0.0, 1.0, 3.0];
        let ys = [0.0, 2.0];
        let mut values = Vec::new();
        for &xi in &xs {
            for &yi in &ys {
                values.push(a * xi + b * yi + c);
            }
        }
        let v = interp::bilinear(&xs, &ys, &values, x, y).expect("valid grid");
        assert!((v - (a * x + b * y + c)).abs() < 1e-10);
    }
}

/// Weighted least squares with uniform weights equals plain least squares.
#[test]
fn uniform_weights_match_ols() {
    let mut rng = Rng::new(0xD00D);
    for _ in 0..128 {
        let n = rng.usize_range(3, 25);
        let ys = rng.vec(-5.0, 5.0, n);
        let w = rng.range(0.1, 10.0);
        let xs: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
        let ws = vec![w; n];
        let plain = LineFit::least_squares(&xs, &ys).expect("fit");
        let weighted = LineFit::weighted_least_squares(&xs, &ys, &ws).expect("fit");
        assert!((plain.a - weighted.a).abs() < 1e-9);
        assert!((plain.b - weighted.b).abs() < 1e-9);
    }
}

/// The fitted line passes through the (weighted) centroid.
#[test]
fn fit_passes_through_centroid() {
    let mut rng = Rng::new(0xFEED);
    for _ in 0..128 {
        let n = rng.usize_range(3, 25);
        let ys = rng.vec(-5.0, 5.0, n);
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let fit = LineFit::least_squares(&xs, &ys).expect("fit");
        let xbar = xs.iter().sum::<f64>() / xs.len() as f64;
        let ybar = ys.iter().sum::<f64>() / ys.len() as f64;
        assert!((fit.eval(xbar) - ybar).abs() < 1e-9);
    }
}

/// LU: solving against the identity recovers matrix columns (A·A⁻¹ = I).
#[test]
fn lu_inverse_columns() {
    let mut rng = Rng::new(0x1DEA);
    for _ in 0..64 {
        let n = rng.usize_range(2, 8);
        let mut a = DenseMatrix::zeros(n, n);
        for r in 0..n {
            for c in 0..n {
                a.set(r, c, rng.range(-0.5, 0.5));
            }
            a.add(r, r, 2.0 * n as f64);
        }
        let lu = LuFactors::factor(&a).expect("dominant");
        for col in 0..n {
            let mut e = vec![0.0; n];
            e[col] = 1.0;
            let x = lu.solve(&e).expect("solve");
            let back = a.mul_vec(&x).expect("shape");
            for (i, v) in back.iter().enumerate() {
                let want = if i == col { 1.0 } else { 0.0 };
                assert!((v - want).abs() < 1e-9);
            }
        }
    }
}
