//! Deterministic fault injection for recovery-path testing.
//!
//! The analysis pipeline carries a fault-tolerance layer (numeric
//! fallback chain, per-victim isolation, panic-safe scheduling) whose
//! error paths never run on healthy inputs. This module lets a harness
//! (`spefbus --inject`, or a test) *force* those paths deterministically:
//! each named [`site`](self#sites) in the pipeline asks [`should_fire`]
//! whether to misbehave, and an armed plan answers `true` at
//! seed-reproducible opportunity indices.
//!
//! # Sites
//!
//! * [`PIVOT_LOSS`] — a sparse LU factor/refactor reports a singular
//!   pivot instead of eliminating.
//! * [`NAN_SOLVE`] — a transient sweep's state vector is poisoned with
//!   NaN after the initial-condition solve.
//! * [`WORKER_PANIC`] — a crosstalk cone task panics at entry.
//! * [`CACHE_POISON`] — a thread panics while holding the topo-cache
//!   lock, leaving the mutex poisoned.
//!
//! # Determinism and overhead
//!
//! Disarmed (the default, and always the production state) every
//! [`should_fire`] call is one relaxed atomic load and an early return —
//! the same contract as the disabled [`Recorder`](crate::Recorder) —
//! so zero-fault runs are bit-identical to builds without the hooks.
//! Armed, each site draws its firing opportunities from an in-tree
//! xorshift PRNG seeded from `(seed, site)`, so the same spec + seed
//! fires at the same sites on every run regardless of thread count
//! (opportunity counters are global atomics; with several workers the
//! *winner* of a racy opportunity index may differ, but the number of
//! fired faults does not, and the recovery machinery under test is
//! required to restore parity either way).
//!
//! The plan is process-global: arm/disarm around exactly one analysis,
//! and serialize tests that use it.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Sparse-LU factor/refactor reports a lost pivot.
pub const PIVOT_LOSS: usize = 0;
/// Transient sweep state vector is poisoned with NaN.
pub const NAN_SOLVE: usize = 1;
/// A crosstalk cone worker task panics.
pub const WORKER_PANIC: usize = 2;
/// The topo-cache mutex is poisoned by a panicking holder.
pub const CACHE_POISON: usize = 3;

const SITE_COUNT: usize = 4;
const SITE_NAMES: [&str; SITE_COUNT] = ["pivot-loss", "nan-solve", "worker-panic", "cache-poison"];

/// Fast path: is any fault plan armed at all?
static ARMED: AtomicBool = AtomicBool::new(false);

/// Per-site opportunity counters (how many times the site has been
/// consulted since arming) — global atomics so firing indices are
/// meaningful across worker threads.
static OPPORTUNITIES: [AtomicU64; SITE_COUNT] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// Per-site fired counters.
static FIRED: [AtomicU64; SITE_COUNT] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// The armed plan: for each site, the sorted opportunity indices at
/// which it fires (empty = site not armed).
static PLAN: Mutex<Option<[Vec<u64>; SITE_COUNT]>> = Mutex::new(None);

/// Minimal xorshift64* PRNG — deterministic, zero-dependency, good
/// enough for fault placement and input mutation. Public so robustness
/// tests (parser fuzzing, mutation smoke) reuse the same generator.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seeds the generator; a zero seed is remapped to a fixed odd
    /// constant (xorshift has a fixed point at 0).
    pub fn new(seed: u64) -> Self {
        Self {
            state: if seed == 0 { 0x9E3779B97F4A7C15 } else { seed },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform-ish value in `[0, bound)`; `bound` must be non-zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

fn plan_guard() -> std::sync::MutexGuard<'static, Option<[Vec<u64>; SITE_COUNT]>> {
    // The plan is only read/replaced under the lock, never left
    // half-written, so a poisoned guard is safe to take over.
    PLAN.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn site_index(name: &str) -> Option<usize> {
    SITE_NAMES.iter().position(|s| *s == name)
}

/// Validates an `--inject` spec without arming it: comma-separated site
/// names, each optionally `name:count`. Returns the per-site fire
/// counts.
pub fn parse_spec(spec: &str) -> Result<[u64; SITE_COUNT], String> {
    let mut counts = [0u64; SITE_COUNT];
    let mut any = false;
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (name, count) = match part.split_once(':') {
            Some((n, c)) => {
                let count: u64 = c
                    .parse()
                    .map_err(|_| format!("bad fault count {c:?} in {part:?}"))?;
                (n, count)
            }
            None => (part, 1),
        };
        let idx = site_index(name).ok_or_else(|| {
            format!(
                "unknown fault site {name:?} (expected one of {})",
                SITE_NAMES.join(", ")
            )
        })?;
        if count == 0 {
            return Err(format!("fault count for {name:?} must be >= 1"));
        }
        counts[idx] += count;
        any = true;
    }
    if !any {
        return Err("empty fault spec".to_string());
    }
    Ok(counts)
}

/// Arms a fault plan. `spec` is comma-separated site names (optionally
/// `name:count` to fire more than once); `seed` makes the firing
/// opportunity indices reproducible. Replaces any previous plan and
/// resets all counters.
pub fn arm(spec: &str, seed: u64) -> Result<(), String> {
    let counts = parse_spec(spec)?;
    let mut plan: [Vec<u64>; SITE_COUNT] = Default::default();
    for (site, &count) in counts.iter().enumerate() {
        if count == 0 {
            continue;
        }
        // Independent stream per (seed, site); targets are cumulative
        // small offsets so every site fires within its first few
        // consultations — pipelines with only a handful of opportunities
        // (tiny designs) still reach them.
        let mut rng = XorShift64::new(seed ^ (0xA5A5_0000 + site as u64));
        let mut next = rng.next_below(4);
        for _ in 0..count {
            plan[site].push(next);
            next += 1 + rng.next_below(4);
        }
    }
    let mut guard = plan_guard();
    for site in 0..SITE_COUNT {
        OPPORTUNITIES[site].store(0, Ordering::Relaxed);
        FIRED[site].store(0, Ordering::Relaxed);
    }
    *guard = Some(plan);
    ARMED.store(true, Ordering::Relaxed);
    Ok(())
}

/// Disarms fault injection. Counters from the last armed run stay
/// readable via [`fired_counts`] until the next [`arm`].
pub fn disarm() {
    ARMED.store(false, Ordering::Relaxed);
    *plan_guard() = None;
}

/// Whether a plan is currently armed (one relaxed load).
#[inline]
pub fn enabled() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Consulted by an instrumented pipeline site: returns `true` when the
/// armed plan schedules a fault at this site's current opportunity
/// index. Disarmed, this is one relaxed atomic load.
#[inline]
pub fn should_fire(site: usize) -> bool {
    if !ARMED.load(Ordering::Relaxed) {
        return false;
    }
    should_fire_slow(site)
}

#[cold]
fn should_fire_slow(site: usize) -> bool {
    let index = OPPORTUNITIES[site].fetch_add(1, Ordering::Relaxed);
    let guard = plan_guard();
    let Some(plan) = guard.as_ref() else {
        return false;
    };
    if plan[site].contains(&index) {
        FIRED[site].fetch_add(1, Ordering::Relaxed);
        true
    } else {
        false
    }
}

/// Per-site `(name, fired)` counts for the current/most recent plan.
pub fn fired_counts() -> Vec<(&'static str, u64)> {
    SITE_NAMES
        .iter()
        .enumerate()
        .map(|(i, name)| (*name, FIRED[i].load(Ordering::Relaxed)))
        .collect()
}

/// Total faults fired by the current/most recent plan.
pub fn total_fired() -> u64 {
    FIRED.iter().map(|f| f.load(Ordering::Relaxed)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests touching the process-global plan.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn xorshift_is_deterministic_and_nonzero() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            let v = a.next_u64();
            assert_eq!(v, b.next_u64());
            assert_ne!(v, 0);
        }
        let mut z = XorShift64::new(0);
        assert_ne!(z.next_u64(), 0);
    }

    #[test]
    fn disarmed_sites_never_fire() {
        let _g = guard();
        disarm();
        assert!(!enabled());
        for site in 0..SITE_COUNT {
            for _ in 0..32 {
                assert!(!should_fire(site));
            }
        }
    }

    #[test]
    fn armed_plan_fires_exactly_the_requested_counts() {
        let _g = guard();
        arm("pivot-loss,nan-solve:2", 7).unwrap();
        let mut fired = [0u64; SITE_COUNT];
        for site in 0..SITE_COUNT {
            for _ in 0..64 {
                if should_fire(site) {
                    fired[site] += 1;
                }
            }
        }
        assert_eq!(fired[PIVOT_LOSS], 1);
        assert_eq!(fired[NAN_SOLVE], 2);
        assert_eq!(fired[WORKER_PANIC], 0);
        assert_eq!(fired[CACHE_POISON], 0);
        assert_eq!(total_fired(), 3);
        let counts = fired_counts();
        assert_eq!(counts[PIVOT_LOSS], ("pivot-loss", 1));
        assert_eq!(counts[NAN_SOLVE], ("nan-solve", 2));
        disarm();
    }

    #[test]
    fn same_seed_fires_at_same_opportunity_indices() {
        let _g = guard();
        let run = |seed: u64| {
            arm("worker-panic:3", seed).unwrap();
            let mut indices = Vec::new();
            for i in 0..64 {
                if should_fire(WORKER_PANIC) {
                    indices.push(i);
                }
            }
            disarm();
            indices
        };
        let a = run(11);
        let b = run(11);
        let c = run(12);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        // First target lands within the first four opportunities so tiny
        // pipelines still reach it.
        assert!(a[0] < 4);
        assert_ne!(a, c, "different seeds should move the firing points");
    }

    #[test]
    fn spec_parsing_rejects_garbage() {
        assert!(parse_spec("pivot-loss").is_ok());
        assert!(parse_spec("pivot-loss, cache-poison:4").is_ok());
        assert!(parse_spec("").is_err());
        assert!(parse_spec("pivot-loss:0").is_err());
        assert!(parse_spec("pivot-loss:x").is_err());
        assert!(parse_spec("meltdown").is_err());
    }
}
