//! Zero-dependency instrumentation for the noisy-sta pipeline: scoped
//! spans, counters/gauges, and exporters (Chrome trace-event JSON, flat
//! metrics snapshots), plus the resource-governance primitives
//! ([`govern`]: deadlines, cooperative cancellation, fake clocks) the
//! pipeline polls to bound its own wall-clock cost.
//!
//! The workspace builds fully offline, so this crate replaces the
//! `tracing` ecosystem with a small in-tree layer shaped around the STA
//! pipeline's needs: per-phase and per-cone wall-clock spans, solver and
//! cache counters, and per-iteration fixed-point records — all collected
//! on one [`Recorder`] and exported after the run.
//!
//! # Recorder model
//!
//! A [`Recorder`] is a thread-safe sink of trace events and metrics. The
//! process-wide instance behind [`recorder()`] is what the pipeline
//! crates instrument against (the [`span!`]/[`count!`] macros target it);
//! fresh instances ([`Recorder::new`]) exist for isolated tests.
//!
//! * **Spans** — [`Recorder::span`] returns an RAII guard that records a
//!   Chrome `"X"` (complete) event on drop, timed on the recorder's
//!   clock, tagged with a per-thread `tid` (assigned in first-use order)
//!   and any [`Span::set_arg`] key/values.
//! * **Counters** — [`Recorder::add`] accumulates named `u64` totals;
//!   concurrent adds from worker threads never lose updates (each named
//!   counter is an atomic cell behind a registry lock taken only to
//!   resolve the name).
//! * **Gauges** — [`Recorder::gauge_set`]/[`Recorder::gauge_max`] track
//!   named `f64` levels (e.g. the largest factored-system nnz).
//! * **Instants** — [`Recorder::instant`] records a point event (Chrome
//!   `"i"`) carrying args, for records with no natural duration.
//!
//! # Overhead contract
//!
//! Observability is **off by default** and the disabled path is designed
//! for hot loops: every instrumentation site costs one relaxed atomic
//! load and an early return — no clock read, no allocation, no lock.
//! Recording never feeds back into any computation, so instrumented and
//! uninstrumented analyses are **bit-identical** (the `nsta-sta` parity
//! test and the `spefbus` in-binary gate both assert this), and the
//! enabled-path wall-clock overhead on the windowed spefbus phase is
//! budgeted at 5% (enforced in-binary and in CI).
//!
//! Keep span/counter *names* `'static` string literals; dynamic context
//! belongs in args (plain numbers, evaluated eagerly — keep them cheap).
//!
//! # Clocks
//!
//! The default clock is monotonic ([`std::time::Instant`], nanoseconds
//! since the recorder's construction). [`Recorder::use_fake_clock`]
//! substitutes a deterministic counter that advances by a fixed step per
//! reading — golden tests assert exact exported timestamps with it.
//!
//! # Exporter formats
//!
//! * [`Recorder::chrome_trace`] renders the event buffer as a Chrome
//!   trace-event JSON array (the "JSON Array Format"): complete spans as
//!   `{"name", "cat", "ph": "X", "ts", "dur", "pid", "tid", "args"}` and
//!   instants as `"ph": "i"` with thread scope. Timestamps are
//!   microseconds (fractional, rebased so the earliest event is 0), one
//!   `pid` per analysis (the caller picks it), one `tid` per recording
//!   thread. The output loads directly in Perfetto
//!   (<https://ui.perfetto.dev>) or `chrome://tracing`.
//! * [`Recorder::metrics`] snapshots every counter and gauge as a flat,
//!   name-sorted `(name, value)` list — the `metrics` section of
//!   `BENCH_spefbus.json`.
//!
//! ```
//! use nsta_obs::Recorder;
//!
//! let rec = Recorder::new();
//! rec.enable();
//! rec.use_fake_clock(1_000); // 1 µs per clock reading
//! {
//!     let mut span = rec.span_cat("demo", "outer");
//!     span.set_arg("items", 3.0);
//!     rec.add("demo.widgets", 3);
//! }
//! let trace = rec.chrome_trace(1);
//! assert!(trace.contains(r#""name":"outer""#));
//! assert_eq!(rec.metrics().get("demo.widgets"), Some(3.0));
//! ```

#![forbid(unsafe_code)]

mod export;
pub mod fault;
pub mod govern;
mod recorder;

pub use fault::XorShift64;
pub use govern::{CancelToken, Deadline, FakeClock};
pub use recorder::{EventKind, MetricsSnapshot, Recorder, Span, TraceEvent};

use std::sync::OnceLock;

/// The process-wide recorder every pipeline crate instruments against.
///
/// Starts disabled; `spefbus --trace/--metrics` (or a test) enables it
/// around the run it wants observed.
pub fn recorder() -> &'static Recorder {
    static GLOBAL: OnceLock<Recorder> = OnceLock::new();
    GLOBAL.get_or_init(Recorder::new)
}

/// Opens a scoped span on the global [`recorder()`]: records one Chrome
/// `"X"` event from macro invocation to guard drop.
///
/// Bind the result (`let _span = span!("phase");`) — `let _ = span!(...)`
/// drops the guard immediately and records a zero-length span. Optional
/// `"key" => value` pairs become event args; values are evaluated eagerly
/// (even when recording is off), so keep them cheap scalars.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::recorder().span($name)
    };
    ($name:expr, $($k:literal => $v:expr),+ $(,)?) => {{
        let mut __span = $crate::recorder().span($name);
        $(__span.set_arg($k, ($v) as f64);)+
        __span
    }};
}

/// Bumps a named counter on the global [`recorder()`] (no-op while
/// recording is off).
#[macro_export]
macro_rules! count {
    ($name:literal) => {
        $crate::recorder().add($name, 1)
    };
    ($name:literal, $n:expr) => {
        $crate::recorder().add($name, ($n) as u64)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_recorder_starts_disabled_and_macros_are_noops() {
        // Deliberately NOT enabling the global recorder: other tests (and
        // production defaults) rely on the disabled path recording
        // nothing, so the macros must leave no trace here.
        let before = recorder().event_count();
        {
            let _span = span!("lib.test_noop");
            count!("lib.test_noop_counter", 7);
        }
        assert_eq!(recorder().event_count(), before);
        assert_eq!(recorder().metrics().get("lib.test_noop_counter"), None);
    }
}
