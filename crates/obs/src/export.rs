//! Exporters: Chrome trace-event JSON and the flat metrics snapshot.

use crate::recorder::{EventKind, Recorder, TraceEvent};

impl Recorder {
    /// Renders the event buffer as a Chrome trace-event JSON array.
    ///
    /// Complete spans become `ph: "X"` records, instants `ph: "i"` with
    /// thread scope. Timestamps are microseconds rebased so the earliest
    /// event starts at 0; `pid` is the caller's analysis id and `tid` the
    /// recording thread (first-use order). The output loads directly in
    /// Perfetto or `chrome://tracing`.
    pub fn chrome_trace(&self, pid: u64) -> String {
        let events = self.events_snapshot();
        let base_ns = events.iter().map(|e| e.ts_ns).min().unwrap_or(0);
        let mut out = String::with_capacity(64 + events.len() * 96);
        out.push('[');
        for (i, event) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            write_event(&mut out, event, pid, base_ns);
        }
        out.push_str("\n]\n");
        out
    }
}

fn write_event(out: &mut String, event: &TraceEvent, pid: u64, base_ns: u64) {
    out.push_str("{\"name\":\"");
    escape_into(out, &event.name);
    out.push_str("\",\"cat\":\"");
    escape_into(out, event.cat);
    out.push_str("\",\"ph\":\"");
    match event.kind {
        EventKind::Complete { .. } => out.push('X'),
        EventKind::Instant => out.push('i'),
    }
    out.push_str("\",\"ts\":");
    push_micros(out, event.ts_ns - base_ns);
    if let EventKind::Complete { dur_ns } = event.kind {
        out.push_str(",\"dur\":");
        push_micros(out, dur_ns);
    }
    if matches!(event.kind, EventKind::Instant) {
        out.push_str(",\"s\":\"t\"");
    }
    out.push_str(",\"pid\":");
    out.push_str(&pid.to_string());
    out.push_str(",\"tid\":");
    out.push_str(&event.tid.to_string());
    if !event.args.is_empty() {
        out.push_str(",\"args\":{");
        for (j, (key, value)) in event.args.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push('"');
            escape_into(out, key);
            out.push_str("\":");
            push_f64(out, *value);
        }
        out.push('}');
    }
    out.push('}');
}

/// Nanoseconds → microseconds with fractional part, no trailing zeros
/// beyond what's needed (integers render bare: `12`, not `12.0`).
fn push_micros(out: &mut String, ns: u64) {
    let whole = ns / 1_000;
    let frac = ns % 1_000;
    out.push_str(&whole.to_string());
    if frac != 0 {
        let frac_str = format!("{frac:03}");
        let trimmed = frac_str.trim_end_matches('0');
        out.push('.');
        out.push_str(trimmed);
    }
}

fn push_f64(out: &mut String, value: f64) {
    if !value.is_finite() {
        out.push_str("null");
    } else if value == value.trunc() && value.abs() < 1e15 {
        out.push_str(&(value as i64).to_string());
    } else {
        out.push_str(&value.to_string());
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::Recorder;

    /// Golden test: fake clock pins every timestamp, so the exported JSON
    /// is byte-exact.
    #[test]
    fn chrome_trace_golden_with_fake_clock() {
        let rec = Recorder::new();
        rec.enable();
        rec.use_fake_clock(1_500); // 1.5 µs per reading
        {
            let mut outer = rec.span_cat("sta", "windowed"); // start 0
            outer.set_arg("cones", 3.0);
            rec.instant("si.iteration", &[("moved", 0.25)]); // ts 1500
                                                             // outer drop reads the clock once more: end 3000
        }
        let trace = rec.chrome_trace(7);
        let expected = "[\n\
            {\"name\":\"si.iteration\",\"cat\":\"instant\",\"ph\":\"i\",\"ts\":1.5,\"s\":\"t\",\"pid\":7,\"tid\":0,\"args\":{\"moved\":0.25}},\n\
            {\"name\":\"windowed\",\"cat\":\"sta\",\"ph\":\"X\",\"ts\":0,\"dur\":3,\"pid\":7,\"tid\":0,\"args\":{\"cones\":3}}\n\
            ]\n";
        assert_eq!(trace, expected);
    }

    #[test]
    fn chrome_trace_rebases_to_earliest_event() {
        let rec = Recorder::new();
        rec.enable();
        rec.use_fake_clock(1_000);
        let _ = rec.now_ns_for_test(); // burn 0 so the first span starts late
        {
            let _span = rec.span("late"); // start 1000, end 2000
        }
        let trace = rec.chrome_trace(1);
        assert!(trace.contains("\"ts\":0"), "trace not rebased: {trace}");
    }

    #[test]
    fn chrome_trace_escapes_names() {
        let rec = Recorder::new();
        rec.enable();
        rec.use_fake_clock(1);
        {
            let _span = rec.span(String::from("quote\"back\\slash"));
        }
        let trace = rec.chrome_trace(1);
        assert!(trace.contains(r#"quote\"back\\slash"#), "{trace}");
    }

    #[test]
    fn empty_recorder_exports_an_empty_array() {
        let rec = Recorder::new();
        let trace = rec.chrome_trace(1);
        assert_eq!(trace, "[\n]\n");
    }
}
