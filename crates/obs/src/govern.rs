//! Resource-governance primitives: deadlines and cooperative cancellation.
//!
//! The STA pipeline's window fixed point has no natural wall-clock bound;
//! a [`Deadline`] gives it one without preemption. Work units (cone tasks,
//! fixed-point iterations) poll [`Deadline::expired`] at their boundaries
//! and skip remaining work once the budget is gone — in-flight units
//! always finish, so results stay deterministic per unit and the caller
//! can mark exactly which units went stale.
//!
//! Like the [`Recorder`](crate::Recorder), the clock is swappable: the
//! default is monotonic ([`std::time::Instant`]), and [`FakeClock`]
//! substitutes a deterministic counter that advances by a fixed step per
//! reading, so tests can force "expiry after exactly N polls" without
//! timing races.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A deterministic clock for deadline tests: every reading advances an
/// atomic counter by a fixed step (mirroring `Recorder::use_fake_clock`),
/// and [`FakeClock::advance`] jumps it manually.
#[derive(Debug)]
pub struct FakeClock {
    now_ns: AtomicU64,
    step_ns: AtomicU64,
}

impl FakeClock {
    /// A fake clock starting at 0 that advances `step_ns` per reading
    /// (`step_ns = 0` gives a manual clock driven only by [`advance`]).
    ///
    /// [`advance`]: FakeClock::advance
    pub fn new(step_ns: u64) -> Arc<Self> {
        Arc::new(Self {
            now_ns: AtomicU64::new(0),
            step_ns: AtomicU64::new(step_ns),
        })
    }

    /// Reads the clock, advancing it by the per-reading step.
    pub fn now_ns(&self) -> u64 {
        let step = self.step_ns.load(Ordering::Relaxed);
        self.now_ns.fetch_add(step, Ordering::Relaxed)
    }

    /// Manually advances the clock by `ns`.
    pub fn advance(&self, ns: u64) {
        self.now_ns.fetch_add(ns, Ordering::Relaxed);
    }
}

/// A shared cancellation flag: cloned into workers, flipped once from
/// anywhere, polled cooperatively (directly or via an attached
/// [`Deadline`]).
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation; idempotent.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

impl PartialEq for CancelToken {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

#[derive(Debug, Clone)]
enum ClockSource {
    /// Real monotonic time measured from `start`.
    Monotonic { start: Instant },
    /// Deterministic test clock (nanoseconds since its construction).
    Fake(Arc<FakeClock>),
}

/// A wall-clock budget polled cooperatively at work-unit boundaries.
///
/// Cloning shares the underlying clock and cancel token, so one deadline
/// handed to N workers expires (or is cancelled) for all of them at once.
#[derive(Debug, Clone)]
pub struct Deadline {
    clock: ClockSource,
    budget_ns: u64,
    cancel: Option<CancelToken>,
}

impl Deadline {
    /// A deadline `budget` from now on the real monotonic clock.
    pub fn within(budget: Duration) -> Self {
        let budget_ns = u64::try_from(budget.as_nanos()).unwrap_or(u64::MAX);
        Self {
            clock: ClockSource::Monotonic {
                start: Instant::now(),
            },
            budget_ns,
            cancel: None,
        }
    }

    /// A deadline `budget_ns` nanoseconds out on a deterministic fake
    /// clock: each [`expired`](Deadline::expired) poll reads (and thereby
    /// advances) `clock`, so expiry lands after an exact number of polls.
    pub fn on_fake(clock: Arc<FakeClock>, budget_ns: u64) -> Self {
        Self {
            clock: ClockSource::Fake(clock),
            budget_ns,
            cancel: None,
        }
    }

    /// Attaches a cancel token: the deadline also reads as expired once
    /// the token is cancelled, whatever the clock says.
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The attached cancel token, if any.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// Whether the budget is spent or cancellation was requested.
    ///
    /// On a fake clock this reading advances the clock by its step.
    pub fn expired(&self) -> bool {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return true;
            }
        }
        let elapsed_ns = match &self.clock {
            ClockSource::Monotonic { start } => {
                u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
            }
            ClockSource::Fake(clock) => clock.now_ns(),
        };
        elapsed_ns >= self.budget_ns
    }

    /// The total budget in nanoseconds.
    pub fn budget_ns(&self) -> u64 {
        self.budget_ns
    }
}

impl PartialEq for Deadline {
    /// Identity-flavoured equality (budget, clock source, shared token):
    /// lets containers like `SiOptions` keep deriving `PartialEq` without
    /// pretending two independently started monotonic deadlines are
    /// interchangeable.
    fn eq(&self, other: &Self) -> bool {
        if self.budget_ns != other.budget_ns || self.cancel != other.cancel {
            return false;
        }
        match (&self.clock, &other.clock) {
            (ClockSource::Monotonic { start: a }, ClockSource::Monotonic { start: b }) => a == b,
            (ClockSource::Fake(a), ClockSource::Fake(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fake_clock_expires_after_exact_poll_count() {
        let clock = FakeClock::new(10);
        let deadline = Deadline::on_fake(clock, 25);
        // Readings return 0, 10, 20, 30, ... so the third poll crosses 25.
        assert!(!deadline.expired());
        assert!(!deadline.expired());
        assert!(!deadline.expired());
        assert!(deadline.expired());
        assert!(deadline.expired());
    }

    #[test]
    fn manual_fake_clock_only_moves_on_advance() {
        let clock = FakeClock::new(0);
        let deadline = Deadline::on_fake(Arc::clone(&clock), 100);
        for _ in 0..64 {
            assert!(!deadline.expired());
        }
        clock.advance(100);
        assert!(deadline.expired());
    }

    #[test]
    fn clones_share_the_clock() {
        let clock = FakeClock::new(0);
        let a = Deadline::on_fake(Arc::clone(&clock), 50);
        let b = a.clone();
        clock.advance(50);
        assert!(a.expired());
        assert!(b.expired());
        assert_eq!(a, b);
    }

    #[test]
    fn cancel_token_trips_the_deadline_immediately() {
        let token = CancelToken::new();
        let deadline = Deadline::on_fake(FakeClock::new(0), u64::MAX).with_cancel(token.clone());
        assert!(!deadline.expired());
        token.cancel();
        assert!(deadline.expired());
        assert!(token.is_cancelled());
    }

    #[test]
    fn monotonic_zero_budget_is_already_expired() {
        let deadline = Deadline::within(Duration::ZERO);
        assert!(deadline.expired());
    }
}
