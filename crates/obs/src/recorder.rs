//! The recorder: event buffer, counter/gauge registries, clocks, spans.

use std::borrow::Cow;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::ThreadId;
use std::time::Instant;

/// How a [`TraceEvent`] renders in the Chrome trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A complete span (`ph: "X"`) with a duration.
    Complete {
        /// Span duration in nanoseconds.
        dur_ns: u64,
    },
    /// A point-in-time record (`ph: "i"`, thread scope).
    Instant,
}

/// One recorded event, in recorder-clock nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (the Chrome trace `name` field).
    pub name: Cow<'static, str>,
    /// Category (the Chrome trace `cat` field), typically the crate.
    pub cat: &'static str,
    /// Complete span or instant.
    pub kind: EventKind,
    /// Start timestamp (ns on the recorder's clock).
    pub ts_ns: u64,
    /// Recording thread, numbered in first-use order per recorder.
    pub tid: u64,
    /// Numeric args attached to the event.
    pub args: Vec<(&'static str, f64)>,
}

/// Flat snapshot of every counter and gauge, name-sorted.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs: counters (as exact integers in `f64`) and
    /// gauges, merged and sorted by name.
    pub values: Vec<(String, f64)>,
}

impl MetricsSnapshot {
    /// The value recorded under `name`, if any.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.values
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.values[i].1)
    }

    /// Whether no metric was recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

const CLOCK_MONOTONIC: u8 = 0;
const CLOCK_FAKE: u8 = 1;

/// Locks a registry mutex, recovering from poisoning: every critical
/// section below is a single push/insert/clone that cannot leave the
/// registry in a torn state, so a panic on another thread (e.g. an
/// injected worker fault) must not cascade into instrumentation panics.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A thread-safe span/counter registry with a monotonic (or fake) clock.
///
/// See the crate docs for the recorder model and the overhead contract;
/// the short version: everything is a no-op costing one relaxed atomic
/// load until [`Recorder::enable`] is called.
#[derive(Debug)]
pub struct Recorder {
    enabled: AtomicBool,
    clock_mode: AtomicU8,
    /// Next fake-clock reading (ns); advances by `fake_step_ns` per read.
    fake_now_ns: AtomicU64,
    fake_step_ns: AtomicU64,
    /// Monotonic clock base, fixed at construction.
    epoch: Instant,
    events: Mutex<Vec<TraceEvent>>,
    counters: Mutex<BTreeMap<&'static str, Arc<AtomicU64>>>,
    /// Gauge cells hold `f64::to_bits`.
    gauges: Mutex<BTreeMap<&'static str, Arc<AtomicU64>>>,
    /// Thread → tid, numbered in first-use order.
    tids: Mutex<HashMap<ThreadId, u64>>,
    next_tid: AtomicU64,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// A fresh, disabled recorder on the monotonic clock.
    pub fn new() -> Self {
        Recorder {
            enabled: AtomicBool::new(false),
            clock_mode: AtomicU8::new(CLOCK_MONOTONIC),
            fake_now_ns: AtomicU64::new(0),
            fake_step_ns: AtomicU64::new(1),
            epoch: Instant::now(),
            events: Mutex::new(Vec::new()),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            tids: Mutex::new(HashMap::new()),
            next_tid: AtomicU64::new(0),
        }
    }

    /// Starts recording. Instrumentation sites hit before this call have
    /// already returned on the disabled path; nothing is retroactive.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Release);
    }

    /// Stops recording; buffered events and metrics stay readable until
    /// [`Recorder::reset`].
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Release);
    }

    /// Whether instrumentation sites currently record.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Clears events, counters, gauges and thread numbering, and rewinds
    /// the fake clock. The enabled flag and clock mode are left as set.
    pub fn reset(&self) {
        lock_unpoisoned(&self.events).clear();
        lock_unpoisoned(&self.counters).clear();
        lock_unpoisoned(&self.gauges).clear();
        lock_unpoisoned(&self.tids).clear();
        self.next_tid.store(0, Ordering::Relaxed);
        self.fake_now_ns.store(0, Ordering::Relaxed);
    }

    /// Switches to a deterministic clock: every reading returns the
    /// previous value plus `step_ns`, starting at 0. Golden tests use
    /// this to pin exported timestamps exactly.
    pub fn use_fake_clock(&self, step_ns: u64) {
        self.fake_step_ns.store(step_ns, Ordering::Relaxed);
        self.fake_now_ns.store(0, Ordering::Relaxed);
        self.clock_mode.store(CLOCK_FAKE, Ordering::Release);
    }

    /// Switches back to the monotonic clock (the default).
    pub fn use_monotonic_clock(&self) {
        self.clock_mode.store(CLOCK_MONOTONIC, Ordering::Release);
    }

    #[cfg(test)]
    pub(crate) fn now_ns_for_test(&self) -> u64 {
        self.now_ns()
    }

    fn now_ns(&self) -> u64 {
        match self.clock_mode.load(Ordering::Acquire) {
            CLOCK_FAKE => {
                let step = self.fake_step_ns.load(Ordering::Relaxed);
                self.fake_now_ns.fetch_add(step, Ordering::Relaxed)
            }
            _ => self.epoch.elapsed().as_nanos() as u64,
        }
    }

    fn tid(&self) -> u64 {
        let id = std::thread::current().id();
        let mut tids = lock_unpoisoned(&self.tids);
        *tids
            .entry(id)
            .or_insert_with(|| self.next_tid.fetch_add(1, Ordering::Relaxed))
    }

    pub(crate) fn push_event(&self, event: TraceEvent) {
        lock_unpoisoned(&self.events).push(event);
    }

    pub(crate) fn events_snapshot(&self) -> Vec<TraceEvent> {
        lock_unpoisoned(&self.events).clone()
    }

    /// Number of buffered trace events.
    pub fn event_count(&self) -> usize {
        lock_unpoisoned(&self.events).len()
    }

    /// Opens a span in the default category. Bind the guard; it records
    /// on drop.
    #[must_use = "binding the span guard is what gives it a duration"]
    pub fn span(&self, name: impl Into<Cow<'static, str>>) -> Span<'_> {
        self.span_cat("span", name)
    }

    /// Opens a span in an explicit category (typically the crate name).
    #[must_use = "binding the span guard is what gives it a duration"]
    pub fn span_cat(&self, cat: &'static str, name: impl Into<Cow<'static, str>>) -> Span<'_> {
        if !self.is_enabled() {
            return Span {
                rec: None,
                name: Cow::Borrowed(""),
                cat,
                start_ns: 0,
                args: Vec::new(),
            };
        }
        Span {
            rec: Some(self),
            name: name.into(),
            cat,
            start_ns: self.now_ns(),
            args: Vec::new(),
        }
    }

    /// Records a point event carrying `args` (no-op while disabled).
    pub fn instant(&self, name: impl Into<Cow<'static, str>>, args: &[(&'static str, f64)]) {
        if !self.is_enabled() {
            return;
        }
        let ts_ns = self.now_ns();
        let tid = self.tid();
        self.push_event(TraceEvent {
            name: name.into(),
            cat: "instant",
            kind: EventKind::Instant,
            ts_ns,
            tid,
            args: args.to_vec(),
        });
    }

    fn counter_cell(&self, name: &'static str) -> Arc<AtomicU64> {
        Arc::clone(lock_unpoisoned(&self.counters).entry(name).or_default())
    }

    /// Adds `delta` to the named counter (no-op while disabled). The
    /// registry lock only resolves the name; the accumulation itself is
    /// an atomic add, so concurrent workers never lose updates.
    pub fn add(&self, name: &'static str, delta: u64) {
        if !self.is_enabled() {
            return;
        }
        self.counter_cell(name).fetch_add(delta, Ordering::Relaxed);
    }

    fn gauge_cell(&self, name: &'static str) -> Arc<AtomicU64> {
        Arc::clone(lock_unpoisoned(&self.gauges).entry(name).or_default())
    }

    /// Sets the named gauge to `value` (no-op while disabled).
    pub fn gauge_set(&self, name: &'static str, value: f64) {
        if !self.is_enabled() {
            return;
        }
        self.gauge_cell(name)
            .store(value.to_bits(), Ordering::Relaxed);
    }

    /// Raises the named gauge to `value` if larger (no-op while
    /// disabled). Compare-and-swap on the bit pattern, correct for the
    /// non-negative magnitudes gauges track here (nnz, byte sizes).
    pub fn gauge_max(&self, name: &'static str, value: f64) {
        if !self.is_enabled() {
            return;
        }
        let cell = self.gauge_cell(name);
        let mut current = cell.load(Ordering::Relaxed);
        while value > f64::from_bits(current) {
            match cell.compare_exchange_weak(
                current,
                value.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(observed) => current = observed,
            }
        }
    }

    /// Flat snapshot of every counter and gauge, sorted by name.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut merged: BTreeMap<String, f64> = BTreeMap::new();
        for (name, cell) in lock_unpoisoned(&self.counters).iter() {
            merged.insert((*name).to_string(), cell.load(Ordering::Relaxed) as f64);
        }
        for (name, cell) in lock_unpoisoned(&self.gauges).iter() {
            merged.insert(
                (*name).to_string(),
                f64::from_bits(cell.load(Ordering::Relaxed)),
            );
        }
        MetricsSnapshot {
            values: merged.into_iter().collect(),
        }
    }
}

/// RAII span guard: records one complete (`"X"`) event on drop.
///
/// Obtained from [`Recorder::span`]/[`Recorder::span_cat`] or the
/// [`span!`](crate::span) macro. While the recorder is disabled the guard
/// is inert — construction and drop cost one branch each.
#[derive(Debug)]
pub struct Span<'r> {
    rec: Option<&'r Recorder>,
    name: Cow<'static, str>,
    cat: &'static str,
    start_ns: u64,
    args: Vec<(&'static str, f64)>,
}

impl Span<'_> {
    /// Attaches a numeric arg to the event recorded at drop (no-op on an
    /// inert guard).
    pub fn set_arg(&mut self, key: &'static str, value: f64) {
        if self.rec.is_some() {
            self.args.push((key, value));
        }
    }

    /// Builder-style [`Span::set_arg`].
    #[must_use = "binding the span guard is what gives it a duration"]
    pub fn arg(mut self, key: &'static str, value: f64) -> Self {
        self.set_arg(key, value);
        self
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let Some(rec) = self.rec else { return };
        let end_ns = rec.now_ns();
        let tid = rec.tid();
        rec.push_event(TraceEvent {
            name: std::mem::replace(&mut self.name, Cow::Borrowed("")),
            cat: self.cat,
            kind: EventKind::Complete {
                dur_ns: end_ns.saturating_sub(self.start_ns),
            },
            ts_ns: self.start_ns,
            tid,
            args: std::mem::take(&mut self.args),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = Recorder::new();
        {
            let mut span = rec.span("ignored");
            span.set_arg("k", 1.0);
            rec.add("counter", 5);
            rec.gauge_set("gauge", 2.0);
            rec.gauge_max("gauge2", 3.0);
            rec.instant("instant", &[("a", 1.0)]);
        }
        assert_eq!(rec.event_count(), 0);
        assert!(rec.metrics().is_empty());
    }

    #[test]
    fn fake_clock_is_deterministic_and_resets() {
        let rec = Recorder::new();
        rec.enable();
        rec.use_fake_clock(100);
        assert_eq!(rec.now_ns(), 0);
        assert_eq!(rec.now_ns(), 100);
        assert_eq!(rec.now_ns(), 200);
        rec.reset();
        assert_eq!(rec.now_ns(), 0);
    }

    #[test]
    fn spans_nest_and_record_on_drop() {
        let rec = Recorder::new();
        rec.enable();
        rec.use_fake_clock(10);
        {
            let mut outer = rec.span_cat("test", "outer"); // start 0
            outer.set_arg("n", 2.0);
            {
                let _inner = rec.span_cat("test", "inner"); // start 10, end 20
            }
            // outer ends at 30
        }
        let events = rec.events_snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "inner");
        assert_eq!(events[0].ts_ns, 10);
        assert_eq!(events[0].kind, EventKind::Complete { dur_ns: 10 });
        assert_eq!(events[1].name, "outer");
        assert_eq!(events[1].ts_ns, 0);
        assert_eq!(events[1].kind, EventKind::Complete { dur_ns: 30 });
        assert_eq!(events[1].args, vec![("n", 2.0)]);
        // Single-threaded: everything lands on tid 0.
        assert!(events.iter().all(|e| e.tid == 0));
    }

    #[test]
    fn counters_survive_concurrent_hammering() {
        let rec = Recorder::new();
        rec.enable();
        let threads = 4;
        let per_thread = 10_000u64;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    for _ in 0..per_thread {
                        rec.add("hammered", 1);
                    }
                });
            }
        });
        assert_eq!(
            rec.metrics().get("hammered"),
            Some((threads as u64 * per_thread) as f64)
        );
    }

    #[test]
    fn gauge_max_keeps_the_largest_value() {
        let rec = Recorder::new();
        rec.enable();
        rec.gauge_max("peak", 5.0);
        rec.gauge_max("peak", 3.0);
        rec.gauge_max("peak", 9.0);
        rec.gauge_max("peak", 7.0);
        assert_eq!(rec.metrics().get("peak"), Some(9.0));
        rec.gauge_set("peak", 1.0);
        assert_eq!(rec.metrics().get("peak"), Some(1.0));
    }

    #[test]
    fn metrics_snapshot_is_name_sorted_and_searchable() {
        let rec = Recorder::new();
        rec.enable();
        rec.add("z.last", 1);
        rec.add("a.first", 2);
        rec.gauge_set("m.middle", 3.5);
        let snap = rec.metrics();
        let names: Vec<&str> = snap.values.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a.first", "m.middle", "z.last"]);
        assert_eq!(snap.get("m.middle"), Some(3.5));
        assert_eq!(snap.get("missing"), None);
    }

    #[test]
    fn reset_clears_everything() {
        let rec = Recorder::new();
        rec.enable();
        rec.use_fake_clock(1);
        let _ = rec.span("s");
        rec.add("c", 1);
        rec.gauge_set("g", 1.0);
        rec.reset();
        assert_eq!(rec.event_count(), 0);
        assert!(rec.metrics().is_empty());
        assert!(rec.is_enabled(), "reset must not flip the enabled flag");
    }
}
