//! Nonlinear transistor-level transient simulator — the workspace's
//! "HSPICE substitute".
//!
//! The paper evaluates every equivalent-waveform technique against HSPICE on
//! a TSMC 0.13 µm inverter testbench. This crate provides the equivalent
//! golden reference, built from scratch:
//!
//! * [`MosParams`]/[`Mosfet`] — Sakurai–Newton *alpha-power-law* MOSFET
//!   model with symmetric (reverse-conduction) handling and analytic
//!   derivatives,
//! * [`Netlist`] — transistors plus linear R/C elements, ideal sources and
//!   rails,
//! * damped Newton–Raphson DC solve and trapezoidal transient integration
//!   ([`Netlist::dc_operating_point`], [`Netlist::run_transient`]),
//! * [`cells`] — parameterized CMOS cells (inverter, NAND2, NOR2, buffer)
//!   over a 0.13 µm-class [`Process`],
//! * [`fig1`] — the paper's Figure-1 coupled-interconnect testbench
//!   (Configurations I and II) and the receiver-only bench used to evaluate
//!   equivalent waveforms.
//!
//! The absolute currents are calibrated to 0.13 µm-class magnitudes, not to
//! any proprietary PDK; the reproduction compares *techniques against this
//! golden simulator* exactly as the paper compares them against HSPICE.
//!
//! ```
//! use nsta_spice::{cells, Netlist, Process, SimOptions};
//! use nsta_waveform::{Thresholds, Waveform};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let proc = Process::c013();
//! let mut net = Netlist::new(proc.vdd);
//! let inp = net.node("in");
//! let out = net.node("out");
//! cells::add_inverter(&mut net, &proc, 1.0, inp, out, "u1")?;
//! cells::add_load_cap(&mut net, out, 10e-15)?;
//! let ramp = Waveform::new(vec![0.0, 0.5e-9, 0.65e-9, 3e-9], vec![0.0, 0.0, 1.2, 1.2])?;
//! net.vsource(inp, ramp)?;
//! let res = net.run_transient(SimOptions::new(0.0, 3e-9, 1e-12)?)?;
//! let v_out = res.voltage(out)?;
//! let th = Thresholds::cmos(1.2);
//! assert!(v_out.value_at(0.0) > 1.1);            // starts high
//! assert!(v_out.value_at(2.9e-9) < 0.1);         // ends low
//! assert!(v_out.last_crossing(th.mid()).is_some());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod cells;
mod device;
mod error;
pub mod fig1;
mod netlist;
mod sim;

pub use device::{MosParams, MosType, Mosfet};
pub use error::SpiceError;
pub use netlist::{Netlist, NodeId, Process};
pub use sim::{SimOptions, SimResult};
