//! The paper's Figure-1 experimental setup, as a reusable testbench.
//!
//! Two (or three) identical inverter chains — 1×, 4×, 16× drivers with a
//! 64× load — connected by distributed RC lines, with the line between the
//! 1× and 4× inverters capacitively coupled to the neighbouring chain(s):
//!
//! ```text
//! in_x ─▷1x─[ RC line ═ coupled ═ ]─▷4x─[ RC line ]─▷16x─[ RC line ]─◁64x load
//! in_y ─▷1x─[ RC line ═ coupled ═ ]─▷4x─[ RC line ]─▷16x─[ RC line ]─◁64x load
//!                  (Cm at segment boundaries, Σ = 100 fF)
//! ```
//!
//! The *victim* receiver input (`in_u`, far end of the coupled line) and its
//! output (`out_u`) are the waveforms every technique in the paper consumes
//! and predicts. [`Fig1Config::config_i`] and [`Fig1Config::config_ii`]
//! reproduce the two experimental configurations of Table 1;
//! [`run_receiver`] drives the receiver stage alone with an arbitrary
//! waveform (used to evaluate equivalent ramps `Γeff`).

use crate::cells;
use crate::netlist::{Netlist, NodeId, Process};
use crate::sim::SimOptions;
use crate::SpiceError;
use nsta_circuit::RcLineSpec;
use nsta_waveform::Waveform;

/// Builds an RC line (π-segments) into a [`Netlist`], returning the far end.
///
/// # Errors
///
/// Propagates element-construction failures.
pub fn build_line(
    net: &mut Netlist,
    spec: &RcLineSpec,
    input: NodeId,
    prefix: &str,
) -> Result<NodeId, SpiceError> {
    let half_c = spec.c_segment() / 2.0;
    let mut prev = input;
    for k in 0..spec.segments {
        net.capacitor(prev, Netlist::GROUND, half_c)?;
        let next = net.node(&format!("{prefix}_s{}", k + 1));
        net.resistor(prev, next, spec.r_segment())?;
        net.capacitor(next, Netlist::GROUND, half_c)?;
        prev = next;
    }
    Ok(prev)
}

/// Builds a bundle of parallel RC lines with `cm_total` coupling between
/// each adjacent pair, placed at matching segment boundaries. Returns the
/// far end of each line.
///
/// # Errors
///
/// [`SpiceError::InvalidParameter`] if `inputs.len() < 2`; propagated
/// element failures otherwise.
pub fn build_coupled_lines(
    net: &mut Netlist,
    spec: &RcLineSpec,
    inputs: &[NodeId],
    cm_total: f64,
    prefix: &str,
) -> Result<Vec<NodeId>, SpiceError> {
    if inputs.len() < 2 {
        return Err(SpiceError::InvalidParameter(
            "coupled bundle needs at least two lines",
        ));
    }
    if !(cm_total > 0.0 && cm_total.is_finite()) {
        return Err(SpiceError::InvalidParameter(
            "coupling capacitance must be positive",
        ));
    }
    let half_c = spec.c_segment() / 2.0;
    let mut far = Vec::with_capacity(inputs.len());
    let mut boundaries: Vec<Vec<NodeId>> = Vec::with_capacity(inputs.len());
    for (i, &input) in inputs.iter().enumerate() {
        let mut nodes = Vec::with_capacity(spec.segments);
        let mut prev = input;
        for k in 0..spec.segments {
            net.capacitor(prev, Netlist::GROUND, half_c)?;
            let next = net.node(&format!("{prefix}{i}_s{}", k + 1));
            net.resistor(prev, next, spec.r_segment())?;
            net.capacitor(next, Netlist::GROUND, half_c)?;
            nodes.push(next);
            prev = next;
        }
        far.push(prev);
        boundaries.push(nodes);
    }
    let cm_each = cm_total / spec.segments as f64;
    for pair in boundaries.windows(2) {
        for (na, nb) in pair[0].iter().zip(&pair[1]) {
            net.capacitor(*na, *nb, cm_each)?;
        }
    }
    Ok(far)
}

/// Configuration of the Figure-1 testbench.
#[derive(Debug, Clone, Copy)]
pub struct Fig1Config {
    /// Number of aggressor chains (1 for Configuration I, 2 for II).
    pub aggressors: usize,
    /// Length of every wire in microns (1000 for I, 500 for II).
    pub line_length_um: f64,
    /// Total coupling capacitance between each adjacent pair (100 fF).
    pub cm_total: f64,
    /// 10–90% input slew of the source ramps (150 ps in the paper).
    pub input_slew: f64,
    /// Polarity of the *victim receiver input* `in_u` (the wire after the
    /// inverting 1× driver). `true` = `in_u` rises.
    pub victim_input_rise: bool,
    /// `true` (default) makes aggressor wires switch opposite to the victim
    /// wire — the worst case for delay push-out.
    pub aggressors_oppose: bool,
    /// Time at which the victim source ramp crosses mid-rail (s).
    pub victim_mid_time: f64,
    /// End of the simulation window (s).
    pub t_stop: f64,
    /// Transient step (s).
    pub dt: f64,
    /// Process/technology bundle.
    pub proc: Process,
}

impl Fig1Config {
    /// Configuration I of Table 1: one aggressor, 1000 µm lines, 100 fF
    /// total coupling, 150 ps input slews.
    pub fn config_i() -> Self {
        Fig1Config {
            aggressors: 1,
            line_length_um: 1000.0,
            cm_total: 100e-15,
            input_slew: 150e-12,
            victim_input_rise: true,
            aggressors_oppose: true,
            victim_mid_time: 2.0e-9,
            t_stop: 4.0e-9,
            dt: 1e-12,
            proc: Process::c013(),
        }
    }

    /// Configuration II of Table 1: two aggressors (victim in the middle),
    /// 500 µm lines, 100 fF coupling to each aggressor.
    pub fn config_ii() -> Self {
        Fig1Config {
            aggressors: 2,
            line_length_um: 500.0,
            ..Fig1Config::config_i()
        }
    }

    /// The RC spec of each wire, derived from Figure 1's per-length values.
    ///
    /// # Errors
    ///
    /// Propagates [`RcLineSpec`] validation failures.
    pub fn line_spec(&self) -> Result<RcLineSpec, SpiceError> {
        RcLineSpec::per_micron(self.line_length_um)
            .map_err(|_| SpiceError::InvalidParameter("invalid line length"))
    }

    /// Builds the source-side ramp for a chain whose *wire* should end up
    /// with the given polarity (the 1× driver inverts).
    fn source_ramp(&self, wire_rises: bool, mid_time: f64) -> Result<Waveform, SpiceError> {
        // Wire rises ⇔ source falls.
        let source_rises = !wire_rises;
        input_ramp(
            self.proc.vdd,
            mid_time,
            self.input_slew,
            source_rises,
            0.0,
            self.t_stop,
        )
    }

    fn quiet_level(&self, wire_rises: bool) -> f64 {
        // A quiet aggressor source holds the value it would have *before*
        // its transition.
        let source_rises = !wire_rises;
        if source_rises {
            0.0
        } else {
            self.proc.vdd
        }
    }
}

/// A saturated-linear source ramp: mid-rail at `mid_time`, 10–90% slew
/// `slew`, spanning `[t_start, t_stop]`.
///
/// # Errors
///
/// [`SpiceError::InvalidOptions`] if the transition does not fit in the
/// window.
pub fn input_ramp(
    vdd: f64,
    mid_time: f64,
    slew: f64,
    rising: bool,
    t_start: f64,
    t_stop: f64,
) -> Result<Waveform, SpiceError> {
    let full = slew / 0.8; // 10–90 covers 80% of the swing
    let begin = mid_time - full / 2.0;
    let end = mid_time + full / 2.0;
    if begin <= t_start || end >= t_stop {
        return Err(SpiceError::InvalidOptions(
            "ramp transition must fit inside the window",
        ));
    }
    let (v0, v1) = if rising { (0.0, vdd) } else { (vdd, 0.0) };
    Ok(Waveform::new(
        vec![t_start, begin, end, t_stop],
        vec![v0, v0, v1, v1],
    )?)
}

/// Node handles of interest in a built testbench.
#[derive(Debug, Clone)]
pub struct Fig1Nodes {
    /// Victim receiver input (far end of the victim's coupled line).
    pub in_u: NodeId,
    /// Victim receiver output (4× inverter output).
    pub out_u: NodeId,
    /// Victim 1× driver output (near end of the coupled line).
    pub victim_wire_in: NodeId,
    /// Far end of each aggressor's coupled line.
    pub aggressor_far: Vec<NodeId>,
}

/// Waveforms extracted from a testbench run.
#[derive(Debug, Clone)]
pub struct Fig1Waves {
    /// Voltage at the victim receiver input `in_u`.
    pub in_u: Waveform,
    /// Voltage at the victim receiver output `out_u`.
    pub out_u: Waveform,
}

/// Builds the full testbench; aggressor source mid-times are
/// `victim_mid_time + skew[i]`. Pass `None` to keep aggressor `i` quiet.
///
/// # Errors
///
/// [`SpiceError::InvalidOptions`] on skew/window conflicts; propagated
/// construction failures.
pub fn build(cfg: &Fig1Config, skews: &[Option<f64>]) -> Result<(Netlist, Fig1Nodes), SpiceError> {
    if skews.len() != cfg.aggressors {
        return Err(SpiceError::InvalidOptions(
            "one skew entry required per aggressor",
        ));
    }
    if !(cfg.aggressors == 1 || cfg.aggressors == 2) {
        return Err(SpiceError::InvalidOptions(
            "testbench supports 1 or 2 aggressors",
        ));
    }
    let spec = cfg.line_spec()?;
    let proc = cfg.proc;
    let mut net = Netlist::new(proc.vdd);

    // Row order: the lines form a bus with coupling between adjacent
    // neighbours. With two aggressors the victim sits at the edge of the
    // chain (y–x1–x2): x1 couples to the victim directly with cm_total and
    // x2 aggresses through x1 — "each with 100 fF total coupling
    // capacitance" as in the paper's Configuration II.
    // rows[victim_row] is the victim.
    let (row_kinds, victim_row): (Vec<bool>, usize) = match cfg.aggressors {
        1 => (vec![false, true], 1), // [aggressor, victim]
        _ => (vec![true, false, false], 0),
    };

    let victim_wire_rises = cfg.victim_input_rise;
    let aggressor_wire_rises = if cfg.aggressors_oppose {
        !victim_wire_rises
    } else {
        victim_wire_rises
    };

    // Sources and 1× drivers.
    let mut drv_out = Vec::new();
    let mut agg_index = 0usize;
    for (i, &is_victim) in row_kinds.iter().enumerate() {
        let src = net.node(&format!("r{i}_src"));
        let wf = if is_victim {
            cfg.source_ramp(victim_wire_rises, cfg.victim_mid_time)?
        } else {
            let skew = skews[agg_index];
            agg_index += 1;
            match skew {
                Some(s) => cfg.source_ramp(aggressor_wire_rises, cfg.victim_mid_time + s)?,
                None => Waveform::constant(cfg.quiet_level(aggressor_wire_rises), 0.0, cfg.t_stop)?,
            }
        };
        net.vsource(src, wf)?;
        let drv = net.node(&format!("r{i}_drv"));
        cells::add_inverter(&mut net, &proc, 1.0, src, drv, &format!("r{i}_inv1"))?;
        drv_out.push(drv);
    }

    // Coupled segment between the 1× and 4× stages.
    let far = build_coupled_lines(&mut net, &spec, &drv_out, cfg.cm_total, "cl")?;

    // Receiver chains: 4× → line → 16× → line → 64× load, on every row
    // (identical loading for victim and aggressors, as drawn).
    let mut in_u = None;
    let mut out_u = None;
    for (i, &is_victim) in row_kinds.iter().enumerate() {
        let rec_in = far[i];
        let rec_out = net.node(&format!("r{i}_out4"));
        cells::add_inverter(&mut net, &proc, 4.0, rec_in, rec_out, &format!("r{i}_inv4"))?;
        let l2_far = build_line(&mut net, &spec, rec_out, &format!("r{i}_l2"))?;
        let out16 = net.node(&format!("r{i}_out16"));
        cells::add_inverter(&mut net, &proc, 16.0, l2_far, out16, &format!("r{i}_inv16"))?;
        let l3_far = build_line(&mut net, &spec, out16, &format!("r{i}_l3"))?;
        cells::add_load_cap(&mut net, l3_far, proc.inverter_input_cap(64.0))?;
        if is_victim {
            in_u = Some(rec_in);
            out_u = Some(rec_out);
        }
    }

    let (Some(in_u), Some(out_u)) = (in_u, out_u) else {
        return Err(SpiceError::InvalidParameter(
            "fig1 row layout has no victim row",
        ));
    };
    let nodes = Fig1Nodes {
        in_u,
        out_u,
        victim_wire_in: drv_out[victim_row],
        aggressor_far: far
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != victim_row)
            .map(|(_, &n)| n)
            .collect(),
    };
    Ok((net, nodes))
}

/// Runs one noise-injection case: every aggressor switches with the given
/// skew relative to the victim.
///
/// # Errors
///
/// Propagates build and simulation failures.
pub fn run_case(cfg: &Fig1Config, skews: &[f64]) -> Result<Fig1Waves, SpiceError> {
    let opt: Vec<Option<f64>> = skews.iter().map(|&s| Some(s)).collect();
    run_with(cfg, &opt)
}

/// Runs the noiseless reference: all aggressors held quiet.
///
/// # Errors
///
/// Propagates build and simulation failures.
pub fn run_noiseless(cfg: &Fig1Config) -> Result<Fig1Waves, SpiceError> {
    let opt = vec![None; cfg.aggressors];
    run_with(cfg, &opt)
}

fn run_with(cfg: &Fig1Config, skews: &[Option<f64>]) -> Result<Fig1Waves, SpiceError> {
    let (net, nodes) = build(cfg, skews)?;
    let res = net.run_transient(SimOptions::new(0.0, cfg.t_stop, cfg.dt)?)?;
    Ok(Fig1Waves {
        in_u: res.voltage(nodes.in_u)?,
        out_u: res.voltage(nodes.out_u)?,
    })
}

/// Drives the receiver stage alone (4× inverter with its full downstream
/// load network) with an arbitrary input waveform and returns the output
/// waveform at `out_u`.
///
/// This is how a technique's equivalent ramp `Γeff` is turned into a
/// predicted output: replace the noisy input with `Γeff` and re-run *only*
/// the receiver.
///
/// # Errors
///
/// Propagates build and simulation failures.
pub fn run_receiver(cfg: &Fig1Config, input: &Waveform) -> Result<Waveform, SpiceError> {
    let spec = cfg.line_spec()?;
    let proc = cfg.proc;
    let mut net = Netlist::new(proc.vdd);
    let inp = net.node("in_u");
    net.vsource(inp, input.clone())?;
    let out = net.node("out_u");
    cells::add_inverter(&mut net, &proc, 4.0, inp, out, "inv4")?;
    let l2_far = build_line(&mut net, &spec, out, "l2")?;
    let out16 = net.node("out16");
    cells::add_inverter(&mut net, &proc, 16.0, l2_far, out16, "inv16")?;
    let l3_far = build_line(&mut net, &spec, out16, "l3")?;
    cells::add_load_cap(&mut net, l3_far, proc.inverter_input_cap(64.0))?;
    // Extend the window when the supplied input transitions later than the
    // standard testbench window (very slow equivalent ramps do).
    let t_stop = cfg.t_stop.max(input.t_end());
    let res = net.run_transient(SimOptions::new(0.0, t_stop, cfg.dt)?)?;
    res.voltage(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsta_waveform::{Polarity, Thresholds};

    /// Faster settings for unit tests (coarser step, shorter tail).
    fn test_cfg() -> Fig1Config {
        Fig1Config {
            dt: 2e-12,
            t_stop: 3.5e-9,
            ..Fig1Config::config_i()
        }
    }

    #[test]
    fn input_ramp_shapes() {
        let w = input_ramp(1.2, 2e-9, 150e-12, true, 0.0, 4e-9).unwrap();
        assert!((w.value_at(2e-9) - 0.6).abs() < 1e-9);
        assert_eq!(w.value_at(0.0), 0.0);
        assert_eq!(w.value_at(4e-9), 1.2);
        let f = input_ramp(1.2, 2e-9, 150e-12, false, 0.0, 4e-9).unwrap();
        assert_eq!(f.value_at(0.0), 1.2);
        assert!(input_ramp(1.2, 0.05e-9, 150e-12, true, 0.0, 4e-9).is_err());
    }

    #[test]
    fn config_constants_match_paper() {
        let c1 = Fig1Config::config_i();
        assert_eq!(c1.aggressors, 1);
        assert_eq!(c1.line_length_um, 1000.0);
        assert!((c1.cm_total - 100e-15).abs() < 1e-21);
        assert!((c1.input_slew - 150e-12).abs() < 1e-18);
        let c2 = Fig1Config::config_ii();
        assert_eq!(c2.aggressors, 2);
        assert_eq!(c2.line_length_um, 500.0);
        // Figure 1 element values at 1000 µm: R = 8.5 Ω per segment.
        let spec = c1.line_spec().unwrap();
        assert!((spec.r_segment() - 8.5).abs() < 1e-9);
    }

    #[test]
    fn build_audit_element_counts() {
        let cfg = test_cfg();
        let (net, nodes) = build(&cfg, &[Some(0.0)]).unwrap();
        let (_r, _c, v, _i, m) = net.element_counts();
        // Sources: 2 row sources + vdd rail.
        assert_eq!(v, 3);
        // 6 inverters × 2 transistors.
        assert_eq!(m, 12);
        assert!(!nodes.in_u.is_ground());
        assert_eq!(nodes.aggressor_far.len(), 1);
        // Wrong skew count is rejected.
        assert!(build(&cfg, &[]).is_err());
    }

    #[test]
    fn quiet_run_has_clean_victim_edge() {
        let cfg = test_cfg();
        let th = Thresholds::cmos(cfg.proc.vdd);
        let waves = run_noiseless(&cfg).unwrap();
        assert_eq!(waves.in_u.polarity(th).unwrap(), Polarity::Rise);
        assert_eq!(waves.out_u.polarity(th).unwrap(), Polarity::Fall);
        // Clean edge: single mid-rail crossing each.
        assert_eq!(waves.in_u.crossings(th.mid()).len(), 1);
        assert_eq!(waves.out_u.crossings(th.mid()).len(), 1);
        // Receiver output transitions after its input.
        let t_in = waves.in_u.last_crossing(th.mid()).unwrap();
        let t_out = waves.out_u.last_crossing(th.mid()).unwrap();
        assert!(t_out > t_in);
    }

    #[test]
    fn aligned_aggressor_distorts_and_delays() {
        let cfg = test_cfg();
        let th = Thresholds::cmos(cfg.proc.vdd);
        let quiet = run_noiseless(&cfg).unwrap();
        let noisy = run_case(&cfg, &[0.0]).unwrap();
        let t_quiet = quiet.out_u.last_crossing(th.mid()).unwrap();
        let t_noisy = noisy.out_u.last_crossing(th.mid()).unwrap();
        // Opposite-polarity aggressor aligned with the victim edge pushes
        // the receiver output later.
        assert!(
            t_noisy > t_quiet + 5e-12,
            "expected delay push-out: quiet {t_quiet:e}, noisy {t_noisy:e}"
        );
        // And the input waveform is visibly distorted.
        let d = nsta_waveform::metrics::max_difference(&noisy.in_u, &quiet.in_u, 800).unwrap();
        assert!(d > 0.05, "distortion too small: {d}");
    }

    #[test]
    fn aggressor_influence_decays_with_skew() {
        // An aggressor that switched long before the victim still shifts
        // the delay a little (its driver now holds the wire with the other
        // device, changing the coupling return impedance), but the effect
        // must be far smaller than an aligned aggressor's.
        let cfg = test_cfg();
        let th = Thresholds::cmos(cfg.proc.vdd);
        let quiet = run_noiseless(&cfg).unwrap();
        let t_quiet = quiet.out_u.last_crossing(th.mid()).unwrap();
        let delta = |skew: f64| {
            let w = run_case(&cfg, &[skew]).unwrap();
            w.out_u.last_crossing(th.mid()).unwrap() - t_quiet
        };
        let aligned = delta(0.0);
        let far = delta(-1.2e-9);
        assert!(
            aligned > 100e-12,
            "aligned aggressor must push out strongly: {aligned:e}"
        );
        assert!(
            far.abs() < 0.25 * aligned.abs(),
            "far {far:e} vs aligned {aligned:e}"
        );
    }

    #[test]
    fn receiver_bench_reproduces_noiseless_output() {
        // Driving the receiver with the recorded noiseless in_u must give
        // (nearly) the recorded noiseless out_u.
        let cfg = test_cfg();
        let th = Thresholds::cmos(cfg.proc.vdd);
        let quiet = run_noiseless(&cfg).unwrap();
        let replay = run_receiver(&cfg, &quiet.in_u).unwrap();
        let t_orig = quiet.out_u.last_crossing(th.mid()).unwrap();
        let t_replay = replay.last_crossing(th.mid()).unwrap();
        assert!(
            (t_orig - t_replay).abs() < 2e-12,
            "replay drifted: {t_orig:e} vs {t_replay:e}"
        );
    }
}
