use std::fmt;

/// Error type for netlist construction and nonlinear simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SpiceError {
    /// A node id did not belong to this netlist.
    UnknownNode {
        /// The offending node index.
        index: usize,
    },
    /// An element or device parameter was outside its physical domain.
    InvalidParameter(&'static str),
    /// A node already carries an ideal voltage source.
    AlreadyDriven {
        /// Name of the node.
        name: String,
    },
    /// Newton–Raphson failed to converge.
    NewtonDiverged {
        /// Simulation time at which convergence failed (seconds); NaN for
        /// the DC solve.
        at_time: f64,
        /// Iterations attempted.
        iterations: usize,
        /// Largest voltage update at the final iteration.
        max_update: f64,
    },
    /// Simulation options were invalid.
    InvalidOptions(&'static str),
    /// An underlying numeric kernel failed (singular Jacobian etc.).
    Numeric(nsta_numeric::NumericError),
    /// A waveform operation failed.
    Waveform(nsta_waveform::WaveformError),
    /// A result was requested for a quantity the run did not record.
    NotRecorded(&'static str),
}

impl fmt::Display for SpiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpiceError::UnknownNode { index } => write!(f, "unknown node index {index}"),
            SpiceError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            SpiceError::AlreadyDriven { name } => {
                write!(f, "node {name} already has a voltage source")
            }
            SpiceError::NewtonDiverged {
                at_time,
                iterations,
                max_update,
            } => {
                if at_time.is_nan() {
                    write!(
                        f,
                        "newton failed to converge in dc solve after {iterations} iterations \
                         (last update {max_update:.3e} V)"
                    )
                } else {
                    write!(
                        f,
                        "newton failed to converge at t={at_time:.4e}s after {iterations} \
                         iterations (last update {max_update:.3e} V)"
                    )
                }
            }
            SpiceError::InvalidOptions(what) => write!(f, "invalid options: {what}"),
            SpiceError::Numeric(e) => write!(f, "numeric failure: {e}"),
            SpiceError::Waveform(e) => write!(f, "waveform failure: {e}"),
            SpiceError::NotRecorded(what) => write!(f, "not recorded: {what}"),
        }
    }
}

impl std::error::Error for SpiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpiceError::Numeric(e) => Some(e),
            SpiceError::Waveform(e) => Some(e),
            _ => None,
        }
    }
}

impl From<nsta_numeric::NumericError> for SpiceError {
    fn from(e: nsta_numeric::NumericError) -> Self {
        SpiceError::Numeric(e)
    }
}

impl From<nsta_waveform::WaveformError> for SpiceError {
    fn from(e: nsta_waveform::WaveformError) -> Self {
        SpiceError::Waveform(e)
    }
}
