use crate::SpiceError;

/// Transistor polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MosType {
    /// N-channel device (source conventionally toward ground).
    Nmos,
    /// P-channel device (source conventionally toward VDD).
    Pmos,
}

/// Sakurai–Newton *alpha-power-law* MOSFET parameters.
///
/// The alpha-power model captures short-channel velocity saturation with
/// four parameters and is accurate enough to reproduce the waveform-shape
/// phenomena the paper studies (it was in fact developed for exactly this
/// class of delay analysis). Currents scale linearly with the drawn width.
///
/// The drain current of an NMOS (source grounded) is
///
/// ```text
/// u      = Vgs − Vth                 (overdrive; cut off for u ≤ 0)
/// Vdsat  = kv · u^(α/2)
/// Idsat  = kc · W · u^α
/// Id     = Idsat (1 + λ Vds)                          Vds ≥ Vdsat
/// Id     = Idsat (2 − r) r (1 + λ Vds), r = Vds/Vdsat   otherwise
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosParams {
    /// Threshold voltage magnitude (V), positive for both polarities.
    pub vth: f64,
    /// Velocity-saturation index α (≈ 2 long-channel, ≈ 1.2–1.4 at 0.13 µm).
    pub alpha: f64,
    /// Transconductance scale kc (A per µm of width per V^α).
    pub kc: f64,
    /// Saturation-voltage scale kv (V^(1−α/2)).
    pub kv: f64,
    /// Channel-length modulation λ (1/V).
    pub lambda: f64,
}

impl MosParams {
    /// NMOS parameters calibrated to 0.13 µm-class magnitudes
    /// (Vdd = 1.2 V, Idsat ≈ 0.5 mA/µm at full overdrive).
    pub fn nmos_013() -> Self {
        MosParams {
            vth: 0.30,
            alpha: 1.3,
            kc: 0.55e-3,
            kv: 0.65,
            lambda: 0.06,
        }
    }

    /// PMOS parameters calibrated to 0.13 µm-class magnitudes (about 2.2×
    /// weaker than NMOS per µm).
    pub fn pmos_013() -> Self {
        MosParams {
            vth: 0.32,
            alpha: 1.4,
            kc: 0.25e-3,
            kv: 0.70,
            lambda: 0.08,
        }
    }

    /// Validates the parameter set.
    ///
    /// # Errors
    ///
    /// [`SpiceError::InvalidParameter`] if any parameter is non-finite or
    /// outside its physical range.
    pub fn validate(&self) -> Result<(), SpiceError> {
        let ok = self.vth.is_finite()
            && self.vth > 0.0
            && self.alpha.is_finite()
            && self.alpha >= 1.0
            && self.alpha <= 2.0
            && self.kc.is_finite()
            && self.kc > 0.0
            && self.kv.is_finite()
            && self.kv > 0.0
            && self.lambda.is_finite()
            && self.lambda >= 0.0;
        if ok {
            Ok(())
        } else {
            Err(SpiceError::InvalidParameter(
                "mos parameters out of physical range",
            ))
        }
    }

    /// Forward current `f(vgs, vds)` and partials `(∂f/∂vgs, ∂f/∂vds)` for
    /// `vds ≥ 0`, for a device of width `w_um` microns.
    fn forward(&self, w_um: f64, vgs: f64, vds: f64) -> (f64, f64, f64) {
        let u = vgs - self.vth;
        if u <= 0.0 {
            return (0.0, 0.0, 0.0);
        }
        let m = self.alpha / 2.0;
        let vdsat = self.kv * u.powf(m);
        let isat = self.kc * w_um * u.powf(self.alpha);
        let disat_du = self.alpha * self.kc * w_um * u.powf(self.alpha - 1.0);
        let clm = 1.0 + self.lambda * vds;
        if vds >= vdsat {
            // Saturation.
            let i = isat * clm;
            (i, disat_du * clm, isat * self.lambda)
        } else {
            // Triode with the smooth (2−r)r blend.
            let r = vds / vdsat;
            let shape = (2.0 - r) * r;
            let i = isat * shape * clm;
            // dr/du = −(m/u)·r  ⇒  d(shape)/du = (2−2r)·dr/du.
            let dshape_du = (2.0 - 2.0 * r) * (-(m / u) * r);
            let di_du = disat_du * shape * clm + isat * dshape_du * clm;
            let di_dvds = isat * clm * (2.0 - 2.0 * r) / vdsat + isat * shape * self.lambda;
            (i, di_du, di_dvds)
        }
    }
}

/// A 3-terminal MOSFET instance bound to netlist nodes.
///
/// Terminals are identified by node indices assigned by the owning
/// [`Netlist`](crate::Netlist); the body terminal is implicit (tied to the
/// appropriate rail).
#[derive(Debug, Clone)]
pub struct Mosfet {
    /// Device polarity.
    pub mos_type: MosType,
    /// Drawn width in microns (drive scales linearly).
    pub w_um: f64,
    /// Model parameters.
    pub params: MosParams,
    /// Drain node index.
    pub drain: usize,
    /// Gate node index.
    pub gate: usize,
    /// Source node index.
    pub source: usize,
}

/// Current into the drain terminal and its partial derivatives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceEval {
    /// Current flowing from the external circuit *into* the drain (A).
    pub i_drain: f64,
    /// ∂i/∂V_gate.
    pub di_dvg: f64,
    /// ∂i/∂V_drain.
    pub di_dvd: f64,
    /// ∂i/∂V_source.
    pub di_dvs: f64,
}

impl Mosfet {
    /// Evaluates the drain current given terminal voltages.
    ///
    /// The model is symmetric: when the nominal drain falls below the
    /// nominal source (NMOS; mirrored for PMOS) the terminals swap roles so
    /// the current is continuous through zero bias.
    pub fn eval(&self, vg: f64, vd: f64, vs: f64) -> DeviceEval {
        match self.mos_type {
            MosType::Nmos => {
                if vd >= vs {
                    let (i, dg, dd) = self.params.forward(self.w_um, vg - vs, vd - vs);
                    DeviceEval {
                        i_drain: i,
                        di_dvg: dg,
                        di_dvd: dd,
                        di_dvs: -dg - dd,
                    }
                } else {
                    // Swapped: physical source is the nominal drain.
                    let (i, dg, dd) = self.params.forward(self.w_um, vg - vd, vs - vd);
                    DeviceEval {
                        i_drain: -i,
                        di_dvg: -dg,
                        di_dvd: dg + dd,
                        di_dvs: -dd,
                    }
                }
            }
            MosType::Pmos => {
                if vd <= vs {
                    // Normal PMOS conduction: source high, current out of
                    // the drain into the circuit ⇒ negative into-drain.
                    let (i, dg, dd) = self.params.forward(self.w_um, vs - vg, vs - vd);
                    DeviceEval {
                        i_drain: -i,
                        di_dvg: dg,
                        di_dvd: dd,
                        di_dvs: -dg - dd,
                    }
                } else {
                    let (i, dg, dd) = self.params.forward(self.w_um, vd - vg, vd - vs);
                    DeviceEval {
                        i_drain: i,
                        di_dvg: -dg,
                        di_dvd: dg + dd,
                        di_dvs: -dd,
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nmos(w: f64) -> Mosfet {
        Mosfet {
            mos_type: MosType::Nmos,
            w_um: w,
            params: MosParams::nmos_013(),
            drain: 0,
            gate: 1,
            source: 2,
        }
    }

    fn pmos(w: f64) -> Mosfet {
        Mosfet {
            mos_type: MosType::Pmos,
            w_um: w,
            params: MosParams::pmos_013(),
            drain: 0,
            gate: 1,
            source: 2,
        }
    }

    #[test]
    fn params_validate() {
        assert!(MosParams::nmos_013().validate().is_ok());
        assert!(MosParams::pmos_013().validate().is_ok());
        let mut p = MosParams::nmos_013();
        p.alpha = 3.0;
        assert!(p.validate().is_err());
        p = MosParams::nmos_013();
        p.kc = -1.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn nmos_cutoff_below_threshold() {
        let d = nmos(1.0);
        let e = d.eval(0.2, 1.2, 0.0);
        assert_eq!(e.i_drain, 0.0);
        assert_eq!(e.di_dvg, 0.0);
    }

    #[test]
    fn nmos_current_increases_with_vgs_and_width() {
        let d1 = nmos(1.0);
        let d2 = nmos(4.0);
        let i_low = d1.eval(0.8, 1.2, 0.0).i_drain;
        let i_high = d1.eval(1.2, 1.2, 0.0).i_drain;
        assert!(i_high > i_low && i_low > 0.0);
        let i_wide = d2.eval(1.2, 1.2, 0.0).i_drain;
        assert!(
            (i_wide / i_high - 4.0).abs() < 1e-9,
            "width scaling must be linear"
        );
        // 0.13 µm-class magnitude: a 1 µm NMOS at full bias carries
        // a few hundred µA.
        assert!(i_high > 1e-4 && i_high < 2e-3, "i_on = {i_high}");
    }

    #[test]
    fn nmos_triode_to_saturation_is_continuous() {
        let d = nmos(1.0);
        let u: f64 = 1.2 - d.params.vth;
        let vdsat = d.params.kv * u.powf(d.params.alpha / 2.0);
        let below = d.eval(1.2, vdsat - 1e-9, 0.0).i_drain;
        let above = d.eval(1.2, vdsat + 1e-9, 0.0).i_drain;
        assert!((below - above).abs() / above < 1e-6);
    }

    #[test]
    fn nmos_symmetric_through_zero_vds() {
        let d = nmos(1.0);
        let fwd = d.eval(1.2, 0.01, 0.0).i_drain;
        let rev = d.eval(1.2, -0.01, 0.0).i_drain;
        assert!(fwd > 0.0);
        assert!(rev < 0.0);
        assert!(
            (fwd + rev).abs() < fwd * 0.1,
            "near-antisymmetric around vds=0"
        );
        let zero = d.eval(1.2, 0.0, 0.0).i_drain;
        assert_eq!(zero, 0.0);
    }

    #[test]
    fn pmos_mirrors_nmos_behaviour() {
        let d = pmos(1.0);
        // Source at 1.2 (rail), gate low, drain low: strong conduction,
        // current flows out of drain ⇒ negative into-drain.
        let e = d.eval(0.0, 0.0, 1.2);
        assert!(e.i_drain < -1e-5);
        // Gate high: off.
        let off = d.eval(1.2, 0.0, 1.2);
        assert_eq!(off.i_drain, 0.0);
    }

    #[test]
    fn analytic_derivatives_match_finite_differences() {
        let cases = [
            (nmos(2.0), 0.9, 0.7, 0.0),
            (nmos(2.0), 1.2, 0.2, 0.0),  // triode
            (nmos(2.0), 1.1, -0.3, 0.0), // swapped
            (pmos(3.0), 0.1, 0.6, 1.2),
            (pmos(3.0), 0.0, 1.1, 1.2), // triode (vsd small)
            (pmos(3.0), 0.2, 1.3, 1.2), // swapped
        ];
        let h = 1e-7;
        for (dev, vg, vd, vs) in cases {
            let e = dev.eval(vg, vd, vs);
            let dg =
                (dev.eval(vg + h, vd, vs).i_drain - dev.eval(vg - h, vd, vs).i_drain) / (2.0 * h);
            let dd =
                (dev.eval(vg, vd + h, vs).i_drain - dev.eval(vg, vd - h, vs).i_drain) / (2.0 * h);
            let ds =
                (dev.eval(vg, vd, vs + h).i_drain - dev.eval(vg, vd, vs - h).i_drain) / (2.0 * h);
            let scale = e.i_drain.abs().max(1e-6);
            assert!(
                (e.di_dvg - dg).abs() / scale < 2e-3,
                "dvg: {} vs {dg}",
                e.di_dvg
            );
            assert!(
                (e.di_dvd - dd).abs() / scale < 2e-3,
                "dvd: {} vs {dd}",
                e.di_dvd
            );
            assert!(
                (e.di_dvs - ds).abs() / scale < 2e-3,
                "dvs: {} vs {ds}",
                e.di_dvs
            );
        }
    }

    #[test]
    fn derivative_sum_is_zero() {
        // Shifting all terminals by the same ΔV must not change the current:
        // ∂i/∂vg + ∂i/∂vd + ∂i/∂vs = 0.
        for (dev, vg, vd, vs) in [
            (nmos(1.0), 1.0, 0.5, 0.0),
            (pmos(2.0), 0.3, 0.4, 1.2),
            (nmos(1.0), 1.0, -0.2, 0.0),
        ] {
            let e = dev.eval(vg, vd, vs);
            assert!((e.di_dvg + e.di_dvd + e.di_dvs).abs() < 1e-12);
        }
    }
}
