use crate::device::{MosParams, MosType, Mosfet};
use crate::SpiceError;
use nsta_waveform::Waveform;

/// Handle to a netlist node. [`Netlist::GROUND`] denotes the reference node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    pub(crate) const GROUND_SENTINEL: usize = usize::MAX;

    /// `true` if this is the ground/reference node.
    pub fn is_ground(self) -> bool {
        self.0 == Self::GROUND_SENTINEL
    }
}

/// Technology bundle: device models, default widths and parasitics for the
/// cell generators in [`cells`](crate::cells).
///
/// [`Process::c013`] is calibrated to 0.13 µm-class magnitudes (Vdd = 1.2 V,
/// minimum inverter ≈ 0.4/0.8 µm, gate capacitance ≈ 1.5 fF/µm), standing in
/// for the TSMC 0.13 µm library used in the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Process {
    /// Supply voltage (V).
    pub vdd: f64,
    /// NMOS model parameters.
    pub nmos: MosParams,
    /// PMOS model parameters.
    pub pmos: MosParams,
    /// NMOS width of a 1× inverter (µm).
    pub wn_1x: f64,
    /// PMOS width of a 1× inverter (µm).
    pub wp_1x: f64,
    /// Gate capacitance per µm of gate width (F/µm).
    pub cg_per_um: f64,
    /// Drain-diffusion capacitance per µm of width (F/µm).
    pub cd_per_um: f64,
}

impl Process {
    /// 0.13 µm-class process standing in for the paper's TSMC 0.13 µm cells.
    ///
    /// The 1× inverter is sized like a standard-cell library INVX1
    /// (≈ 1.2/2.4 µm), not a minimum-width device: the paper's testbench
    /// drives 1000 µm of wire with its 1× cell, which only produces the
    /// reported 100–200 ps-scale delays with library-strength drive.
    pub fn c013() -> Self {
        Process {
            vdd: 1.2,
            nmos: MosParams::nmos_013(),
            pmos: MosParams::pmos_013(),
            wn_1x: 1.2,
            wp_1x: 2.4,
            cg_per_um: 1.5e-15,
            cd_per_um: 1.0e-15,
        }
    }

    /// Input capacitance of an inverter of the given size multiplier.
    pub fn inverter_input_cap(&self, size: f64) -> f64 {
        (self.wn_1x + self.wp_1x) * size * self.cg_per_um
    }
}

/// A transistor-level netlist: MOSFETs plus linear R/C elements, ideal
/// voltage/current sources and a VDD rail.
#[derive(Debug, Clone)]
pub struct Netlist {
    vdd_value: f64,
    names: Vec<String>,
    pub(crate) resistors: Vec<(usize, usize, f64)>, // (a, b, conductance)
    pub(crate) capacitors: Vec<(usize, usize, f64)>, // (a, b, farads)
    pub(crate) vsources: Vec<(usize, Waveform)>,
    pub(crate) isources: Vec<(usize, Waveform)>,
    pub(crate) mosfets: Vec<Mosfet>,
    vdd_node: Option<usize>,
}

impl Netlist {
    /// The reference node.
    pub const GROUND: NodeId = NodeId(NodeId::GROUND_SENTINEL);

    /// Creates an empty netlist with the given supply voltage.
    ///
    /// # Panics
    ///
    /// Panics if `vdd` is not positive and finite.
    pub fn new(vdd: f64) -> Self {
        assert!(
            vdd.is_finite() && vdd > 0.0,
            "vdd must be positive and finite"
        );
        Netlist {
            vdd_value: vdd,
            names: Vec::new(),
            resistors: Vec::new(),
            capacitors: Vec::new(),
            vsources: Vec::new(),
            isources: Vec::new(),
            mosfets: Vec::new(),
            vdd_node: None,
        }
    }

    /// Supply voltage (V).
    pub fn vdd(&self) -> f64 {
        self.vdd_value
    }

    /// Creates (or looks up) a named node.
    pub fn node(&mut self, name: &str) -> NodeId {
        if let Some(pos) = self.names.iter().position(|n| n == name) {
            return NodeId(pos);
        }
        self.names.push(name.to_owned());
        NodeId(self.names.len() - 1)
    }

    /// The VDD rail node, pinned to the supply voltage (created on first
    /// use).
    pub fn vdd_node(&mut self) -> NodeId {
        if let Some(idx) = self.vdd_node {
            return NodeId(idx);
        }
        let id = self.node("__vdd");
        // A very long constant waveform: rails outlive any run window.
        let w = Waveform::constant(self.vdd_value, -1.0, 1.0)
            .unwrap_or_else(|e| panic!("static rail waveform is always valid: {e:?}"));
        self.vsources.push((id.0, w));
        self.vdd_node = Some(id.0);
        id
    }

    /// Number of non-ground nodes.
    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    /// Name of a node (`"0"` for ground).
    ///
    /// # Errors
    ///
    /// [`SpiceError::UnknownNode`] for ids from another netlist.
    pub fn node_name(&self, id: NodeId) -> Result<&str, SpiceError> {
        if id.is_ground() {
            return Ok("0");
        }
        self.names
            .get(id.0)
            .map(String::as_str)
            .ok_or(SpiceError::UnknownNode { index: id.0 })
    }

    pub(crate) fn check(&self, id: NodeId) -> Result<usize, SpiceError> {
        if id.is_ground() {
            return Ok(NodeId::GROUND_SENTINEL);
        }
        if id.0 < self.names.len() {
            Ok(id.0)
        } else {
            Err(SpiceError::UnknownNode { index: id.0 })
        }
    }

    /// Adds a resistor.
    ///
    /// # Errors
    ///
    /// [`SpiceError::InvalidParameter`] for non-positive resistance or
    /// coincident terminals; [`SpiceError::UnknownNode`] for foreign ids.
    pub fn resistor(&mut self, a: NodeId, b: NodeId, ohms: f64) -> Result<(), SpiceError> {
        if !(ohms.is_finite() && ohms > 0.0) {
            return Err(SpiceError::InvalidParameter("resistance must be positive"));
        }
        let (ia, ib) = (self.check(a)?, self.check(b)?);
        if ia == ib {
            return Err(SpiceError::InvalidParameter("resistor terminals coincide"));
        }
        self.resistors.push((ia, ib, 1.0 / ohms));
        Ok(())
    }

    /// Adds a capacitor (grounded or coupling).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Netlist::resistor`].
    pub fn capacitor(&mut self, a: NodeId, b: NodeId, farads: f64) -> Result<(), SpiceError> {
        if !(farads.is_finite() && farads > 0.0) {
            return Err(SpiceError::InvalidParameter("capacitance must be positive"));
        }
        let (ia, ib) = (self.check(a)?, self.check(b)?);
        if ia == ib {
            return Err(SpiceError::InvalidParameter("capacitor terminals coincide"));
        }
        self.capacitors.push((ia, ib, farads));
        Ok(())
    }

    /// Pins `node` to `waveform` with an ideal voltage source.
    ///
    /// # Errors
    ///
    /// [`SpiceError::AlreadyDriven`] on double drive;
    /// [`SpiceError::InvalidParameter`] when driving ground.
    pub fn vsource(&mut self, node: NodeId, waveform: Waveform) -> Result<(), SpiceError> {
        let idx = self.check(node)?;
        if node.is_ground() {
            return Err(SpiceError::InvalidParameter("cannot drive the ground node"));
        }
        if self.vsources.iter().any(|(n, _)| *n == idx) {
            return Err(SpiceError::AlreadyDriven {
                name: self.names[idx].clone(),
            });
        }
        self.vsources.push((idx, waveform));
        Ok(())
    }

    /// Injects `waveform` amperes into `node`.
    ///
    /// # Errors
    ///
    /// [`SpiceError::InvalidParameter`] when injecting into ground.
    pub fn isource(&mut self, node: NodeId, waveform: Waveform) -> Result<(), SpiceError> {
        let idx = self.check(node)?;
        if node.is_ground() {
            return Err(SpiceError::InvalidParameter(
                "cannot inject into the ground node",
            ));
        }
        self.isources.push((idx, waveform));
        Ok(())
    }

    /// Adds a MOSFET with explicit terminals.
    ///
    /// # Errors
    ///
    /// [`SpiceError::InvalidParameter`] for invalid width or model
    /// parameters; [`SpiceError::UnknownNode`] for foreign ids.
    pub fn mosfet(
        &mut self,
        mos_type: MosType,
        w_um: f64,
        params: MosParams,
        drain: NodeId,
        gate: NodeId,
        source: NodeId,
    ) -> Result<(), SpiceError> {
        if !(w_um.is_finite() && w_um > 0.0) {
            return Err(SpiceError::InvalidParameter(
                "device width must be positive",
            ));
        }
        params.validate()?;
        let d = self.check(drain)?;
        let g = self.check(gate)?;
        let s = self.check(source)?;
        self.mosfets.push(Mosfet {
            mos_type,
            w_um,
            params,
            drain: d,
            gate: g,
            source: s,
        });
        Ok(())
    }

    /// Element counts `(R, C, V, I, M)`.
    pub fn element_counts(&self) -> (usize, usize, usize, usize, usize) {
        (
            self.resistors.len(),
            self.capacitors.len(),
            self.vsources.len(),
            self.isources.len(),
            self.mosfets.len(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_and_rails() {
        let mut n = Netlist::new(1.2);
        let a = n.node("a");
        assert_eq!(n.node("a"), a);
        let vdd = n.vdd_node();
        assert_eq!(n.vdd_node(), vdd);
        assert_eq!(n.node_name(vdd).unwrap(), "__vdd");
        assert_eq!(n.node_name(Netlist::GROUND).unwrap(), "0");
        assert_eq!(n.vdd(), 1.2);
        // vdd_node pins exactly one source even when called twice.
        assert_eq!(n.element_counts().2, 1);
    }

    #[test]
    #[should_panic(expected = "vdd must be positive")]
    fn bad_vdd_panics() {
        let _ = Netlist::new(-1.0);
    }

    #[test]
    fn element_validation() {
        let mut n = Netlist::new(1.2);
        let a = n.node("a");
        let b = n.node("b");
        assert!(n.resistor(a, b, 10.0).is_ok());
        assert!(n.resistor(a, b, 0.0).is_err());
        assert!(n.resistor(a, a, 10.0).is_err());
        assert!(n.capacitor(a, Netlist::GROUND, 1e-15).is_ok());
        assert!(n.capacitor(a, Netlist::GROUND, -1e-15).is_err());
        let w = Waveform::constant(0.0, 0.0, 1.0).unwrap();
        assert!(n.vsource(a, w.clone()).is_ok());
        assert!(matches!(
            n.vsource(a, w.clone()),
            Err(SpiceError::AlreadyDriven { .. })
        ));
        assert!(n.vsource(Netlist::GROUND, w.clone()).is_err());
        assert!(n.isource(Netlist::GROUND, w).is_err());
        assert!(n
            .mosfet(
                MosType::Nmos,
                0.4,
                MosParams::nmos_013(),
                b,
                a,
                Netlist::GROUND
            )
            .is_ok());
        assert!(n
            .mosfet(
                MosType::Nmos,
                -0.4,
                MosParams::nmos_013(),
                b,
                a,
                Netlist::GROUND
            )
            .is_err());
    }

    #[test]
    fn process_constants_are_plausible() {
        let p = Process::c013();
        assert_eq!(p.vdd, 1.2);
        // A library-strength 1× inverter input is a few femtofarads.
        let cin = p.inverter_input_cap(1.0);
        assert!(cin > 2e-15 && cin < 10e-15);
        // 4× is exactly 4× the input cap.
        assert!((p.inverter_input_cap(4.0) / cin - 4.0).abs() < 1e-12);
    }
}
