//! Parameterized CMOS cell generators.
//!
//! Each generator instantiates transistors and parasitic capacitances into a
//! [`Netlist`] and wires them to caller-supplied pin nodes. Sizes are
//! multipliers of the process's 1× inverter widths — the paper's testbench
//! uses the 1×/4×/16×/64× chain these produce.

use crate::device::MosType;
use crate::netlist::{Netlist, NodeId, Process};
use crate::SpiceError;

/// Adds an inverter of the given size.
///
/// Models: PMOS/NMOS pair, lumped gate capacitance on the input pin, lumped
/// drain-diffusion capacitance on the output pin.
///
/// # Errors
///
/// Propagates netlist construction failures (invalid size, foreign nodes).
pub fn add_inverter(
    net: &mut Netlist,
    proc: &Process,
    size: f64,
    input: NodeId,
    output: NodeId,
    _prefix: &str,
) -> Result<(), SpiceError> {
    if !(size.is_finite() && size > 0.0) {
        return Err(SpiceError::InvalidParameter(
            "inverter size must be positive",
        ));
    }
    let vdd = net.vdd_node();
    let wn = proc.wn_1x * size;
    let wp = proc.wp_1x * size;
    net.mosfet(MosType::Pmos, wp, proc.pmos, output, input, vdd)?;
    net.mosfet(MosType::Nmos, wn, proc.nmos, output, input, Netlist::GROUND)?;
    net.capacitor(input, Netlist::GROUND, (wn + wp) * proc.cg_per_um)?;
    net.capacitor(output, Netlist::GROUND, (wn + wp) * proc.cd_per_um)?;
    Ok(())
}

/// Adds a 2-input NAND of the given size (series NMOS doubled in width to
/// match the inverter's pull-down strength).
///
/// # Errors
///
/// Propagates netlist construction failures.
pub fn add_nand2(
    net: &mut Netlist,
    proc: &Process,
    size: f64,
    a: NodeId,
    b: NodeId,
    y: NodeId,
    prefix: &str,
) -> Result<(), SpiceError> {
    if !(size.is_finite() && size > 0.0) {
        return Err(SpiceError::InvalidParameter("nand2 size must be positive"));
    }
    let vdd = net.vdd_node();
    let wn = 2.0 * proc.wn_1x * size;
    let wp = proc.wp_1x * size;
    let mid = net.node(&format!("{prefix}_mid"));
    net.mosfet(MosType::Pmos, wp, proc.pmos, y, a, vdd)?;
    net.mosfet(MosType::Pmos, wp, proc.pmos, y, b, vdd)?;
    net.mosfet(MosType::Nmos, wn, proc.nmos, y, a, mid)?;
    net.mosfet(MosType::Nmos, wn, proc.nmos, mid, b, Netlist::GROUND)?;
    for pin in [a, b] {
        net.capacitor(pin, Netlist::GROUND, (wn + wp) * proc.cg_per_um)?;
    }
    net.capacitor(y, Netlist::GROUND, (wn + 2.0 * wp) * proc.cd_per_um)?;
    net.capacitor(mid, Netlist::GROUND, wn * proc.cd_per_um)?;
    Ok(())
}

/// Adds a 2-input NOR of the given size (series PMOS doubled in width).
///
/// # Errors
///
/// Propagates netlist construction failures.
pub fn add_nor2(
    net: &mut Netlist,
    proc: &Process,
    size: f64,
    a: NodeId,
    b: NodeId,
    y: NodeId,
    prefix: &str,
) -> Result<(), SpiceError> {
    if !(size.is_finite() && size > 0.0) {
        return Err(SpiceError::InvalidParameter("nor2 size must be positive"));
    }
    let vdd = net.vdd_node();
    let wn = proc.wn_1x * size;
    let wp = 2.0 * proc.wp_1x * size;
    let mid = net.node(&format!("{prefix}_mid"));
    net.mosfet(MosType::Pmos, wp, proc.pmos, mid, a, vdd)?;
    net.mosfet(MosType::Pmos, wp, proc.pmos, y, b, mid)?;
    net.mosfet(MosType::Nmos, wn, proc.nmos, y, a, Netlist::GROUND)?;
    net.mosfet(MosType::Nmos, wn, proc.nmos, y, b, Netlist::GROUND)?;
    for pin in [a, b] {
        net.capacitor(pin, Netlist::GROUND, (wn + wp) * proc.cg_per_um)?;
    }
    net.capacitor(y, Netlist::GROUND, (2.0 * wn + wp) * proc.cd_per_um)?;
    net.capacitor(mid, Netlist::GROUND, wp * proc.cd_per_um)?;
    Ok(())
}

/// Adds a two-stage buffer (`size_in`× inverter into `size_out`× inverter)
/// and returns the internal node.
///
/// A buffer is the canonical *multi-stage* cell whose input and output
/// transitions may not overlap — the case the paper's pre/post-shift step in
/// SGDP exists for.
///
/// # Errors
///
/// Propagates netlist construction failures.
pub fn add_buffer(
    net: &mut Netlist,
    proc: &Process,
    size_in: f64,
    size_out: f64,
    input: NodeId,
    output: NodeId,
    prefix: &str,
) -> Result<NodeId, SpiceError> {
    let mid = net.node(&format!("{prefix}_mid"));
    add_inverter(net, proc, size_in, input, mid, &format!("{prefix}_i1"))?;
    add_inverter(net, proc, size_out, mid, output, &format!("{prefix}_i2"))?;
    Ok(mid)
}

/// Adds a lumped load capacitor to a node — used to model a fanout gate's
/// input capacitance without instantiating its transistors.
///
/// # Errors
///
/// Propagates netlist construction failures.
pub fn add_load_cap(net: &mut Netlist, node: NodeId, farads: f64) -> Result<(), SpiceError> {
    net.capacitor(node, Netlist::GROUND, farads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimOptions;
    use nsta_waveform::{Polarity, Thresholds, Waveform};

    fn ramp_up(t0: f64, dur: f64, vdd: f64, t_end: f64) -> Waveform {
        Waveform::new(vec![t0, t0 + dur, t_end], vec![0.0, vdd, vdd]).unwrap()
    }

    #[test]
    fn inverter_size_validation() {
        let p = Process::c013();
        let mut net = Netlist::new(p.vdd);
        let a = net.node("a");
        let y = net.node("y");
        assert!(add_inverter(&mut net, &p, 0.0, a, y, "u").is_err());
        assert!(add_inverter(&mut net, &p, 4.0, a, y, "u").is_ok());
        let (_, _, _, _, m) = net.element_counts();
        assert_eq!(m, 2);
    }

    #[test]
    fn buffer_output_follows_input() {
        let p = Process::c013();
        let mut net = Netlist::new(p.vdd);
        let inp = net.node("in");
        let out = net.node("out");
        let mid = add_buffer(&mut net, &p, 1.0, 4.0, inp, out, "buf").unwrap();
        add_load_cap(&mut net, out, 20e-15).unwrap();
        net.vsource(inp, ramp_up(0.5e-9, 0.2e-9, 1.2, 4e-9))
            .unwrap();
        let res = net
            .run_transient(SimOptions::new(0.0, 4e-9, 2e-12).unwrap())
            .unwrap();
        let th = Thresholds::cmos(1.2);
        let v_mid = res.voltage(mid).unwrap();
        let v_out = res.voltage(out).unwrap();
        // Non-inverting overall: output rises like the input.
        assert_eq!(v_out.polarity(th).unwrap(), Polarity::Rise);
        // Middle node inverts.
        assert_eq!(v_mid.polarity(th).unwrap(), Polarity::Fall);
        // Causality: output mid-crossing after input mid-crossing.
        let t_in = 0.6e-9;
        let t_out = v_out.last_crossing(th.mid()).unwrap();
        assert!(t_out > t_in);
    }

    #[test]
    fn nor2_truth_table_dc() {
        let p = Process::c013();
        let hi = Waveform::constant(1.2, -1.0, 1.0).unwrap();
        let lo = Waveform::constant(0.0, -1.0, 1.0).unwrap();
        for (va, vb, expect_high) in [
            (lo.clone(), lo.clone(), true),
            (hi.clone(), lo.clone(), false),
            (lo.clone(), hi.clone(), false),
            (hi.clone(), hi.clone(), false),
        ] {
            let mut net = Netlist::new(p.vdd);
            let a = net.node("a");
            let b = net.node("b");
            let y = net.node("y");
            add_nor2(&mut net, &p, 1.0, a, b, y, "g").unwrap();
            net.vsource(a, va.clone()).unwrap();
            net.vsource(b, vb.clone()).unwrap();
            let v = net.dc_operating_point(0.0).unwrap();
            if expect_high {
                assert!(v[y.0] > 1.1, "expected high, got {}", v[y.0]);
            } else {
                assert!(v[y.0] < 0.1, "expected low, got {}", v[y.0]);
            }
        }
    }

    #[test]
    fn nand2_transient_switches() {
        let p = Process::c013();
        let mut net = Netlist::new(p.vdd);
        let a = net.node("a");
        let b = net.node("b");
        let y = net.node("y");
        add_nand2(&mut net, &p, 2.0, a, b, y, "g").unwrap();
        add_load_cap(&mut net, y, 10e-15).unwrap();
        // a held high, b rises ⇒ y falls.
        net.vsource(a, Waveform::constant(1.2, -1.0, 4e-9).unwrap())
            .unwrap();
        net.vsource(b, ramp_up(1e-9, 0.2e-9, 1.2, 4e-9)).unwrap();
        let res = net
            .run_transient(SimOptions::new(0.0, 4e-9, 2e-12).unwrap())
            .unwrap();
        let v_y = res.voltage(y).unwrap();
        assert!(v_y.value_at(0.5e-9) > 1.1);
        assert!(v_y.value_at(3.8e-9) < 0.1);
    }
}
