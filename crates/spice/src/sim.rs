use crate::netlist::{Netlist, NodeId};
use crate::SpiceError;
use nsta_numeric::{CsrMatrix, DenseMatrix, LuFactors, NumericError, SparseLu, TripletMatrix};
use nsta_waveform::Waveform;

/// Options for a nonlinear transient run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimOptions {
    t_start: f64,
    t_stop: f64,
    dt: f64,
    gmin: f64,
    newton_tol: f64,
    max_newton: usize,
    dv_clamp: f64,
}

impl SimOptions {
    /// Creates options for a run over `[t_start, t_stop]` with step `dt`.
    ///
    /// # Errors
    ///
    /// [`SpiceError::InvalidOptions`] for a degenerate window or step.
    pub fn new(t_start: f64, t_stop: f64, dt: f64) -> Result<Self, SpiceError> {
        if !(t_start.is_finite() && t_stop.is_finite() && dt.is_finite()) {
            return Err(SpiceError::InvalidOptions("times must be finite"));
        }
        if !(t_stop > t_start) {
            return Err(SpiceError::InvalidOptions("t_stop must exceed t_start"));
        }
        if !(dt > 0.0) || dt >= t_stop - t_start {
            return Err(SpiceError::InvalidOptions(
                "dt must be positive and smaller than span",
            ));
        }
        Ok(SimOptions {
            t_start,
            t_stop,
            dt,
            gmin: 1e-12,
            newton_tol: 1e-7,
            max_newton: 50,
            dv_clamp: 0.4,
        })
    }

    /// Overrides the node-to-ground leakage conductance (default 1 pS).
    #[must_use]
    pub fn with_gmin(mut self, gmin: f64) -> Self {
        self.gmin = gmin;
        self
    }

    /// Overrides the Newton voltage tolerance (default 0.1 µV).
    #[must_use]
    pub fn with_newton_tolerance(mut self, tol: f64) -> Self {
        self.newton_tol = tol;
        self
    }

    /// Start of the window (s).
    pub fn t_start(&self) -> f64 {
        self.t_start
    }

    /// End of the window (s).
    pub fn t_stop(&self) -> f64 {
        self.t_stop
    }

    /// Fixed timestep (s).
    pub fn dt(&self) -> f64 {
        self.dt
    }
}

/// Recorded node voltages from a nonlinear transient run.
#[derive(Debug, Clone)]
pub struct SimResult {
    times: Vec<f64>,
    voltages: Vec<Vec<f64>>,
    newton_iterations: usize,
}

impl SimResult {
    /// The simulation time points.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Total Newton iterations over the whole run (a convergence-health
    /// metric: healthy runs average 2–4 per step).
    pub fn newton_iterations(&self) -> usize {
        self.newton_iterations
    }

    /// The voltage trace of `node` as a [`Waveform`].
    ///
    /// # Errors
    ///
    /// [`SpiceError::NotRecorded`] for ground; [`SpiceError::UnknownNode`]
    /// for foreign ids.
    pub fn voltage(&self, node: NodeId) -> Result<Waveform, SpiceError> {
        if node.is_ground() {
            return Err(SpiceError::NotRecorded(
                "ground voltage is identically zero",
            ));
        }
        let trace = self
            .voltages
            .get(node.0)
            .ok_or(SpiceError::UnknownNode { index: node.0 })?;
        Ok(Waveform::new(self.times.clone(), trace.clone())?)
    }
}

/// A Jacobian stamp sink: `(r, c, v)` accumulation plus the scale applied
/// to device derivatives (1 for DC, ½ for the trapezoidal residual).
type JacStamp<'a> = Option<(&'a mut dyn FnMut(usize, usize, f64), f64)>;

/// Assembled linear portion of the MNA system, shared by DC and transient.
struct Assembled {
    nf: usize,
    nd: usize,
    is_driven: Vec<bool>,
    position: Vec<usize>,
    driven_slot: Vec<usize>,
    g_uu: DenseMatrix,
    g_uk: DenseMatrix,
    c_uu: DenseMatrix,
    c_uk: DenseMatrix,
    /// The same UU stamps in assembly (triplet) form, kept so the Newton
    /// loops can build sparse Jacobian patterns without re-walking the
    /// element lists.
    g_trip: TripletMatrix,
    c_trip: TripletMatrix,
}

/// Reusable sparse Newton-system solver.
///
/// The Jacobian of every Newton iteration shares one sparsity pattern: the
/// linear `G`/`C` stamps plus each device's fixed terminal positions. The
/// pattern is analyzed (symbolic factorization) once; every iteration
/// resets the stored values to the precomputed linear base, stamps the
/// device derivatives on top, and re-eliminates **numerically only** with
/// zero allocation ([`SparseLu::refactor`]).
///
/// The no-pivot elimination is valid while the Jacobian stays diagonally
/// dominant — true near the CMOS operating points the damped Newton walks
/// through. If an iterate strays far enough that a natural-order pivot
/// vanishes, the solve transparently falls back to the dense
/// partial-pivoting factorization for that iteration, so robustness is
/// never traded for speed.
struct SparseJacobian {
    /// Union pattern with the current iteration's values.
    csr: CsrMatrix,
    /// Iteration-invariant values (linear stamps; zeros at device-only
    /// positions), aligned with `csr.values()`.
    base: Vec<f64>,
    /// Symbolic + numeric factors; `None` if even the linear base was not
    /// no-pivot factorable (every solve then takes the dense path).
    lu: Option<SparseLu>,
}

impl SparseJacobian {
    /// Builds the solver from the fully stamped assembly buffer (linear
    /// values plus zero-valued device positions).
    fn new(pattern: &TripletMatrix) -> Self {
        let csr = pattern.to_csr();
        let base = csr.values().to_vec();
        let lu = SparseLu::factor(&csr).ok();
        SparseJacobian { csr, base, lu }
    }

    /// Resets the stored values to the linear base; device stamps go on
    /// top via [`SparseJacobian::add`].
    fn reset(&mut self) {
        self.csr.values_mut().copy_from_slice(&self.base);
    }

    /// Adds `v` at `(r, c)` — must lie inside the analyzed pattern.
    #[inline]
    fn add(&mut self, r: usize, c: usize, v: f64) {
        self.csr.add_at(r, c, v);
    }

    /// Factors the current values and solves `J·x = b`, preferring the
    /// sparse no-pivot path and falling back to dense partial pivoting on
    /// a vanishing pivot.
    fn solve_into(&mut self, b: &[f64], x: &mut [f64]) -> Result<(), SpiceError> {
        if let Some(lu) = self.lu.as_mut() {
            match lu.refactor(&self.csr) {
                Ok(()) => {
                    x.copy_from_slice(b);
                    lu.solve_in_place(x).map_err(SpiceError::from)?;
                    return Ok(());
                }
                // A lost pivot is recoverable — this iteration goes dense.
                Err(NumericError::SingularMatrix { .. }) => {}
                Err(e) => return Err(e.into()),
            }
        }
        let dense = LuFactors::factor(&self.csr.to_dense())?;
        dense.solve_into(b, x)?;
        Ok(())
    }
}

impl Netlist {
    fn assemble(&self, gmin: f64) -> Assembled {
        let n = self.node_count();
        let mut is_driven = vec![false; n];
        for (node, _) in &self.vsources {
            is_driven[*node] = true;
        }
        let mut position = vec![usize::MAX; n];
        let mut nf = 0;
        for i in 0..n {
            if !is_driven[i] {
                position[i] = nf;
                nf += 1;
            }
        }
        let nd = self.vsources.len();
        let mut driven_slot = vec![usize::MAX; n];
        for (k, (node, _)) in self.vsources.iter().enumerate() {
            driven_slot[*node] = k;
        }
        let mut g_uu = DenseMatrix::zeros(nf, nf);
        let mut g_uk = DenseMatrix::zeros(nf, nd.max(1));
        let mut c_uu = DenseMatrix::zeros(nf, nf);
        let mut c_uk = DenseMatrix::zeros(nf, nd.max(1));
        let mut g_trip = TripletMatrix::new(nf, nf);
        let mut c_trip = TripletMatrix::new(nf, nf);

        let ground = NodeId::GROUND_SENTINEL;
        let stamp = |uu: &mut DenseMatrix,
                     trip: &mut TripletMatrix,
                     uk: &mut DenseMatrix,
                     a: usize,
                     b: usize,
                     v: f64| {
            for node in [a, b] {
                if node == ground || is_driven[node] {
                    continue;
                }
                let r = position[node];
                uu.add(r, r, v);
                trip.add(r, r, v);
                let other = if node == a { b } else { a };
                if other == ground {
                    continue;
                }
                if is_driven[other] {
                    uk.add(r, driven_slot[other], -v);
                } else {
                    uu.add(r, position[other], -v);
                    trip.add(r, position[other], -v);
                }
            }
        };
        for &(a, b, g) in &self.resistors {
            stamp(&mut g_uu, &mut g_trip, &mut g_uk, a, b, g);
        }
        for &(a, b, c) in &self.capacitors {
            stamp(&mut c_uu, &mut c_trip, &mut c_uk, a, b, c);
        }
        for r in 0..nf {
            g_uu.add(r, r, gmin);
            g_trip.add(r, r, gmin);
        }
        Assembled {
            nf,
            nd,
            is_driven,
            position,
            driven_slot,
            g_uu,
            g_uk,
            c_uu,
            c_uk,
            g_trip,
            c_trip,
        }
    }

    /// Appends every `(row, col)` a device Jacobian can ever stamp (the
    /// positions are fixed by topology, not by the operating point) to
    /// `trip` with value zero, completing a Newton Jacobian pattern.
    fn device_pattern(&self, asm: &Assembled, trip: &mut TripletMatrix) {
        let zeros_x = vec![0.0; asm.nf];
        let zeros_w = vec![0.0; asm.nd];
        let mut scratch = vec![0.0; asm.nf];
        self.device_currents(
            asm,
            &zeros_x,
            &zeros_w,
            &mut scratch,
            Some((&mut |r, c, _v| trip.add(r, c, 0.0), 1.0)),
        );
    }

    /// Voltage of `node_index` given the free vector `x` and driven values
    /// `w`; ground reads zero.
    fn volt(asm: &Assembled, x: &[f64], w: &[f64], node: usize) -> f64 {
        if node == NodeId::GROUND_SENTINEL {
            0.0
        } else if asm.is_driven[node] {
            w[asm.driven_slot[node]]
        } else {
            x[asm.position[node]]
        }
    }

    /// Accumulates device currents into `f` (KCL: current leaving each free
    /// node) and, when `jac` is provided, the device Jacobian scaled by
    /// `jac_scale`.
    fn device_currents(
        &self,
        asm: &Assembled,
        x: &[f64],
        w: &[f64],
        f: &mut [f64],
        mut jac: JacStamp,
    ) {
        let ground = NodeId::GROUND_SENTINEL;
        for dev in &self.mosfets {
            let vg = Self::volt(asm, x, w, dev.gate);
            let vd = Self::volt(asm, x, w, dev.drain);
            let vs = Self::volt(asm, x, w, dev.source);
            let e = dev.eval(vg, vd, vs);
            // Current into the drain leaves the drain node; current into
            // the source is the negative.
            if dev.drain != ground && !asm.is_driven[dev.drain] {
                f[asm.position[dev.drain]] += e.i_drain;
            }
            if dev.source != ground && !asm.is_driven[dev.source] {
                f[asm.position[dev.source]] -= e.i_drain;
            }
            if let Some((a, scale)) = jac.as_mut() {
                let scale = *scale;
                let entries = [
                    (dev.gate, e.di_dvg),
                    (dev.drain, e.di_dvd),
                    (dev.source, e.di_dvs),
                ];
                if dev.drain != ground && !asm.is_driven[dev.drain] {
                    let r = asm.position[dev.drain];
                    for (node, d) in entries {
                        if node != ground && !asm.is_driven[node] {
                            a(r, asm.position[node], scale * d);
                        }
                    }
                }
                if dev.source != ground && !asm.is_driven[dev.source] {
                    let r = asm.position[dev.source];
                    for (node, d) in entries {
                        if node != ground && !asm.is_driven[node] {
                            a(r, asm.position[node], -scale * d);
                        }
                    }
                }
            }
        }
    }

    /// Solves the nonlinear DC operating point at time `at_time` (sources
    /// evaluated at that instant). Returns the full per-node voltage vector.
    ///
    /// Uses damped Newton–Raphson from a linear-only initial guess; voltage
    /// updates are clamped to keep the iteration inside the devices'
    /// well-behaved region.
    ///
    /// # Errors
    ///
    /// * [`SpiceError::NewtonDiverged`] if the iteration stalls.
    /// * [`SpiceError::Numeric`] on a singular Jacobian.
    pub fn dc_operating_point(&self, at_time: f64) -> Result<Vec<f64>, SpiceError> {
        let asm = self.assemble(1e-9); // stronger gmin for the DC solve
        let (x, _) = self.dc_solve(&asm, at_time)?;
        let w: Vec<f64> = self
            .vsources
            .iter()
            .map(|(_, wf)| wf.value_at(at_time))
            .collect();
        let mut out = vec![0.0; self.node_count()];
        for i in 0..self.node_count() {
            out[i] = Self::volt(&asm, &x, &w, i);
        }
        Ok(out)
    }

    fn dc_solve(&self, asm: &Assembled, at_time: f64) -> Result<(Vec<f64>, usize), SpiceError> {
        let nf = asm.nf;
        let w: Vec<f64> = self
            .vsources
            .iter()
            .map(|(_, wf)| wf.value_at(at_time))
            .collect();
        let mut inj = vec![0.0; nf];
        for (node, wf) in &self.isources {
            if !asm.is_driven[*node] {
                inj[asm.position[*node]] += wf.value_at(at_time);
            }
        }
        // Initial guess: half-rail everywhere — a neutral start from which
        // damped Newton reliably falls into the unique static-CMOS solution.
        let mut x = vec![self.vdd() * 0.5; nf];
        let mut f = vec![0.0; nf];
        let mut delta = vec![0.0; nf];
        // Newton Jacobian G_UU + ∂I_dev/∂v on the union sparsity pattern:
        // symbolic factorization once, numeric refactor per iteration.
        let mut jac_pattern = asm.g_trip.clone();
        self.device_pattern(asm, &mut jac_pattern);
        let mut jac = SparseJacobian::new(&jac_pattern);
        let max_iter = 200;
        let mut last_update = f64::INFINITY;
        for iter in 0..max_iter {
            // Residual F = G_UU x + G_UK w + I_dev − inj.
            f.iter_mut().for_each(|v| *v = 0.0);
            for r in 0..nf {
                let mut acc = 0.0;
                for c in 0..nf {
                    acc += asm.g_uu.get(r, c) * x[c];
                }
                for k in 0..asm.nd {
                    acc += asm.g_uk.get(r, k) * w[k];
                }
                f[r] = acc - inj[r];
            }
            jac.reset();
            self.device_currents(
                asm,
                &x,
                &w,
                &mut f,
                Some((&mut |r, c, v| jac.add(r, c, v), 1.0)),
            );
            jac.solve_into(&f, &mut delta)?;
            // Newton step is x ← x − Δ with per-component damping.
            let mut worst = 0.0f64;
            for i in 0..nf {
                let step = (-delta[i]).clamp(-0.25, 0.25);
                x[i] += step;
                worst = worst.max(step.abs());
            }
            last_update = worst;
            if worst < 1e-9 {
                return Ok((x, iter + 1));
            }
        }
        Err(SpiceError::NewtonDiverged {
            at_time: f64::NAN,
            iterations: max_iter,
            max_update: last_update,
        })
    }

    /// Runs a trapezoidal-rule nonlinear transient analysis.
    ///
    /// The initial state is the DC operating point with sources at
    /// `t_start`. Each step solves the trapezoidal residual with Newton
    /// iterations seeded from the previous accepted state.
    ///
    /// # Errors
    ///
    /// * [`SpiceError::NewtonDiverged`] with the failing timestamp if a step
    ///   cannot converge (reduce `dt`).
    /// * [`SpiceError::Numeric`] on singular Jacobians.
    pub fn run_transient(&self, opts: SimOptions) -> Result<SimResult, SpiceError> {
        let asm = self.assemble(opts.gmin);
        let nf = asm.nf;
        let h = opts.dt;
        let steps = ((opts.t_stop - opts.t_start) / h).round() as usize;
        let times: Vec<f64> = (0..=steps).map(|k| opts.t_start + k as f64 * h).collect();

        // Precompute driven voltages and injections at each time point.
        let w_at: Vec<Vec<f64>> = times
            .iter()
            .map(|&t| self.vsources.iter().map(|(_, wf)| wf.value_at(t)).collect())
            .collect();
        let mut inj_at = vec![vec![0.0; nf]; times.len()];
        for (node, wf) in &self.isources {
            if asm.is_driven[*node] {
                continue;
            }
            let r = asm.position[*node];
            for (ti, &t) in times.iter().enumerate() {
                inj_at[ti][r] += wf.value_at(t);
            }
        }

        // Initial state: DC at t_start.
        let (mut x, dc_iters) = self.dc_solve(&asm, opts.t_start)?;
        let mut newton_total = dc_iters;

        // Device + conductive currents at the old time point:
        // i_old = G_UU x + G_UK w + I_dev(x, w) − inj.
        let eval_static = |x: &[f64], w: &[f64], inj: &[f64], out: &mut Vec<f64>| {
            out.iter_mut().for_each(|v| *v = 0.0);
            for r in 0..nf {
                let acc = nsta_numeric::dot(asm.g_uu.row(r), x)
                    + nsta_numeric::dot(&asm.g_uk.row(r)[..asm.nd], w);
                out[r] = acc - inj[r];
            }
            self.device_currents(&asm, x, w, out, None);
        };

        let mut i_old = vec![0.0; nf];
        eval_static(&x, &w_at[0], &inj_at[0], &mut i_old);

        let mut voltages: Vec<Vec<f64>> = vec![Vec::with_capacity(times.len()); self.node_count()];
        let record = |voltages: &mut Vec<Vec<f64>>, x: &[f64], w: &[f64]| {
            for i in 0..self.node_count() {
                voltages[i].push(Self::volt(&asm, x, w, i));
            }
        };
        record(&mut voltages, &x, &w_at[0]);

        let mut f = vec![0.0; nf];
        let mut x_new = x.clone();
        let mut i_new = vec![0.0; nf];
        let mut delta = vec![0.0; nf];
        let mut dev_scratch = vec![0.0; nf];
        // The linear part of the Jacobian, C_UU/h + ½ G_UU, never changes:
        // stamp it once (together with every device's fixed Jacobian
        // positions) into the union sparsity pattern, analyze the symbolic
        // factorization once, and per Newton iteration only reset the
        // values, stamp the device derivatives and refactor numerically.
        let mut jac = {
            let mut pattern = TripletMatrix::new(nf, nf);
            pattern.extend_scaled(&asm.c_trip, 1.0 / h);
            pattern.extend_scaled(&asm.g_trip, 0.5);
            self.device_pattern(&asm, &mut pattern);
            SparseJacobian::new(&pattern)
        };

        for ti in 1..times.len() {
            let w_prev = &w_at[ti - 1];
            let w_now = &w_at[ti];
            // Newton iterations for the trapezoidal residual:
            // F(x) = C_UU (x − x_n)/h + C_UK Δw/h + ½(i_static(x) + i_old).
            x_new.copy_from_slice(&x);
            let mut converged = false;
            let mut worst = f64::INFINITY;
            let mut iters = 0;
            while iters < opts.max_newton {
                iters += 1;
                eval_static(&x_new, w_now, &inj_at[ti], &mut i_new);
                for r in 0..nf {
                    let mut acc = 0.0;
                    let row = asm.c_uu.row(r);
                    for c in 0..nf {
                        acc += row[c] * (x_new[c] - x[c]);
                    }
                    let ck = &asm.c_uk.row(r)[..asm.nd];
                    for k in 0..asm.nd {
                        acc += ck[k] * (w_now[k] - w_prev[k]);
                    }
                    f[r] = acc / h + 0.5 * (i_new[r] + i_old[r]);
                }
                jac.reset();
                dev_scratch.iter_mut().for_each(|v| *v = 0.0);
                self.device_currents(
                    &asm,
                    &x_new,
                    w_now,
                    &mut dev_scratch,
                    Some((&mut |r, c, v| jac.add(r, c, v), 0.5)),
                );
                jac.solve_into(&f, &mut delta)?;
                worst = 0.0;
                for i in 0..nf {
                    let step = (-delta[i]).clamp(-opts.dv_clamp, opts.dv_clamp);
                    x_new[i] += step;
                    worst = worst.max(step.abs());
                }
                if worst < opts.newton_tol {
                    converged = true;
                    break;
                }
            }
            newton_total += iters;
            if !converged {
                return Err(SpiceError::NewtonDiverged {
                    at_time: times[ti],
                    iterations: iters,
                    max_update: worst,
                });
            }
            x.copy_from_slice(&x_new);
            eval_static(&x, w_now, &inj_at[ti], &mut i_old);
            record(&mut voltages, &x, w_now);
        }

        Ok(SimResult {
            times,
            voltages,
            newton_iterations: newton_total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MosType;
    use crate::netlist::Process;

    fn inverter_net(size: f64, load: f64) -> (Netlist, NodeId, NodeId) {
        let p = Process::c013();
        let mut net = Netlist::new(p.vdd);
        let inp = net.node("in");
        let out = net.node("out");
        let vdd = net.vdd_node();
        net.mosfet(MosType::Pmos, p.wp_1x * size, p.pmos, out, inp, vdd)
            .unwrap();
        net.mosfet(
            MosType::Nmos,
            p.wn_1x * size,
            p.nmos,
            out,
            inp,
            Netlist::GROUND,
        )
        .unwrap();
        net.capacitor(out, Netlist::GROUND, load).unwrap();
        (net, inp, out)
    }

    #[test]
    fn sim_options_validate() {
        assert!(SimOptions::new(0.0, 1e-9, 1e-12).is_ok());
        assert!(SimOptions::new(0.0, 0.0, 1e-12).is_err());
        assert!(SimOptions::new(0.0, 1e-9, 0.0).is_err());
        assert!(SimOptions::new(0.0, 1e-9, 1e-8).is_err());
    }

    #[test]
    fn dc_inverter_transfer_is_inverting() {
        let (mut net, inp, out) = inverter_net(1.0, 5e-15);
        net.vsource(inp, Waveform::constant(0.0, -1.0, 1.0).unwrap())
            .unwrap();
        let v = net.dc_operating_point(0.0).unwrap();
        assert!(
            v[out.0] > 1.15,
            "input low ⇒ output at vdd, got {}",
            v[out.0]
        );

        let (mut net2, inp2, out2) = inverter_net(1.0, 5e-15);
        net2.vsource(inp2, Waveform::constant(1.2, -1.0, 1.0).unwrap())
            .unwrap();
        let v2 = net2.dc_operating_point(0.0).unwrap();
        assert!(
            v2[out2.0] < 0.05,
            "input high ⇒ output at ground, got {}",
            v2[out2.0]
        );
    }

    #[test]
    fn dc_transfer_curve_is_monotone_decreasing() {
        let mut prev = f64::INFINITY;
        for k in 0..=12 {
            let vin = 1.2 * k as f64 / 12.0;
            let (mut net, inp, out) = inverter_net(1.0, 5e-15);
            net.vsource(inp, Waveform::constant(vin, -1.0, 1.0).unwrap())
                .unwrap();
            let v = net.dc_operating_point(0.0).unwrap();
            assert!(v[out.0] <= prev + 1e-6, "vtc must fall: vin={vin}");
            prev = v[out.0];
        }
    }

    #[test]
    fn transient_inverter_switches_and_is_clean() {
        let (mut net, inp, out) = inverter_net(1.0, 8e-15);
        let ramp =
            Waveform::new(vec![0.0, 0.5e-9, 0.65e-9, 3e-9], vec![0.0, 0.0, 1.2, 1.2]).unwrap();
        net.vsource(inp, ramp).unwrap();
        let res = net
            .run_transient(SimOptions::new(0.0, 3e-9, 1e-12).unwrap())
            .unwrap();
        let v = res.voltage(out).unwrap();
        assert!(v.value_at(0.3e-9) > 1.15);
        assert!(v.value_at(2.5e-9) < 0.05);
        // Output falls monotonically (single clean transition).
        let fall = v.windowed(0.4e-9, 2.0e-9).unwrap();
        assert!(fall.is_monotonic(nsta_waveform::Polarity::Fall, 1e-3));
        // Healthy Newton: fewer than 8 iterations per step on average.
        assert!(res.newton_iterations() < res.times().len() * 8);
    }

    #[test]
    fn delay_grows_with_load() {
        let th = nsta_waveform::Thresholds::cmos(1.2);
        let mut delays = Vec::new();
        for load in [4e-15, 16e-15, 64e-15] {
            let (mut net, inp, out) = inverter_net(1.0, load);
            let ramp =
                Waveform::new(vec![0.0, 0.5e-9, 0.65e-9, 5e-9], vec![0.0, 0.0, 1.2, 1.2]).unwrap();
            net.vsource(inp, ramp).unwrap();
            let res = net
                .run_transient(SimOptions::new(0.0, 5e-9, 2e-12).unwrap())
                .unwrap();
            let v_out = res.voltage(out).unwrap();
            let t_in = 0.5e-9 + 0.075e-9; // mid of the input ramp
            let t_out = v_out.last_crossing(th.mid()).unwrap();
            delays.push(t_out - t_in);
        }
        assert!(
            delays[1] > delays[0] && delays[2] > delays[1],
            "delays: {delays:?}"
        );
        // 16× the load ⇒ several times the delay.
        assert!(delays[2] > 3.0 * delays[0]);
    }

    #[test]
    fn stronger_driver_is_faster() {
        let th = nsta_waveform::Thresholds::cmos(1.2);
        let mut delays = Vec::new();
        for size in [1.0, 4.0] {
            let (mut net, inp, out) = inverter_net(size, 20e-15);
            let ramp =
                Waveform::new(vec![0.0, 0.5e-9, 0.65e-9, 4e-9], vec![0.0, 0.0, 1.2, 1.2]).unwrap();
            net.vsource(inp, ramp).unwrap();
            let res = net
                .run_transient(SimOptions::new(0.0, 4e-9, 2e-12).unwrap())
                .unwrap();
            let t_out = res.voltage(out).unwrap().last_crossing(th.mid()).unwrap();
            delays.push(t_out);
        }
        assert!(delays[1] < delays[0]);
    }

    #[test]
    fn rc_only_netlist_matches_linear_engine() {
        // With no transistors the nonlinear engine must agree with
        // nsta-circuit on the same RC divider.
        let mut net = Netlist::new(1.2);
        let a = net.node("a");
        let b = net.node("b");
        let step = Waveform::new(vec![0.0, 1e-12, 5e-9], vec![0.0, 1.0, 1.0]).unwrap();
        net.vsource(a, step.clone()).unwrap();
        net.resistor(a, b, 1000.0).unwrap();
        net.capacitor(b, Netlist::GROUND, 1e-12).unwrap();
        let res = net
            .run_transient(SimOptions::new(0.0, 5e-9, 5e-12).unwrap())
            .unwrap();
        let v = res.voltage(b).unwrap();

        let mut ckt = nsta_circuit::Circuit::new();
        let ca = ckt.node("a");
        let cb = ckt.node("b");
        ckt.vsource(ca, step).unwrap();
        ckt.resistor(ca, cb, 1000.0).unwrap();
        ckt.capacitor(cb, nsta_circuit::Circuit::GROUND, 1e-12)
            .unwrap();
        let lin = ckt
            .run_transient(nsta_circuit::TransientOptions::new(0.0, 5e-9, 5e-12).unwrap())
            .unwrap();
        let vl = lin.voltage(cb).unwrap();
        for t in [0.5e-9, 1e-9, 2e-9, 4e-9] {
            assert!(
                (v.value_at(t) - vl.value_at(t)).abs() < 1e-6,
                "mismatch at {t:e}"
            );
        }
    }

    #[test]
    fn nand2_truth_table_dc() {
        let p = Process::c013();
        let hi = Waveform::constant(1.2, -1.0, 1.0).unwrap();
        let lo = Waveform::constant(0.0, -1.0, 1.0).unwrap();
        for (va, vb, expect_high) in [
            (lo.clone(), lo.clone(), true),
            (hi.clone(), lo.clone(), true),
            (lo.clone(), hi.clone(), true),
            (hi.clone(), hi.clone(), false),
        ] {
            let mut net = Netlist::new(p.vdd);
            let a = net.node("a");
            let b = net.node("b");
            let y = net.node("y");
            let mid = net.node("mid");
            let vdd = net.vdd_node();
            // Parallel PMOS pull-up, series NMOS pull-down.
            net.mosfet(MosType::Pmos, p.wp_1x, p.pmos, y, a, vdd)
                .unwrap();
            net.mosfet(MosType::Pmos, p.wp_1x, p.pmos, y, b, vdd)
                .unwrap();
            net.mosfet(MosType::Nmos, 2.0 * p.wn_1x, p.nmos, y, a, mid)
                .unwrap();
            net.mosfet(
                MosType::Nmos,
                2.0 * p.wn_1x,
                p.nmos,
                mid,
                b,
                Netlist::GROUND,
            )
            .unwrap();
            net.capacitor(y, Netlist::GROUND, 2e-15).unwrap();
            net.vsource(a, va.clone()).unwrap();
            net.vsource(b, vb.clone()).unwrap();
            let v = net.dc_operating_point(0.0).unwrap();
            if expect_high {
                assert!(v[y.0] > 1.1, "expected high, got {}", v[y.0]);
            } else {
                assert!(v[y.0] < 0.1, "expected low, got {}", v[y.0]);
            }
        }
    }
}
