//! Per-pin boundary conditions of a timing run.
//!
//! The original [`Constraints`](crate::Constraints) struct applies one
//! arrival, one slew and one required time to *every* port — adequate for
//! method comparisons, but real constraint sets (SDC) give each port its
//! own values: an input can arrive anywhere inside a `[min, max]` window,
//! an output owes its data some margin before the clock edge, and declared
//! false paths must not count against the worst slack.
//!
//! [`BoundaryConditions`] is the engine's internal currency for all of
//! that:
//!
//! * per-input [`InputBoundary`] — `{min_arrival, max_arrival, slew}`,
//!   seeding the earliest (min) and latest (max) sweeps separately so
//!   switching windows reflect genuine per-pin arrival ranges;
//! * per-output [`OutputBoundary`] — `{required, load}`, with
//!   `required = +inf` meaning *unconstrained* (no slack contribution);
//! * a list of [`FalsePath`]s — `(from, to)` port pairs excluded from
//!   required-time propagation and hence from the worst slack;
//! * an optional clock period, recorded so reports can relate slack to the
//!   constraint set that produced it.
//!
//! Every public analysis entry point accepts `impl Into<BoundaryConditions>`
//! and a [`From<&Constraints>`] shim maps the legacy uniform struct onto
//! this type (min = max = `input_arrival`), so existing callers keep
//! compiling and produce bit-identical results.

use crate::engine::Constraints;
use crate::netlist::NetId;
use std::collections::HashMap;

/// Arrival-time boundary of one primary input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InputBoundary {
    /// Earliest possible arrival at the port (s). Seeds the min sweep.
    pub min_arrival: f64,
    /// Latest possible arrival at the port (s). Seeds the max sweep.
    pub max_arrival: f64,
    /// Transition time at the port (s).
    pub slew: f64,
}

impl InputBoundary {
    /// A degenerate (point) window: min = max = `arrival`.
    pub fn point(arrival: f64, slew: f64) -> Self {
        InputBoundary {
            min_arrival: arrival,
            max_arrival: arrival,
            slew,
        }
    }

    /// Arrival for the requested sweep direction.
    pub(crate) fn arrival(&self, minimize: bool) -> f64 {
        if minimize {
            self.min_arrival
        } else {
            self.max_arrival
        }
    }
}

/// Requirement boundary of one primary output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutputBoundary {
    /// Required time (s); `+inf` means the output is unconstrained.
    pub required: f64,
    /// Extra capacitive load on the output net (F).
    pub load: f64,
}

impl OutputBoundary {
    /// An unconstrained output carrying only a capacitive load.
    pub fn unconstrained(load: f64) -> Self {
        OutputBoundary {
            required: f64::INFINITY,
            load,
        }
    }
}

/// One declared false path: `(from, to)` with `None` acting as a wildcard
/// on that side. Input/output pairs covered by a false path are exempt
/// from timing: required times do not propagate along edges that lie
/// exclusively on false pairs, and endpoints all of whose startpoints are
/// falsified stay unconstrained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FalsePath {
    /// Startpoint (a primary input net), or `None` for "any input".
    pub from: Option<NetId>,
    /// Endpoint (a primary output net), or `None` for "any output".
    pub to: Option<NetId>,
}

impl FalsePath {
    /// Whether this declaration covers the `(input, output)` pair.
    pub fn covers(&self, input: NetId, output: NetId) -> bool {
        self.from.is_none_or(|f| f == input) && self.to.is_none_or(|t| t == output)
    }
}

/// Per-pin boundary conditions: the resolved form every analysis consumes.
///
/// Ports without an explicit override use the defaults (one
/// [`InputBoundary`] / [`OutputBoundary`] pair), which is exactly how the
/// uniform [`Constraints`] shim is expressed.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundaryConditions {
    default_input: InputBoundary,
    default_output: OutputBoundary,
    inputs: HashMap<NetId, InputBoundary>,
    outputs: HashMap<NetId, OutputBoundary>,
    false_paths: Vec<FalsePath>,
    clock_period: Option<f64>,
}

impl BoundaryConditions {
    /// Boundary conditions where every port uses the given defaults.
    pub fn new(default_input: InputBoundary, default_output: OutputBoundary) -> Self {
        BoundaryConditions {
            default_input,
            default_output,
            inputs: HashMap::new(),
            outputs: HashMap::new(),
            false_paths: Vec::new(),
            clock_period: None,
        }
    }

    /// The uniform translation of a legacy [`Constraints`] value.
    pub fn uniform(c: &Constraints) -> Self {
        BoundaryConditions::new(
            InputBoundary::point(c.input_arrival, c.input_slew),
            OutputBoundary {
                required: c.required_at_outputs,
                load: c.output_load,
            },
        )
    }

    /// Overrides the boundary of one input port.
    pub fn set_input(&mut self, net: NetId, boundary: InputBoundary) {
        self.inputs.insert(net, boundary);
    }

    /// Overrides the boundary of one output port.
    pub fn set_output(&mut self, net: NetId, boundary: OutputBoundary) {
        self.outputs.insert(net, boundary);
    }

    /// Declares a false path.
    pub fn add_false_path(&mut self, path: FalsePath) {
        self.false_paths.push(path);
    }

    /// Records the clock period slacks are computed against (s).
    pub fn set_clock_period(&mut self, period: f64) {
        self.clock_period = Some(period);
    }

    /// The clock period, when one was declared.
    pub fn clock_period(&self) -> Option<f64> {
        self.clock_period
    }

    /// Boundary of an input port (the default when never overridden).
    pub fn input(&self, net: NetId) -> InputBoundary {
        self.inputs.get(&net).copied().unwrap_or(self.default_input)
    }

    /// Boundary of an output port (the default when never overridden).
    pub fn output(&self, net: NetId) -> OutputBoundary {
        self.outputs
            .get(&net)
            .copied()
            .unwrap_or(self.default_output)
    }

    /// The default input boundary (ports without an override).
    pub fn default_input(&self) -> InputBoundary {
        self.default_input
    }

    /// The default output boundary (ports without an override).
    pub fn default_output(&self) -> OutputBoundary {
        self.default_output
    }

    /// All declared false paths.
    pub fn false_paths(&self) -> &[FalsePath] {
        &self.false_paths
    }

    /// Number of input ports with explicit overrides.
    pub fn input_override_count(&self) -> usize {
        self.inputs.len()
    }

    /// Number of output ports with explicit overrides.
    pub fn output_override_count(&self) -> usize {
        self.outputs.len()
    }
}

impl Default for BoundaryConditions {
    fn default() -> Self {
        BoundaryConditions::uniform(&Constraints::default())
    }
}

impl From<Constraints> for BoundaryConditions {
    fn from(c: Constraints) -> Self {
        BoundaryConditions::uniform(&c)
    }
}

impl From<&Constraints> for BoundaryConditions {
    fn from(c: &Constraints) -> Self {
        BoundaryConditions::uniform(c)
    }
}

impl From<&BoundaryConditions> for BoundaryConditions {
    fn from(bc: &BoundaryConditions) -> Self {
        bc.clone()
    }
}

/// Precomputed false-path exemptions over one timing graph: which edges
/// lie exclusively on falsified input/output pairs, and which outputs have
/// every startpoint falsified. Built by the engine (it needs reachability)
/// and consumed by the required-time sweep.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct FalsePathMask {
    /// `true` for edges whose every `(input, output)` pair is covered by a
    /// declared false path: required times do not propagate through them.
    pub edges: Vec<bool>,
    /// Per net: `true` when the net is an output and every input reaching
    /// it is falsified against it — the endpoint stays unconstrained.
    pub output_false: Vec<bool>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_shim_maps_every_field() {
        let c = Constraints {
            input_arrival: 1e-10,
            input_slew: 2e-10,
            required_at_outputs: 3e-9,
            output_load: 4e-15,
        };
        let bc: BoundaryConditions = (&c).into();
        let i = bc.input(NetId(7));
        assert_eq!(i.min_arrival, 1e-10);
        assert_eq!(i.max_arrival, 1e-10);
        assert_eq!(i.slew, 2e-10);
        let o = bc.output(NetId(9));
        assert_eq!(o.required, 3e-9);
        assert_eq!(o.load, 4e-15);
        assert!(bc.false_paths().is_empty());
        assert_eq!(bc.clock_period(), None);
    }

    #[test]
    fn overrides_shadow_defaults() {
        let mut bc = BoundaryConditions::default();
        bc.set_input(
            NetId(0),
            InputBoundary {
                min_arrival: 1e-10,
                max_arrival: 5e-10,
                slew: 8e-11,
            },
        );
        bc.set_output(NetId(1), OutputBoundary::unconstrained(2e-15));
        assert_eq!(bc.input(NetId(0)).max_arrival, 5e-10);
        assert_eq!(bc.input(NetId(2)), bc.default_input());
        assert!(bc.output(NetId(1)).required.is_infinite());
        assert_eq!(bc.output(NetId(3)), bc.default_output());
        assert_eq!(bc.input_override_count(), 1);
        assert_eq!(bc.output_override_count(), 1);
    }

    #[test]
    fn false_path_wildcards_cover() {
        let fp = FalsePath {
            from: Some(NetId(1)),
            to: None,
        };
        assert!(fp.covers(NetId(1), NetId(9)));
        assert!(!fp.covers(NetId(2), NetId(9)));
        let any = FalsePath {
            from: None,
            to: None,
        };
        assert!(any.covers(NetId(0), NetId(0)));
    }
}
