//! Timing reports: per-net results and the critical path.

use crate::netlist::NetId;
use nsta_waveform::Polarity;
use std::fmt;

/// Timing of one transition on one net.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointTiming {
    /// Worst arrival time (s).
    pub arrival: f64,
    /// Transition time associated with the worst arrival (s).
    pub slew: f64,
    /// Required time (s); `+inf` when no constraint reaches this net.
    pub required: f64,
    /// `required − arrival` (s); `+inf` when unconstrained.
    pub slack: f64,
}

/// Rise/fall timing of one net.
#[derive(Debug, Clone, PartialEq)]
pub struct NetTiming {
    /// The net.
    pub net: NetId,
    /// Its name.
    pub name: String,
    /// Rising-edge timing, when reachable.
    pub rise: Option<PointTiming>,
    /// Falling-edge timing, when reachable.
    pub fall: Option<PointTiming>,
}

/// One step of the critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathPoint {
    /// The net.
    pub net: NetId,
    /// Its name.
    pub name: String,
    /// Transition direction at this point.
    pub polarity: Polarity,
    /// Arrival time (s).
    pub arrival: f64,
    /// Slew (s).
    pub slew: f64,
}

/// Complete result of a timing run.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    nets: Vec<NetTiming>,
    critical: Vec<PathPoint>,
    worst_slack: f64,
    worst_arrival: f64,
}

impl TimingReport {
    pub(crate) fn new(
        nets: Vec<NetTiming>,
        critical: Vec<PathPoint>,
        worst_slack: f64,
        worst_arrival: f64,
    ) -> Self {
        TimingReport {
            nets,
            critical,
            worst_slack,
            worst_arrival,
        }
    }

    /// Timing of a specific net.
    pub fn net(&self, net: NetId) -> Option<&NetTiming> {
        self.nets.iter().find(|n| n.net == net)
    }

    /// Timing of a net looked up by name.
    pub fn net_by_name(&self, name: &str) -> Option<&NetTiming> {
        self.nets.iter().find(|n| n.name == name)
    }

    /// All net timings.
    pub fn nets(&self) -> &[NetTiming] {
        &self.nets
    }

    /// The worst (smallest) slack in the design.
    ///
    /// **Contract:** the value is `+inf` exactly when no constraint
    /// reaches any analyzed point — an output-free design, unconstrained
    /// outputs (`required = +inf`), or every path declared false. It is
    /// never NaN, so `worst_slack() < 0.0` is always a well-defined
    /// violation test and `worst_slack().is_finite()` distinguishes a
    /// constrained run. [`TimingReport`]'s `Display` renders the infinite
    /// case as `unconstrained` rather than printing `inf ps`.
    pub fn worst_slack(&self) -> f64 {
        self.worst_slack
    }

    /// The latest arrival anywhere in the design.
    pub fn worst_arrival(&self) -> f64 {
        self.worst_arrival
    }

    /// The critical path, startpoint first.
    pub fn critical_path(&self) -> &[PathPoint] {
        &self.critical
    }
}

impl fmt::Display for TimingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.worst_slack.is_finite() {
            writeln!(
                f,
                "worst arrival {:.1} ps, worst slack {:.1} ps",
                self.worst_arrival * 1e12,
                self.worst_slack * 1e12
            )?;
        } else {
            writeln!(
                f,
                "worst arrival {:.1} ps, worst slack unconstrained",
                self.worst_arrival * 1e12
            )?;
        }
        writeln!(f, "critical path:")?;
        let mut prev = None;
        for p in &self.critical {
            let incr = prev.map_or(0.0, |t| p.arrival - t);
            writeln!(
                f,
                "  {:<12} {:>4}  arrival {:>8.1} ps  (+{:>6.1} ps)  slew {:>7.1} ps",
                p.name,
                p.polarity.to_string(),
                p.arrival * 1e12,
                incr * 1e12,
                p.slew * 1e12
            )?;
            prev = Some(p.arrival);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_path_and_summary() {
        let report = TimingReport::new(
            vec![],
            vec![
                PathPoint {
                    net: NetId(0),
                    name: "a".into(),
                    polarity: Polarity::Rise,
                    arrival: 0.0,
                    slew: 50e-12,
                },
                PathPoint {
                    net: NetId(1),
                    name: "y".into(),
                    polarity: Polarity::Fall,
                    arrival: 80e-12,
                    slew: 60e-12,
                },
            ],
            120e-12,
            80e-12,
        );
        let text = report.to_string();
        assert!(text.contains("worst arrival 80.0 ps"));
        assert!(text.contains("worst slack 120.0 ps"));
        assert!(text.contains('a'));
        assert!(text.contains("+  80.0 ps") || text.contains("+80.0") || text.contains("80.0"));
        assert!(report.net(NetId(3)).is_none());
    }

    #[test]
    fn unconstrained_slack_renders_as_words_not_inf() {
        // Regression: output-free / unconstrained designs used to print
        // "worst slack inf ps".
        let report = TimingReport::new(vec![], vec![], f64::INFINITY, 80e-12);
        assert!(report.worst_slack().is_infinite());
        let text = report.to_string();
        assert!(text.contains("worst slack unconstrained"), "got: {text}");
        assert!(!text.contains("inf"), "got: {text}");
    }
}
