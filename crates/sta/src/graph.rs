//! Levelized timing graph over nets.
//!
//! Vertices are nets; each cell arc contributes an edge from its input net
//! to its output net. The graph is validated (single driver per net, no
//! combinational cycles) and levelized for the forward arrival sweep.

use crate::netlist::{Design, NetId};
use crate::StaError;
use nsta_liberty::{Direction, Library};

/// A timing edge: one cell arc from an input net to an output net.
#[derive(Debug, Clone, PartialEq)]
pub struct Edge {
    /// Source net (cell input).
    pub from: NetId,
    /// Destination net (cell output).
    pub to: NetId,
    /// Index of the driving instance in the design.
    pub instance: usize,
    /// Related input pin name on the cell.
    pub input_pin: String,
    /// Output pin name on the cell.
    pub output_pin: String,
}

/// Levelized net-level timing graph.
#[derive(Debug, Clone)]
pub struct TimingGraph {
    edges: Vec<Edge>,
    /// Edge indices grouped by destination net.
    fanin: Vec<Vec<usize>>,
    /// Edge indices grouped by source net.
    fanout: Vec<Vec<usize>>,
    /// Nets in topological order (inputs first).
    order: Vec<NetId>,
    /// Nets grouped by logic level (level = longest fanin path, in
    /// stages); nets within a level are sorted by id. Levels partition the
    /// forward sweep into batches with no intra-batch dependencies — the
    /// unit of parallelism for the threaded sweeps.
    levels: Vec<Vec<NetId>>,
    /// Nets grouped by weakly-connected component ("cone"), each component
    /// in topological (level-major, then net-id) order. Two nets share a
    /// component iff an undirected edge path connects them, so distinct
    /// components have no timing dependency in either direction — the unit
    /// of parallelism for cone-partitioned scheduling.
    components: Vec<Vec<NetId>>,
    /// Net id -> position of the net inside its component, so cone tasks
    /// can serve state reads from a compact per-cone buffer.
    cone_slot: Vec<usize>,
    /// Capacitive load on each net: Σ input-pin capacitances of fanout.
    loads: Vec<f64>,
}

impl TimingGraph {
    /// Builds and validates the graph for `design` against `library`.
    ///
    /// # Errors
    ///
    /// * [`StaError::Unresolved`] for unknown cells or unconnected arcs.
    /// * [`StaError::Structure`] for nets with multiple drivers.
    /// * [`StaError::CombinationalCycle`] if levelization fails.
    pub fn build(design: &Design, library: &Library) -> Result<Self, StaError> {
        let n = design.net_count();
        let mut edges = Vec::new();
        let mut loads = vec![0.0; n];
        let mut driver_of: Vec<Option<usize>> = vec![None; n];

        for (idx, inst) in design.instances().iter().enumerate() {
            let cell = library.cell(&inst.cell).ok_or_else(|| {
                StaError::Unresolved(format!("cell {} not in library", inst.cell))
            })?;
            for pin in &cell.pins {
                let net = inst.net_on(&pin.name).ok_or_else(|| {
                    StaError::Unresolved(format!(
                        "instance {}: pin {} unconnected",
                        inst.name, pin.name
                    ))
                })?;
                match pin.direction {
                    Direction::Input => loads[net.0] += pin.capacitance,
                    Direction::Output => {
                        if let Some(previous) = driver_of[net.0] {
                            let prev_name = &design.instances()[previous].name;
                            return Err(StaError::Structure(format!(
                                "net {} driven by both {} and {}",
                                design.net_name(net),
                                prev_name,
                                inst.name
                            )));
                        }
                        driver_of[net.0] = Some(idx);
                        for arc in &pin.timing {
                            let from = inst.net_on(&arc.related_pin).ok_or_else(|| {
                                StaError::Unresolved(format!(
                                    "instance {}: arc pin {} unconnected",
                                    inst.name, arc.related_pin
                                ))
                            })?;
                            edges.push(Edge {
                                from,
                                to: net,
                                instance: idx,
                                input_pin: arc.related_pin.clone(),
                                output_pin: pin.name.clone(),
                            });
                        }
                    }
                }
            }
        }

        let mut fanin: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut fanout: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (k, e) in edges.iter().enumerate() {
            fanin[e.to.0].push(k);
            fanout[e.from.0].push(k);
        }

        // Kahn levelization over nets.
        let mut indegree: Vec<usize> = fanin.iter().map(Vec::len).collect();
        let mut queue: Vec<NetId> = (0..n).filter(|&i| indegree[i] == 0).map(NetId).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(net) = queue.pop() {
            order.push(net);
            for &k in &fanout[net.0] {
                let to = edges[k].to.0;
                indegree[to] -= 1;
                if indegree[to] == 0 {
                    queue.push(NetId(to));
                }
            }
        }
        if order.len() != n {
            // Kahn's algorithm left nets unordered, so at least one sits on
            // a cycle with positive residual indegree.
            let stuck = (0..n).find(|&i| indegree[i] > 0).unwrap_or(0);
            return Err(StaError::CombinationalCycle {
                net: design.net_name(NetId(stuck)).to_string(),
            });
        }

        // Levelization: level(net) = longest fanin path in stages. Walking
        // the topological order makes every predecessor's level final
        // before its successors read it.
        let mut level = vec![0usize; n];
        for &net in &order {
            for &k in &fanin[net.0] {
                level[net.0] = level[net.0].max(level[edges[k].from.0] + 1);
            }
        }
        let depth = level.iter().map(|&l| l + 1).max().unwrap_or(0);
        let mut levels: Vec<Vec<NetId>> = vec![Vec::new(); depth];
        for i in 0..n {
            levels[level[i]].push(NetId(i));
        }
        // Net-id order within a level fixes the merge order of parallel
        // sweeps, independent of thread count.
        for l in &mut levels {
            l.sort_unstable_by_key(|net| net.0);
        }

        // Weakly-connected components via union-find with path halving.
        // Every edge joins its endpoints, so each resulting group is a
        // self-contained cone: all fanin and fanout of its nets stay inside
        // the group.
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut i: usize) -> usize {
            while parent[i] != i {
                parent[i] = parent[parent[i]]; // path halving
                i = parent[i];
            }
            i
        }
        for e in &edges {
            let (a, b) = (find(&mut parent, e.from.0), find(&mut parent, e.to.0));
            if a != b {
                parent[a.max(b)] = a.min(b);
            }
        }
        // Group nets by root. Scanning ids in ascending order makes both
        // the component order (by smallest member id) and the membership
        // order deterministic.
        let mut comp_index = vec![usize::MAX; n];
        let mut components: Vec<Vec<NetId>> = Vec::new();
        for i in 0..n {
            let root = find(&mut parent, i);
            let c = if comp_index[root] == usize::MAX {
                comp_index[root] = components.len();
                components.push(Vec::new());
                components.len() - 1
            } else {
                comp_index[root]
            };
            components[c].push(NetId(i));
        }
        // Level-major order inside each component keeps every net after all
        // of its fanin (the stable sort preserves net-id order within a
        // level).
        for c in &mut components {
            c.sort_by_key(|net| level[net.0]);
        }
        let mut cone_slot = vec![0usize; n];
        for c in &components {
            for (j, &net) in c.iter().enumerate() {
                cone_slot[net.0] = j;
            }
        }

        Ok(TimingGraph {
            edges,
            fanin,
            fanout,
            order,
            levels,
            components,
            cone_slot,
            loads,
        })
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Nets in topological order.
    pub fn topological_order(&self) -> &[NetId] {
        &self.order
    }

    /// Nets grouped by logic level (ascending), each level sorted by net
    /// id. All fanin of a net at level `l` sits strictly below `l`, so the
    /// nets of one level can be processed in any order — or in parallel —
    /// without changing results.
    pub fn levels(&self) -> &[Vec<NetId>] {
        &self.levels
    }

    /// Nets grouped by weakly-connected component ("fanout cone"), each in
    /// topological order. Components are mutually independent — no edge
    /// crosses between two of them — so whole components can be swept
    /// concurrently end to end, without level barriers: a long chain in one
    /// cone never waits for the widest level of another. Components are
    /// ordered by their smallest net id; within a component, nets are in
    /// level-major (then net-id) order, so a sequential walk sees every
    /// fanin before its consumer.
    pub fn components(&self) -> &[Vec<NetId>] {
        &self.components
    }

    /// Position of `net` inside its component (see
    /// [`TimingGraph::components`]): `components()[c][cone_slot(net)] ==
    /// net` for the component `c` containing it.
    pub fn cone_slot(&self, net: NetId) -> usize {
        self.cone_slot[net.0]
    }

    /// Indices of edges terminating at `net`.
    pub fn fanin_edges(&self, net: NetId) -> &[usize] {
        &self.fanin[net.0]
    }

    /// Indices of edges departing from `net`.
    pub fn fanout_edges(&self, net: NetId) -> &[usize] {
        &self.fanout[net.0]
    }

    /// Capacitive load on `net` (farads).
    pub fn load(&self, net: NetId) -> f64 {
        self.loads[net.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verilog::parse_design;
    use nsta_liberty::characterize::{inverter_family, Options};
    use nsta_spice::Process;
    use std::sync::OnceLock;

    fn lib() -> &'static Library {
        static LIB: OnceLock<Library> = OnceLock::new();
        LIB.get_or_init(|| {
            inverter_family(
                &Process::c013(),
                &[("INVX1", 1.0), ("INVX4", 4.0)],
                &Options::fast_test(),
            )
            .unwrap()
        })
    }

    #[test]
    fn chain_graph_levels_and_loads() {
        let d = parse_design(
            "module m (a, y); input a; output y; wire w;\
             INVX1 u1 (.A(a), .Y(w)); INVX4 u2 (.A(w), .Y(y)); endmodule",
        )
        .unwrap();
        let g = TimingGraph::build(&d, lib()).unwrap();
        assert_eq!(g.edges().len(), 2);
        let a = d.find_net("a").unwrap();
        let w = d.find_net("w").unwrap();
        let y = d.find_net("y").unwrap();
        // Topological order respects dependencies.
        let pos = |n: NetId| g.topological_order().iter().position(|&x| x == n).unwrap();
        assert!(pos(a) < pos(w));
        assert!(pos(w) < pos(y));
        // Load on 'w' is the 4x input capacitance.
        let c4 = lib().cell("INVX4").unwrap().pin("A").unwrap().capacitance;
        assert!((g.load(w) - c4).abs() < 1e-20);
        assert_eq!(g.load(y), 0.0);
        assert_eq!(g.fanin_edges(y).len(), 1);
        assert_eq!(g.fanout_edges(a).len(), 1);
    }

    #[test]
    fn levels_partition_nets_and_respect_edges() {
        let d = parse_design(
            "module m (a, b, y); input a, b; output y; wire w1, w2;\
             INVX1 u1 (.A(a), .Y(w1)); INVX1 u2 (.A(b), .Y(w2));\
             INVX4 u3 (.A(w1), .Y(y)); endmodule",
        )
        .unwrap();
        let g = TimingGraph::build(&d, lib()).unwrap();
        let levels = g.levels();
        // Every net appears exactly once.
        let total: usize = levels.iter().map(Vec::len).sum();
        assert_eq!(total, d.net_count());
        // Each level is sorted by net id.
        assert!(levels.iter().all(|l| l.windows(2).all(|w| w[0].0 < w[1].0)));
        // Every edge goes from a strictly lower level to a higher one.
        let level_of = |n: NetId| levels.iter().position(|l| l.contains(&n)).unwrap();
        for e in g.edges() {
            assert!(level_of(e.from) < level_of(e.to));
        }
        // a and b are level 0; w1/w2 level 1; y level 2.
        let a = d.find_net("a").unwrap();
        let y = d.find_net("y").unwrap();
        assert_eq!(level_of(a), 0);
        assert_eq!(level_of(y), 2);
    }

    #[test]
    fn components_partition_into_independent_cones() {
        // Two disjoint cones: a→w1→y (chain) and b→w2→z, plus an isolated
        // port net c that forms its own singleton component.
        let d = parse_design(
            "module m (a, b, c, y, z); input a, b, c; output y, z; wire w1, w2;\
             INVX1 u1 (.A(a), .Y(w1)); INVX4 u2 (.A(w1), .Y(y));\
             INVX1 u3 (.A(b), .Y(w2)); INVX4 u4 (.A(w2), .Y(z)); endmodule",
        )
        .unwrap();
        let g = TimingGraph::build(&d, lib()).unwrap();
        let comps = g.components();
        assert_eq!(comps.len(), 3);
        // Every net appears in exactly one component.
        let total: usize = comps.iter().map(Vec::len).sum();
        assert_eq!(total, d.net_count());
        let mut seen: Vec<NetId> = comps.iter().flatten().copied().collect();
        seen.sort_unstable_by_key(|n| n.0);
        seen.dedup();
        assert_eq!(seen.len(), d.net_count());
        // No edge crosses components.
        let comp_of = |n: NetId| comps.iter().position(|c| c.contains(&n)).unwrap();
        for e in g.edges() {
            assert_eq!(comp_of(e.from), comp_of(e.to));
        }
        // Connected nets share a component; disjoint cones do not.
        let net = |s: &str| d.find_net(s).unwrap();
        assert_eq!(comp_of(net("a")), comp_of(net("y")));
        assert_eq!(comp_of(net("b")), comp_of(net("z")));
        assert_ne!(comp_of(net("a")), comp_of(net("b")));
        assert_eq!(comps[comp_of(net("c"))].len(), 1);
        // Topological order inside each component: every fanin precedes
        // its consumer.
        for c in comps {
            let pos = |n: NetId| c.iter().position(|&x| x == n).unwrap();
            for &net in c {
                for &k in g.fanin_edges(net) {
                    assert!(pos(g.edges()[k].from) < pos(net));
                }
            }
        }
        // Components are ordered by smallest member id.
        let mins: Vec<usize> = comps
            .iter()
            .map(|c| c.iter().map(|n| n.0).min().unwrap())
            .collect();
        assert!(mins.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn multiple_drivers_rejected() {
        let d = parse_design(
            "module m (a, y); input a; output y;\
             INVX1 u1 (.A(a), .Y(y)); INVX1 u2 (.A(a), .Y(y)); endmodule",
        )
        .unwrap();
        assert!(matches!(
            TimingGraph::build(&d, lib()),
            Err(StaError::Structure(_))
        ));
    }

    #[test]
    fn unknown_cell_rejected() {
        let d =
            parse_design("module m (a, y); input a; output y; NAND9 u1 (.A(a), .Y(y)); endmodule")
                .unwrap();
        assert!(matches!(
            TimingGraph::build(&d, lib()),
            Err(StaError::Unresolved(_))
        ));
    }

    #[test]
    fn cycles_detected() {
        let d = parse_design(
            "module m (y); output y; wire w1, w2;\
             INVX1 u1 (.A(w2), .Y(w1)); INVX1 u2 (.A(w1), .Y(w2)); endmodule",
        )
        .unwrap();
        assert!(matches!(
            TimingGraph::build(&d, lib()),
            Err(StaError::CombinationalCycle { .. })
        ));
    }
}
