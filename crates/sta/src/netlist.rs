use crate::StaError;

/// Handle to a net within a [`Design`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub(crate) usize);

impl NetId {
    /// The net's dense index within its design (also the index of its
    /// entry in `TimingReport::nets` and other per-net vectors) — for
    /// external consumers that maintain per-net side tables.
    pub fn index(self) -> usize {
        self.0
    }
}

/// One cell instance with named pin connections.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    /// Instance name (unique within the design).
    pub name: String,
    /// Library cell name.
    pub cell: String,
    /// `(pin name, net)` pairs.
    pub connections: Vec<(String, NetId)>,
}

impl Instance {
    /// The net connected to `pin`, if any.
    pub fn net_on(&self, pin: &str) -> Option<NetId> {
        self.connections
            .iter()
            .find(|(p, _)| p == pin)
            .map(|&(_, n)| n)
    }
}

/// A gate-level netlist: nets, primary inputs/outputs and cell instances.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Design {
    /// Design (module) name.
    pub name: String,
    nets: Vec<String>,
    inputs: Vec<NetId>,
    outputs: Vec<NetId>,
    instances: Vec<Instance>,
}

impl Design {
    /// Creates an empty design.
    pub fn new(name: &str) -> Self {
        Design {
            name: name.into(),
            ..Design::default()
        }
    }

    /// Creates (or looks up) a named net.
    pub fn net(&mut self, name: &str) -> NetId {
        if let Some(pos) = self.nets.iter().position(|n| n == name) {
            return NetId(pos);
        }
        self.nets.push(name.into());
        NetId(self.nets.len() - 1)
    }

    /// Looks up an existing net by name.
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.nets.iter().position(|n| n == name).map(NetId)
    }

    /// Name of a net.
    ///
    /// # Panics
    ///
    /// Panics if the id is from another design.
    pub fn net_name(&self, id: NetId) -> &str {
        &self.nets[id.0]
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// All nets, in creation order.
    pub fn nets(&self) -> impl Iterator<Item = NetId> + '_ {
        (0..self.nets.len()).map(NetId)
    }

    /// Declares a net as a primary input.
    pub fn mark_input(&mut self, net: NetId) {
        if !self.inputs.contains(&net) {
            self.inputs.push(net);
        }
    }

    /// Declares a net as a primary output.
    pub fn mark_output(&mut self, net: NetId) {
        if !self.outputs.contains(&net) {
            self.outputs.push(net);
        }
    }

    /// Primary inputs.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Primary outputs.
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// Adds a cell instance.
    ///
    /// # Errors
    ///
    /// [`StaError::Structure`] on duplicate instance names.
    pub fn add_instance(
        &mut self,
        name: &str,
        cell: &str,
        connections: Vec<(String, NetId)>,
    ) -> Result<(), StaError> {
        if self.instances.iter().any(|i| i.name == name) {
            return Err(StaError::Structure(format!(
                "duplicate instance name {name}"
            )));
        }
        self.instances.push(Instance {
            name: name.into(),
            cell: cell.into(),
            connections,
        });
        Ok(())
    }

    /// All instances in declaration order.
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nets_are_interned_by_name() {
        let mut d = Design::new("top");
        let a = d.net("a");
        assert_eq!(d.net("a"), a);
        assert_eq!(d.find_net("a"), Some(a));
        assert_eq!(d.find_net("zzz"), None);
        assert_eq!(d.net_name(a), "a");
        assert_eq!(d.net_count(), 1);
    }

    #[test]
    fn io_marking_is_idempotent() {
        let mut d = Design::new("top");
        let a = d.net("a");
        d.mark_input(a);
        d.mark_input(a);
        assert_eq!(d.inputs(), &[a]);
        let y = d.net("y");
        d.mark_output(y);
        assert_eq!(d.outputs(), &[y]);
    }

    #[test]
    fn duplicate_instances_rejected() {
        let mut d = Design::new("top");
        let a = d.net("a");
        let y = d.net("y");
        d.add_instance("u1", "INVX1", vec![("A".into(), a), ("Y".into(), y)])
            .unwrap();
        assert!(d.add_instance("u1", "INVX1", vec![]).is_err());
        assert_eq!(d.instances().len(), 1);
        assert_eq!(d.instances()[0].net_on("A"), Some(a));
        assert_eq!(d.instances()[0].net_on("Z"), None);
    }
}
