//! Arrival / required / slack propagation.

use crate::boundary::{BoundaryConditions, FalsePathMask};
use crate::graph::TimingGraph;
use crate::netlist::{Design, NetId};
use crate::report::{NetTiming, PathPoint, PointTiming, TimingReport};
use crate::StaError;
use nsta_liberty::{Library, NldmTable, TimingSense};
use nsta_waveform::Polarity;

/// Uniform analysis constraints: one arrival/slew/required/load applied to
/// every port.
///
/// This is the legacy boundary description; the engine's internal currency
/// is [`BoundaryConditions`], which carries per-pin min/max arrivals,
/// per-output requirements and false paths. Every analysis entry point
/// accepts either (`impl Into<BoundaryConditions>`), and the uniform
/// translation (min = max = `input_arrival`) reproduces the historical
/// behavior bit for bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constraints {
    /// Arrival time at every primary input (s).
    pub input_arrival: f64,
    /// Transition time at every primary input (s).
    pub input_slew: f64,
    /// Required time at every primary output (s) — a single-cycle "clock
    /// period" view adequate for combinational blocks.
    pub required_at_outputs: f64,
    /// Extra capacitive load on primary output nets (farads).
    pub output_load: f64,
}

impl Default for Constraints {
    fn default() -> Self {
        Constraints {
            input_arrival: 0.0,
            input_slew: 100e-12,
            required_at_outputs: 2e-9,
            output_load: 5e-15,
        }
    }
}

/// Per-edge resolved arc tables.
#[derive(Debug, Clone)]
pub(crate) struct EdgeArc {
    pub sense: TimingSense,
    pub cell_rise: NldmTable,
    pub rise_transition: NldmTable,
    pub cell_fall: NldmTable,
    pub fall_transition: NldmTable,
}

/// One computed timing point (arrival + slew) during the sweep.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Point {
    pub arrival: f64,
    pub slew: f64,
    pub valid: bool,
    /// `(edge index, source transition)` that set this arrival.
    pub pred: Option<(usize, Polarity)>,
}

/// Rise/fall state of a net during the sweep.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct NetState {
    pub rise: Point,
    pub fall: Point,
}

impl NetState {
    pub(crate) fn get(&self, pol: Polarity) -> &Point {
        match pol {
            Polarity::Rise => &self.rise,
            Polarity::Fall => &self.fall,
        }
    }

    pub(crate) fn get_mut(&mut self, pol: Polarity) -> &mut Point {
        match pol {
            Polarity::Rise => &mut self.rise,
            Polarity::Fall => &mut self.fall,
        }
    }
}

/// The static timing analyzer: a design bound to a library.
#[derive(Debug, Clone)]
pub struct Sta {
    design: Design,
    library: Library,
    graph: TimingGraph,
    arcs: Vec<EdgeArc>,
}

impl Sta {
    /// Binds a design to a library, building and validating the timing
    /// graph.
    ///
    /// # Errors
    ///
    /// Propagates graph-construction failures (unknown cells, multiple
    /// drivers, combinational cycles).
    pub fn new(design: Design, library: Library) -> Result<Self, StaError> {
        let graph = TimingGraph::build(&design, &library)?;
        let mut arcs = Vec::with_capacity(graph.edges().len());
        for e in graph.edges() {
            let inst = &design.instances()[e.instance];
            let cell = library
                .cell(&inst.cell)
                .ok_or_else(|| StaError::Unresolved(format!("cell {}", inst.cell)))?;
            let pin = cell
                .pin(&e.output_pin)
                .ok_or_else(|| StaError::Unresolved(format!("pin {}", e.output_pin)))?;
            let arc = pin
                .timing
                .iter()
                .find(|a| a.related_pin == e.input_pin)
                .ok_or_else(|| {
                    StaError::Library(format!(
                        "no arc {} -> {} on cell {}",
                        e.input_pin, e.output_pin, inst.cell
                    ))
                })?;
            arcs.push(EdgeArc {
                sense: arc.sense,
                cell_rise: arc.cell_rise.clone(),
                rise_transition: arc.rise_transition.clone(),
                cell_fall: arc.cell_fall.clone(),
                fall_transition: arc.fall_transition.clone(),
            });
        }
        Ok(Sta {
            design,
            library,
            graph,
            arcs,
        })
    }

    /// The bound design.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// The bound library.
    pub fn library(&self) -> &Library {
        &self.library
    }

    /// The validated timing graph.
    pub fn graph(&self) -> &TimingGraph {
        &self.graph
    }

    /// Effective load on a net: fanout pin caps plus the boundary load on
    /// primary outputs.
    pub(crate) fn net_load(&self, net: NetId, bc: &BoundaryConditions) -> f64 {
        let mut load = self.graph.load(net);
        if self.design.outputs().contains(&net) {
            load += bc.output(net).load;
        }
        load
    }

    /// `(delay, out_slew)` of edge `k` for the given source transition.
    pub(crate) fn edge_timing(
        &self,
        k: usize,
        from_pol: Polarity,
        from_slew: f64,
        load: f64,
    ) -> Result<(Polarity, f64, f64), StaError> {
        let arc = &self.arcs[k];
        let out_pol = match arc.sense {
            TimingSense::NegativeUnate => from_pol.inverted(),
            TimingSense::PositiveUnate => from_pol,
        };
        let (delay_t, slew_t) = match out_pol {
            Polarity::Rise => (&arc.cell_rise, &arc.rise_transition),
            Polarity::Fall => (&arc.cell_fall, &arc.fall_transition),
        };
        let delay = delay_t
            .lookup(from_slew, load)
            .map_err(|e| StaError::Library(format!("delay lookup: {e}")))?;
        let slew = slew_t
            .lookup(from_slew, load)
            .map_err(|e| StaError::Library(format!("slew lookup: {e}")))?
            .max(1e-13);
        Ok((out_pol, delay, slew))
    }

    /// Initial sweep states: primary inputs seeded from their per-pin
    /// boundaries (`min_arrival` for the min sweep, `max_arrival`
    /// otherwise), everything else invalid.
    pub(crate) fn init_states(&self, bc: &BoundaryConditions, minimize: bool) -> Vec<NetState> {
        let mut states = vec![NetState::default(); self.design.net_count()];
        for &input in self.design.inputs() {
            let boundary = bc.input(input);
            for pol in [Polarity::Rise, Polarity::Fall] {
                let p = states[input.0].get_mut(pol);
                p.arrival = boundary.arrival(minimize);
                p.slew = boundary.slew;
                p.valid = true;
            }
        }
        states
    }

    /// One net's fanin update: folds every incoming arc into the net's
    /// current state and returns the result. Reads only predecessor
    /// states, so nets without a dependency path between them can be
    /// updated concurrently; the arithmetic is a fixed per-net operation
    /// sequence, making the outcome independent of which thread runs it.
    ///
    /// The state accessor (by net id) is a closure so cone-partitioned
    /// sweeps can serve reads from a compact per-cone buffer instead of a
    /// full-design state vector — the fold performs the identical
    /// operation sequence regardless of the accessor.
    pub(crate) fn propagate_net_with(
        &self,
        net: NetId,
        get: impl Fn(usize) -> NetState,
        bc: &BoundaryConditions,
        minimize: bool,
    ) -> Result<NetState, StaError> {
        let mut state = get(net.0);
        let load = self.net_load(net, bc);
        for &k in self.graph.fanin_edges(net) {
            let edge = &self.graph.edges()[k];
            for from_pol in [Polarity::Rise, Polarity::Fall] {
                let from = *get(edge.from.0).get(from_pol);
                if !from.valid {
                    continue;
                }
                let (out_pol, delay, slew) = self.edge_timing(k, from_pol, from.slew, load)?;
                let candidate = from.arrival + delay;
                let p = state.get_mut(out_pol);
                let better = if minimize {
                    candidate < p.arrival
                } else {
                    candidate > p.arrival
                };
                if !p.valid || better {
                    p.arrival = candidate;
                    p.slew = slew;
                    p.valid = true;
                    p.pred = Some((k, from_pol));
                }
            }
        }
        Ok(state)
    }

    /// The nominal (latest-arrival, single-thread) forward sweep.
    pub(crate) fn forward_sweep(&self, bc: &BoundaryConditions) -> Result<Vec<NetState>, StaError> {
        self.forward_sweep_partitioned(bc, false, 1)
    }

    /// Cone-partitioned forward sweep on a scoped worker pool: each
    /// weakly-connected component of the graph is one task, swept
    /// sequentially in topological order; tasks are merged back in the
    /// fixed cone order. One pool serves the whole sweep (no per-level
    /// barrier or re-spawn), and a long chain in one cone never waits for
    /// another cone's widest level. A graph with fewer cones than workers
    /// (e.g. one fully connected component) falls back to
    /// level-synchronous scheduling so intra-level parallelism is not
    /// lost. This is the only sweep loop — every caller (nominal, min,
    /// threaded) goes through it, and each net's fanin fold is a fixed
    /// operation sequence merged at a fixed position, so the result is
    /// bit-identical for every `threads` value (including 1) and for both
    /// schedules.
    pub(crate) fn forward_sweep_partitioned(
        &self,
        bc: &BoundaryConditions,
        minimize: bool,
        threads: usize,
    ) -> Result<Vec<NetState>, StaError> {
        let components = self.graph.components();
        let mut sweep_span = nsta_obs::span!("sta.forward_sweep");
        sweep_span.set_arg("minimize", minimize as u8 as f64);
        sweep_span.set_arg("threads", threads.max(1) as f64);
        sweep_span.set_arg("cones", components.len() as f64);
        if components.len() < threads.max(1) {
            let mut states = self.init_states(bc, minimize);
            for level in self.graph.levels() {
                let updated = crate::par::par_map(threads, level, |&net| {
                    self.propagate_net_with(net, |i| states[i], bc, minimize)
                });
                for (&net, result) in level.iter().zip(updated) {
                    states[net.0] = result?;
                }
            }
            return Ok(states);
        }
        let seed = self.init_states(bc, minimize);
        let outcomes = crate::par::par_map(threads, components, |cone| {
            let mut cone_span = nsta_obs::span!("sta.sweep_cone");
            cone_span.set_arg("nets", cone.len() as f64);
            let mut local: Vec<NetState> = cone.iter().map(|&net| seed[net.0]).collect();
            for (j, &net) in cone.iter().enumerate() {
                let updated = self.propagate_net_with(
                    net,
                    |i| local[self.graph.cone_slot(NetId(i))],
                    bc,
                    minimize,
                )?;
                local[j] = updated;
            }
            Ok::<_, StaError>(local)
        });
        let mut states = seed;
        for (cone, outcome) in components.iter().zip(outcomes) {
            for (&net, st) in cone.iter().zip(outcome?) {
                states[net.0] = st;
            }
        }
        Ok(states)
    }

    /// [`Sta::forward_sweep_partitioned`] restricted to a subset of cones:
    /// `scope` is a per-cone mask indexed like
    /// [`crate::TimingGraph::components`]; unscoped cones keep their
    /// [`Sta::init_states`] seed and are never propagated. `None` means
    /// every cone (the plain partitioned sweep). Within the scope the
    /// per-net fold is the same fixed operation sequence as the full
    /// sweep, so scoped states are bit-identical to the full sweep's for
    /// every net inside a scoped cone — the contract the session layer's
    /// dirty-cluster re-solve relies on (it discards everything else).
    pub(crate) fn forward_sweep_scoped(
        &self,
        bc: &BoundaryConditions,
        minimize: bool,
        threads: usize,
        scope: Option<&[bool]>,
    ) -> Result<Vec<NetState>, StaError> {
        let Some(scope) = scope else {
            return self.forward_sweep_partitioned(bc, minimize, threads);
        };
        let components = self.graph.components();
        let mut sweep_span = nsta_obs::span!("sta.forward_sweep");
        sweep_span.set_arg("minimize", minimize as u8 as f64);
        sweep_span.set_arg("threads", threads.max(1) as f64);
        let active: Vec<usize> = (0..components.len())
            .filter(|&i| scope.get(i).copied().unwrap_or(false))
            .collect();
        sweep_span.set_arg("cones", active.len() as f64);
        let seed = self.init_states(bc, minimize);
        let outcomes = crate::par::par_map(threads, &active, |&ci| {
            let cone = &components[ci];
            let mut cone_span = nsta_obs::span!("sta.sweep_cone");
            cone_span.set_arg("nets", cone.len() as f64);
            let mut local: Vec<NetState> = cone.iter().map(|&net| seed[net.0]).collect();
            for (j, &net) in cone.iter().enumerate() {
                let updated = self.propagate_net_with(
                    net,
                    |i| local[self.graph.cone_slot(NetId(i))],
                    bc,
                    minimize,
                )?;
                local[j] = updated;
            }
            Ok::<_, StaError>(local)
        });
        let mut states = seed;
        for (&ci, outcome) in active.iter().zip(outcomes) {
            for (&net, st) in components[ci].iter().zip(outcome?) {
                states[net.0] = st;
            }
        }
        Ok(states)
    }

    /// Runs the nominal (crosstalk-free, latest-arrival) analysis.
    ///
    /// Accepts either the legacy uniform [`Constraints`] or a resolved
    /// per-pin [`BoundaryConditions`] (e.g. bound from an SDC file).
    ///
    /// # Errors
    ///
    /// Propagates table-lookup failures; construction errors were already
    /// caught in [`Sta::new`].
    pub fn analyze(
        &self,
        constraints: impl Into<BoundaryConditions>,
    ) -> Result<TimingReport, StaError> {
        let bc = constraints.into();
        let states = self.forward_sweep(&bc)?;
        let mask = self.false_edge_mask(&bc);
        self.finish_report(&bc, states, mask.as_ref())
    }

    /// Runs the earliest-arrival analysis: the forward sweep minimizes
    /// arrivals, seeding each input from its `min_arrival`.
    ///
    /// The report's arrival column then holds *earliest* arrivals — the
    /// lower edges of the switching windows the crosstalk filter prunes
    /// against. Required times and slacks are still computed against the
    /// (setup-style) output requirements, so treat them as informational
    /// here rather than as a hold check.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Sta::analyze`].
    pub fn analyze_earliest(
        &self,
        constraints: impl Into<BoundaryConditions>,
    ) -> Result<TimingReport, StaError> {
        let bc = constraints.into();
        let states = self.forward_sweep_partitioned(&bc, true, 1)?;
        let mask = self.false_edge_mask(&bc);
        self.finish_report(&bc, states, mask.as_ref())
    }

    /// Builds the false-path exemption mask for this graph, or `None` when
    /// no false paths are declared.
    ///
    /// An edge is masked when **every** `(input, output)` pair routed
    /// through it is covered by a declared false path; an output endpoint
    /// is masked when every input reaching it is falsified against it.
    /// Pairs only *partially* falsified (an edge shared by true and false
    /// paths) are conservatively kept — exact per-path exemption would
    /// need tag-based propagation.
    pub(crate) fn false_edge_mask(&self, bc: &BoundaryConditions) -> Option<FalsePathMask> {
        if bc.false_paths().is_empty() {
            return None;
        }
        let n = self.design.net_count();
        let inputs = self.design.inputs();
        let outputs = self.design.outputs();
        // reach_in[net][i] — input `inputs[i]` reaches `net`.
        let mut reach_in = vec![vec![false; inputs.len()]; n];
        for (i, &inp) in inputs.iter().enumerate() {
            reach_in[inp.0][i] = true;
        }
        for &net in self.graph.topological_order() {
            for &k in self.graph.fanin_edges(net) {
                let from = self.graph.edges()[k].from;
                for i in 0..inputs.len() {
                    if reach_in[from.0][i] {
                        reach_in[net.0][i] = true;
                    }
                }
            }
        }
        // reach_out[net][o] — `net` reaches output `outputs[o]`.
        let mut reach_out = vec![vec![false; outputs.len()]; n];
        for (o, &out) in outputs.iter().enumerate() {
            reach_out[out.0][o] = true;
        }
        for &net in self.graph.topological_order().iter().rev() {
            for &k in self.graph.fanout_edges(net) {
                let to = self.graph.edges()[k].to;
                for o in 0..outputs.len() {
                    if reach_out[to.0][o] {
                        reach_out[net.0][o] = true;
                    }
                }
            }
        }
        // Covered-pair matrix, computed once so the per-edge scan below
        // costs O(I·O) probes instead of re-walking the false-path list
        // per pair. Dense Vec<bool> rows are adequate at this workspace's
        // design sizes; bitset rows would shrink them 8× if needed.
        let covered: Vec<Vec<bool>> = inputs
            .iter()
            .map(|&i| {
                outputs
                    .iter()
                    .map(|&o| bc.false_paths().iter().any(|fp| fp.covers(i, o)))
                    .collect()
            })
            .collect();
        let all_pairs_false = |in_flags: &[bool], out_flags: &[bool]| {
            let mut any = false;
            for (i, &has_in) in in_flags.iter().enumerate() {
                if !has_in {
                    continue;
                }
                for (o, &has_out) in out_flags.iter().enumerate() {
                    if !has_out {
                        continue;
                    }
                    any = true;
                    if !covered[i][o] {
                        return false;
                    }
                }
            }
            any
        };
        let edges = self
            .graph
            .edges()
            .iter()
            .map(|e| all_pairs_false(&reach_in[e.from.0], &reach_out[e.to.0]))
            .collect();
        let output_false = (0..n)
            .map(|i| outputs.contains(&NetId(i)) && all_pairs_false(&reach_in[i], &reach_out[i]))
            .collect();
        Some(FalsePathMask {
            edges,
            output_false,
        })
    }

    /// Builds required times, slacks and the critical path from a completed
    /// forward sweep.
    ///
    /// Required times seed from each output's own [`OutputBoundary`]
    /// (`+inf` keeps the endpoint unconstrained) and do not propagate
    /// through false-path-masked edges, so declared false paths never
    /// contribute to the worst slack.
    /// `mask` is the false-path exemption mask of `bc` over this graph
    /// (compute it once per analysis with [`Sta::false_edge_mask`] — it is
    /// iteration-invariant, so fixed-point callers must not rebuild it per
    /// iteration).
    pub(crate) fn finish_report(
        &self,
        bc: &BoundaryConditions,
        states: Vec<NetState>,
        mask: Option<&FalsePathMask>,
    ) -> Result<TimingReport, StaError> {
        self.finish_report_scoped(bc, states, mask, None)
    }

    /// [`Sta::finish_report`] restricted to a per-net scope mask: required
    /// times are only seeded/propagated and report rows only filled for
    /// nets with `scope[net]` (others get empty [`NetTiming`] rows, and
    /// the worst point / critical path consider scoped nets only). The
    /// reverse sweep's per-edge table lookups dominate the report cost,
    /// so a session's per-edit fixed point scopes them to the dirty
    /// clusters — sound because cones are weakly-connected components
    /// (no edge crosses the scope boundary) and the patch report is
    /// discarded in favor of the merged full one.
    pub(crate) fn finish_report_scoped(
        &self,
        bc: &BoundaryConditions,
        states: Vec<NetState>,
        mask: Option<&FalsePathMask>,
        scope: Option<&[bool]>,
    ) -> Result<TimingReport, StaError> {
        let in_scope = |i: usize| scope.is_none_or(|s| s.get(i).copied().unwrap_or(false));
        let n = self.design.net_count();
        let mut required = vec![[f64::INFINITY; 2]; n];
        let idx = |p: Polarity| match p {
            Polarity::Rise => 0usize,
            Polarity::Fall => 1usize,
        };
        for &out in self.design.outputs() {
            if !in_scope(out.0) {
                continue;
            }
            if mask.is_some_and(|m| m.output_false[out.0]) {
                continue; // every startpoint falsified: no requirement
            }
            required[out.0] = [bc.output(out).required; 2];
        }
        // Reverse sweep over the topological order.
        for &net in self.graph.topological_order().iter().rev() {
            if !in_scope(net.0) {
                continue;
            }
            for &k in self.graph.fanin_edges(net) {
                if mask.is_some_and(|m| m.edges[k]) {
                    continue; // edge lies exclusively on false paths
                }
                let edge = &self.graph.edges()[k];
                let load = self.net_load(net, bc);
                for from_pol in [Polarity::Rise, Polarity::Fall] {
                    let from = *states[edge.from.0].get(from_pol);
                    if !from.valid {
                        continue;
                    }
                    let (out_pol, delay, _) = self.edge_timing(k, from_pol, from.slew, load)?;
                    let req = required[net.0][idx(out_pol)] - delay;
                    let slot = &mut required[edge.from.0][idx(from_pol)];
                    if req < *slot {
                        *slot = req;
                    }
                }
            }
        }

        let mut nets = Vec::with_capacity(n);
        let mut worst_arrival = f64::NEG_INFINITY;
        let mut worst_slack = f64::INFINITY;
        let mut worst_point: Option<(NetId, Polarity)> = None;
        for i in 0..n {
            let id = NetId(i);
            let mut timing = NetTiming {
                net: id,
                name: self.design.net_name(id).to_string(),
                rise: None,
                fall: None,
            };
            if !in_scope(i) {
                nets.push(timing);
                continue;
            }
            for pol in [Polarity::Rise, Polarity::Fall] {
                let p = states[i].get(pol);
                if !p.valid {
                    continue;
                }
                let req = required[i][idx(pol)];
                let slack = if req.is_finite() {
                    req - p.arrival
                } else {
                    f64::INFINITY
                };
                let pt = PointTiming {
                    arrival: p.arrival,
                    slew: p.slew,
                    required: req,
                    slack,
                };
                match pol {
                    Polarity::Rise => timing.rise = Some(pt),
                    Polarity::Fall => timing.fall = Some(pt),
                }
                worst_arrival = worst_arrival.max(p.arrival);
                // Prefer the latest-arriving point among equal slacks so the
                // critical path is reported from its endpoint, not from an
                // intermediate net sharing the same slack.
                let better = slack < worst_slack - 1e-15
                    || (slack <= worst_slack + 1e-15
                        && worst_point
                            .map(|(wid, wpol)| {
                                let wp = states[wid.0].get(wpol);
                                p.arrival > wp.arrival
                            })
                            .unwrap_or(true));
                if better {
                    worst_slack = worst_slack.min(slack);
                    worst_point = Some((id, pol));
                }
            }
            nets.push(timing);
        }

        // Critical path: walk predecessors from the worst-slack endpoint.
        let mut critical = Vec::new();
        if let Some((mut net, mut pol)) = worst_point {
            loop {
                let p = *states[net.0].get(pol);
                critical.push(PathPoint {
                    net,
                    name: self.design.net_name(net).to_string(),
                    polarity: pol,
                    arrival: p.arrival,
                    slew: p.slew,
                });
                match p.pred {
                    Some((k, from_pol)) => {
                        net = self.graph.edges()[k].from;
                        pol = from_pol;
                    }
                    None => break,
                }
            }
            critical.reverse();
        }
        Ok(TimingReport::new(
            nets,
            critical,
            worst_slack,
            worst_arrival,
        ))
    }

    /// Rebuilds a [`TimingReport`] from already-finished per-net rows and
    /// their propagation states: re-derives the worst arrival/slack, the
    /// worst point and the critical path with byte-for-byte the same scan
    /// as [`Sta::finish_report`], but without the reverse required-time
    /// sweep (whose per-edge table lookups dominate the report cost).
    /// For [`Sta::session_merge`], which splices rows from two reports
    /// whose required times are already exact: required times never cross
    /// cone boundaries (cones are weakly-connected components), so a
    /// dirty cone's patch rows and a clean cone's retained rows are each
    /// bit-identical to a batch run's.
    pub(crate) fn report_from_rows(
        &self,
        nets: Vec<NetTiming>,
        states: &[NetState],
    ) -> TimingReport {
        let mut worst_arrival = f64::NEG_INFINITY;
        let mut worst_slack = f64::INFINITY;
        let mut worst_point: Option<(NetId, Polarity)> = None;
        for t in &nets {
            for (pol, pt) in [(Polarity::Rise, &t.rise), (Polarity::Fall, &t.fall)] {
                let Some(p) = pt else { continue };
                worst_arrival = worst_arrival.max(p.arrival);
                // Same latest-arrival tie-break as finish_report, so the
                // reported endpoint (hence critical path) is identical.
                let better = p.slack < worst_slack - 1e-15
                    || (p.slack <= worst_slack + 1e-15
                        && worst_point
                            .map(|(wid, wpol)| {
                                let wp = states[wid.0].get(wpol);
                                p.arrival > wp.arrival
                            })
                            .unwrap_or(true));
                if better {
                    worst_slack = worst_slack.min(p.slack);
                    worst_point = Some((t.net, pol));
                }
            }
        }
        let mut critical = Vec::new();
        if let Some((mut net, mut pol)) = worst_point {
            loop {
                let p = *states[net.0].get(pol);
                critical.push(PathPoint {
                    net,
                    name: self.design.net_name(net).to_string(),
                    polarity: pol,
                    arrival: p.arrival,
                    slew: p.slew,
                });
                match p.pred {
                    Some((k, from_pol)) => {
                        net = self.graph.edges()[k].from;
                        pol = from_pol;
                    }
                    None => break,
                }
            }
            critical.reverse();
        }
        TimingReport::new(nets, critical, worst_slack, worst_arrival)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verilog::parse_design;
    use nsta_liberty::characterize::{inverter_family, Options};
    use nsta_spice::Process;
    use std::sync::OnceLock;

    fn lib() -> &'static Library {
        static LIB: OnceLock<Library> = OnceLock::new();
        LIB.get_or_init(|| {
            inverter_family(
                &Process::c013(),
                &[("INVX1", 1.0), ("INVX2", 2.0), ("INVX4", 4.0)],
                &Options::fast_test(),
            )
            .unwrap()
        })
    }

    fn chain(n: usize) -> Design {
        let mut src = String::from("module m (a, y); input a; output y;\n");
        for i in 1..n {
            src.push_str(&format!("wire w{i};\n"));
        }
        for i in 0..n {
            let from = if i == 0 {
                "a".to_string()
            } else {
                format!("w{i}")
            };
            let to = if i == n - 1 {
                "y".to_string()
            } else {
                format!("w{}", i + 1)
            };
            src.push_str(&format!("INVX2 u{i} (.A({from}), .Y({to}));\n"));
        }
        src.push_str("endmodule");
        parse_design(&src).unwrap()
    }

    #[test]
    fn chain_delay_is_sum_of_stage_delays() {
        let sta = Sta::new(chain(4), lib().clone()).unwrap();
        let c = Constraints::default();
        let report = sta.analyze(c).unwrap();
        let y = sta.design().find_net("y").unwrap();
        let yt = report.net(y).unwrap();
        // Both transitions analyzed; arrivals positive and distinct.
        let rise = yt.rise.as_ref().unwrap();
        let fall = yt.fall.as_ref().unwrap();
        assert!(rise.arrival > 0.0 && fall.arrival > 0.0);
        // A 4-stage chain of ~tens of ps per stage lands well under 1 ns.
        assert!(rise.arrival < 1e-9);
        // Hand-accumulate the expected worst arrival along the chain and
        // compare (validates the sweep's bookkeeping end to end).
        let bc = BoundaryConditions::from(&c);
        let mut arr = [c.input_arrival; 2]; // [rise, fall]
        let mut slew = [c.input_slew; 2];
        let order = ["w1", "w2", "w3", "y"];
        for (stage, name) in order.iter().enumerate() {
            let net = sta.design().find_net(name).unwrap();
            let load = sta.net_load(net, &bc);
            let edge = sta.graph().fanin_edges(net)[0];
            // Negative unate inverter: out rise from in fall and vice versa.
            let (_, d_r, s_r) = sta
                .edge_timing(edge, Polarity::Fall, slew[1], load)
                .unwrap();
            let (_, d_f, s_f) = sta
                .edge_timing(edge, Polarity::Rise, slew[0], load)
                .unwrap();
            let next_rise = arr[1] + d_r;
            let next_fall = arr[0] + d_f;
            arr = [next_rise, next_fall];
            slew = [s_r, s_f];
            let _ = stage;
        }
        assert!((rise.arrival - arr[0]).abs() < 1e-15);
        assert!((fall.arrival - arr[1]).abs() < 1e-15);
    }

    #[test]
    fn longer_chains_are_slower() {
        let c = Constraints::default();
        let t3 = Sta::new(chain(3), lib().clone())
            .unwrap()
            .analyze(c)
            .unwrap()
            .worst_arrival();
        let t6 = Sta::new(chain(6), lib().clone())
            .unwrap()
            .analyze(c)
            .unwrap()
            .worst_arrival();
        assert!(t6 > t3 * 1.5);
    }

    #[test]
    fn slack_and_critical_path() {
        let sta = Sta::new(chain(3), lib().clone()).unwrap();
        let mut c = Constraints {
            required_at_outputs: 1e-9,
            ..Constraints::default()
        };
        let report = sta.analyze(c).unwrap();
        // Slack = required − arrival at the endpoint.
        assert!(report.worst_slack() < 1e-9);
        assert!(
            report.worst_slack() > 0.0,
            "a 3-stage chain meets 1 ns easily"
        );
        // Critical path runs input → output through every stage.
        let path = report.critical_path();
        assert_eq!(path.len(), 4); // a, w1, w2, y
        assert_eq!(path.first().unwrap().name, "a");
        assert_eq!(path.last().unwrap().name, "y");
        // Arrivals increase along the path.
        assert!(path.windows(2).all(|w| w[1].arrival >= w[0].arrival));
        // Negative required time budget produces negative slack.
        c.required_at_outputs = 0.0;
        let tight = sta.analyze(c).unwrap();
        assert!(tight.worst_slack() < 0.0);
    }

    #[test]
    fn per_pin_boundaries_shift_arrivals() {
        // Two independent paths a→y, b→z; delaying only b's arrival must
        // move z and leave y untouched.
        let design = parse_design(
            "module m (a, b, y, z); input a, b; output y, z;\
             INVX1 u1 (.A(a), .Y(y)); INVX1 u2 (.A(b), .Y(z)); endmodule",
        )
        .unwrap();
        let sta = Sta::new(design, lib().clone()).unwrap();
        let c = Constraints::default();
        let uniform = sta.analyze(c).unwrap();
        let mut bc = BoundaryConditions::from(&c);
        let b = sta.design().find_net("b").unwrap();
        bc.set_input(
            b,
            crate::boundary::InputBoundary {
                min_arrival: 100e-12,
                max_arrival: 400e-12,
                slew: c.input_slew,
            },
        );
        let shifted = sta.analyze(&bc).unwrap();
        let arr = |r: &TimingReport, n: &str| {
            let net = sta.design().find_net(n).unwrap();
            r.net(net).unwrap().rise.as_ref().unwrap().arrival
        };
        assert_eq!(arr(&uniform, "y"), arr(&shifted, "y"));
        assert!(
            (arr(&shifted, "z") - (arr(&uniform, "z") + 400e-12)).abs() < 1e-15,
            "z must shift by b's max arrival"
        );
        // The earliest sweep seeds from min_arrival instead.
        let earliest = sta.analyze_earliest(&bc).unwrap();
        assert!(
            (arr(&earliest, "z") - (arr(&uniform, "z") + 100e-12)).abs() < 1e-15,
            "earliest z must shift by b's min arrival"
        );
        assert!(arr(&earliest, "z") < arr(&shifted, "z"));
    }

    #[test]
    fn false_path_relieves_only_its_pair() {
        // a → w → {y, z}: falsifying (a, y) must unconstrain y while z
        // keeps a finite requirement, and the shared edge a→w (which also
        // serves the true pair (a, z)) must keep propagating required time.
        let design = parse_design(
            "module m (a, y, z); input a; output y, z; wire w;\
             INVX1 u1 (.A(a), .Y(w)); INVX2 u2 (.A(w), .Y(y));\
             INVX2 u3 (.A(w), .Y(z)); endmodule",
        )
        .unwrap();
        let sta = Sta::new(design, lib().clone()).unwrap();
        let c = Constraints {
            required_at_outputs: 1e-9,
            ..Constraints::default()
        };
        let mut bc = BoundaryConditions::from(&c);
        let a = sta.design().find_net("a").unwrap();
        let y = sta.design().find_net("y").unwrap();
        let z = sta.design().find_net("z").unwrap();
        bc.add_false_path(crate::boundary::FalsePath {
            from: Some(a),
            to: Some(y),
        });
        let report = sta.analyze(&bc).unwrap();
        let yt = report.net(y).unwrap().rise.as_ref().unwrap();
        assert!(
            yt.required.is_infinite() && yt.slack.is_infinite(),
            "falsified endpoint must be unconstrained, got {yt:?}"
        );
        let zt = report.net(z).unwrap().rise.as_ref().unwrap();
        assert!(zt.required.is_finite() && zt.slack.is_finite());
        // The worst slack comes from the surviving true path.
        assert!(report.worst_slack().is_finite());
        let baseline = sta.analyze(c).unwrap();
        assert_eq!(report.worst_slack(), baseline.worst_slack());
    }

    #[test]
    fn false_path_everything_reports_unconstrained() {
        let sta = Sta::new(chain(3), lib().clone()).unwrap();
        let mut bc = BoundaryConditions::from(&Constraints::default());
        bc.add_false_path(crate::boundary::FalsePath {
            from: None,
            to: None,
        });
        let report = sta.analyze(&bc).unwrap();
        assert!(report.worst_slack().is_infinite());
        assert!(report.to_string().contains("worst slack unconstrained"));
    }

    #[test]
    fn fanout_increases_delay() {
        // One driver, two receivers: the driver's stage delay must exceed
        // the single-receiver case because its load doubles.
        let single = parse_design(
            "module m (a, y); input a; output y; wire w;\
             INVX1 u1 (.A(a), .Y(w)); INVX4 u2 (.A(w), .Y(y)); endmodule",
        )
        .unwrap();
        let double = parse_design(
            "module m (a, y, z); input a; output y, z; wire w;\
             INVX1 u1 (.A(a), .Y(w)); INVX4 u2 (.A(w), .Y(y));\
             INVX4 u3 (.A(w), .Y(z)); endmodule",
        )
        .unwrap();
        let c = Constraints::default();
        let w1 = {
            let sta = Sta::new(single, lib().clone()).unwrap();
            let r = sta.analyze(c).unwrap();
            let w = sta.design().find_net("w").unwrap();
            r.net(w).unwrap().rise.as_ref().unwrap().arrival
        };
        let w2 = {
            let sta = Sta::new(double, lib().clone()).unwrap();
            let r = sta.analyze(c).unwrap();
            let w = sta.design().find_net("w").unwrap();
            r.net(w).unwrap().rise.as_ref().unwrap().arrival
        };
        assert!(w2 > w1, "double fanout {w2:e} vs single {w1:e}");
    }
}
