//! Crosstalk-aware static timing analysis.
//!
//! This crate is the *consumer* of the paper's contribution: a gate-level
//! static timing engine whose noisy-net propagation is pluggable across the
//! six equivalent-waveform techniques (P1, P2, LSF3, E4, WLS5, SGDP).
//!
//! * [`Design`] — gate-level netlist, built programmatically or parsed from
//!   a structural-Verilog subset ([`verilog::parse_design`]),
//! * [`TimingGraph`] — levelized net graph with cycle detection,
//! * [`Sta`] — rise/fall arrival, slew, required-time and slack
//!   propagation over NLDM libraries, with critical-path extraction,
//! * [`BoundaryConditions`] — per-pin run boundaries: input arrival
//!   *windows* `{min, max}` with per-port slews, per-output required
//!   times and loads, and false-path exemptions. Every analysis accepts
//!   `impl Into<BoundaryConditions>`, so the legacy uniform
//!   [`Constraints`] keeps working while SDC-bound sets
//!   (`nsta-constraints`) drive genuine per-pin windows,
//! * [`CouplingSpec`]/[`Sta::analyze_with_crosstalk`] — victim nets with
//!   capacitive aggressors: the noisy waveform at the receiver is computed
//!   on the linear RC substrate, reduced to an equivalent ramp `Γeff` by the
//!   chosen [`MethodKind`](sgdp::MethodKind), and propagated downstream —
//!   exactly how the paper proposes commercial STA adopt SGDP,
//! * [`SiOptions`]/[`Sta::analyze_with_crosstalk_windows`] — the same
//!   analysis behind a timing-window filter: aggressors whose switching
//!   windows cannot overlap the victim's are pruned before any circuit
//!   simulation (their coupling caps stay as quiet grounded load), and the
//!   filter + analysis iterate to a fixed point because crosstalk push-out
//!   moves the windows. Coupling specs can be hand-written or derived from
//!   extracted parasitics by `nsta-parasitics`.
//!
//! ```
//! use nsta_sta::{verilog, Constraints, Sta};
//! use nsta_liberty::characterize::{self, Options};
//! use nsta_spice::Process;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let lib = characterize::inverter_family(
//!     &Process::c013(),
//!     &[("INVX1", 1.0), ("INVX4", 4.0)],
//!     &Options::fast_test(),
//! )?;
//! let design = verilog::parse_design(r#"
//!     module chain (a, y);
//!       input a; output y;
//!       wire w;
//!       INVX1 u1 (.A(a), .Y(w));
//!       INVX4 u2 (.A(w), .Y(y));
//!     endmodule
//! "#)?;
//! let sta = Sta::new(design, lib)?;
//! let report = sta.analyze(&Constraints::default())?;
//! assert!(report.worst_arrival() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod boundary;
mod engine;
mod error;
mod graph;
mod netlist;
mod par;
mod report;
pub mod session;
pub mod si;
pub mod verilog;

pub use boundary::{BoundaryConditions, FalsePath, InputBoundary, OutputBoundary};
pub use engine::{Constraints, Sta};
pub use error::StaError;
pub use graph::{Edge, TimingGraph};
pub use netlist::{Design, Instance, NetId};
pub use nsta_circuit::SolverBackend;
pub use nsta_obs::{CancelToken, Deadline, FakeClock};
pub use report::{NetTiming, TimingReport};
pub use session::{ConeClusters, RetainedAnalysis};
pub use si::{
    ArrivalWindow, ConvergenceAction, CouplingSpec, DegradeAction, DegradeEvent, FaultPolicy,
    PrunedAggressor, SiAdjustment, SiAnalysis, SiDiagnostics, SiIteration, SiOptions, TopoCache,
};

/// Serializes tests that enable the process-wide [`nsta_obs`] recorder:
/// `si` and `par` tests share one test binary, and cargo runs them on
/// concurrent threads, so toggling the global recorder without this lock
/// would leak events between tests.
#[cfg(test)]
pub(crate) fn obs_test_guard() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());
    GUARD
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}
