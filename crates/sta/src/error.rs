use std::fmt;

/// Error type for netlist construction, parsing and timing analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum StaError {
    /// Verilog-subset parse error with a 1-based line number.
    Parse {
        /// Line of the offending token.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// The netlist references something that does not exist.
    Unresolved(String),
    /// Structural rule violation (multiple drivers, undriven net…).
    Structure(String),
    /// The design contains a combinational cycle.
    CombinationalCycle {
        /// Name of a net on the cycle.
        net: String,
    },
    /// A library lookup failed.
    Library(String),
    /// A coupled victim's extracted parasitics are electrically
    /// degenerate (zero capacitance, disconnected node…): the mesh has
    /// no meaningful transient solution, so the reduction refuses to run
    /// rather than analyze a floored stand-in. Under
    /// [`FaultPolicy::Isolate`](crate::si::FaultPolicy::Isolate) the
    /// victim is dropped and marked degraded instead of failing the run.
    DegenerateMesh {
        /// Name of the defective victim net.
        net: String,
        /// What the extraction defect is.
        reason: String,
    },
    /// Crosstalk analysis failed in the circuit substrate.
    Circuit(nsta_circuit::CircuitError),
    /// Equivalent-waveform reduction failed.
    Sgdp(sgdp::SgdpError),
    /// Waveform processing failed.
    Waveform(nsta_waveform::WaveformError),
}

impl fmt::Display for StaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StaError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            StaError::Unresolved(m) => write!(f, "unresolved reference: {m}"),
            StaError::Structure(m) => write!(f, "structural error: {m}"),
            StaError::CombinationalCycle { net } => {
                write!(f, "combinational cycle through net {net}")
            }
            StaError::Library(m) => write!(f, "library error: {m}"),
            StaError::DegenerateMesh { net, reason } => {
                write!(f, "degenerate coupled mesh on net {net}: {reason}")
            }
            StaError::Circuit(e) => write!(f, "circuit failure: {e}"),
            StaError::Sgdp(e) => write!(f, "equivalent-waveform failure: {e}"),
            StaError::Waveform(e) => write!(f, "waveform failure: {e}"),
        }
    }
}

impl std::error::Error for StaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StaError::Circuit(e) => Some(e),
            StaError::Sgdp(e) => Some(e),
            StaError::Waveform(e) => Some(e),
            _ => None,
        }
    }
}

impl From<nsta_circuit::CircuitError> for StaError {
    fn from(e: nsta_circuit::CircuitError) -> Self {
        StaError::Circuit(e)
    }
}

impl From<sgdp::SgdpError> for StaError {
    fn from(e: sgdp::SgdpError) -> Self {
        StaError::Sgdp(e)
    }
}

impl From<nsta_waveform::WaveformError> for StaError {
    fn from(e: nsta_waveform::WaveformError) -> Self {
        StaError::Waveform(e)
    }
}
