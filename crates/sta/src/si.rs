//! Crosstalk-aware propagation: the paper's technique inside an STA sweep.
//!
//! Nets designated by a [`CouplingSpec`] are treated as distributed RC
//! lines capacitively coupled to aggressor nets. During the forward sweep
//! the victim's driver ramp (from its STA arrival/slew) and every
//! aggressor's ramp are played into the linear circuit substrate; the
//! resulting *noisy waveform at the victim's far end* is reduced to an
//! equivalent ramp `Γeff` by the selected technique and replaces the
//! victim's `(arrival, slew)` before fanout gates consume it.
//!
//! This is precisely the integration path the paper proposes for
//! commercial tools: no extra library characterization, one extra waveform
//! reduction per coupled stage.
//!
//! # Threading model and determinism
//!
//! With [`SiOptions::threads`] ` > 1` the sweep runs level-synchronously:
//! the nets of one graph level have no mutual dependencies, so their fanin
//! updates — and, afterwards, the per-victim transient reductions of that
//! level — are fanned across a `std::thread::scope` worker pool and merged
//! back in net-id order. Each work item performs a fixed sequence of
//! floating-point operations that does not depend on which worker runs it
//! or in what order items finish, and the merge order is fixed by the
//! level structure, so **N-thread results are bit-identical to 1-thread
//! results**. Aggressor ramps are always taken from the iteration-invariant
//! nominal sweep, which is what makes same-level victims independent.
//!
//! # Incremental fixed point
//!
//! Crosstalk push-out moves switching windows, so
//! [`Sta::analyze_with_crosstalk_windows`] iterates the window filter and
//! the analysis to a fixed point. Two observations make that cheap:
//!
//! * the nominal forward sweep (which also supplies every aggressor ramp)
//!   is iteration-invariant and is computed once, outside the loop;
//! * a victim's reduction is a pure function of its *victim cache key*:
//!   its own `(arrival, slew)`, the filtered aggressor set with each kept
//!   aggressor's `(net, arrival, slew, coupling cap)`, and the quiet
//!   coupling total folded onto its line. With
//!   [`SiOptions::incremental`] the `(Γeff, base arrival)` of every victim
//!   is cached under that key, and a victim is re-simulated only when its
//!   key moved beyond [`SiOptions::convergence_tol`] (structural changes —
//!   a different kept-aggressor set or coupling value — always re-run).
//!
//! Later iterations therefore pay only for victims whose windows actually
//! changed: the fixed point costs O(changed victims), not
//! O(iterations × victims), and unchanged victims reproduce their cached
//! result bit-for-bit.

use crate::boundary::BoundaryConditions;
use crate::engine::Sta;
use crate::netlist::NetId;
use crate::par::par_map;
use crate::report::TimingReport;
use crate::StaError;
use nsta_circuit::{Circuit, RcLineSpec, StarCoupledLines, TransientOptions};
use nsta_waveform::{Polarity, SaturatedRamp, Thresholds, Waveform};
use sgdp::gate::{GateModel, TableGate};
use sgdp::{MethodKind, PropagationContext};
use std::collections::HashMap;

/// Coupling description of one victim net.
#[derive(Debug, Clone)]
pub struct CouplingSpec {
    /// The victim net (must exist in the design).
    pub victim: NetId,
    /// Aggressor nets (their STA arrivals drive the aggressor ramps).
    pub aggressors: Vec<NetId>,
    /// Total coupling capacitance between the victim and each aggressor (F).
    /// Used for every aggressor missing an entry in [`cm_per_aggressor`](Self::cm_per_aggressor).
    pub cm_total: f64,
    /// Per-aggressor coupling totals (F), aligned with
    /// [`aggressors`](Self::aggressors). Extracted parasitics (SPEF) fill
    /// this; hand-written specs may leave it empty to give every aggressor
    /// `cm_total`.
    pub cm_per_aggressor: Vec<f64>,
    /// Distributed RC spec of the victim wire (and of any aggressor wire
    /// missing an entry in [`aggressor_lines`](Self::aggressor_lines)).
    pub line: RcLineSpec,
    /// Per-aggressor wire specs, aligned with
    /// [`aggressors`](Self::aggressors). Extraction supplies each
    /// aggressor's own RC totals; empty means every aggressor reuses the
    /// victim's line.
    pub aggressor_lines: Vec<RcLineSpec>,
    /// Coupling capacitance of *quiet* aggressors (F): aggressors removed
    /// from switching analysis (e.g. by the timing-window filter) still
    /// load the victim through their coupling caps, which a quiet,
    /// low-impedance driver effectively grounds. This total is spread
    /// along the victim line as extra ground capacitance.
    pub quiet_cm: f64,
    /// Receiver load at the victim's far end (F). `None` (default) sums
    /// the fanout pin capacitances from the library; extraction-backed
    /// specs override it with the SPEF `*L` pin load.
    pub receiver_load: Option<f64>,
    /// Thevenin resistance modeling each driver's output stage (Ω).
    pub driver_resistance: f64,
    /// Aggressor alignment offset added to each aggressor's STA arrival (s).
    /// Sweeping this reproduces the paper's noise-injection timing cases.
    pub aggressor_skew: f64,
    /// `true` (default) switches aggressors opposite to the victim — the
    /// worst case for delay push-out.
    pub aggressors_oppose: bool,
}

impl CouplingSpec {
    /// A spec with the workspace's default electrical assumptions.
    pub fn new(victim: NetId, aggressors: Vec<NetId>, cm_total: f64, line: RcLineSpec) -> Self {
        CouplingSpec {
            victim,
            aggressors,
            cm_total,
            cm_per_aggressor: Vec::new(),
            line,
            aggressor_lines: Vec::new(),
            quiet_cm: 0.0,
            receiver_load: None,
            driver_resistance: 200.0,
            aggressor_skew: 0.0,
            aggressors_oppose: true,
        }
    }

    /// Coupling total between the victim and aggressor `i` (F).
    pub fn cm_of(&self, i: usize) -> f64 {
        self.cm_per_aggressor
            .get(i)
            .copied()
            .unwrap_or(self.cm_total)
    }

    /// Wire spec of aggressor `i`.
    pub fn line_of(&self, i: usize) -> RcLineSpec {
        self.aggressor_lines.get(i).copied().unwrap_or(self.line)
    }

    /// A copy of this spec restricted to the aggressor indices in `keep`
    /// (preserving per-aggressor alignment). Dropped aggressors' coupling
    /// totals move into [`quiet_cm`](Self::quiet_cm) so the victim keeps
    /// seeing their capacitive load.
    fn restricted(&self, keep: &[usize]) -> CouplingSpec {
        let mut spec = self.clone();
        spec.aggressors = keep.iter().map(|&i| self.aggressors[i]).collect();
        spec.cm_per_aggressor = keep.iter().map(|&i| self.cm_of(i)).collect();
        spec.aggressor_lines = keep.iter().map(|&i| self.line_of(i)).collect();
        let kept_cm: f64 = spec.cm_per_aggressor.iter().sum();
        let all_cm: f64 = (0..self.aggressors.len()).map(|i| self.cm_of(i)).sum();
        spec.quiet_cm = self.quiet_cm + (all_cm - kept_cm).max(0.0);
        spec
    }
}

/// A net's switching window: the span of times a transition can occur on
/// it, over both polarities.
///
/// Production SI flows prune aggressors whose windows cannot overlap the
/// victim's before paying for noise analysis (temporal logical
/// correlation); this is the same filter driven by the workspace's own STA
/// sweeps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalWindow {
    /// Earliest possible transition start (s).
    pub earliest: f64,
    /// Latest possible transition end — worst arrival plus its slew (s).
    pub latest: f64,
}

impl ArrivalWindow {
    /// Whether the window is inverted (or contains a NaN edge): its
    /// earliest bound lies strictly after its latest one, so no transition
    /// time satisfies both — the window is empty.
    ///
    /// Inverted windows arise naturally from constant or never-switching
    /// nets whose `+inf`/`−inf` sentinels were never tightened, and from
    /// negative-skew constraint sets; they must never be treated as
    /// "covers everything".
    pub fn is_inverted(&self) -> bool {
        !(self.earliest <= self.latest)
    }

    /// Whether an aggressor window, shifted by `skew` and padded by
    /// `guard` on both sides, can overlap this (victim) window.
    ///
    /// Both windows are **closed** intervals `[earliest, latest]`:
    /// windows that merely touch at a boundary (`aggressor.latest + skew ==
    /// self.earliest`) *do* overlap, and a zero-width window (`earliest ==
    /// latest`) overlaps anything containing its single instant. This is
    /// the conservative choice — a shared boundary instant is a legal
    /// alignment, so the aggressor must be kept.
    ///
    /// Inverted (empty) windows on either side never overlap: an empty
    /// set of candidate transition times cannot align with anything.
    pub fn overlaps(&self, aggressor: &ArrivalWindow, skew: f64, guard: f64) -> bool {
        if self.is_inverted() || aggressor.is_inverted() {
            return false;
        }
        let a_lo = aggressor.earliest + skew - guard;
        let a_hi = aggressor.latest + skew + guard;
        a_lo <= self.latest && self.earliest <= a_hi
    }
}

/// Options of the timing-window crosstalk analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiOptions {
    /// Equivalent-waveform reduction technique.
    pub method: MethodKind,
    /// When `true` (default), aggressors whose switching windows cannot
    /// overlap the victim's are pruned before any circuit simulation.
    pub use_windows: bool,
    /// Extra guard band added around aggressor windows during the overlap
    /// test (s). Larger values prune less aggressively.
    pub window_guard: f64,
    /// Upper bound on fixed-point iterations. Delay push-out moves victim
    /// windows, which can re-admit previously pruned aggressors, so the
    /// analysis iterates until windows stop moving.
    pub max_iterations: usize,
    /// Convergence threshold on the worst per-net arrival movement between
    /// iterations (s). Also bounds how far a cached victim's timing inputs
    /// may drift before the incremental fixed point re-simulates it.
    pub convergence_tol: f64,
    /// Worker threads for the levelized sweep and the per-victim transient
    /// reductions. `1` (default) runs inline; any value produces
    /// bit-identical results (see the module docs).
    pub threads: usize,
    /// When `true` (default), victims whose cache key is unchanged between
    /// fixed-point iterations reuse their previous `Γeff` instead of
    /// re-simulating. Disable to force a full recompute every iteration
    /// (the parity baseline).
    pub incremental: bool,
}

impl Default for SiOptions {
    fn default() -> Self {
        SiOptions {
            method: MethodKind::Sgdp,
            use_windows: true,
            window_guard: 0.0,
            max_iterations: 4,
            convergence_tol: 0.1e-12,
            threads: 1,
            incremental: true,
        }
    }
}

/// One aggressor discarded by the timing-window filter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrunedAggressor {
    /// The victim whose spec the aggressor was removed from.
    pub victim: NetId,
    /// The pruned aggressor.
    pub aggressor: NetId,
    /// The victim's window at the deciding iteration.
    pub victim_window: ArrivalWindow,
    /// The aggressor's (unshifted) window at the deciding iteration.
    pub aggressor_window: ArrivalWindow,
}

/// Result of [`Sta::analyze_with_crosstalk_windows`].
#[derive(Debug, Clone)]
pub struct SiAnalysis {
    /// The timing report of the final iteration.
    pub report: TimingReport,
    /// Per-victim adjustments applied in the final iteration.
    pub adjustments: Vec<SiAdjustment>,
    /// Aggressors pruned by the window filter in the final iteration.
    pub pruned: Vec<PrunedAggressor>,
    /// Number of crosstalk iterations executed (≥ 1).
    pub iterations: usize,
    /// Whether the window fixed point converged within the iteration cap.
    pub converged: bool,
}

/// Outcome of the SI reduction on one victim net.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiAdjustment {
    /// The victim net.
    pub net: NetId,
    /// Victim transition this adjustment applies to.
    pub polarity: Polarity,
    /// Arrival before coupling was considered (s).
    pub base_arrival: f64,
    /// Arrival of `Γeff` after coupling (s).
    pub noisy_arrival: f64,
    /// Slew of `Γeff` (s).
    pub noisy_slew: f64,
}

/// Worst absolute per-net, per-polarity arrival movement between two
/// reports over the same design (s).
fn worst_arrival_movement(a: &TimingReport, b: &TimingReport) -> f64 {
    let mut worst = 0.0f64;
    for (na, nb) in a.nets().iter().zip(b.nets()) {
        for (pa, pb) in [(&na.rise, &nb.rise), (&na.fall, &nb.fall)] {
            if let (Some(pa), Some(pb)) = (pa.as_ref(), pb.as_ref()) {
                worst = worst.max((pa.arrival - pb.arrival).abs());
            }
        }
    }
    worst
}

/// Everything a victim reduction depends on besides the iteration-invariant
/// design/library/constraints: the victim's own timing point, the kept
/// aggressors with the inputs their ramps are built from, and the quiet
/// coupling folded onto the victim line.
#[derive(Debug, Clone)]
struct VictimKey {
    arrival: f64,
    slew: f64,
    /// Per kept aggressor: `(net, arrival, slew, coupling cap)`.
    aggressors: Vec<(NetId, f64, f64, f64)>,
    quiet_cm: f64,
}

impl VictimKey {
    /// Whether `other` is close enough to this key that re-simulating
    /// could not move the result beyond `tol`: structure (aggressor set,
    /// coupling values) must match exactly, timing inputs within `tol`.
    fn matches(&self, other: &VictimKey, tol: f64) -> bool {
        let close = |a: f64, b: f64| (a - b).abs() <= tol;
        self.aggressors.len() == other.aggressors.len()
            && self.quiet_cm == other.quiet_cm
            && close(self.arrival, other.arrival)
            && close(self.slew, other.slew)
            && self
                .aggressors
                .iter()
                .zip(&other.aggressors)
                .all(|(a, b)| a.0 == b.0 && a.3 == b.3 && close(a.1, b.1) && close(a.2, b.2))
    }
}

/// Per-victim `(key, Γeff, base arrival)` memo carried across fixed-point
/// iterations, keyed by `(victim net, polarity)`.
#[derive(Debug, Default)]
struct VictimCache {
    entries: HashMap<(usize, bool), (VictimKey, SaturatedRamp, f64)>,
}

/// One victim reduction scheduled for (possibly parallel) evaluation.
struct VictimJob<'a> {
    spec: &'a CouplingSpec,
    pol: Polarity,
    arrival: f64,
    slew: f64,
}

/// How a victim transition of the current level gets its `Γeff`.
enum Pending {
    /// Reuse a cached result from an earlier iteration.
    Cached(SaturatedRamp, f64),
    /// Take the next entry of this level's computed-job results.
    Computed,
}

impl Sta {
    fn check_unique_victims(&self, couplings: &[CouplingSpec]) -> Result<(), StaError> {
        let mut victims: Vec<NetId> = couplings.iter().map(|s| s.victim).collect();
        victims.sort_unstable();
        if let Some(dup) = victims.windows(2).find(|w| w[0] == w[1]) {
            return Err(StaError::Structure(format!(
                "two coupling specs name the same victim net {}",
                self.design().net_name(dup[0])
            )));
        }
        Ok(())
    }

    /// Builds the cache key of one victim transition from the current
    /// sweep point and the nominal (`base`) aggressor arrivals.
    fn victim_key(
        &self,
        spec: &CouplingSpec,
        victim_pol: Polarity,
        arrival: f64,
        slew: f64,
        base: &[crate::engine::NetState],
    ) -> Result<VictimKey, StaError> {
        let agg_pol = if spec.aggressors_oppose {
            victim_pol.inverted()
        } else {
            victim_pol
        };
        let mut aggressors = Vec::with_capacity(spec.aggressors.len());
        for (i, &agg) in spec.aggressors.iter().enumerate() {
            let p = base
                .get(agg.0)
                .map(|s| *s.get(agg_pol))
                .filter(|p| p.valid)
                .ok_or_else(|| {
                    StaError::Unresolved(format!(
                        "aggressor net #{} has no computed arrival",
                        agg.0
                    ))
                })?;
            aggressors.push((agg, p.arrival, p.slew, spec.cm_of(i)));
        }
        Ok(VictimKey {
            arrival,
            slew,
            aggressors,
            quiet_cm: spec.quiet_cm,
        })
    }

    /// One crosstalk-adjusted forward sweep: level-synchronous, with the
    /// victim reductions of each level evaluated on the worker pool and
    /// merged in net-id order. `cache` (with its staleness tolerance)
    /// short-circuits victims whose key is unchanged since an earlier
    /// iteration.
    fn crosstalk_pass(
        &self,
        bc: &BoundaryConditions,
        couplings: &[CouplingSpec],
        method: MethodKind,
        base: &[crate::engine::NetState],
        threads: usize,
        mut cache: Option<(&mut VictimCache, f64)>,
    ) -> Result<(Vec<crate::engine::NetState>, Vec<SiAdjustment>), StaError> {
        let n = self.design().net_count();
        let mut spec_of: Vec<Option<&CouplingSpec>> = vec![None; n];
        for s in couplings {
            if let Some(slot) = spec_of.get_mut(s.victim.0) {
                *slot = Some(s);
            } else {
                return Err(StaError::Unresolved(format!(
                    "coupling spec names unknown victim net #{}",
                    s.victim.0
                )));
            }
        }
        let th = Thresholds::cmos(self.library().voltage);
        let mut states = self.init_states(bc, false);
        let mut adjustments = Vec::new();
        for level in self.graph().levels() {
            // Fanin updates of this level (parallel, merged in net order).
            let updated = par_map(threads, level, |&net| {
                self.propagate_net(net, &states, bc, false)
            });
            for (&net, result) in level.iter().zip(updated) {
                states[net.0] = result?;
            }
            // Victim transitions of this level, in net-id order: resolve
            // each against the cache or queue it for evaluation. Keys are
            // only built when a cache is active — without one they would
            // never be read.
            let mut units: Vec<(NetId, Polarity, Pending, Option<VictimKey>)> = Vec::new();
            let mut jobs: Vec<VictimJob> = Vec::new();
            for &net in level {
                let Some(spec) = spec_of[net.0] else { continue };
                for pol in [Polarity::Rise, Polarity::Fall] {
                    let point = *states[net.0].get(pol);
                    if !point.valid {
                        continue;
                    }
                    let key = match &cache {
                        Some(_) => {
                            Some(self.victim_key(spec, pol, point.arrival, point.slew, base)?)
                        }
                        None => None,
                    };
                    let hit = cache.as_ref().and_then(|(c, tol)| {
                        c.entries
                            .get(&(net.0, pol.is_rise()))
                            .filter(|(old, _, _)| {
                                old.matches(key.as_ref().expect("key built with cache"), *tol)
                            })
                            .map(|&(_, gamma, base_arrival)| (gamma, base_arrival))
                    });
                    match hit {
                        Some((gamma, base_arrival)) => {
                            // The stored entry (old key + result) is kept as
                            // is: refreshing the key here would let sub-tol
                            // input drift accumulate across iterations
                            // without ever re-simulating.
                            units.push((net, pol, Pending::Cached(gamma, base_arrival), None));
                        }
                        None => {
                            units.push((net, pol, Pending::Computed, key));
                            jobs.push(VictimJob {
                                spec,
                                pol,
                                arrival: point.arrival,
                                slew: point.slew,
                            });
                        }
                    }
                }
            }
            // Same-level victims only read `base` and earlier levels, so
            // their reductions are independent.
            let results = par_map(threads, &jobs, |job| {
                self.victim_gamma(bc, job.spec, job.pol, job.arrival, job.slew, base, method)
            });
            let mut results = results.into_iter();
            for (net, pol, pending, key) in units {
                let (gamma, base_arrival, fresh) = match pending {
                    Pending::Cached(gamma, base_arrival) => (gamma, base_arrival, false),
                    Pending::Computed => {
                        let (gamma, base_arrival) =
                            results.next().expect("one result per queued job")?;
                        (gamma, base_arrival, true)
                    }
                };
                let p = states[net.0].get_mut(pol);
                p.arrival = gamma.arrival_mid();
                p.slew = gamma.slew(th);
                adjustments.push(SiAdjustment {
                    net,
                    polarity: pol,
                    base_arrival,
                    noisy_arrival: p.arrival,
                    noisy_slew: p.slew,
                });
                // Only freshly simulated results enter the cache, paired
                // with the exact key they were computed from.
                if fresh {
                    if let Some((c, _)) = cache.as_mut() {
                        let key = key.expect("computed units carry their key");
                        c.entries
                            .insert((net.0, pol.is_rise()), (key, gamma, base_arrival));
                    }
                }
            }
        }
        Ok((states, adjustments))
    }

    /// Runs the analysis with crosstalk-aware propagation on the nets named
    /// in `couplings`, reducing noisy waveforms with `method`.
    ///
    /// Returns the report plus the per-victim adjustments that were applied
    /// (useful for method comparisons).
    ///
    /// # Errors
    ///
    /// * [`StaError::Unresolved`] if a spec names an unknown net or an
    ///   aggressor without a computed arrival.
    /// * [`StaError::Structure`] if two specs name the same victim — only
    ///   one spec per victim can be applied, so a duplicate would be
    ///   silently ignored otherwise.
    /// * Propagated circuit/reduction failures.
    pub fn analyze_with_crosstalk(
        &self,
        constraints: impl Into<BoundaryConditions>,
        couplings: &[CouplingSpec],
        method: MethodKind,
    ) -> Result<(TimingReport, Vec<SiAdjustment>), StaError> {
        let bc = constraints.into();
        self.check_unique_victims(couplings)?;
        // Pass 1: nominal arrivals — aggressor ramps need them.
        let base = self.forward_sweep(&bc)?;
        // Pass 2: sweep again, overriding victim nets as they are reached.
        let (states, adjustments) = self.crosstalk_pass(&bc, couplings, method, &base, 1, None)?;
        let mask = self.false_edge_mask(&bc);
        let report = self.finish_report(&bc, states, mask.as_ref())?;
        Ok((report, adjustments))
    }

    /// Switching windows per net: earliest arrivals from the min sweep,
    /// latest-arrival-plus-slew from `latest` (a completed report), both
    /// taken over rise and fall.
    fn windows_from(
        &self,
        min_states: &[crate::engine::NetState],
        latest: &TimingReport,
    ) -> Vec<Option<ArrivalWindow>> {
        (0..self.design().net_count())
            .map(|i| {
                let mut earliest = f64::INFINITY;
                for pol in [Polarity::Rise, Polarity::Fall] {
                    let p = min_states[i].get(pol);
                    if p.valid {
                        earliest = earliest.min(p.arrival);
                    }
                }
                let mut end = f64::NEG_INFINITY;
                // finish_report emits one NetTiming per net id, in order:
                // index directly rather than scanning the report per net.
                if let Some(t) = latest.nets().get(i) {
                    debug_assert_eq!(t.net, NetId(i));
                    for pt in [&t.rise, &t.fall].into_iter().flatten() {
                        end = end.max(pt.arrival + pt.slew);
                    }
                }
                (earliest.is_finite() && end.is_finite()).then_some(ArrivalWindow {
                    earliest,
                    latest: end,
                })
            })
            .collect()
    }

    /// Applies the window filter to `couplings`, returning the surviving
    /// specs plus a record of every pruned aggressor. Nets without a
    /// window (unreachable in the sweep) are conservatively kept so the
    /// analysis itself can report them as errors.
    fn window_filter(
        couplings: &[CouplingSpec],
        windows: &[Option<ArrivalWindow>],
        guard: f64,
    ) -> (Vec<CouplingSpec>, Vec<PrunedAggressor>) {
        let mut filtered = Vec::with_capacity(couplings.len());
        let mut pruned = Vec::new();
        for spec in couplings {
            let Some(victim_window) = windows.get(spec.victim.0).copied().flatten() else {
                filtered.push(spec.clone());
                continue;
            };
            let mut keep = Vec::with_capacity(spec.aggressors.len());
            for (i, &agg) in spec.aggressors.iter().enumerate() {
                match windows.get(agg.0).copied().flatten() {
                    Some(aw) if !victim_window.overlaps(&aw, spec.aggressor_skew, guard) => {
                        pruned.push(PrunedAggressor {
                            victim: spec.victim,
                            aggressor: agg,
                            victim_window,
                            aggressor_window: aw,
                        });
                    }
                    _ => keep.push(i),
                }
            }
            if keep.len() == spec.aggressors.len() {
                filtered.push(spec.clone());
            } else {
                // Keep fully-pruned victims too: their wire RC still adds
                // delay relative to the ideal-wire nominal analysis.
                filtered.push(spec.restricted(&keep));
            }
        }
        (filtered, pruned)
    }

    /// Runs the crosstalk analysis with timing-window aggressor filtering,
    /// iterated to a fixed point.
    ///
    /// Aggressors whose switching windows cannot overlap the victim's
    /// (accounting for `aggressor_skew` and `options.window_guard`) are
    /// pruned before any circuit simulation — the temporal-correlation
    /// filter commercial SI flows apply before paying for noise analysis.
    /// Because crosstalk push-out moves arrival windows, the filter and
    /// analysis repeat until the worst per-net arrival movement drops
    /// below `options.convergence_tol` (or the iteration cap is hit).
    ///
    /// The nominal sweep feeding aggressor ramps and earliest windows is
    /// computed once, outside the loop; with [`SiOptions::incremental`]
    /// only victims whose cache key changed between iterations are
    /// re-simulated, and with [`SiOptions::threads`] the per-level work
    /// runs on a worker pool (both without changing any result bit — see
    /// the module docs).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Sta::analyze_with_crosstalk`].
    pub fn analyze_with_crosstalk_windows(
        &self,
        constraints: impl Into<BoundaryConditions>,
        couplings: &[CouplingSpec],
        options: &SiOptions,
    ) -> Result<SiAnalysis, StaError> {
        let bc = constraints.into();
        self.check_unique_victims(couplings)?;
        // The false-path mask depends only on the graph and the boundary
        // conditions: compute it once, outside the fixed point.
        let mask = self.false_edge_mask(&bc);
        let mask = mask.as_ref();
        let threads = options.threads.max(1);
        // Iteration-invariant work, hoisted out of the fixed point: the
        // nominal sweep (aggressor ramps + latest windows of iteration 0)
        // and the min sweep (earliest window edges, which worst-case
        // push-out never moves). Per-pin boundaries seed the two sweeps
        // from each input's min/max arrival, so windows reflect genuine
        // constraint-set arrival ranges instead of a single point.
        let base = self.forward_sweep_levels(&bc, false, threads)?;

        if !options.use_windows {
            let mut cache = VictimCache::default();
            let cache_ref = options
                .incremental
                .then_some((&mut cache, options.convergence_tol));
            let (states, adjustments) =
                self.crosstalk_pass(&bc, couplings, options.method, &base, threads, cache_ref)?;
            let report = self.finish_report(&bc, states, mask)?;
            return Ok(SiAnalysis {
                report,
                adjustments,
                pruned: Vec::new(),
                iterations: 1,
                converged: true,
            });
        }

        let min_states = self.forward_sweep_levels(&bc, true, threads)?;
        let clean = self.finish_report(&bc, base.clone(), mask)?;
        let mut windows = self.windows_from(&min_states, &clean);
        let mut previous: Option<TimingReport> = Some(clean);

        let max_iterations = options.max_iterations.max(1);
        let mut result = None;
        let mut converged = false;
        let mut iterations = 0;
        let mut prev_pruned: Option<Vec<(NetId, NetId)>> = None;
        let mut cache = VictimCache::default();
        for _ in 0..max_iterations {
            let (filtered, pruned) = Self::window_filter(couplings, &windows, options.window_guard);
            // The analysis result is a pure function of the filtered
            // aggressor sets (aggressor ramps come from the nominal
            // sweep): if pruning did not change, re-running it would
            // reproduce the previous report — skip the simulations.
            let pruned_key: Vec<(NetId, NetId)> =
                pruned.iter().map(|p| (p.victim, p.aggressor)).collect();
            if prev_pruned.as_ref() == Some(&pruned_key) {
                converged = true;
                break;
            }
            iterations += 1;
            let cache_ref = options
                .incremental
                .then_some((&mut cache, options.convergence_tol));
            let (states, adjustments) =
                self.crosstalk_pass(&bc, &filtered, options.method, &base, threads, cache_ref)?;
            let report = self.finish_report(&bc, states, mask)?;
            windows = self.windows_from(&min_states, &report);
            let moved = previous
                .as_ref()
                .map_or(f64::INFINITY, |prev| worst_arrival_movement(prev, &report));
            previous = Some(report.clone());
            prev_pruned = Some(pruned_key);
            result = Some(SiAnalysis {
                report,
                adjustments,
                pruned,
                iterations,
                converged: false,
            });
            // Secondary stop: windows that barely moved cannot change the
            // overlap decisions by more than the tolerance.
            if moved <= options.convergence_tol {
                converged = true;
                break;
            }
        }
        let mut analysis = result.expect("at least one iteration runs");
        analysis.converged = converged;
        analysis.iterations = iterations;
        Ok(analysis)
    }

    /// Computes `Γeff` for one victim transition.
    #[allow(clippy::too_many_arguments)]
    fn victim_gamma(
        &self,
        bc: &BoundaryConditions,
        spec: &CouplingSpec,
        victim_pol: Polarity,
        victim_arrival: f64,
        victim_slew: f64,
        base: &[crate::engine::NetState],
        method: MethodKind,
    ) -> Result<(SaturatedRamp, f64), StaError> {
        let th = Thresholds::cmos(self.library().voltage);
        let vdd = th.vdd();

        // Simulation window: start at zero, end comfortably after the
        // latest participant settles.
        let mut latest = victim_arrival + victim_slew;
        let agg_pol = if spec.aggressors_oppose {
            victim_pol.inverted()
        } else {
            victim_pol
        };
        let mut agg_ramps = Vec::new();
        for &agg in &spec.aggressors {
            let p = base
                .get(agg.0)
                .map(|s| *s.get(agg_pol))
                .filter(|p| p.valid)
                .ok_or_else(|| {
                    StaError::Unresolved(format!(
                        "aggressor net #{} has no computed arrival",
                        agg.0
                    ))
                })?;
            let arr = p.arrival + spec.aggressor_skew;
            latest = latest.max(arr + p.slew);
            agg_ramps.push(SaturatedRamp::with_slew(
                arr,
                p.slew.max(1e-12),
                th,
                agg_pol.is_rise(),
            )?);
        }
        let t_stop = latest + 2e-9;
        let dt = (victim_slew / 50.0).clamp(0.5e-12, 5e-12);

        // Build the coupled circuit once — noisy (aggressors switching) and
        // noiseless (aggressors held at their pre-transition rail) share
        // the topology and the timestep, hence one assembly and one LU
        // factorization serve both runs. Each aggressor couples to the
        // victim individually (star topology) with its own wire model and
        // coupling total — the structure extracted parasitics describe.
        // Quiet (window-pruned) aggressors still ground their coupling
        // caps onto the victim: fold their total into the line's ground
        // capacitance.
        let victim_line = if spec.quiet_cm > 0.0 {
            RcLineSpec::new(
                spec.line.r_total,
                spec.line.c_total + spec.quiet_cm,
                spec.line.segments,
            )?
        } else {
            spec.line
        };
        let mut ckt = Circuit::new();
        let v_in = ckt.node("victim_in");
        let victim_ramp = SaturatedRamp::with_slew(
            victim_arrival,
            victim_slew.max(1e-12),
            th,
            victim_pol.is_rise(),
        )?;
        // Voltage source 0 is the victim driver; sources 1..=N follow
        // aggressor order — `run_with_vsources` relies on this layout.
        let victim_wave = victim_ramp.to_waveform(0.0, t_stop, dt)?;
        ckt.thevenin_driver(v_in, victim_wave.clone(), spec.driver_resistance)?;
        let mut agg_ins = Vec::with_capacity(agg_ramps.len());
        for ramp in &agg_ramps {
            let a_in = ckt.anon_node();
            ckt.thevenin_driver(
                a_in,
                ramp.to_waveform(0.0, t_stop, dt)?,
                spec.driver_resistance,
            )?;
            agg_ins.push(a_in);
        }
        let victim_far = if agg_ins.is_empty() {
            // All aggressors pruned: the victim still sees its own wire.
            victim_line.build(&mut ckt, v_in, "w")?
        } else {
            let bundle = StarCoupledLines::new(
                victim_line,
                (0..agg_ins.len())
                    .map(|i| (spec.line_of(i), spec.cm_of(i)))
                    .collect(),
            )?;
            let (far, _) = bundle.build(&mut ckt, v_in, &agg_ins, "w")?;
            far
        };
        // Receiver loading at the victim far end.
        let load = spec
            .receiver_load
            .unwrap_or_else(|| self.graph().load(spec.victim))
            .max(1e-16);
        ckt.capacitor(victim_far, Circuit::GROUND, load)?;

        let stepper = ckt.prepare_transient(TransientOptions::new(0.0, t_stop, dt)?)?;
        let quiet_level = if agg_pol.is_rise() { 0.0 } else { vdd };
        let quiet = Waveform::constant(quiet_level, 0.0, t_stop)?;
        let mut quiet_sources: Vec<&Waveform> = Vec::with_capacity(1 + agg_ins.len());
        quiet_sources.push(&victim_wave);
        quiet_sources.extend(agg_ins.iter().map(|_| &quiet));
        let noiseless = stepper
            .run_with_vsources(&quiet_sources)?
            .voltage(victim_far)?;
        // With every aggressor pruned the "noisy" circuit is identical to
        // the noiseless one: skip the second transient run.
        let noisy = if agg_ramps.is_empty() {
            noiseless.clone()
        } else {
            stepper.run()?.voltage(victim_far)?
        };
        let base_arrival = noiseless.last_crossing_or_err(th.mid())?;

        // Noiseless receiver response through the library tables (the
        // characterization level the paper requires — no extra data). The
        // gate's output load honors a per-pin `set_load` override when the
        // receiver drives a constrained output port, falling back to the
        // default output load (the historical uniform behavior) otherwise.
        let receiver = self
            .graph()
            .fanout_edges(spec.victim)
            .first()
            .map(|&k| {
                let edge = &self.graph().edges()[k];
                let inst = &self.design().instances()[edge.instance];
                self.library()
                    .cell(&inst.cell)
                    .map(|cell| (cell, edge.to))
                    .ok_or_else(|| StaError::Unresolved(format!("cell {}", inst.cell)))
            })
            .transpose()?;
        let noiseless_output = match receiver {
            Some((cell, out_net)) => {
                let load = bc.output(out_net).load.max(1e-15);
                let gate = TableGate::new(cell, load, th).map_err(StaError::from)?;
                Some(gate.response(&noiseless).map_err(StaError::from)?)
            }
            None => None,
        };

        let ctx = PropagationContext::new(noiseless, noisy, noiseless_output, th)?;
        let gamma = method.equivalent(&ctx)?;
        Ok((gamma, base_arrival))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verilog::parse_design;
    use crate::{Constraints, Sta};
    use nsta_liberty::characterize::{inverter_family, Options};
    use nsta_liberty::Library;
    use nsta_spice::Process;
    use std::sync::OnceLock;

    fn lib() -> &'static Library {
        static LIB: OnceLock<Library> = OnceLock::new();
        LIB.get_or_init(|| {
            inverter_family(
                &Process::c013(),
                &[("INVX1", 1.0), ("INVX4", 4.0)],
                &Options::fast_test(),
            )
            .unwrap()
        })
    }

    /// Two parallel chains; u1's output net `v` is the victim, `g` the
    /// aggressor.
    fn coupled_design() -> crate::Design {
        parse_design(
            "module m (a, b, y, z); input a, b; output y, z;\
             wire v, g;\
             INVX1 u1 (.A(a), .Y(v)); INVX4 u2 (.A(v), .Y(y));\
             INVX1 u3 (.A(b), .Y(g)); INVX4 u4 (.A(g), .Y(z));\
             endmodule",
        )
        .unwrap()
    }

    fn spec(sta: &Sta) -> CouplingSpec {
        let v = sta.design().find_net("v").unwrap();
        let g = sta.design().find_net("g").unwrap();
        CouplingSpec::new(v, vec![g], 100e-15, RcLineSpec::per_micron(1000.0).unwrap())
    }

    fn win(earliest: f64, latest: f64) -> ArrivalWindow {
        ArrivalWindow { earliest, latest }
    }

    #[test]
    fn window_overlap_boundary_semantics() {
        let victim = win(100e-12, 200e-12);
        // Closed intervals: windows that merely touch DO overlap.
        assert!(victim.overlaps(&win(200e-12, 300e-12), 0.0, 0.0));
        assert!(victim.overlaps(&win(0.0, 100e-12), 0.0, 0.0));
        // Strictly disjoint windows do not.
        assert!(!victim.overlaps(&win(201e-12, 300e-12), 0.0, 0.0));
        // Zero-width windows overlap anything containing their instant...
        assert!(victim.overlaps(&win(150e-12, 150e-12), 0.0, 0.0));
        assert!(win(150e-12, 150e-12).overlaps(&victim, 0.0, 0.0));
        // ...including exactly at a boundary.
        assert!(victim.overlaps(&win(100e-12, 100e-12), 0.0, 0.0));
        // Negative skew slides the aggressor backwards over the victim.
        assert!(victim.overlaps(&win(300e-12, 400e-12), -150e-12, 0.0));
        assert!(!victim.overlaps(&win(300e-12, 400e-12), 150e-12, 0.0));
        // Guard banding re-admits a near miss symmetrically.
        assert!(victim.overlaps(&win(201e-12, 300e-12), 0.0, 2e-12));
        assert!(victim.overlaps(&win(0.0, 99e-12), 0.0, 2e-12));
    }

    #[test]
    fn inverted_windows_never_overlap() {
        let victim = win(100e-12, 200e-12);
        // A constant net whose ±inf sentinels never tightened produces an
        // inverted (empty) window; it must not read as "covers everything".
        let sentinel = win(f64::INFINITY, f64::NEG_INFINITY);
        assert!(sentinel.is_inverted());
        assert!(!victim.overlaps(&sentinel, 0.0, 0.0));
        assert!(!sentinel.overlaps(&victim, 0.0, 0.0));
        assert!(!sentinel.overlaps(&sentinel, 0.0, 0.0));
        // Plain inverted windows (min sweep above max sweep) too.
        let inverted = win(300e-12, 250e-12);
        assert!(inverted.is_inverted());
        assert!(!victim.overlaps(&inverted, 0.0, 0.0));
        assert!(!inverted.overlaps(&victim, 0.0, 0.0));
        // Even a huge guard band cannot resurrect an empty window.
        assert!(!victim.overlaps(&inverted, 0.0, 1.0));
        // NaN edges are treated as empty, not as overlapping.
        let nan = win(f64::NAN, 200e-12);
        assert!(nan.is_inverted());
        assert!(!victim.overlaps(&nan, 0.0, 0.0));
        // Zero-width windows are NOT inverted.
        assert!(!win(1e-12, 1e-12).is_inverted());
    }

    #[test]
    fn crosstalk_pushes_victim_arrival_out() {
        let sta = Sta::new(coupled_design(), lib().clone()).unwrap();
        let c = Constraints::default();
        let nominal = sta.analyze(c).unwrap();
        let (noisy, adj) = sta
            .analyze_with_crosstalk(c, &[spec(&sta)], MethodKind::Sgdp)
            .unwrap();
        assert_eq!(adj.len(), 2, "rise and fall adjustments recorded");
        // The coupled line adds wire delay plus noise: the victim's fanout
        // (net y) must arrive later than in the nominal ideal-wire run.
        let y = sta.design().find_net("y").unwrap();
        let nom = nominal.net(y).unwrap().rise.as_ref().unwrap().arrival;
        let si = noisy.net(y).unwrap().rise.as_ref().unwrap().arrival;
        assert!(si > nom, "si {si:e} vs nominal {nom:e}");
        // Adjustments carry the push-out relative to the noiseless line.
        for a in &adj {
            assert!(a.noisy_slew > 0.0);
            assert!(a.noisy_arrival + 1e-12 >= a.base_arrival - 100e-12);
        }
    }

    #[test]
    fn aligned_aggressor_hurts_more_than_far_one() {
        let sta = Sta::new(coupled_design(), lib().clone()).unwrap();
        let c = Constraints::default();
        let mut near = spec(&sta);
        near.aggressor_skew = 0.0;
        let mut far = spec(&sta);
        far.aggressor_skew = -1.0e-9;
        let arr = |s: &CouplingSpec| {
            let (report, _) = sta
                .analyze_with_crosstalk(c, std::slice::from_ref(s), MethodKind::P2)
                .unwrap();
            let y = sta.design().find_net("y").unwrap();
            report.net(y).unwrap().rise.as_ref().unwrap().arrival
        };
        assert!(arr(&near) > arr(&far), "aligned aggressor must delay more");
    }

    #[test]
    fn methods_disagree_on_noisy_nets() {
        let sta = Sta::new(coupled_design(), lib().clone()).unwrap();
        let c = Constraints::default();
        let mut results = Vec::new();
        for method in MethodKind::all() {
            match sta.analyze_with_crosstalk(c, &[spec(&sta)], method) {
                Ok((report, _)) => results.push((method, report.worst_arrival())),
                Err(StaError::Sgdp(_)) => {} // WLS5 may legitimately refuse
                Err(other) => panic!("unexpected failure for {method}: {other}"),
            }
        }
        assert!(results.len() >= 5);
        let min = results
            .iter()
            .map(|&(_, a)| a)
            .fold(f64::INFINITY, f64::min);
        let max = results.iter().map(|&(_, a)| a).fold(0.0f64, f64::max);
        assert!(max > min, "techniques must produce distinct timing");
    }

    /// Victim `v` (one stage from `a`), near aggressor `gn` (one stage
    /// from `b`), far aggressor `gf` at the end of a 12-stage chain whose
    /// switching window lands long after `v` has settled — far enough that
    /// even crosstalk push-out cannot stretch the victim's window onto it
    /// (shorter chains get re-admitted by the fixed-point iteration).
    fn windowed_design() -> crate::Design {
        let stages = 12;
        let mut src = String::from(
            "module m (a, b, c, y, z, w); input a, b, c; output y, z, w;\n\
             wire v, gn, gf;\n\
             INVX1 u1 (.A(a), .Y(v)); INVX4 u2 (.A(v), .Y(y));\n\
             INVX1 u3 (.A(b), .Y(gn)); INVX4 u4 (.A(gn), .Y(z));\n",
        );
        for i in 1..stages {
            src.push_str(&format!("wire f{i};\n"));
        }
        src.push_str("INVX1 c1 (.A(c), .Y(f1));\n");
        for i in 1..stages - 1 {
            src.push_str(&format!("INVX1 c{} (.A(f{}), .Y(f{}));\n", i + 1, i, i + 1));
        }
        src.push_str(&format!(
            "INVX1 c{} (.A(f{}), .Y(gf));\nINVX4 u5 (.A(gf), .Y(w));\nendmodule",
            stages,
            stages - 1
        ));
        parse_design(&src).unwrap()
    }

    fn two_aggressor_spec(sta: &Sta) -> CouplingSpec {
        let v = sta.design().find_net("v").unwrap();
        let gn = sta.design().find_net("gn").unwrap();
        let gf = sta.design().find_net("gf").unwrap();
        CouplingSpec::new(
            v,
            vec![gn, gf],
            50e-15,
            RcLineSpec::per_micron(1000.0).unwrap(),
        )
    }

    #[test]
    fn window_filter_prunes_far_aggressor_and_keeps_pushout() {
        let sta = Sta::new(windowed_design(), lib().clone()).unwrap();
        let c = Constraints::default();
        let nominal = sta.analyze(c).unwrap();
        let analysis = sta
            .analyze_with_crosstalk_windows(c, &[two_aggressor_spec(&sta)], &SiOptions::default())
            .unwrap();
        let gf = sta.design().find_net("gf").unwrap();
        assert!(
            analysis.pruned.iter().any(|p| p.aggressor == gf),
            "the late-switching aggressor must be window-pruned: {:?}",
            analysis.pruned
        );
        let gn = sta.design().find_net("gn").unwrap();
        assert!(
            !analysis.pruned.iter().any(|p| p.aggressor == gn),
            "the aligned aggressor must survive"
        );
        // The surviving aggressor still pushes the victim's fanout out.
        let y = sta.design().find_net("y").unwrap();
        let nom = nominal.net(y).unwrap().rise.as_ref().unwrap().arrival;
        let si = analysis
            .report
            .net(y)
            .unwrap()
            .rise
            .as_ref()
            .unwrap()
            .arrival;
        assert!(si > nom, "si {si:e} vs nominal {nom:e}");
        assert!(!analysis.adjustments.is_empty());
        assert!(analysis.iterations >= 1);
        assert!(analysis.converged, "small designs reach the fixed point");
    }

    #[test]
    fn window_filtered_delay_not_below_unfiltered() {
        // Pruning only removes aggressors that cannot align, so the
        // filtered analysis must agree with the unfiltered one on this
        // design (where the far aggressor genuinely cannot overlap).
        let sta = Sta::new(windowed_design(), lib().clone()).unwrap();
        let c = Constraints::default();
        let spec = two_aggressor_spec(&sta);
        let filtered = sta
            .analyze_with_crosstalk_windows(c, std::slice::from_ref(&spec), &SiOptions::default())
            .unwrap();
        let unfiltered = sta
            .analyze_with_crosstalk_windows(
                c,
                &[spec],
                &SiOptions {
                    use_windows: false,
                    ..SiOptions::default()
                },
            )
            .unwrap();
        assert!(unfiltered.pruned.is_empty());
        let y = sta.design().find_net("y").unwrap();
        let f = filtered
            .report
            .net(y)
            .unwrap()
            .rise
            .as_ref()
            .unwrap()
            .arrival;
        let u = unfiltered
            .report
            .net(y)
            .unwrap()
            .rise
            .as_ref()
            .unwrap()
            .arrival;
        // The far aggressor cannot overlap, so dropping it must not change
        // the victim's timing by more than the solver's tolerance.
        assert!((f - u).abs() < 5e-12, "filtered {f:e} vs unfiltered {u:e}");
    }

    #[test]
    fn skew_rescues_a_pruned_aggressor() {
        let sta = Sta::new(windowed_design(), lib().clone()).unwrap();
        let c = Constraints::default();
        let clean = sta.analyze(c).unwrap();
        let v = sta.design().find_net("v").unwrap();
        let gf = sta.design().find_net("gf").unwrap();
        let v_arr = clean.net(v).unwrap().rise.as_ref().unwrap().arrival;
        let g_arr = clean.net(gf).unwrap().rise.as_ref().unwrap().arrival;
        let mut spec = two_aggressor_spec(&sta);
        // Shift every aggressor back so the far chain lands on the victim.
        spec.aggressor_skew = v_arr - g_arr;
        let analysis = sta
            .analyze_with_crosstalk_windows(c, &[spec], &SiOptions::default())
            .unwrap();
        assert!(
            !analysis.pruned.iter().any(|p| p.aggressor == gf),
            "skew moves the far window onto the victim: {:?}",
            analysis.pruned
        );
    }

    #[test]
    fn windows_from_min_and_max_sweeps_are_ordered() {
        let sta = Sta::new(windowed_design(), lib().clone()).unwrap();
        let c = Constraints::default();
        let min_states = sta
            .forward_sweep_levels(&BoundaryConditions::from(&c), true, 1)
            .unwrap();
        let report = sta.analyze(c).unwrap();
        let windows = sta.windows_from(&min_states, &report);
        let mut seen = 0;
        for w in windows.into_iter().flatten() {
            assert!(w.earliest <= w.latest);
            seen += 1;
        }
        assert!(seen > 0);
    }

    /// Three victim/aggressor groups in the spefbus pattern: group `g`'s
    /// far aggressor sits behind a chain of `2g + 3` inverters, so some
    /// groups keep both aggressors while later ones get window-pruned —
    /// both cache paths of the incremental fixed point get exercised.
    fn multi_group_design(groups: usize) -> crate::Design {
        let mut src = String::from("module m (");
        let ports: Vec<String> = (0..groups)
            .flat_map(|g| vec![format!("a{g}"), format!("b{g}"), format!("c{g}")])
            .chain(
                (0..groups).flat_map(|g| vec![format!("y{g}"), format!("z{g}"), format!("w{g}")]),
            )
            .collect();
        src.push_str(&ports.join(", "));
        src.push_str(");\n");
        for g in 0..groups {
            src.push_str(&format!(
                "input a{g}, b{g}, c{g}; output y{g}, z{g}, w{g};\n"
            ));
        }
        for g in 0..groups {
            let stages = 2 * g + 3;
            src.push_str(&format!(
                "wire v{g}, gn{g}, gf{g};\n\
                 INVX1 u{g}_1 (.A(a{g}), .Y(v{g})); INVX4 u{g}_2 (.A(v{g}), .Y(y{g}));\n\
                 INVX1 u{g}_3 (.A(b{g}), .Y(gn{g})); INVX4 u{g}_4 (.A(gn{g}), .Y(z{g}));\n"
            ));
            let mut prev = format!("c{g}");
            for s in 1..stages {
                src.push_str(&format!(
                    "wire f{g}_{s};\nINVX1 c{g}_{s} (.A({prev}), .Y(f{g}_{s}));\n"
                ));
                prev = format!("f{g}_{s}");
            }
            src.push_str(&format!(
                "INVX1 c{g}_{stages} (.A({prev}), .Y(gf{g}));\nINVX4 u{g}_5 (.A(gf{g}), .Y(w{g}));\n"
            ));
        }
        src.push_str("endmodule");
        parse_design(&src).unwrap()
    }

    fn multi_group_specs(sta: &Sta, groups: usize) -> Vec<CouplingSpec> {
        (0..groups)
            .map(|g| {
                let v = sta.design().find_net(&format!("v{g}")).unwrap();
                let gn = sta.design().find_net(&format!("gn{g}")).unwrap();
                let gf = sta.design().find_net(&format!("gf{g}")).unwrap();
                CouplingSpec::new(
                    v,
                    vec![gn, gf],
                    50e-15,
                    RcLineSpec::per_micron(1000.0).unwrap(),
                )
            })
            .collect()
    }

    fn assert_analyses_identical(a: &SiAnalysis, b: &SiAnalysis) {
        assert_eq!(a.report, b.report);
        assert_eq!(a.adjustments, b.adjustments);
        assert_eq!(a.pruned, b.pruned);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.converged, b.converged);
    }

    #[test]
    fn threaded_analysis_is_bit_identical_to_sequential() {
        let groups = 3;
        let sta = Sta::new(multi_group_design(groups), lib().clone()).unwrap();
        let c = Constraints::default();
        let specs = multi_group_specs(&sta, groups);
        let sequential = sta
            .analyze_with_crosstalk_windows(c, &specs, &SiOptions::default())
            .unwrap();
        let threaded = sta
            .analyze_with_crosstalk_windows(
                c,
                &specs,
                &SiOptions {
                    threads: 4,
                    ..SiOptions::default()
                },
            )
            .unwrap();
        // Bit-identical, not approximately equal: the worker pool must not
        // change a single ulp anywhere in the report.
        assert_analyses_identical(&sequential, &threaded);
        assert!(!sequential.adjustments.is_empty());
    }

    #[test]
    fn incremental_fixed_point_matches_full_recompute() {
        let groups = 3;
        let sta = Sta::new(multi_group_design(groups), lib().clone()).unwrap();
        let c = Constraints::default();
        let specs = multi_group_specs(&sta, groups);
        let incremental = sta
            .analyze_with_crosstalk_windows(c, &specs, &SiOptions::default())
            .unwrap();
        let full = sta
            .analyze_with_crosstalk_windows(
                c,
                &specs,
                &SiOptions {
                    incremental: false,
                    ..SiOptions::default()
                },
            )
            .unwrap();
        assert!(
            incremental.iterations >= 2,
            "fixture must exercise the fixed point, got {} iteration(s)",
            incremental.iterations
        );
        assert_analyses_identical(&incremental, &full);
    }

    #[test]
    fn per_pin_output_load_reaches_the_receiver_reduction() {
        // The SGDP reduction models the victim's receiver through the
        // library tables; its output load must honor a per-pin override
        // on the net that receiver drives (regression: it used to read
        // the uniform default only).
        let sta = Sta::new(coupled_design(), lib().clone()).unwrap();
        let c = Constraints::default();
        let mut heavy = BoundaryConditions::from(&c);
        let y = sta.design().find_net("y").unwrap();
        let mut ob = heavy.output(y);
        ob.load *= 20.0;
        heavy.set_output(y, ob);
        let (_, base) = sta
            .analyze_with_crosstalk(c, &[spec(&sta)], MethodKind::Sgdp)
            .unwrap();
        let (_, loaded) = sta
            .analyze_with_crosstalk(heavy, &[spec(&sta)], MethodKind::Sgdp)
            .unwrap();
        assert_eq!(base.len(), loaded.len());
        assert!(
            base.iter()
                .zip(&loaded)
                .any(|(a, b)| a.noisy_arrival != b.noisy_arrival || a.noisy_slew != b.noisy_slew),
            "a 20x receiver output load must change the reduction"
        );
    }

    #[test]
    fn unknown_aggressor_is_reported() {
        let sta = Sta::new(coupled_design(), lib().clone()).unwrap();
        let c = Constraints::default();
        let mut s = spec(&sta);
        s.aggressors = vec![NetId(usize::MAX - 1)];
        assert!(sta.analyze_with_crosstalk(c, &[s], MethodKind::P1).is_err());
    }

    #[test]
    fn duplicate_victim_specs_rejected() {
        // Only one spec per victim can apply; a silent first-wins pick
        // would drop the second spec's aggressors.
        let sta = Sta::new(coupled_design(), lib().clone()).unwrap();
        let c = Constraints::default();
        let s = spec(&sta);
        assert!(matches!(
            sta.analyze_with_crosstalk(c, &[s.clone(), s], MethodKind::P1),
            Err(StaError::Structure(_))
        ));
    }
}
