//! Crosstalk-aware propagation: the paper's technique inside an STA sweep.
//!
//! Nets designated by a [`CouplingSpec`] are treated as distributed RC
//! lines capacitively coupled to aggressor nets. During the forward sweep
//! the victim's driver ramp (from its STA arrival/slew) and every
//! aggressor's ramp are played into the linear circuit substrate; the
//! resulting *noisy waveform at the victim's far end* is reduced to an
//! equivalent ramp `Γeff` by the selected technique and replaces the
//! victim's `(arrival, slew)` before fanout gates consume it.
//!
//! This is precisely the integration path the paper proposes for
//! commercial tools: no extra library characterization, one extra waveform
//! reduction per coupled stage.

use crate::engine::{Constraints, Sta};
use crate::netlist::NetId;
use crate::report::TimingReport;
use crate::StaError;
use nsta_circuit::{Circuit, RcLineSpec, TransientOptions};
use nsta_waveform::{Polarity, SaturatedRamp, Thresholds, Waveform};
use sgdp::gate::{GateModel, TableGate};
use sgdp::{MethodKind, PropagationContext};

/// Coupling description of one victim net.
#[derive(Debug, Clone)]
pub struct CouplingSpec {
    /// The victim net (must exist in the design).
    pub victim: NetId,
    /// Aggressor nets (their STA arrivals drive the aggressor ramps).
    pub aggressors: Vec<NetId>,
    /// Total coupling capacitance between the victim and each aggressor (F).
    pub cm_total: f64,
    /// Distributed RC spec of the victim and aggressor wires.
    pub line: RcLineSpec,
    /// Thevenin resistance modeling each driver's output stage (Ω).
    pub driver_resistance: f64,
    /// Aggressor alignment offset added to each aggressor's STA arrival (s).
    /// Sweeping this reproduces the paper's noise-injection timing cases.
    pub aggressor_skew: f64,
    /// `true` (default) switches aggressors opposite to the victim — the
    /// worst case for delay push-out.
    pub aggressors_oppose: bool,
}

impl CouplingSpec {
    /// A spec with the workspace's default electrical assumptions.
    pub fn new(victim: NetId, aggressors: Vec<NetId>, cm_total: f64, line: RcLineSpec) -> Self {
        CouplingSpec {
            victim,
            aggressors,
            cm_total,
            line,
            driver_resistance: 200.0,
            aggressor_skew: 0.0,
            aggressors_oppose: true,
        }
    }
}

/// Outcome of the SI reduction on one victim net.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiAdjustment {
    /// The victim net.
    pub net: NetId,
    /// Victim transition this adjustment applies to.
    pub polarity: Polarity,
    /// Arrival before coupling was considered (s).
    pub base_arrival: f64,
    /// Arrival of `Γeff` after coupling (s).
    pub noisy_arrival: f64,
    /// Slew of `Γeff` (s).
    pub noisy_slew: f64,
}

impl Sta {
    /// Runs the analysis with crosstalk-aware propagation on the nets named
    /// in `couplings`, reducing noisy waveforms with `method`.
    ///
    /// Returns the report plus the per-victim adjustments that were applied
    /// (useful for method comparisons).
    ///
    /// # Errors
    ///
    /// * [`StaError::Unresolved`] if a spec names an unknown net or an
    ///   aggressor without a computed arrival.
    /// * Propagated circuit/reduction failures.
    pub fn analyze_with_crosstalk(
        &self,
        constraints: &Constraints,
        couplings: &[CouplingSpec],
        method: MethodKind,
    ) -> Result<(TimingReport, Vec<SiAdjustment>), StaError> {
        // Pass 1: nominal arrivals — aggressor ramps need them.
        let base = self.forward_sweep(constraints, |_, _| Ok(()))?;

        let mut adjustments = Vec::new();
        // Pass 2: sweep again, overriding victim nets as they are reached.
        let states = self.forward_sweep(constraints, |net, state| {
            let Some(spec) = couplings.iter().find(|s| s.victim == net) else {
                return Ok(());
            };
            for pol in [Polarity::Rise, Polarity::Fall] {
                let point = *state.get(pol);
                if !point.valid {
                    continue;
                }
                let (gamma, base_arrival) = self.victim_gamma(
                    constraints,
                    spec,
                    pol,
                    point.arrival,
                    point.slew,
                    &base,
                    method,
                )?;
                let th = Thresholds::cmos(self.library().voltage);
                let p = state.get_mut(pol);
                p.arrival = gamma.arrival_mid();
                p.slew = gamma.slew(th);
                adjustments.push(SiAdjustment {
                    net,
                    polarity: pol,
                    base_arrival,
                    noisy_arrival: p.arrival,
                    noisy_slew: p.slew,
                });
            }
            Ok(())
        })?;
        let report = self.finish_report(constraints, states)?;
        Ok((report, adjustments))
    }

    /// Computes `Γeff` for one victim transition.
    #[allow(clippy::too_many_arguments)]
    fn victim_gamma(
        &self,
        constraints: &Constraints,
        spec: &CouplingSpec,
        victim_pol: Polarity,
        victim_arrival: f64,
        victim_slew: f64,
        base: &[crate::engine::NetState],
        method: MethodKind,
    ) -> Result<(SaturatedRamp, f64), StaError> {
        let th = Thresholds::cmos(self.library().voltage);
        let vdd = th.vdd();

        // Simulation window: start at zero, end comfortably after the
        // latest participant settles.
        let mut latest = victim_arrival + victim_slew;
        let agg_pol =
            if spec.aggressors_oppose { victim_pol.inverted() } else { victim_pol };
        let mut agg_ramps = Vec::new();
        for &agg in &spec.aggressors {
            let p = base
                .get(agg.0)
                .map(|s| *s.get(agg_pol))
                .filter(|p| p.valid)
                .ok_or_else(|| {
                    StaError::Unresolved(format!(
                        "aggressor net #{} has no computed arrival",
                        agg.0
                    ))
                })?;
            let arr = p.arrival + spec.aggressor_skew;
            latest = latest.max(arr + p.slew);
            agg_ramps.push(SaturatedRamp::with_slew(arr, p.slew.max(1e-12), th, agg_pol.is_rise())?);
        }
        let t_stop = latest + 2e-9;
        let dt = (victim_slew / 50.0).clamp(0.5e-12, 5e-12);

        // Build the coupled circuit twice: noisy (aggressors switching) and
        // noiseless (aggressors held at their pre-transition rail).
        let far_wave = |aggressors_switch: bool| -> Result<Waveform, StaError> {
            let mut ckt = Circuit::new();
            let v_in = ckt.node("victim_in");
            let victim_ramp =
                SaturatedRamp::with_slew(victim_arrival, victim_slew.max(1e-12), th, victim_pol.is_rise())?;
            ckt.thevenin_driver(
                v_in,
                victim_ramp.to_waveform(0.0, t_stop, dt)?,
                spec.driver_resistance,
            )?;
            let mut inputs = vec![v_in];
            for (i, ramp) in agg_ramps.iter().enumerate() {
                let a_in = ckt.node(&format!("agg{i}_in"));
                let wf = if aggressors_switch {
                    ramp.to_waveform(0.0, t_stop, dt)?
                } else {
                    let quiet = if agg_pol.is_rise() { 0.0 } else { vdd };
                    Waveform::constant(quiet, 0.0, t_stop)?
                };
                ckt.thevenin_driver(a_in, wf, spec.driver_resistance)?;
                inputs.push(a_in);
            }
            let bundle = nsta_circuit::CoupledLines::new(
                spec.line,
                inputs.len(),
                spec.cm_total,
            )?;
            let far = bundle.build(&mut ckt, &inputs, "w")?;
            // Receiver loading at the victim far end.
            let load = self.graph().load(spec.victim).max(1e-16);
            ckt.capacitor(far[0], Circuit::GROUND, load)?;
            let res = ckt.run_transient(TransientOptions::new(0.0, t_stop, dt)?)?;
            Ok(res.voltage(far[0])?)
        };

        let noisy = far_wave(true)?;
        let noiseless = far_wave(false)?;
        let base_arrival = noiseless.last_crossing_or_err(th.mid())?;

        // Noiseless receiver response through the library tables (the
        // characterization level the paper requires — no extra data).
        let receiver_cell = self
            .graph()
            .fanout_edges(spec.victim)
            .first()
            .map(|&k| {
                let inst = &self.design().instances()[self.graph().edges()[k].instance];
                self.library()
                    .cell(&inst.cell)
                    .ok_or_else(|| StaError::Unresolved(format!("cell {}", inst.cell)))
            })
            .transpose()?;
        let noiseless_output = match receiver_cell {
            Some(cell) => {
                let load = constraints.output_load.max(1e-15);
                let gate = TableGate::new(cell, load, th).map_err(StaError::from)?;
                Some(gate.response(&noiseless).map_err(StaError::from)?)
            }
            None => None,
        };

        let ctx = PropagationContext::new(noiseless, noisy, noiseless_output, th)?;
        let gamma = method.equivalent(&ctx)?;
        Ok((gamma, base_arrival))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verilog::parse_design;
    use crate::Sta;
    use nsta_liberty::characterize::{inverter_family, Options};
    use nsta_liberty::Library;
    use nsta_spice::Process;
    use std::sync::OnceLock;

    fn lib() -> &'static Library {
        static LIB: OnceLock<Library> = OnceLock::new();
        LIB.get_or_init(|| {
            inverter_family(
                &Process::c013(),
                &[("INVX1", 1.0), ("INVX4", 4.0)],
                &Options::fast_test(),
            )
            .unwrap()
        })
    }

    /// Two parallel chains; u1's output net `v` is the victim, `g` the
    /// aggressor.
    fn coupled_design() -> crate::Design {
        parse_design(
            "module m (a, b, y, z); input a, b; output y, z;\
             wire v, g;\
             INVX1 u1 (.A(a), .Y(v)); INVX4 u2 (.A(v), .Y(y));\
             INVX1 u3 (.A(b), .Y(g)); INVX4 u4 (.A(g), .Y(z));\
             endmodule",
        )
        .unwrap()
    }

    fn spec(sta: &Sta) -> CouplingSpec {
        let v = sta.design().find_net("v").unwrap();
        let g = sta.design().find_net("g").unwrap();
        CouplingSpec::new(
            v,
            vec![g],
            100e-15,
            RcLineSpec::per_micron(1000.0).unwrap(),
        )
    }

    #[test]
    fn crosstalk_pushes_victim_arrival_out() {
        let sta = Sta::new(coupled_design(), lib().clone()).unwrap();
        let c = Constraints::default();
        let nominal = sta.analyze(&c).unwrap();
        let (noisy, adj) = sta
            .analyze_with_crosstalk(&c, &[spec(&sta)], MethodKind::Sgdp)
            .unwrap();
        assert_eq!(adj.len(), 2, "rise and fall adjustments recorded");
        // The coupled line adds wire delay plus noise: the victim's fanout
        // (net y) must arrive later than in the nominal ideal-wire run.
        let y = sta.design().find_net("y").unwrap();
        let nom = nominal.net(y).unwrap().rise.as_ref().unwrap().arrival;
        let si = noisy.net(y).unwrap().rise.as_ref().unwrap().arrival;
        assert!(si > nom, "si {si:e} vs nominal {nom:e}");
        // Adjustments carry the push-out relative to the noiseless line.
        for a in &adj {
            assert!(a.noisy_slew > 0.0);
            assert!(a.noisy_arrival + 1e-12 >= a.base_arrival - 100e-12);
        }
    }

    #[test]
    fn aligned_aggressor_hurts_more_than_far_one() {
        let sta = Sta::new(coupled_design(), lib().clone()).unwrap();
        let c = Constraints::default();
        let mut near = spec(&sta);
        near.aggressor_skew = 0.0;
        let mut far = spec(&sta);
        far.aggressor_skew = -1.0e-9;
        let arr = |s: &CouplingSpec| {
            let (report, _) =
                sta.analyze_with_crosstalk(&c, std::slice::from_ref(s), MethodKind::P2).unwrap();
            let y = sta.design().find_net("y").unwrap();
            report.net(y).unwrap().rise.as_ref().unwrap().arrival
        };
        assert!(arr(&near) > arr(&far), "aligned aggressor must delay more");
    }

    #[test]
    fn methods_disagree_on_noisy_nets() {
        let sta = Sta::new(coupled_design(), lib().clone()).unwrap();
        let c = Constraints::default();
        let mut results = Vec::new();
        for method in MethodKind::all() {
            match sta.analyze_with_crosstalk(&c, &[spec(&sta)], method) {
                Ok((report, _)) => results.push((method, report.worst_arrival())),
                Err(StaError::Sgdp(_)) => {} // WLS5 may legitimately refuse
                Err(other) => panic!("unexpected failure for {method}: {other}"),
            }
        }
        assert!(results.len() >= 5);
        let min = results.iter().map(|&(_, a)| a).fold(f64::INFINITY, f64::min);
        let max = results.iter().map(|&(_, a)| a).fold(0.0f64, f64::max);
        assert!(max > min, "techniques must produce distinct timing");
    }

    #[test]
    fn unknown_aggressor_is_reported() {
        let sta = Sta::new(coupled_design(), lib().clone()).unwrap();
        let c = Constraints::default();
        let mut s = spec(&sta);
        s.aggressors = vec![NetId(usize::MAX - 1)];
        assert!(sta.analyze_with_crosstalk(&c, &[s], MethodKind::P1).is_err());
    }
}
