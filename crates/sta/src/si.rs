//! Crosstalk-aware propagation: the paper's technique inside an STA sweep.
//!
//! Nets designated by a [`CouplingSpec`] are treated as distributed RC
//! lines capacitively coupled to aggressor nets. During the forward sweep
//! the victim's driver ramp (from its STA arrival/slew) and every
//! aggressor's ramp are played into the linear circuit substrate; the
//! resulting *noisy waveform at the victim's far end* is reduced to an
//! equivalent ramp `Γeff` by the selected technique and replaces the
//! victim's `(arrival, slew)` before fanout gates consume it.
//!
//! This is precisely the integration path the paper proposes for
//! commercial tools: no extra library characterization, one extra waveform
//! reduction per coupled stage.
//!
//! # Cone-partitioned scheduling and determinism
//!
//! The crosstalk sweep is partitioned by **fanout cone** — the
//! weakly-connected components of the timing graph
//! ([`TimingGraph::components`](crate::TimingGraph::components)). No edge
//! crosses between two cones, and every aggressor ramp is taken from the
//! iteration-invariant nominal sweep rather than from in-flight states, so
//! whole cones are mutually independent: with [`SiOptions::threads`] ` > 1`
//! each cone becomes one task on a `std::thread::scope` worker pool
//! (workers pull cones from a shared counter — dynamic load balancing), and
//! a long chain in one cone never waits on a level barrier for the widest
//! level of another. Within a cone, nets are processed sequentially in
//! topological order; results are merged back in the fixed cone order.
//! A graph with fewer cones than workers (e.g. one fully connected
//! component, where cone tasks would serialize) falls back to
//! level-synchronous scheduling, keeping intra-level parallelism. Each
//! work item performs a fixed sequence of floating-point operations that
//! does not depend on which worker runs it or in what order items finish,
//! and per-victim adjustments are emitted in canonical `(net, polarity)`
//! order, so **N-thread results are bit-identical to 1-thread results**
//! under either schedule.
//!
//! # Topology-keyed factorization cache
//!
//! Every victim reduction collapses to the same small circuit shape — a
//! Thevenin driver into star-coupled RC lines — and the assembled/factored
//! system ([`nsta_circuit::FactoredSystem`]) depends only on element
//! values and the time grid, never on source waveforms. With
//! [`SiOptions::topo_cache`] (default on) each reduction computes a
//! canonical **topology signature** and reuses a previously factored
//! system on a match — across victims, across rise/fall polarities, and
//! across fixed-point iterations. The key holds the exact bit patterns of:
//!
//! * the quantized timestep `dt` and the step count of the grid,
//! * the driver Thevenin resistance,
//! * the victim line's `(R_total, C_total, segments)` — with
//!   [`CouplingSpec::quiet_cm`] already folded into `C_total`,
//! * the receiver load at the victim far end,
//! * per kept aggressor, in order: its line's
//!   `(R_total, C_total, segments)` and its coupling total.
//!
//! **Quantization rule for `dt`:** the raw heuristic step
//! `clamp(victim_slew / 50, 0.5 ps, 5 ps)` is rounded **up** to the next
//! bucket in `{0.5, 1, 2, 4, 5} ps`, and the simulation stop time (latest
//! participant settle plus a 1 ns margin, >10τ of any realistic reduced
//! stage) to the next multiple of 0.5 ns, so near-identical victims land
//! on a shared grid. Both quantizations apply identically with the cache
//! disabled — cached and uncached analyses are bit-identical, which
//! `spefbus --no-topo-cache` asserts at scale.
//!
//! **Invalidation semantics:** there is none to get stale — the key *is*
//! the complete electrical description of the factored system, so any
//! change to a line R/C, a coupling total, the quiet-cap fold, the driver
//! resistance, the receiver load, or the grid produces a different key and
//! therefore a miss. Entries live for one analysis call; two circuits that
//! collide on a key are structurally identical by construction, so which
//! instance's factorization serves a hit cannot change any result bit.
//!
//! # Incremental fixed point
//!
//! Crosstalk push-out moves switching windows, so
//! [`Sta::analyze_with_crosstalk_windows`] iterates the window filter and
//! the analysis to a fixed point. Two observations make that cheap:
//!
//! * the nominal forward sweep (which also supplies every aggressor ramp)
//!   is iteration-invariant and is computed once, outside the loop;
//! * a victim's reduction is a pure function of its *victim cache key*:
//!   its own `(arrival, slew)`, the filtered aggressor set with each kept
//!   aggressor's `(net, arrival, slew, coupling cap)`, and the quiet
//!   coupling total folded onto its line. With
//!   [`SiOptions::incremental`] the `(Γeff, base arrival)` of every victim
//!   is cached under that key, and a victim is re-simulated only when its
//!   key moved beyond [`SiOptions::convergence_tol`] (structural changes —
//!   a different kept-aggressor set or coupling value — always re-run).
//!
//! Later iterations therefore pay only for victims whose windows actually
//! changed: the fixed point costs O(changed victims), not
//! O(iterations × victims), and unchanged victims reproduce their cached
//! result bit-for-bit.
//!
//! # Resource governance
//!
//! Three governors bound the analysis's cost without changing what a
//! healthy, in-budget run computes:
//!
//! * **Cache budget** — [`SiOptions::cache_budget_bytes`] caps the
//!   topology cache's estimated resident size (nnz-weighted, see
//!   [`nsta_circuit::FactoredSystem::approx_bytes`]); over-budget inserts
//!   evict least-recently-used entries. Eviction can only cost refactors:
//!   any entry the cache serves is bit-identical to the factorization the
//!   victim would have built itself, so budgeted and unbounded runs are
//!   bit-identical (asserted by tests and `spefbus --cache-budget`).
//! * **Deadline** — [`SiOptions::deadline`] is polled cooperatively at
//!   cone-task and iteration boundaries. On expiry, in-flight work
//!   finishes, remaining cones keep their *nominal* (crosstalk-free)
//!   timing, each skipped victim is recorded as a
//!   [`DegradeAction::DeadlineSkipped`] event, and the analysis returns a
//!   well-formed partial result with [`SiDiagnostics::timed_out`] set.
//! * **Convergence governor** — [`SiOptions::convergence_governor`]
//!   watches the fixed point's `max_window_delta` sequence; on stagnation
//!   (deltas not shrinking) or cap exhaustion it switches to a
//!   certified-conservative update that widens each participating net's
//!   window to the union of its last two iterates. Kept-aggressor sets
//!   then grow monotonically in a finite space, so the governed loop
//!   terminates; every widening is recorded as a [`ConvergenceAction`] so
//!   the added pessimism is visible, never silent.

use crate::boundary::BoundaryConditions;
use crate::engine::Sta;
use crate::netlist::NetId;
use crate::par::par_map;
use crate::report::TimingReport;
use crate::StaError;
use nsta_circuit::{
    Circuit, FactoredSystem, NodeId as CktNode, RcLineSpec, SolverBackend, StarCoupledLines,
    TransientOptions,
};
use nsta_obs::Deadline;
use nsta_waveform::{Polarity, SaturatedRamp, Thresholds, Waveform};
use sgdp::gate::{GateModel, TableGate};
use sgdp::{MethodKind, PropagationContext};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Coupling description of one victim net.
#[derive(Debug, Clone, PartialEq)]
pub struct CouplingSpec {
    /// The victim net (must exist in the design).
    pub victim: NetId,
    /// Aggressor nets (their STA arrivals drive the aggressor ramps).
    pub aggressors: Vec<NetId>,
    /// Total coupling capacitance between the victim and each aggressor (F).
    /// Used for every aggressor missing an entry in [`cm_per_aggressor`](Self::cm_per_aggressor).
    pub cm_total: f64,
    /// Per-aggressor coupling totals (F), aligned with
    /// [`aggressors`](Self::aggressors). Extracted parasitics (SPEF) fill
    /// this; hand-written specs may leave it empty to give every aggressor
    /// `cm_total`.
    pub cm_per_aggressor: Vec<f64>,
    /// Distributed RC spec of the victim wire (and of any aggressor wire
    /// missing an entry in [`aggressor_lines`](Self::aggressor_lines)).
    pub line: RcLineSpec,
    /// Per-aggressor wire specs, aligned with
    /// [`aggressors`](Self::aggressors). Extraction supplies each
    /// aggressor's own RC totals; empty means every aggressor reuses the
    /// victim's line.
    pub aggressor_lines: Vec<RcLineSpec>,
    /// Coupling capacitance of *quiet* aggressors (F): aggressors removed
    /// from switching analysis (e.g. by the timing-window filter) still
    /// load the victim through their coupling caps, which a quiet,
    /// low-impedance driver effectively grounds. This total is spread
    /// along the victim line as extra ground capacitance.
    pub quiet_cm: f64,
    /// Receiver load at the victim's far end (F). `None` (default) sums
    /// the fanout pin capacitances from the library; extraction-backed
    /// specs override it with the SPEF `*L` pin load.
    pub receiver_load: Option<f64>,
    /// Thevenin resistance modeling each driver's output stage (Ω).
    pub driver_resistance: f64,
    /// Aggressor alignment offset added to each aggressor's STA arrival (s).
    /// Sweeping this reproduces the paper's noise-injection timing cases.
    pub aggressor_skew: f64,
    /// `true` (default) switches aggressors opposite to the victim — the
    /// worst case for delay push-out.
    pub aggressors_oppose: bool,
    /// Extraction defect carried from the parasitics reducer (`None` for
    /// healthy nets): a victim whose mesh is electrically degenerate —
    /// zero capacitance, a node disconnected from the resistor tree —
    /// has no meaningful transient solution, so the reduction refuses to
    /// run it. Under [`FaultPolicy::Fail`] the analysis returns
    /// [`StaError::DegenerateMesh`]; under [`FaultPolicy::Isolate`] the
    /// victim is dropped and recorded as a degraded net.
    pub defect: Option<String>,
}

impl CouplingSpec {
    /// A spec with the workspace's default electrical assumptions.
    pub fn new(victim: NetId, aggressors: Vec<NetId>, cm_total: f64, line: RcLineSpec) -> Self {
        CouplingSpec {
            victim,
            aggressors,
            cm_total,
            cm_per_aggressor: Vec::new(),
            line,
            aggressor_lines: Vec::new(),
            quiet_cm: 0.0,
            receiver_load: None,
            driver_resistance: 200.0,
            aggressor_skew: 0.0,
            aggressors_oppose: true,
            defect: None,
        }
    }

    /// Coupling total between the victim and aggressor `i` (F).
    pub fn cm_of(&self, i: usize) -> f64 {
        self.cm_per_aggressor
            .get(i)
            .copied()
            .unwrap_or(self.cm_total)
    }

    /// Wire spec of aggressor `i`.
    pub fn line_of(&self, i: usize) -> RcLineSpec {
        self.aggressor_lines.get(i).copied().unwrap_or(self.line)
    }

    /// A copy of this spec restricted to the aggressor indices in `keep`
    /// (preserving per-aggressor alignment). Dropped aggressors' coupling
    /// totals move into [`quiet_cm`](Self::quiet_cm) so the victim keeps
    /// seeing their capacitive load.
    fn restricted(&self, keep: &[usize]) -> CouplingSpec {
        let mut spec = self.clone();
        spec.aggressors = keep.iter().map(|&i| self.aggressors[i]).collect();
        spec.cm_per_aggressor = keep.iter().map(|&i| self.cm_of(i)).collect();
        spec.aggressor_lines = keep.iter().map(|&i| self.line_of(i)).collect();
        let kept_cm: f64 = spec.cm_per_aggressor.iter().sum();
        let all_cm: f64 = (0..self.aggressors.len()).map(|i| self.cm_of(i)).sum();
        spec.quiet_cm = self.quiet_cm + (all_cm - kept_cm).max(0.0);
        spec
    }
}

/// A net's switching window: the span of times a transition can occur on
/// it, over both polarities.
///
/// Production SI flows prune aggressors whose windows cannot overlap the
/// victim's before paying for noise analysis (temporal logical
/// correlation); this is the same filter driven by the workspace's own STA
/// sweeps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalWindow {
    /// Earliest possible transition start (s).
    pub earliest: f64,
    /// Latest possible transition end — worst arrival plus its slew (s).
    pub latest: f64,
}

impl ArrivalWindow {
    /// Whether the window is inverted (or contains a NaN edge): its
    /// earliest bound lies strictly after its latest one, so no transition
    /// time satisfies both — the window is empty.
    ///
    /// Inverted windows arise naturally from constant or never-switching
    /// nets whose `+inf`/`−inf` sentinels were never tightened, and from
    /// negative-skew constraint sets; they must never be treated as
    /// "covers everything".
    pub fn is_inverted(&self) -> bool {
        !(self.earliest <= self.latest)
    }

    /// Whether an aggressor window, shifted by `skew` and padded by
    /// `guard` on both sides, can overlap this (victim) window.
    ///
    /// Both windows are **closed** intervals `[earliest, latest]`:
    /// windows that merely touch at a boundary (`aggressor.latest + skew ==
    /// self.earliest`) *do* overlap, and a zero-width window (`earliest ==
    /// latest`) overlaps anything containing its single instant. This is
    /// the conservative choice — a shared boundary instant is a legal
    /// alignment, so the aggressor must be kept.
    ///
    /// Inverted (empty) windows on either side never overlap: an empty
    /// set of candidate transition times cannot align with anything.
    pub fn overlaps(&self, aggressor: &ArrivalWindow, skew: f64, guard: f64) -> bool {
        if self.is_inverted() || aggressor.is_inverted() {
            return false;
        }
        let a_lo = aggressor.earliest + skew - guard;
        let a_hi = aggressor.latest + skew + guard;
        a_lo <= self.latest && self.earliest <= a_hi
    }

    /// The smallest window containing both `self` and `other` (their
    /// convex hull) — the certified-conservative update the convergence
    /// governor applies to an oscillating net: a window that covers both
    /// of the last two iterates admits every aggressor either of them
    /// would, so replacing the iterate with the union can only keep more
    /// aggressors, never drop one.
    pub fn union(&self, other: &ArrivalWindow) -> ArrivalWindow {
        ArrivalWindow {
            earliest: self.earliest.min(other.earliest),
            latest: self.latest.max(other.latest),
        }
    }
}

/// How the analysis reacts when one victim's reduction fails after the
/// numeric fallback chain is exhausted (or its parasitics are
/// degenerate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultPolicy {
    /// Propagate the error: the whole analysis call fails (the
    /// historical behavior, and the default).
    #[default]
    Fail,
    /// Drop only the failing victim's adjustment — it keeps its nominal
    /// (crosstalk-free) timing — record the net as degraded in
    /// [`SiDiagnostics::degrade_events`], and finish the analysis with
    /// partial results.
    Isolate,
}

/// The recovery step a [`DegradeEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeAction {
    /// A sparse factor/solve failed; the victim was retried on the dense
    /// partial-pivot LU backend at the same timestep.
    DenseRetry,
    /// The dense retry failed too; retried once more with the timestep
    /// halved.
    HalvedTimestep,
    /// A cone worker panicked; the cone was recomputed inline on the
    /// coordinator.
    ConeRetry,
    /// A poisoned topo-cache lock was recovered instead of panicking.
    LockRecovered,
    /// The fallback chain was exhausted (or the mesh is degenerate)
    /// under [`FaultPolicy::Isolate`]: the victim's adjustment was
    /// dropped and the net keeps its nominal timing.
    VictimDropped,
    /// The analysis deadline expired before this victim's cone (or
    /// level slot) was scheduled: the net keeps its *stale* nominal
    /// (crosstalk-free) timing and the run is marked
    /// [`SiDiagnostics::timed_out`].
    DeadlineSkipped,
}

/// One structured record of the fault-tolerance layer acting: what
/// degraded, where, and whether the recovery restored a full result.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradeEvent {
    /// The affected victim net (`None` for events not attributable to
    /// one net, e.g. a lock recovery).
    pub net: Option<NetId>,
    /// The affected victim transition, when one was being reduced.
    pub polarity: Option<Polarity>,
    /// The recovery step taken.
    pub action: DegradeAction,
    /// The failure that triggered it.
    pub cause: String,
    /// `true` when the step (or a later one in the chain) produced a
    /// full result; `false` when the net ended up degraded.
    pub recovered: bool,
}

/// Options of the timing-window crosstalk analysis.
///
/// Not `Copy`: [`deadline`](Self::deadline) carries shared clock/token
/// state — clone the options to reuse them across runs.
#[derive(Debug, Clone, PartialEq)]
pub struct SiOptions {
    /// Equivalent-waveform reduction technique.
    pub method: MethodKind,
    /// When `true` (default), aggressors whose switching windows cannot
    /// overlap the victim's are pruned before any circuit simulation.
    pub use_windows: bool,
    /// Extra guard band added around aggressor windows during the overlap
    /// test (s). Larger values prune less aggressively.
    pub window_guard: f64,
    /// Upper bound on fixed-point iterations. Delay push-out moves victim
    /// windows, which can re-admit previously pruned aggressors, so the
    /// analysis iterates until windows stop moving.
    pub max_iterations: usize,
    /// Convergence threshold on the worst per-net arrival movement between
    /// iterations (s). Also bounds how far a cached victim's timing inputs
    /// may drift before the incremental fixed point re-simulates it.
    pub convergence_tol: f64,
    /// Worker threads for the levelized sweep and the per-victim transient
    /// reductions. `1` (default) runs inline; any value produces
    /// bit-identical results (see the module docs).
    pub threads: usize,
    /// When `true` (default), victims whose cache key is unchanged between
    /// fixed-point iterations reuse their previous `Γeff` instead of
    /// re-simulating. Disable to force a full recompute every iteration
    /// (the parity baseline).
    pub incremental: bool,
    /// When `true` (default), victim stages with an identical topology
    /// signature share one factored transient system (see the module docs)
    /// instead of each assembling and LU-factoring its own. Disable for
    /// the parity baseline — results are bit-identical either way.
    pub topo_cache: bool,
    /// Linear-solver backend of every victim reduction (default
    /// [`SolverBackend::Sparse`]). [`SolverBackend::Dense`] is the parity
    /// escape hatch: both backends integrate the same trapezoidal system,
    /// so worst arrivals agree to solver round-off (≪ 1 fs).
    pub backend: SolverBackend,
    /// What to do when one victim's reduction fails beyond recovery
    /// (default [`FaultPolicy::Fail`]): fail the whole call, or drop the
    /// victim and finish with partial results.
    pub fault_policy: FaultPolicy,
    /// Byte budget of the topology-keyed factorization cache, compared
    /// against nnz-weighted size estimates
    /// ([`nsta_circuit::FactoredSystem::approx_bytes`]). Inserts that
    /// push the cache over budget evict least-recently-used entries;
    /// eviction only costs refactors — results are bit-identical at any
    /// budget. Default [`SiOptions::DEFAULT_CACHE_BUDGET_BYTES`]
    /// (generous but finite); `usize::MAX` disables the bound.
    pub cache_budget_bytes: usize,
    /// Wall-clock budget of the analysis (default `None`: unbounded),
    /// polled cooperatively at cone-task and iteration boundaries. See
    /// the module docs ("Resource governance") for expiry semantics.
    pub deadline: Option<Deadline>,
    /// When `true` (default), the fixed point watches for stagnation or
    /// oscillation and switches to the certified-conservative widening
    /// update instead of returning unconverged at the iteration cap (see
    /// the module docs). Never interferes with a run whose deltas are
    /// shrinking, so converging analyses are bit-identical either way.
    pub convergence_governor: bool,
}

impl SiOptions {
    /// Default topology-cache budget: 64 MiB of estimated factor bytes —
    /// far above any current bench (whose caches measure in the tens of
    /// KB), so the bound only bites pathological key populations.
    pub const DEFAULT_CACHE_BUDGET_BYTES: usize = 64 << 20;
}

impl Default for SiOptions {
    fn default() -> Self {
        SiOptions {
            method: MethodKind::Sgdp,
            use_windows: true,
            window_guard: 0.0,
            max_iterations: 4,
            convergence_tol: 0.1e-12,
            threads: 1,
            incremental: true,
            topo_cache: true,
            backend: SolverBackend::Sparse,
            fault_policy: FaultPolicy::default(),
            cache_budget_bytes: SiOptions::DEFAULT_CACHE_BUDGET_BYTES,
            deadline: None,
            convergence_governor: true,
        }
    }
}

/// One aggressor discarded by the timing-window filter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrunedAggressor {
    /// The victim whose spec the aggressor was removed from.
    pub victim: NetId,
    /// The pruned aggressor.
    pub aggressor: NetId,
    /// The victim's window at the deciding iteration.
    pub victim_window: ArrivalWindow,
    /// The aggressor's (unshifted) window at the deciding iteration.
    pub aggressor_window: ArrivalWindow,
}

/// One executed pass of the window fixed point: what the pass cost and
/// how far it moved the solution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiIteration {
    /// Victim transitions re-simulated in this pass (victim-cache misses,
    /// or every valid transition with [`SiOptions::incremental`] off).
    pub victims_recomputed: usize,
    /// Victim transitions served from the incremental victim cache.
    pub victims_cached: usize,
    /// Aggressors discarded by the window filter feeding this pass.
    pub aggressors_pruned: usize,
    /// Worst per-net arrival movement versus the previous pass's report
    /// (s) — the quantity the convergence test compares against
    /// [`SiOptions::convergence_tol`].
    pub max_window_delta: f64,
}

/// One intervention of the convergence governor: the fixed point was
/// stagnating (or hit its cap unconverged), so this net's window was
/// widened from the iterate the pass computed to the union of its last
/// two iterates — deliberate, *visible* pessimism in exchange for
/// certified termination.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceAction {
    /// 1-based fixed-point iteration the widening was applied after.
    pub iteration: usize,
    /// The net whose window was widened.
    pub net: NetId,
    /// The window the iteration actually computed.
    pub fresh: ArrivalWindow,
    /// The conservative union installed instead (⊇ `fresh` and ⊇ the
    /// previous iterate by construction).
    pub widened: ArrivalWindow,
}

/// One governed (certified-conservative) window update: installs the
/// union of the last two iterates for every participating net, recording
/// a [`ConvergenceAction`] per actual widening. Unions only grow, so
/// repeated application reaches a fixed point: an oscillating iterate
/// sequence is replaced by windows covering *both* iterates, after which
/// further updates change nothing — the termination argument behind the
/// governed iteration cap.
fn governed_window_update(
    windows: &mut [Option<ArrivalWindow>],
    prev_windows: &[Option<ArrivalWindow>],
    participant: &[bool],
    iteration: usize,
    convergence_actions: &mut Vec<ConvergenceAction>,
) {
    for (i, slot) in windows.iter_mut().enumerate() {
        if !participant[i] {
            continue;
        }
        let prev = prev_windows.get(i).copied().flatten();
        *slot = match (prev, *slot) {
            (Some(p), Some(f)) => {
                let widened = f.union(&p);
                if widened != f {
                    convergence_actions.push(ConvergenceAction {
                        iteration,
                        net: NetId(i),
                        fresh: f,
                        widened,
                    });
                }
                Some(widened)
            }
            // A net that lost its window keeps the previous one —
            // dropping it would *prune more*, the opposite of
            // conservative.
            (Some(p), None) => Some(p),
            (None, fresh) => fresh,
        };
    }
}

/// Structured convergence and cost diagnostics of one analysis call —
/// the coherent layer behind [`SiAnalysis`]'s forwarding accessors.
#[derive(Debug, Clone)]
pub struct SiDiagnostics {
    /// One record per executed fixed-point pass, in order. A pass skipped
    /// by the unchanged-pruning short-circuit records nothing, so
    /// `iterations.len()` counts simulations actually paid for.
    pub iterations: Vec<SiIteration>,
    /// Whether the window fixed point converged within the iteration cap.
    pub converged: bool,
    /// Independent fanout cones the sweep was partitioned into.
    pub cones: usize,
    /// Victim reductions served by the topology-keyed factorization cache,
    /// summed over all iterations (0 with [`SiOptions::topo_cache`] off).
    pub cache_hits: usize,
    /// Victim reductions that assembled and factored a fresh system.
    pub cache_misses: usize,
    /// Linear-solver backend the victim reductions ran on.
    pub solver_backend: SolverBackend,
    /// Largest factored-system nonzero count observed while assembling
    /// victim stages, whether or not the topology cache stored them.
    pub solver_nnz: usize,
    /// Every action of the fault-tolerance layer during this call, in
    /// canonical `(net, polarity)` order: fallback-chain retries, cone
    /// retries after worker panics, recovered locks, dropped victims,
    /// and deadline-skipped victims. Empty on healthy runs.
    pub degrade_events: Vec<DegradeEvent>,
    /// Whether [`SiOptions::deadline`] expired before the analysis
    /// finished: the result is partial — every skipped victim carries a
    /// [`DegradeAction::DeadlineSkipped`] event and kept its stale
    /// nominal timing.
    pub timed_out: bool,
    /// Topology-cache entries evicted to honor
    /// [`SiOptions::cache_budget_bytes`] (including inserts refused
    /// because a single entry exceeded the whole budget). `0` when the
    /// cache stayed within budget.
    pub cache_evictions: usize,
    /// Peak estimated resident size of the topology cache (bytes,
    /// nnz-weighted estimate — see
    /// [`nsta_circuit::FactoredSystem::approx_bytes`]).
    pub cache_bytes: usize,
    /// Every widening the convergence governor applied (see
    /// [`ConvergenceAction`]). Empty whenever the fixed point converged
    /// on its own.
    pub convergence_actions: Vec<ConvergenceAction>,
    /// Session epoch this result belongs to: `0` for a plain batch
    /// analysis; a long-lived [`crate::session`] consumer stamps each
    /// merged incremental result with its commit counter so stale reads
    /// (a report retained across an edit) are detectable by comparison
    /// against the session's current epoch.
    pub epoch: u64,
}

impl SiDiagnostics {
    /// Final pass's worst arrival movement (s); `None` before any pass
    /// recorded (unfiltered analyses record a single zero-delta pass).
    pub fn final_window_delta(&self) -> Option<f64> {
        self.iterations.last().map(|it| it.max_window_delta)
    }

    /// Nets touched by any degrade event, sorted and deduplicated.
    pub fn degraded_nets(&self) -> Vec<NetId> {
        let mut nets: Vec<NetId> = self.degrade_events.iter().filter_map(|e| e.net).collect();
        nets.sort_unstable();
        nets.dedup();
        nets
    }

    /// Nets whose crosstalk reduction was skipped by deadline expiry —
    /// their reported timing is the stale nominal value — sorted and
    /// deduplicated. Empty iff the run did not time out mid-sweep.
    pub fn stale_nets(&self) -> Vec<NetId> {
        let mut nets: Vec<NetId> = self
            .degrade_events
            .iter()
            .filter(|e| e.action == DegradeAction::DeadlineSkipped)
            .filter_map(|e| e.net)
            .collect();
        nets.sort_unstable();
        nets.dedup();
        nets
    }

    /// Nets whose result is actually degraded — a degrade event that did
    /// not recover (the victim's adjustment was dropped) — sorted and
    /// deduplicated. A subset of [`degraded_nets`](Self::degraded_nets).
    pub fn unrecovered_nets(&self) -> Vec<NetId> {
        let mut nets: Vec<NetId> = self
            .degrade_events
            .iter()
            .filter(|e| !e.recovered)
            .filter_map(|e| e.net)
            .collect();
        nets.sort_unstable();
        nets.dedup();
        nets
    }
}

/// Result of [`Sta::analyze_with_crosstalk_windows`].
#[derive(Debug, Clone)]
pub struct SiAnalysis {
    /// The timing report of the final iteration.
    pub report: TimingReport,
    /// Per-victim adjustments applied in the final iteration.
    pub adjustments: Vec<SiAdjustment>,
    /// Aggressors pruned by the window filter in the final iteration.
    pub pruned: Vec<PrunedAggressor>,
    /// Per-iteration convergence trace plus cache/solver statistics.
    pub diagnostics: SiDiagnostics,
}

impl SiAnalysis {
    /// Number of crosstalk iterations executed (≥ 1).
    pub fn iterations(&self) -> usize {
        self.diagnostics.iterations.len()
    }

    /// Whether the window fixed point converged within the iteration cap.
    pub fn converged(&self) -> bool {
        self.diagnostics.converged
    }

    /// Victim reductions served by the topology-keyed factorization cache.
    pub fn cache_hits(&self) -> usize {
        self.diagnostics.cache_hits
    }

    /// Victim reductions that assembled and factored a fresh system.
    pub fn cache_misses(&self) -> usize {
        self.diagnostics.cache_misses
    }

    /// Independent fanout cones the sweep was partitioned into.
    pub fn cones(&self) -> usize {
        self.diagnostics.cones
    }

    /// Linear-solver backend the victim reductions ran on.
    pub fn solver_backend(&self) -> SolverBackend {
        self.diagnostics.solver_backend
    }

    /// Largest factored-system nonzero count observed while assembling
    /// victim stages.
    pub fn solver_nnz(&self) -> usize {
        self.diagnostics.solver_nnz
    }

    /// Every action of the fault-tolerance layer during this call (empty
    /// on healthy runs).
    pub fn degrade_events(&self) -> &[DegradeEvent] {
        &self.diagnostics.degrade_events
    }

    /// Whether the analysis deadline expired, making this a partial
    /// result (see [`SiDiagnostics::timed_out`]).
    pub fn timed_out(&self) -> bool {
        self.diagnostics.timed_out
    }

    /// Topology-cache entries evicted to honor the cache byte budget.
    pub fn cache_evictions(&self) -> usize {
        self.diagnostics.cache_evictions
    }

    /// Peak estimated resident size of the topology cache (bytes).
    pub fn cache_bytes(&self) -> usize {
        self.diagnostics.cache_bytes
    }

    /// Every widening the convergence governor applied (empty whenever
    /// the fixed point converged on its own).
    pub fn convergence_actions(&self) -> &[ConvergenceAction] {
        &self.diagnostics.convergence_actions
    }

    /// Nets left with stale nominal timing by deadline expiry (sorted,
    /// deduplicated; empty unless [`timed_out`](Self::timed_out)).
    pub fn stale_nets(&self) -> Vec<NetId> {
        self.diagnostics.stale_nets()
    }
}

/// Outcome of the SI reduction on one victim net.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiAdjustment {
    /// The victim net.
    pub net: NetId,
    /// Victim transition this adjustment applies to.
    pub polarity: Polarity,
    /// Arrival before coupling was considered (s).
    pub base_arrival: f64,
    /// Arrival of `Γeff` after coupling (s).
    pub noisy_arrival: f64,
    /// Slew of `Γeff` (s).
    pub noisy_slew: f64,
}

/// Worst absolute per-net, per-polarity arrival movement between two
/// reports over the same design (s).
fn worst_arrival_movement(a: &TimingReport, b: &TimingReport) -> f64 {
    let mut worst = 0.0f64;
    for (na, nb) in a.nets().iter().zip(b.nets()) {
        for (pa, pb) in [(&na.rise, &nb.rise), (&na.fall, &nb.fall)] {
            if let (Some(pa), Some(pb)) = (pa.as_ref(), pb.as_ref()) {
                worst = worst.max((pa.arrival - pb.arrival).abs());
            }
        }
    }
    worst
}

/// Whether `e` is the kind of failure the numeric fallback chain can
/// plausibly fix — a solver-level error (singular/lost pivot, non-finite
/// values) — as opposed to a structural, library, or specification
/// problem that would fail identically on any backend or grid.
fn is_numeric_failure(e: &StaError) -> bool {
    matches!(e, StaError::Circuit(nsta_circuit::CircuitError::Numeric(_)))
}

/// Everything a victim reduction depends on besides the iteration-invariant
/// design/library/constraints: the victim's own timing point, the kept
/// aggressors with the inputs their ramps are built from, and the quiet
/// coupling folded onto the victim line.
#[derive(Debug, Clone)]
struct VictimKey {
    arrival: f64,
    slew: f64,
    /// Per kept aggressor: `(net, arrival, slew, coupling cap)`.
    aggressors: Vec<(NetId, f64, f64, f64)>,
    quiet_cm: f64,
}

impl VictimKey {
    /// Whether `other` is close enough to this key that re-simulating
    /// could not move the result beyond `tol`: structure (aggressor set,
    /// coupling values) must match exactly, timing inputs within `tol`.
    fn matches(&self, other: &VictimKey, tol: f64) -> bool {
        let close = |a: f64, b: f64| (a - b).abs() <= tol;
        self.aggressors.len() == other.aggressors.len()
            && self.quiet_cm == other.quiet_cm
            && close(self.arrival, other.arrival)
            && close(self.slew, other.slew)
            && self
                .aggressors
                .iter()
                .zip(&other.aggressors)
                .all(|(a, b)| a.0 == b.0 && a.3 == b.3 && close(a.1, b.1) && close(a.2, b.2))
    }
}

/// Per-victim `(key, Γeff, base arrival)` memo carried across fixed-point
/// iterations, keyed by `(victim net, polarity)`.
#[derive(Debug, Default)]
struct VictimCache {
    entries: HashMap<(usize, bool), (VictimKey, SaturatedRamp, f64)>,
}

/// Canonical topology signature of one victim reduction: the exact bit
/// patterns of every electrical value and grid parameter that enters the
/// factored system (see the module docs for the field list). Two
/// reductions with equal keys build bit-identical matrices, so they can
/// share one factorization without changing any result bit.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct TopoKey(Vec<u64>);

impl TopoKey {
    fn new(dt: f64, steps: u64, spec: &CouplingSpec, victim_line: &RcLineSpec, load: f64) -> Self {
        let mut v = Vec::with_capacity(7 + 4 * spec.aggressors.len());
        v.push(dt.to_bits());
        v.push(steps);
        v.push(spec.driver_resistance.to_bits());
        v.push(victim_line.r_total.to_bits());
        v.push(victim_line.c_total.to_bits());
        v.push(victim_line.segments as u64);
        v.push(load.to_bits());
        for i in 0..spec.aggressors.len() {
            let line = spec.line_of(i);
            v.push(line.r_total.to_bits());
            v.push(line.c_total.to_bits());
            v.push(line.segments as u64);
            v.push(spec.cm_of(i).to_bits());
        }
        TopoKey(v)
    }
}

/// A factored system plus the node the reduction probes, ready for reuse
/// by any victim whose stage matches the key it is stored under.
#[derive(Debug, Clone)]
struct CachedSystem {
    system: Arc<FactoredSystem>,
    victim_far: CktNode,
}

/// One stored factorization plus its budget bookkeeping: the estimated
/// byte cost charged against [`SiOptions::cache_budget_bytes`] and the
/// logical timestamp of its last use (hit or insert) driving LRU
/// eviction.
#[derive(Debug, Clone)]
struct CacheSlot {
    cached: CachedSystem,
    bytes: usize,
    last_use: u64,
    /// Victim net whose reduction first stored this entry. Other victims
    /// sharing the topology signature are served the same slot; the owner
    /// tag only scopes [`TopoCache::release_nets`] invalidation — evicting
    /// a still-shared entry merely costs its next user a refactor.
    owner: NetId,
}

/// The map half of the topology cache, guarded by one mutex so the byte
/// total, the LRU clock, and the entries can never disagree.
#[derive(Debug, Default)]
struct CacheState {
    entries: HashMap<TopoKey, CacheSlot>,
    /// Estimated resident bytes of all current entries.
    bytes: usize,
    /// Logical LRU clock: bumped on every lookup/insert; an entry's
    /// `last_use` is the tick of its most recent touch.
    tick: u64,
}

/// The topology-keyed factorization cache: shared across victims,
/// polarities, fixed-point iterations and worker threads of one analysis
/// call — or, when a long-lived session supplies its own instance to
/// [`Sta::analyze_windows_with_cache`], across every incremental re-solve
/// of that session (entries invalidated by an edit are dropped via
/// [`TopoCache::release_nets`]). Hit/miss/eviction counters are
/// statistics only — under
/// `threads > 1` two workers may both miss the same key and race the
/// insert, which cannot change results (colliding systems are
/// bit-identical by construction; the first insert wins) but can make the
/// counters vary run to run.
///
/// The cache's estimated resident size is bounded by `budget_bytes`
/// (nnz-weighted estimates, [`FactoredSystem::approx_bytes`]): inserts
/// that push it over budget evict least-recently-used entries first. An
/// evicted entry only costs its next user a refactor — every served entry
/// is bit-identical to a freshly built one, so results are independent of
/// the budget (gated by the eviction-parity tests and `spefbus`).
#[derive(Debug)]
pub struct TopoCache {
    /// With `enabled` false the cache never stores or serves an entry
    /// (and hit/miss counters stay at zero) but still collects solver
    /// statistics — so `solver_nnz` is reported for uncached runs too.
    enabled: bool,
    /// Byte budget for `state.bytes`; `usize::MAX` means unbounded.
    budget_bytes: usize,
    state: Mutex<CacheState>,
    /// `(key, is_rise)` pairs implicated in a numeric failure, mapped to
    /// the victim net whose reduction failed on them: the key's entry is
    /// evicted and that *polarity* refuses lookups and re-insertion for
    /// the rest of the cache's lifetime, so a suspect factorization is
    /// never served to the reduction path that failed on it — while the
    /// other polarity (whose reduction may be perfectly healthy, e.g.
    /// after a dense recovery on a different victim) keeps full cache
    /// service. The recorded owner lets [`TopoCache::release_nets`] lift
    /// the ban once an edit invalidates the offending geometry.
    quarantined: Mutex<std::collections::HashMap<(TopoKey, bool), NetId>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    /// Entries evicted to honor the budget, plus inserts refused because
    /// one entry alone exceeded it.
    evictions: AtomicUsize,
    /// High-water mark of `state.bytes`.
    peak_bytes: AtomicUsize,
    /// Poisoned-mutex recoveries: a worker panicking while holding a
    /// cache lock poisons it; readers take over the guard instead of
    /// propagating, and each healing is surfaced as a
    /// [`DegradeAction::LockRecovered`] event.
    lock_recoveries: AtomicUsize,
    /// Largest factored-system nonzero count observed so far — the mesh
    /// size the solver section of bench reports is keyed on.
    max_nnz: AtomicUsize,
}

impl TopoCache {
    /// A cache with `budget_bytes` of estimated capacity (`usize::MAX`
    /// for unbounded); `enabled: false` builds a pass-through instance
    /// that never stores or serves entries. Public so a long-lived
    /// session can own one cache across many incremental analyses — see
    /// [`Sta::analyze_windows_with_cache`].
    pub fn new(enabled: bool, budget_bytes: usize) -> Self {
        TopoCache {
            enabled,
            budget_bytes,
            state: Mutex::default(),
            quarantined: Mutex::default(),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            evictions: AtomicUsize::new(0),
            peak_bytes: AtomicUsize::new(0),
            lock_recoveries: AtomicUsize::new(0),
            max_nnz: AtomicUsize::new(0),
        }
    }

    /// Locks `mutex`, recovering from poisoning instead of panicking: the
    /// cache's maps are never left mid-mutation (every write is a single
    /// `get`/`insert`/`remove` call on an already-consistent value), so a
    /// panic while a guard was held cannot have corrupted them. The
    /// poison flag is cleared so one poisoning is healed — and counted —
    /// exactly once.
    fn guard<'a, T>(&self, mutex: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
        mutex.lock().unwrap_or_else(|poisoned| {
            self.lock_recoveries.fetch_add(1, Ordering::Relaxed);
            mutex.clear_poison();
            poisoned.into_inner()
        })
    }

    /// Whether `(key, polarity)` is quarantined — lock order is always
    /// `quarantined` before `state`, matching `insert`/`quarantine`.
    fn is_quarantined(&self, key: &TopoKey, polarity: Polarity) -> bool {
        self.guard(&self.quarantined)
            .contains_key(&(key.clone(), polarity.is_rise()))
    }

    fn lookup(&self, key: &TopoKey, polarity: Polarity) -> Option<CachedSystem> {
        // Fault-injection site: panic while holding the cache lock, the
        // way a buggy or OOM-killed worker would, leaving the mutex
        // poisoned for every later access. The catch keeps *this* call
        // alive; the recovery under test is in `guard`.
        if nsta_obs::fault::should_fire(nsta_obs::fault::CACHE_POISON) {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _guard = self.state.lock();
                panic!("injected: panic while holding the topo-cache lock");
            }));
        }
        // A quarantined (key, polarity) must never be served — even if a
        // healthy reduction of the *other* polarity re-inserted the key.
        let found = if self.is_quarantined(key, polarity) {
            None
        } else {
            let mut state = self.guard(&self.state);
            state.tick += 1;
            let tick = state.tick;
            state.entries.get_mut(key).map(|slot| {
                slot.last_use = tick;
                slot.cached.clone()
            })
        };
        match found {
            Some(ref entry) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                nsta_obs::count!("sta.topo_cache.hits");
                // A hit skips refactoring roughly this many matrix bytes.
                nsta_obs::count!(
                    "sta.topo_cache.hit_bytes_saved",
                    entry.system.nnz() * std::mem::size_of::<f64>()
                );
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                nsta_obs::count!("sta.topo_cache.misses");
            }
        };
        found
    }

    /// Estimated bytes an entry charges against the budget: the factored
    /// system's nnz-weighted estimate plus the key's signature words.
    fn entry_bytes(key: &TopoKey, entry: &CachedSystem) -> usize {
        entry.system.approx_bytes() + key.0.len() * std::mem::size_of::<u64>()
    }

    fn insert(&self, key: TopoKey, entry: CachedSystem, polarity: Polarity, owner: NetId) {
        if self.is_quarantined(&key, polarity) {
            return;
        }
        let bytes = Self::entry_bytes(&key, &entry);
        if bytes > self.budget_bytes {
            // One entry larger than the whole budget: storing it just to
            // evict it immediately would churn; refuse the store and
            // count it as an eviction so budget pressure stays visible.
            self.evictions.fetch_add(1, Ordering::Relaxed);
            nsta_obs::count!("sta.topo_cache.evictions");
            return;
        }
        nsta_obs::count!("sta.topo_cache.stored_bytes_est", bytes);
        let mut state = self.guard(&self.state);
        if state.entries.contains_key(&key) {
            // First insert wins (racing workers built bit-identical
            // systems anyway); don't double-charge the budget.
            return;
        }
        state.tick += 1;
        let slot = CacheSlot {
            cached: entry,
            bytes,
            last_use: state.tick,
            owner,
        };
        state.bytes += bytes;
        state.entries.insert(key, slot);
        // LRU eviction down to budget. The just-inserted entry holds the
        // newest tick, so the scan always prefers older entries; it can
        // only fall to the newcomer if nothing else is left, and a lone
        // entry fits by the single-entry check above.
        while state.bytes > self.budget_bytes {
            let lru = state
                .entries
                .iter()
                .min_by_key(|(_, s)| s.last_use)
                .map(|(k, _)| k.clone());
            let Some(victim) = lru else { break };
            if let Some(evicted) = state.entries.remove(&victim) {
                state.bytes -= evicted.bytes;
                self.evictions.fetch_add(1, Ordering::Relaxed);
                nsta_obs::count!("sta.topo_cache.evictions");
            }
        }
        self.peak_bytes.fetch_max(state.bytes, Ordering::Relaxed);
    }

    /// Evicts `key`'s entry and bans the implicated `(key, polarity)`
    /// pair for the rest of the analysis: a cached factorization
    /// implicated in a numeric failure must not be served to (or
    /// re-inserted by) any other victim *of that polarity*. The other
    /// polarity keeps cache service — its reductions drive the shared
    /// system with independent waveforms, and banning it too starved
    /// healthy victims after e.g. a successful dense recovery elsewhere.
    /// `owner` records the victim whose reduction failed, so an edit
    /// invalidating that victim's geometry can lift the ban again.
    fn quarantine(&self, key: &TopoKey, polarity: Polarity, owner: NetId) {
        self.guard(&self.quarantined)
            .insert((key.clone(), polarity.is_rise()), owner);
        let mut state = self.guard(&self.state);
        if let Some(evicted) = state.entries.remove(key) {
            state.bytes -= evicted.bytes;
        }
    }

    /// Drops every cache entry and quarantine record owned by one of
    /// `nets`, returning how many were released. A long-lived session
    /// calls this when an edit invalidates a victim's geometry: the
    /// victim's stored factorizations no longer match its new topology
    /// signature (a new key simply misses), but its *quarantine* records
    /// would otherwise pin the old `(key, polarity)` pairs forever —
    /// after the offending geometry is edited away, an unrelated victim
    /// landing on the same signature deserves cache service again.
    /// Releasing a still-shared entry is parity-safe: it only costs the
    /// next user a refactor.
    pub fn release_nets(&self, nets: &[NetId]) -> usize {
        if nets.is_empty() {
            return 0;
        }
        let owned = |owner: NetId| nets.contains(&owner);
        // Lock order matches `insert`/`quarantine`: quarantined, then state.
        let mut released = 0usize;
        {
            let mut quarantined = self.guard(&self.quarantined);
            let before = quarantined.len();
            quarantined.retain(|_, owner| !owned(*owner));
            released += before - quarantined.len();
        }
        let mut state = self.guard(&self.state);
        let doomed: Vec<TopoKey> = state
            .entries
            .iter()
            .filter(|(_, slot)| owned(slot.owner))
            .map(|(k, _)| k.clone())
            .collect();
        for key in doomed {
            if let Some(evicted) = state.entries.remove(&key) {
                state.bytes -= evicted.bytes;
                released += 1;
            }
        }
        released
    }

    /// Records a freshly factored system's nonzero count; called on every
    /// factorization, cached or not.
    fn note_nnz(&self, nnz: usize) {
        self.max_nnz.fetch_max(nnz, Ordering::Relaxed);
        nsta_obs::recorder().gauge_max("sta.solver.max_nnz", nnz as f64);
    }

    fn stats(&self) -> (usize, usize) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    fn evictions(&self) -> usize {
        self.evictions.load(Ordering::Relaxed)
    }

    fn bytes_peak(&self) -> usize {
        self.peak_bytes.load(Ordering::Relaxed)
    }

    fn nnz(&self) -> usize {
        self.max_nnz.load(Ordering::Relaxed)
    }

    fn lock_recoveries(&self) -> usize {
        self.lock_recoveries.load(Ordering::Relaxed)
    }
}

/// Timestep buckets the raw `slew / 50` heuristic is rounded **up** into,
/// so reductions with nearby slews land on a shared, cacheable grid. The
/// bounds match the historical `clamp(0.5 ps, 5 ps)`.
const DT_BUCKETS: [f64; 5] = [0.5e-12, 1e-12, 2e-12, 4e-12, 5e-12];

/// Simulation stop times are rounded up to a multiple of this, so victims
/// that settle at nearby times share one grid length.
const T_STOP_QUANTUM: f64 = 0.5e-9;

/// Settle margin appended after the latest participant's transition ends.
/// The reduced stage's time constants are `R_drive · C_stage` — tens of
/// picoseconds — so 1 ns is >10τ of decay for any realistic spec; the
/// quantum above then rounds the window up further.
const SETTLE_MARGIN: f64 = 1e-9;

fn quantize_dt(victim_slew: f64) -> f64 {
    let raw = (victim_slew / 50.0).clamp(0.5e-12, 5e-12);
    // A NaN slew survives the clamp and matches no bucket; hand the raw
    // value on so `TransientOptions::new` rejects it as a recoverable
    // error instead of panicking here.
    DT_BUCKETS
        .iter()
        .find(|&&b| b >= raw)
        .copied()
        .unwrap_or(raw)
}

fn quantize_t_stop(latest: f64) -> f64 {
    ((latest + SETTLE_MARGIN) / T_STOP_QUANTUM).ceil() * T_STOP_QUANTUM
}

/// One deferred victim-cache install: the `(net, is_rise)` slot and the
/// `(key, Γeff, base arrival)` entry to store under it.
type VictimInsert = ((usize, bool), (VictimKey, SaturatedRamp, f64));

/// What one crosstalk pass produces: final per-net states, the applied
/// adjustments, victim-cache effectiveness, and any fault-tolerance
/// actions taken along the way.
type PassResult = (
    Vec<crate::engine::NetState>,
    Vec<SiAdjustment>,
    PassStats,
    Vec<DegradeEvent>,
);

/// Per-cone result of one crosstalk pass, merged deterministically in
/// cone order by the scheduler.
struct ConeOutcome {
    /// Final state of every net of the cone, aligned with the cone's
    /// net order.
    states: Vec<crate::engine::NetState>,
    adjustments: Vec<SiAdjustment>,
    /// Freshly simulated victim results to install in the victim cache
    /// after the parallel section (each `(net, polarity)` is visited once
    /// per pass, so a deferred insert is never read within the same pass).
    inserts: Vec<VictimInsert>,
    /// Victim transitions this cone re-simulated vs served from the
    /// victim cache.
    stats: PassStats,
    /// Fault-tolerance actions taken while reducing this cone's victims.
    degrades: Vec<DegradeEvent>,
}

/// Victim-cache effectiveness of one crosstalk pass, summed over its
/// cones or levels.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct PassStats {
    /// Victim transitions that ran a fresh transient reduction.
    recomputed: usize,
    /// Victim transitions short-circuited by the incremental cache.
    cached: usize,
}

impl Sta {
    fn check_unique_victims(&self, couplings: &[CouplingSpec]) -> Result<(), StaError> {
        let mut victims: Vec<NetId> = couplings.iter().map(|s| s.victim).collect();
        victims.sort_unstable();
        if let Some(dup) = victims.windows(2).find(|w| w[0] == w[1]) {
            return Err(StaError::Structure(format!(
                "two coupling specs name the same victim net {}",
                self.design().net_name(dup[0])
            )));
        }
        Ok(())
    }

    /// Builds the cache key of one victim transition from the current
    /// sweep point and the nominal (`base`) aggressor arrivals.
    fn victim_key(
        &self,
        spec: &CouplingSpec,
        victim_pol: Polarity,
        arrival: f64,
        slew: f64,
        base: &[crate::engine::NetState],
    ) -> Result<VictimKey, StaError> {
        let agg_pol = if spec.aggressors_oppose {
            victim_pol.inverted()
        } else {
            victim_pol
        };
        let mut aggressors = Vec::with_capacity(spec.aggressors.len());
        for (i, &agg) in spec.aggressors.iter().enumerate() {
            let p = base
                .get(agg.0)
                .map(|s| *s.get(agg_pol))
                .filter(|p| p.valid)
                .ok_or_else(|| {
                    StaError::Unresolved(format!(
                        "aggressor net #{} has no computed arrival",
                        agg.0
                    ))
                })?;
            aggressors.push((agg, p.arrival, p.slew, spec.cm_of(i)));
        }
        Ok(VictimKey {
            arrival,
            slew,
            aggressors,
            quiet_cm: spec.quiet_cm,
        })
    }

    /// One crosstalk-adjusted forward sweep. `cache` (with its staleness
    /// tolerance) short-circuits victims whose key is unchanged since an
    /// earlier iteration; `topo` shares factored transient systems across
    /// structurally identical victim stages.
    ///
    /// Scheduling is hybrid: with at least one fanout cone per worker the
    /// pass is cone-partitioned (one task per weakly-connected component,
    /// no level barriers); a graph with fewer cones than workers — e.g. a
    /// fully connected design — falls back to level-synchronous
    /// scheduling so intra-level parallelism is not lost. Either way the
    /// per-victim arithmetic is a fixed operation sequence and the
    /// returned adjustments are sorted into `(net, rise-first)` order, so
    /// results are bit-identical across thread counts *and* across the
    /// two schedules.
    #[allow(clippy::too_many_arguments)]
    fn crosstalk_pass(
        &self,
        bc: &BoundaryConditions,
        couplings: &[CouplingSpec],
        method: MethodKind,
        backend: SolverBackend,
        base: &[crate::engine::NetState],
        threads: usize,
        cache: Option<(&mut VictimCache, f64)>,
        topo: Option<&TopoCache>,
        policy: FaultPolicy,
        deadline: Option<&Deadline>,
        scope: Option<&[bool]>,
    ) -> Result<PassResult, StaError> {
        let n = self.design().net_count();
        let mut spec_of: Vec<Option<&CouplingSpec>> = vec![None; n];
        for s in couplings {
            if let Some(slot) = spec_of.get_mut(s.victim.0) {
                *slot = Some(s);
            } else {
                return Err(StaError::Unresolved(format!(
                    "coupling spec names unknown victim net #{}",
                    s.victim.0
                )));
            }
        }
        // A scoped pass (a session's dirty-cluster re-solve) always takes
        // the cone schedule: the scope is a cone mask, and the handful of
        // scoped cones would gain nothing from level synchronization.
        let cones = self.graph().components().len();
        let (states, mut adjustments, stats, mut degrades) = if scope.is_some()
            || cones >= threads.max(1)
        {
            self.crosstalk_pass_cones(
                bc, &spec_of, method, backend, base, threads, cache, topo, policy, deadline, scope,
            )?
        } else {
            self.crosstalk_pass_levels(
                bc, &spec_of, method, backend, base, threads, cache, topo, policy, deadline,
            )?
        };
        // Canonical adjustment order, independent of the schedule: each
        // `(net, polarity)` appears at most once per pass. Degrade events
        // get the same ordering (stable, so a victim's fallback chain
        // keeps its step order); events with no net sort last.
        adjustments.sort_unstable_by_key(|a| (a.net.0, !a.polarity.is_rise()));
        degrades.sort_by_key(|e| {
            (
                e.net.map_or(usize::MAX, |n| n.0),
                e.polarity.map_or(2usize, |p| !p.is_rise() as usize),
            )
        });
        Ok((states, adjustments, stats, degrades))
    }

    /// Cone-partitioned crosstalk sweep: every weakly-connected component
    /// of the graph is one task — fanin updates and victim reductions
    /// interleaved in topological order — evaluated on the worker pool
    /// and merged in cone order.
    #[allow(clippy::too_many_arguments)]
    fn crosstalk_pass_cones(
        &self,
        bc: &BoundaryConditions,
        spec_of: &[Option<&CouplingSpec>],
        method: MethodKind,
        backend: SolverBackend,
        base: &[crate::engine::NetState],
        threads: usize,
        mut cache: Option<(&mut VictimCache, f64)>,
        topo: Option<&TopoCache>,
        policy: FaultPolicy,
        deadline: Option<&Deadline>,
        scope: Option<&[bool]>,
    ) -> Result<PassResult, StaError> {
        let th = Thresholds::cmos(self.library().voltage);
        let seed = self.init_states(bc, false);
        let components = self.graph().components();
        // Cone work list, filtered by the optional cone-scope mask but
        // keeping each cone's original index so merge order, retry
        // attribution and epoch bookkeeping stay schedule-independent.
        // Out-of-scope cones are never propagated: their states stay at
        // the seed, exactly like the scoped forward sweeps' (the caller
        // discards them).
        let active: Vec<(usize, &[NetId])> = components
            .iter()
            .enumerate()
            .filter(|(ci, _)| scope.is_none_or(|s| s.get(*ci).copied().unwrap_or(false)))
            .map(|(ci, cone)| (ci, cone.as_slice()))
            .collect();
        let (outcomes, retried) = {
            // Immutable view of the victim cache for the parallel section;
            // fresh results are collected per cone and installed after.
            let read_cache: Option<(&VictimCache, f64)> =
                cache.as_ref().map(|(c, tol)| (&**c, *tol));
            crate::par::par_map_govern(
                threads,
                &active,
                deadline,
                |&(_ci, cone)| -> Result<ConeOutcome, StaError> {
                    // Fault-injection site: a cone task panics at entry,
                    // exactly where an assertion or slice bug in the
                    // per-cone work would. The pool catches it and the
                    // coordinator retries the cone inline — this site only
                    // fires once per opportunity index, so the retry runs
                    // clean.
                    if nsta_obs::fault::should_fire(nsta_obs::fault::WORKER_PANIC) {
                        panic!("injected: cone worker panic");
                    }
                    let mut cone_span = nsta_obs::span!("si.cone");
                    cone_span.set_arg("nets", cone.len() as f64);
                    let mut local: Vec<crate::engine::NetState> =
                        cone.iter().map(|&net| seed[net.0]).collect();
                    let mut out = ConeOutcome {
                        states: Vec::new(),
                        adjustments: Vec::new(),
                        inserts: Vec::new(),
                        stats: PassStats::default(),
                        degrades: Vec::new(),
                    };
                    for (j, &net) in cone.iter().enumerate() {
                        // Cone-local state buffer: all fanin of a cone net is
                        // in the same cone by construction.
                        let updated = self.propagate_net_with(
                            net,
                            |i| local[self.graph().cone_slot(NetId(i))],
                            bc,
                            false,
                        )?;
                        local[j] = updated;
                        let Some(spec) = spec_of[net.0] else { continue };
                        for pol in [Polarity::Rise, Polarity::Fall] {
                            let point = *local[j].get(pol);
                            if !point.valid {
                                continue;
                            }
                            // Keys are only built when a victim cache is active
                            // — without one they would never be read.
                            let key = match read_cache {
                                Some(_) => Some(self.victim_key(
                                    spec,
                                    pol,
                                    point.arrival,
                                    point.slew,
                                    base,
                                )?),
                                None => None,
                            };
                            let hit = Self::victim_cache_hit(read_cache, net, pol, key.as_ref());
                            match hit {
                                Some(_) => out.stats.cached += 1,
                                None => out.stats.recomputed += 1,
                            }
                            let (gamma, base_arrival) = match hit {
                                Some(found) => found,
                                None => {
                                    match self.victim_gamma(
                                        bc,
                                        spec,
                                        pol,
                                        point.arrival,
                                        point.slew,
                                        base,
                                        method,
                                        backend,
                                        topo,
                                        &mut out.degrades,
                                    ) {
                                        Ok(fresh) => {
                                            // Only freshly simulated results
                                            // enter the victim cache, paired
                                            // with the exact key they were
                                            // computed from.
                                            if let Some(key) = key {
                                                out.inserts.push((
                                                    (net.0, pol.is_rise()),
                                                    (key, fresh.0, fresh.1),
                                                ));
                                            }
                                            fresh
                                        }
                                        Err(e) if policy == FaultPolicy::Isolate => {
                                            out.degrades.push(DegradeEvent {
                                                net: Some(net),
                                                polarity: Some(pol),
                                                action: DegradeAction::VictimDropped,
                                                cause: e.to_string(),
                                                recovered: false,
                                            });
                                            // The victim keeps its nominal
                                            // (crosstalk-free) timing point.
                                            continue;
                                        }
                                        Err(e) => return Err(e),
                                    }
                                }
                            };
                            let p = local[j].get_mut(pol);
                            p.arrival = gamma.arrival_mid();
                            p.slew = gamma.slew(th);
                            out.adjustments.push(SiAdjustment {
                                net,
                                polarity: pol,
                                base_arrival,
                                noisy_arrival: p.arrival,
                                noisy_slew: p.slew,
                            });
                        }
                    }
                    cone_span.set_arg("recomputed", out.stats.recomputed as f64);
                    cone_span.set_arg("cached", out.stats.cached as f64);
                    out.states = local;
                    Ok(out)
                },
            )
        };
        // Deterministic merge: cone order is fixed by the graph, the work
        // inside each cone by its topological order.
        let mut states = seed;
        let mut adjustments = Vec::new();
        let mut stats = PassStats::default();
        let mut degrades = Vec::new();
        for (&(_ci, cone), outcome) in active.iter().zip(outcomes) {
            let Some(outcome) = outcome else {
                // Deadline-skipped cone: its nets keep the nominal
                // (crosstalk-free) sweep's states — valid, just stale —
                // and every victim in it is recorded so the staleness is
                // attributable per net.
                for &net in cone {
                    states[net.0] = base[net.0];
                    if spec_of[net.0].is_some() {
                        degrades.push(DegradeEvent {
                            net: Some(net),
                            polarity: None,
                            action: DegradeAction::DeadlineSkipped,
                            cause: "analysis deadline expired before this cone was scheduled; \
                                    victim keeps stale nominal timing"
                                .to_string(),
                            recovered: false,
                        });
                    }
                }
                continue;
            };
            let mut outcome = outcome?;
            for (&net, st) in cone.iter().zip(outcome.states) {
                states[net.0] = st;
            }
            adjustments.extend(outcome.adjustments);
            stats.recomputed += outcome.stats.recomputed;
            stats.cached += outcome.stats.cached;
            degrades.append(&mut outcome.degrades);
            if let Some((c, _)) = cache.as_mut() {
                for (slot, entry) in outcome.inserts {
                    c.entries.insert(slot, entry);
                }
            }
        }
        // Cones the pool had to recompute inline after a worker-side
        // panic: the retry already produced full results above; record
        // the recovery against the cone's first net.
        for idx in retried {
            degrades.push(DegradeEvent {
                net: active.get(idx).and_then(|&(_, c)| c.first()).copied(),
                polarity: None,
                action: DegradeAction::ConeRetry,
                cause: "cone worker panicked; recomputed inline on the coordinator".to_string(),
                recovered: true,
            });
        }
        Ok((states, adjustments, stats, degrades))
    }

    /// Level-synchronous crosstalk sweep — the fallback for graphs with
    /// fewer fanout cones than workers (e.g. one fully connected
    /// component, where cone tasks would serialize everything): the fanin
    /// updates of each level fan across the pool, then the level's
    /// cache-missing victim reductions do.
    #[allow(clippy::too_many_arguments)]
    fn crosstalk_pass_levels(
        &self,
        bc: &BoundaryConditions,
        spec_of: &[Option<&CouplingSpec>],
        method: MethodKind,
        backend: SolverBackend,
        base: &[crate::engine::NetState],
        threads: usize,
        mut cache: Option<(&mut VictimCache, f64)>,
        topo: Option<&TopoCache>,
        policy: FaultPolicy,
        deadline: Option<&Deadline>,
    ) -> Result<PassResult, StaError> {
        let th = Thresholds::cmos(self.library().voltage);
        let mut states = self.init_states(bc, false);
        let mut adjustments = Vec::new();
        let mut stats = PassStats::default();
        let mut degrades: Vec<DegradeEvent> = Vec::new();
        // Once the deadline reads expired it stays expired (both clocks
        // are monotone): every later level skips its victim reductions.
        let mut expired = false;
        for level in self.graph().levels() {
            // Fanin updates of this level (parallel, merged in net order).
            let updated = par_map(threads, level, |&net| {
                self.propagate_net_with(net, |i| states[i], bc, false)
            });
            for (&net, result) in level.iter().zip(updated) {
                states[net.0] = result?;
            }
            // Cooperative cancellation at the level boundary: fanin
            // propagation above still ran (downstream levels need valid
            // states — it is cheap, no transient solves), but this
            // level's victim reductions are skipped and recorded.
            expired = expired || deadline.is_some_and(|d| d.expired());
            if expired {
                for &net in level {
                    if spec_of[net.0].is_some() {
                        degrades.push(DegradeEvent {
                            net: Some(net),
                            polarity: None,
                            action: DegradeAction::DeadlineSkipped,
                            cause: "analysis deadline expired before this level's victims \
                                    were scheduled; victim keeps stale nominal timing"
                                .to_string(),
                            recovered: false,
                        });
                    }
                }
                continue;
            }
            // Victim transitions of this level: resolve each against the
            // victim cache or queue it for parallel evaluation. Same-level
            // victims only read `base` and earlier levels, so their
            // reductions are independent.
            let read_cache: Option<(&VictimCache, f64)> =
                cache.as_ref().map(|(c, tol)| (&**c, *tol));
            let mut units = Vec::new();
            let mut jobs = Vec::new();
            for &net in level {
                let Some(spec) = spec_of[net.0] else { continue };
                for pol in [Polarity::Rise, Polarity::Fall] {
                    let point = *states[net.0].get(pol);
                    if !point.valid {
                        continue;
                    }
                    let key = match read_cache {
                        Some(_) => {
                            Some(self.victim_key(spec, pol, point.arrival, point.slew, base)?)
                        }
                        None => None,
                    };
                    let hit = Self::victim_cache_hit(read_cache, net, pol, key.as_ref());
                    if hit.is_none() {
                        jobs.push((spec, pol, point.arrival, point.slew));
                    }
                    units.push((net, pol, hit, key));
                }
            }
            stats.recomputed += jobs.len();
            stats.cached += units.len() - jobs.len();
            let results = par_map(threads, &jobs, |&(spec, pol, arrival, slew)| {
                let mut events = Vec::new();
                let result = self.victim_gamma(
                    bc,
                    spec,
                    pol,
                    arrival,
                    slew,
                    base,
                    method,
                    backend,
                    topo,
                    &mut events,
                );
                (result, events)
            });
            let mut results = results.into_iter();
            for (net, pol, hit, key) in units {
                let resolved = match hit {
                    Some(found) => Some(found),
                    None => {
                        let (result, mut events) = results.next().unwrap_or_else(|| {
                            panic!("scheduler bug: missing result for queued job")
                        });
                        degrades.append(&mut events);
                        match result {
                            Ok(fresh) => {
                                // Only freshly simulated results enter the
                                // victim cache, paired with the exact key
                                // they were computed from.
                                if let (Some((c, _)), Some(key)) = (cache.as_mut(), key) {
                                    c.entries
                                        .insert((net.0, pol.is_rise()), (key, fresh.0, fresh.1));
                                }
                                Some(fresh)
                            }
                            Err(e) if policy == FaultPolicy::Isolate => {
                                degrades.push(DegradeEvent {
                                    net: Some(net),
                                    polarity: Some(pol),
                                    action: DegradeAction::VictimDropped,
                                    cause: e.to_string(),
                                    recovered: false,
                                });
                                None
                            }
                            Err(e) => return Err(e),
                        }
                    }
                };
                // A dropped victim keeps its nominal (crosstalk-free)
                // timing point.
                let Some((gamma, base_arrival)) = resolved else {
                    continue;
                };
                let p = states[net.0].get_mut(pol);
                p.arrival = gamma.arrival_mid();
                p.slew = gamma.slew(th);
                adjustments.push(SiAdjustment {
                    net,
                    polarity: pol,
                    base_arrival,
                    noisy_arrival: p.arrival,
                    noisy_slew: p.slew,
                });
            }
        }
        Ok((states, adjustments, stats, degrades))
    }

    /// Probes the victim cache for `(net, pol)` against the freshly built
    /// `key`, returning the stored `(Γeff, base arrival)` when the old key
    /// matches within tolerance. The stored entry (old key + result) is
    /// kept as is on a hit: refreshing the key would let sub-tol input
    /// drift accumulate across iterations without ever re-simulating.
    fn victim_cache_hit(
        read_cache: Option<(&VictimCache, f64)>,
        net: NetId,
        pol: Polarity,
        key: Option<&VictimKey>,
    ) -> Option<(SaturatedRamp, f64)> {
        read_cache.and_then(|(c, tol)| {
            let key = key?;
            c.entries
                .get(&(net.0, pol.is_rise()))
                .filter(|(old, _, _)| old.matches(key, tol))
                .map(|&(_, gamma, base_arrival)| (gamma, base_arrival))
        })
    }

    /// Runs the analysis with crosstalk-aware propagation on the nets named
    /// in `couplings`, reducing noisy waveforms with `method`.
    ///
    /// Returns the report plus the per-victim adjustments that were applied
    /// (useful for method comparisons).
    ///
    /// # Errors
    ///
    /// * [`StaError::Unresolved`] if a spec names an unknown net or an
    ///   aggressor without a computed arrival.
    /// * [`StaError::Structure`] if two specs name the same victim — only
    ///   one spec per victim can be applied, so a duplicate would be
    ///   silently ignored otherwise.
    /// * Propagated circuit/reduction failures.
    pub fn analyze_with_crosstalk(
        &self,
        constraints: impl Into<BoundaryConditions>,
        couplings: &[CouplingSpec],
        method: MethodKind,
    ) -> Result<(TimingReport, Vec<SiAdjustment>), StaError> {
        let bc = constraints.into();
        self.check_unique_victims(couplings)?;
        // Pass 1: nominal arrivals — aggressor ramps need them.
        let base = self.forward_sweep(&bc)?;
        // Pass 2: sweep again, overriding victim nets as they are reached.
        // The topology cache is always on here (no options to disable it);
        // it cannot change results, only skip redundant factorizations.
        let topo = TopoCache::new(true, SiOptions::DEFAULT_CACHE_BUDGET_BYTES);
        let (states, adjustments, _stats, _degrades) = self.crosstalk_pass(
            &bc,
            couplings,
            method,
            SolverBackend::default(),
            &base,
            1,
            None,
            Some(&topo),
            FaultPolicy::Fail,
            None,
            None,
        )?;
        let mask = self.false_edge_mask(&bc);
        let report = self.finish_report(&bc, states, mask.as_ref())?;
        Ok((report, adjustments))
    }

    /// Switching windows per net: earliest arrivals from the min sweep,
    /// latest-arrival-plus-slew from `latest` (a completed report), both
    /// taken over rise and fall.
    fn windows_from(
        &self,
        min_states: &[crate::engine::NetState],
        latest: &TimingReport,
    ) -> Vec<Option<ArrivalWindow>> {
        (0..self.design().net_count())
            .map(|i| {
                let mut earliest = f64::INFINITY;
                for pol in [Polarity::Rise, Polarity::Fall] {
                    let p = min_states[i].get(pol);
                    if p.valid {
                        earliest = earliest.min(p.arrival);
                    }
                }
                let mut end = f64::NEG_INFINITY;
                // finish_report emits one NetTiming per net id, in order:
                // index directly rather than scanning the report per net.
                if let Some(t) = latest.nets().get(i) {
                    debug_assert_eq!(t.net, NetId(i));
                    for pt in [&t.rise, &t.fall].into_iter().flatten() {
                        end = end.max(pt.arrival + pt.slew);
                    }
                }
                (earliest.is_finite() && end.is_finite()).then_some(ArrivalWindow {
                    earliest,
                    latest: end,
                })
            })
            .collect()
    }

    /// Applies the window filter to `couplings`, returning the surviving
    /// specs plus a record of every pruned aggressor. Nets without a
    /// window (unreachable in the sweep) are conservatively kept so the
    /// analysis itself can report them as errors.
    fn window_filter(
        couplings: &[CouplingSpec],
        windows: &[Option<ArrivalWindow>],
        guard: f64,
    ) -> (Vec<CouplingSpec>, Vec<PrunedAggressor>) {
        let mut filtered = Vec::with_capacity(couplings.len());
        let mut pruned = Vec::new();
        for spec in couplings {
            let Some(victim_window) = windows.get(spec.victim.0).copied().flatten() else {
                filtered.push(spec.clone());
                continue;
            };
            let mut keep = Vec::with_capacity(spec.aggressors.len());
            for (i, &agg) in spec.aggressors.iter().enumerate() {
                match windows.get(agg.0).copied().flatten() {
                    Some(aw) if !victim_window.overlaps(&aw, spec.aggressor_skew, guard) => {
                        pruned.push(PrunedAggressor {
                            victim: spec.victim,
                            aggressor: agg,
                            victim_window,
                            aggressor_window: aw,
                        });
                    }
                    _ => keep.push(i),
                }
            }
            if keep.len() == spec.aggressors.len() {
                filtered.push(spec.clone());
            } else {
                // Keep fully-pruned victims too: their wire RC still adds
                // delay relative to the ideal-wire nominal analysis.
                filtered.push(spec.restricted(&keep));
            }
        }
        (filtered, pruned)
    }

    /// Runs the crosstalk analysis with timing-window aggressor filtering,
    /// iterated to a fixed point.
    ///
    /// Aggressors whose switching windows cannot overlap the victim's
    /// (accounting for `aggressor_skew` and `options.window_guard`) are
    /// pruned before any circuit simulation — the temporal-correlation
    /// filter commercial SI flows apply before paying for noise analysis.
    /// Because crosstalk push-out moves arrival windows, the filter and
    /// analysis repeat until the worst per-net arrival movement drops
    /// below `options.convergence_tol` (or the iteration cap is hit).
    ///
    /// The nominal sweep feeding aggressor ramps and earliest windows is
    /// computed once, outside the loop; with [`SiOptions::incremental`]
    /// only victims whose cache key changed between iterations are
    /// re-simulated, and with [`SiOptions::threads`] the per-level work
    /// runs on a worker pool (both without changing any result bit — see
    /// the module docs).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Sta::analyze_with_crosstalk`].
    pub fn analyze_with_crosstalk_windows(
        &self,
        constraints: impl Into<BoundaryConditions>,
        couplings: &[CouplingSpec],
        options: &SiOptions,
    ) -> Result<SiAnalysis, StaError> {
        let topo = TopoCache::new(options.topo_cache, options.cache_budget_bytes);
        self.analyze_windows_with_cache(constraints, couplings, options, &topo, None)
            .map(|(analysis, _states)| analysis)
    }

    /// [`Sta::analyze_with_crosstalk_windows`] with a caller-owned
    /// [`TopoCache`] (which then ignores [`SiOptions::topo_cache`] /
    /// [`SiOptions::cache_budget_bytes`]), also returning the final
    /// per-net propagation states. Both extras exist for the long-lived
    /// session layer: the cache persists across incremental re-solves,
    /// and the states let [`crate::session`] merge a dirty-cone patch
    /// into retained results at the state level, reproducing the batch
    /// report bit-identically. Results are unchanged by cache contents —
    /// a warm cache only skips refactorizations — and the diagnostics'
    /// cache counters are cumulative over the cache's lifetime, not this
    /// call.
    ///
    /// `scope` optionally restricts the two hoisted sweeps to a per-cone
    /// mask (see [`Sta::forward_sweep_scoped`]): the session layer passes
    /// the dirty-cluster cone mask so a per-edit re-solve never sweeps
    /// untouched cones. Sound because the fixed point and the window
    /// filter only ever read states of coupling participants, all of
    /// which live inside the scoped clusters; out-of-scope nets keep
    /// their seed states and the caller discards their report rows.
    pub(crate) fn analyze_windows_with_cache(
        &self,
        constraints: impl Into<BoundaryConditions>,
        couplings: &[CouplingSpec],
        options: &SiOptions,
        topo: &TopoCache,
        scope: Option<&[bool]>,
    ) -> Result<(SiAnalysis, Vec<crate::engine::NetState>), StaError> {
        let bc = constraints.into();
        self.check_unique_victims(couplings)?;
        let mut phase_span = nsta_obs::span!("si.windowed");
        phase_span.set_arg("victims", couplings.len() as f64);
        phase_span.set_arg("threads", options.threads.max(1) as f64);
        // The false-path mask depends only on the graph and the boundary
        // conditions: compute it once, outside the fixed point.
        let mask = self.false_edge_mask(&bc);
        let mask = mask.as_ref();
        let threads = options.threads.max(1);
        // Net-level projection of the cone scope, for the intermediate
        // reports the fixed point builds (their per-edge reverse-sweep
        // table lookups would otherwise dwarf a scoped re-solve).
        let net_scope: Option<Vec<bool>> = scope.map(|s| {
            let mut nets = vec![false; self.design().net_count()];
            for (ci, cone) in self.graph().components().iter().enumerate() {
                if s.get(ci).copied().unwrap_or(false) {
                    for &net in cone {
                        nets[net.0] = true;
                    }
                }
            }
            nets
        });
        let net_scope = net_scope.as_deref();
        // Iteration-invariant work, hoisted out of the fixed point: the
        // nominal sweep (aggressor ramps + latest windows of iteration 0)
        // and the min sweep (earliest window edges, which worst-case
        // push-out never moves). Per-pin boundaries seed the two sweeps
        // from each input's min/max arrival, so windows reflect genuine
        // constraint-set arrival ranges instead of a single point.
        let base = {
            let _sweep_span = nsta_obs::span!("si.nominal_sweep");
            self.forward_sweep_scoped(&bc, false, threads, scope)?
        };
        let deadline = options.deadline.as_ref();
        let cones = self.graph().components().len();
        phase_span.set_arg("cones", cones as f64);
        let diagnostics = |iterations: Vec<SiIteration>,
                           converged: bool,
                           timed_out: bool,
                           convergence_actions: Vec<ConvergenceAction>,
                           mut degrade_events: Vec<DegradeEvent>| {
            let (cache_hits, cache_misses) = topo.stats();
            // Poisoned-lock healings have no single victim; surface each
            // as its own recovered event after the per-victim ones.
            for _ in 0..topo.lock_recoveries() {
                degrade_events.push(DegradeEvent {
                    net: None,
                    polarity: None,
                    action: DegradeAction::LockRecovered,
                    cause: "poisoned topo-cache lock recovered".to_string(),
                    recovered: true,
                });
            }
            SiDiagnostics {
                iterations,
                converged,
                cones,
                cache_hits,
                cache_misses,
                solver_backend: options.backend,
                solver_nnz: topo.nnz(),
                degrade_events,
                timed_out,
                cache_evictions: topo.evictions(),
                cache_bytes: topo.bytes_peak(),
                convergence_actions,
                epoch: 0,
            }
        };

        if !options.use_windows {
            let mut cache = VictimCache::default();
            let cache_ref = options
                .incremental
                .then_some((&mut cache, options.convergence_tol));
            let (states, adjustments, stats, degrades) = self.crosstalk_pass(
                &bc,
                couplings,
                options.method,
                options.backend,
                &base,
                threads,
                cache_ref,
                Some(topo),
                options.fault_policy,
                deadline,
                scope,
            )?;
            let report = self.finish_report_scoped(&bc, states.clone(), mask, net_scope)?;
            let timed_out = degrades
                .iter()
                .any(|e| e.action == DegradeAction::DeadlineSkipped);
            let pass = SiIteration {
                victims_recomputed: stats.recomputed,
                victims_cached: stats.cached,
                aggressors_pruned: 0,
                max_window_delta: 0.0,
            };
            return Ok((
                SiAnalysis {
                    report,
                    adjustments,
                    pruned: Vec::new(),
                    diagnostics: diagnostics(vec![pass], true, timed_out, Vec::new(), degrades),
                },
                states,
            ));
        }

        let min_states = {
            let _sweep_span = nsta_obs::span!("si.min_sweep");
            self.forward_sweep_scoped(&bc, true, threads, scope)?
        };
        let clean = self.finish_report_scoped(&bc, base.clone(), mask, net_scope)?;
        let mut windows = self.windows_from(&min_states, &clean);
        let mut previous: Option<TimingReport> = Some(clean);

        let max_iterations = options.max_iterations.max(1);
        let mut result = None;
        let mut converged = false;
        let mut timed_out = false;
        let mut iteration_trace: Vec<SiIteration> = Vec::new();
        let mut prev_pruned: Option<Vec<(NetId, NetId)>> = None;
        let mut cache = VictimCache::default();
        let mut degrade_events: Vec<DegradeEvent> = Vec::new();
        // Convergence governance (see the module docs): nets that
        // participate in any coupling — the only windows the filter ever
        // reads — and the widening state. `governed` flips once, when the
        // delta sequence stagnates or the cap runs out unconverged.
        let mut convergence_actions: Vec<ConvergenceAction> = Vec::new();
        let mut governed = false;
        let mut participant = vec![false; self.design().net_count()];
        for s in couplings {
            participant[s.victim.0] = true;
            for &a in &s.aggressors {
                if let Some(p) = participant.get_mut(a.0) {
                    *p = true;
                }
            }
        }
        let total_pairs: usize = couplings.iter().map(|s| s.aggressors.len()).sum();
        // Termination bound of the governed phase: widened windows only
        // grow, so overlap decisions only flip towards "keep" — the
        // pruned set shrinks monotonically in a space of `total_pairs`
        // pairs, hence goes stationary (triggering the unchanged-pruning
        // stop) within `total_pairs + 1` governed iterations.
        let governed_cap = max_iterations + total_pairs + 2;
        let mut iteration_cap = max_iterations;
        while iteration_trace.len() < iteration_cap {
            let (filtered, pruned) = Self::window_filter(couplings, &windows, options.window_guard);
            // The analysis result is a pure function of the filtered
            // aggressor sets (aggressor ramps come from the nominal
            // sweep): if pruning did not change, re-running it would
            // reproduce the previous report — skip the simulations.
            let pruned_key: Vec<(NetId, NetId)> =
                pruned.iter().map(|p| (p.victim, p.aggressor)).collect();
            if prev_pruned.as_ref() == Some(&pruned_key) {
                converged = true;
                break;
            }
            let mut iter_span = nsta_obs::span!("si.iteration");
            iter_span.set_arg("iter", iteration_trace.len() as f64);
            let cache_ref = options
                .incremental
                .then_some((&mut cache, options.convergence_tol));
            let (states, adjustments, stats, mut degrades) = self.crosstalk_pass(
                &bc,
                &filtered,
                options.method,
                options.backend,
                &base,
                threads,
                cache_ref,
                Some(topo),
                options.fault_policy,
                deadline,
                scope,
            )?;
            degrade_events.append(&mut degrades);
            let report = self.finish_report_scoped(&bc, states.clone(), mask, net_scope)?;
            let prev_windows =
                std::mem::replace(&mut windows, self.windows_from(&min_states, &report));
            let moved = previous
                .as_ref()
                .map_or(f64::INFINITY, |prev| worst_arrival_movement(prev, &report));
            previous = Some(report.clone());
            iteration_trace.push(SiIteration {
                victims_recomputed: stats.recomputed,
                victims_cached: stats.cached,
                aggressors_pruned: pruned.len(),
                max_window_delta: moved,
            });
            iter_span.set_arg("victims_recomputed", stats.recomputed as f64);
            iter_span.set_arg("victims_cached", stats.cached as f64);
            iter_span.set_arg("aggressors_pruned", pruned.len() as f64);
            iter_span.set_arg("max_window_delta", moved);
            drop(iter_span);
            prev_pruned = Some(pruned_key);
            result = Some((report, adjustments, pruned, states));
            // Deadline boundary: the iteration that just ran finished (it
            // may have skipped cones internally — those carry
            // DeadlineSkipped events); no further iteration starts.
            if deadline.is_some_and(|d| d.expired()) {
                timed_out = true;
                break;
            }
            // Secondary stop: windows that barely moved cannot change the
            // overlap decisions by more than the tolerance.
            if moved <= options.convergence_tol {
                converged = true;
                break;
            }
            if options.convergence_governor && !governed {
                let n = iteration_trace.len();
                let delta = |i: usize| iteration_trace[i].max_window_delta;
                // Stagnation: the delta sequence has stopped shrinking
                // over the last two steps (a genuinely converging run
                // shrinks strictly, so this never fires on one)...
                let stagnating =
                    n >= 3 && delta(n - 1) >= delta(n - 2) && delta(n - 2) >= delta(n - 3);
                // ...or the plain cap is exhausted without convergence —
                // where the ungoverned analysis would give up and return
                // `converged: false`.
                let cap_exhausted = n >= max_iterations;
                if stagnating || cap_exhausted {
                    governed = true;
                    iteration_cap = governed_cap;
                    nsta_obs::count!("sta.si.governed_switches");
                }
            }
            if governed {
                governed_window_update(
                    &mut windows,
                    &prev_windows,
                    &participant,
                    iteration_trace.len(),
                    &mut convergence_actions,
                );
            }
        }
        let Some((report, adjustments, pruned, states)) = result else {
            return Err(StaError::Structure(
                "crosstalk iteration loop completed zero iterations".into(),
            ));
        };
        phase_span.set_arg("iterations", iteration_trace.len() as f64);
        Ok((
            SiAnalysis {
                report,
                adjustments,
                pruned,
                // Cache statistics accumulate across iterations; snapshot
                // them once on the surviving analysis.
                diagnostics: diagnostics(
                    iteration_trace,
                    converged,
                    timed_out,
                    convergence_actions,
                    degrade_events,
                ),
            },
            states,
        ))
    }

    /// Computes `Γeff` for one victim transition. With `topo` the factored
    /// transient system is shared across every reduction whose topology
    /// signature matches (see the module docs); the simulated waveforms
    /// are bit-identical either way.
    ///
    /// # Numeric fallback chain
    ///
    /// A solver-level failure (singular/lost pivot, non-finite values) is
    /// retried with dense partial-pivot LU on the same grid, then once
    /// more with the timestep halved; each step appends a [`DegradeEvent`]
    /// to `degrades` (marked recovered if any step succeeds), and a
    /// topo-cache entry implicated in the failure is quarantined. The
    /// chain only runs on the error path, so healthy reductions are
    /// bit-identical to builds without it.
    #[allow(clippy::too_many_arguments)]
    fn victim_gamma(
        &self,
        bc: &BoundaryConditions,
        spec: &CouplingSpec,
        victim_pol: Polarity,
        victim_arrival: f64,
        victim_slew: f64,
        base: &[crate::engine::NetState],
        method: MethodKind,
        backend: SolverBackend,
        topo: Option<&TopoCache>,
        degrades: &mut Vec<DegradeEvent>,
    ) -> Result<(SaturatedRamp, f64), StaError> {
        if let Some(reason) = &spec.defect {
            return Err(StaError::DegenerateMesh {
                net: self.design().net_name(spec.victim).to_string(),
                reason: reason.clone(),
            });
        }
        let th = Thresholds::cmos(self.library().voltage);

        // Simulation window: start at zero, end comfortably after the
        // latest participant settles.
        let mut latest = victim_arrival + victim_slew;
        let agg_pol = if spec.aggressors_oppose {
            victim_pol.inverted()
        } else {
            victim_pol
        };
        let mut agg_ramps = Vec::new();
        for &agg in &spec.aggressors {
            let p = base
                .get(agg.0)
                .map(|s| *s.get(agg_pol))
                .filter(|p| p.valid)
                .ok_or_else(|| {
                    StaError::Unresolved(format!(
                        "aggressor net #{} has no computed arrival",
                        agg.0
                    ))
                })?;
            let arr = p.arrival + spec.aggressor_skew;
            latest = latest.max(arr + p.slew);
            agg_ramps.push(SaturatedRamp::with_slew(
                arr,
                p.slew.max(1e-12),
                th,
                agg_pol.is_rise(),
            )?);
        }
        // Quantized grid (see the module docs): the timestep heuristic is
        // rounded up into a fixed bucket set and the stop time to a fixed
        // quantum, so structurally identical victim stages land on a
        // shared — and therefore cacheable — grid. The quantization is
        // unconditional: cached and uncached analyses integrate the exact
        // same system on the exact same grid.
        let t_stop = quantize_t_stop(latest);
        let dt = quantize_dt(victim_slew);

        // The victim stage is a Thevenin driver into star-coupled RC lines
        // — each aggressor couples to the victim individually with its own
        // wire model and coupling total, the structure extracted
        // parasitics describe. Quiet (window-pruned) aggressors still
        // ground their coupling caps onto the victim: fold their total
        // into the line's ground capacitance.
        let victim_line = if spec.quiet_cm > 0.0 {
            RcLineSpec::new(
                spec.line.r_total,
                spec.line.c_total + spec.quiet_cm,
                spec.line.segments,
            )?
        } else {
            spec.line
        };
        // Receiver loading at the victim far end.
        let load = spec
            .receiver_load
            .unwrap_or_else(|| self.graph().load(spec.victim))
            .max(1e-16);

        let victim_ramp = SaturatedRamp::with_slew(
            victim_arrival,
            victim_slew.max(1e-12),
            th,
            victim_pol.is_rise(),
        )?;

        let attempt = |dt: f64, backend: SolverBackend, topo: Option<&TopoCache>| {
            self.victim_attempt(
                bc,
                spec,
                victim_pol,
                &victim_ramp,
                &agg_ramps,
                victim_line,
                load,
                t_stop,
                dt,
                method,
                backend,
                topo,
            )
        };
        let event = |action: DegradeAction, cause: &StaError| DegradeEvent {
            net: Some(spec.victim),
            polarity: Some(victim_pol),
            action,
            cause: cause.to_string(),
            recovered: false,
        };
        let chain_start = degrades.len();
        let result = match attempt(dt, backend, topo) {
            Ok(ok) => Ok(ok),
            Err(e) if is_numeric_failure(&e) => {
                // Fallback 1: dense partial-pivot LU on the same grid —
                // immune to the no-pivot elimination's pivot loss, and run
                // outside the topo cache so a suspect entry is never
                // consulted.
                degrades.push(event(DegradeAction::DenseRetry, &e));
                match attempt(dt, SolverBackend::Dense, None) {
                    Ok(ok) => Ok(ok),
                    Err(e2) if is_numeric_failure(&e2) => {
                        // Fallback 2: halve the timestep — a stiff or
                        // marginally conditioned system integrates with a
                        // better-conditioned trapezoidal matrix.
                        degrades.push(event(DegradeAction::HalvedTimestep, &e2));
                        attempt(dt * 0.5, SolverBackend::Dense, None)
                    }
                    Err(e2) => Err(e2),
                }
            }
            Err(e) => Err(e),
        };
        if result.is_ok() {
            for ev in &mut degrades[chain_start..] {
                ev.recovered = true;
            }
        }
        result
    }

    /// One victim reduction on one `(dt, backend)` grid — the unit the
    /// fallback chain in [`victim_gamma`](Self::victim_gamma) retries. A
    /// failure after a topo-cache key was built quarantines the
    /// `(key, polarity)` pair, so an implicated factorization is never
    /// reused on the reduction path that failed — while the other
    /// polarity keeps cache service.
    #[allow(clippy::too_many_arguments)]
    fn victim_attempt(
        &self,
        bc: &BoundaryConditions,
        spec: &CouplingSpec,
        victim_pol: Polarity,
        victim_ramp: &SaturatedRamp,
        agg_ramps: &[SaturatedRamp],
        victim_line: RcLineSpec,
        load: f64,
        t_stop: f64,
        dt: f64,
        method: MethodKind,
        backend: SolverBackend,
        topo: Option<&TopoCache>,
    ) -> Result<(SaturatedRamp, f64), StaError> {
        let agg_pol = if spec.aggressors_oppose {
            victim_pol.inverted()
        } else {
            victim_pol
        };
        let steps = (t_stop / dt).round() as u64;

        // Voltage source 0 is the victim driver; sources 1..=N follow
        // aggressor order — the factored system relies on this layout.
        let victim_wave = victim_ramp.to_waveform(0.0, t_stop, dt)?;
        let agg_waves: Vec<Waveform> = agg_ramps
            .iter()
            .map(|ramp| ramp.to_waveform(0.0, t_stop, dt))
            .collect::<Result<_, _>>()?;

        // One factorization serves the noisy/noiseless pair — and, via the
        // topology cache, every other reduction with the same signature:
        // assemble and LU-factor only on a miss.
        let key = topo
            .filter(|t| t.enabled)
            .map(|_| TopoKey::new(dt, steps, spec, &victim_line, load));
        let entry = match key
            .as_ref()
            .and_then(|k| topo.and_then(|t| t.lookup(k, victim_pol)))
        {
            Some(entry) => entry,
            None => {
                let mut ckt = Circuit::new();
                let v_in = ckt.node("victim_in");
                // Sources are registered with a cheap 2-point placeholder:
                // the factored system is driven by explicit source vectors
                // at run time, and keeping victim-specific dense grids out
                // of the cached value stops the first victim's waveforms
                // from being pinned for the whole analysis.
                let placeholder = Waveform::constant(0.0, 0.0, t_stop)?;
                ckt.thevenin_driver(v_in, placeholder.clone(), spec.driver_resistance)?;
                let mut agg_ins = Vec::with_capacity(agg_waves.len());
                for _ in &agg_waves {
                    let a_in = ckt.anon_node();
                    ckt.thevenin_driver(a_in, placeholder.clone(), spec.driver_resistance)?;
                    agg_ins.push(a_in);
                }
                let victim_far = if agg_ins.is_empty() {
                    // All aggressors pruned: the victim still sees its wire.
                    victim_line.build(&mut ckt, v_in, "w")?
                } else {
                    let bundle = StarCoupledLines::new(
                        victim_line,
                        (0..agg_ins.len())
                            .map(|i| (spec.line_of(i), spec.cm_of(i)))
                            .collect(),
                    )?;
                    let (far, _) = bundle.build(&mut ckt, v_in, &agg_ins, "w")?;
                    far
                };
                ckt.capacitor(victim_far, Circuit::GROUND, load)?;
                let system = ckt.factor_transient(
                    TransientOptions::new(0.0, t_stop, dt)?.with_backend(backend),
                )?;
                if let Some(t) = topo {
                    t.note_nnz(system.nnz());
                }
                let entry = CachedSystem {
                    system: Arc::new(system),
                    victim_far,
                };
                if let (Some(t), Some(k)) = (topo, key.clone()) {
                    t.insert(k, entry.clone(), victim_pol, spec.victim);
                }
                entry
            }
        };

        // Everything from here on exercises the (possibly cached)
        // factorization: capture failures so the entry can be quarantined
        // instead of being served to the next victim with the same key.
        let outcome = self.victim_reduce(
            bc,
            spec,
            &entry,
            &victim_wave,
            &agg_waves,
            agg_pol,
            t_stop,
            method,
        );
        if outcome.is_err() {
            if let (Some(t), Some(k)) = (topo, key.as_ref()) {
                t.quarantine(k, victim_pol, spec.victim);
            }
        }
        outcome
    }

    /// Runs the noiseless/noisy transient pair on a factored system and
    /// reduces the noisy waveform to `(Γeff, base arrival)`. Non-finite
    /// node voltages — a poisoned solve — surface as a recoverable
    /// numeric error rather than propagating NaN into the report.
    #[allow(clippy::too_many_arguments)]
    fn victim_reduce(
        &self,
        bc: &BoundaryConditions,
        spec: &CouplingSpec,
        entry: &CachedSystem,
        victim_wave: &Waveform,
        agg_waves: &[Waveform],
        agg_pol: Polarity,
        t_stop: f64,
        method: MethodKind,
    ) -> Result<(SaturatedRamp, f64), StaError> {
        let th = Thresholds::cmos(self.library().voltage);
        let vdd = th.vdd();
        let quiet_level = if agg_pol.is_rise() { 0.0 } else { vdd };
        let quiet = Waveform::constant(quiet_level, 0.0, t_stop)?;
        let mut quiet_sources: Vec<&Waveform> = Vec::with_capacity(1 + agg_waves.len());
        quiet_sources.push(victim_wave);
        quiet_sources.extend(agg_waves.iter().map(|_| &quiet));
        let noiseless = entry
            .system
            .run_nodes(&quiet_sources, &[entry.victim_far])?
            .pop()
            .ok_or_else(|| {
                StaError::Structure("transient solver returned no trace for victim node".into())
            })?;
        // With every aggressor pruned the "noisy" circuit is identical to
        // the noiseless one: skip the second transient run.
        let noisy = if agg_waves.is_empty() {
            noiseless.clone()
        } else {
            let mut noisy_sources: Vec<&Waveform> = Vec::with_capacity(1 + agg_waves.len());
            noisy_sources.push(victim_wave);
            noisy_sources.extend(agg_waves.iter());
            entry
                .system
                .run_nodes(&noisy_sources, &[entry.victim_far])?
                .pop()
                .ok_or_else(|| {
                    StaError::Structure("transient solver returned no trace for victim node".into())
                })?
        };
        // A solve that went non-finite (NaN/inf node voltages) must not
        // leak into crossing searches and the report: classify it as a
        // numeric failure so the fallback chain can retry it.
        if noiseless.values().iter().any(|v| !v.is_finite())
            || noisy.values().iter().any(|v| !v.is_finite())
        {
            return Err(StaError::Circuit(nsta_circuit::CircuitError::Numeric(
                nsta_circuit::NumericError::NonFinite("transient node voltages"),
            )));
        }
        let base_arrival = noiseless.last_crossing_or_err(th.mid())?;

        // Noiseless receiver response through the library tables (the
        // characterization level the paper requires — no extra data). The
        // gate's output load honors a per-pin `set_load` override when the
        // receiver drives a constrained output port, falling back to the
        // default output load (the historical uniform behavior) otherwise.
        let receiver = self
            .graph()
            .fanout_edges(spec.victim)
            .first()
            .map(|&k| {
                let edge = &self.graph().edges()[k];
                let inst = &self.design().instances()[edge.instance];
                self.library()
                    .cell(&inst.cell)
                    .map(|cell| (cell, edge.to))
                    .ok_or_else(|| StaError::Unresolved(format!("cell {}", inst.cell)))
            })
            .transpose()?;
        let noiseless_output = match receiver {
            Some((cell, out_net)) => {
                let load = bc.output(out_net).load.max(1e-15);
                let gate = TableGate::new(cell, load, th).map_err(StaError::from)?;
                Some(gate.response(&noiseless).map_err(StaError::from)?)
            }
            None => None,
        };

        let ctx = PropagationContext::new(noiseless, noisy, noiseless_output, th)?;
        let gamma = method.equivalent(&ctx)?;
        Ok((gamma, base_arrival))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verilog::parse_design;
    use crate::{Constraints, Sta};
    use nsta_liberty::characterize::{inverter_family, Options};
    use nsta_liberty::Library;
    use nsta_spice::Process;
    use std::sync::OnceLock;

    fn lib() -> &'static Library {
        static LIB: OnceLock<Library> = OnceLock::new();
        LIB.get_or_init(|| {
            inverter_family(
                &Process::c013(),
                &[("INVX1", 1.0), ("INVX4", 4.0)],
                &Options::fast_test(),
            )
            .unwrap()
        })
    }

    /// Two parallel chains; u1's output net `v` is the victim, `g` the
    /// aggressor.
    fn coupled_design() -> crate::Design {
        parse_design(
            "module m (a, b, y, z); input a, b; output y, z;\
             wire v, g;\
             INVX1 u1 (.A(a), .Y(v)); INVX4 u2 (.A(v), .Y(y));\
             INVX1 u3 (.A(b), .Y(g)); INVX4 u4 (.A(g), .Y(z));\
             endmodule",
        )
        .unwrap()
    }

    fn spec(sta: &Sta) -> CouplingSpec {
        let v = sta.design().find_net("v").unwrap();
        let g = sta.design().find_net("g").unwrap();
        CouplingSpec::new(v, vec![g], 100e-15, RcLineSpec::per_micron(1000.0).unwrap())
    }

    fn win(earliest: f64, latest: f64) -> ArrivalWindow {
        ArrivalWindow { earliest, latest }
    }

    #[test]
    fn window_overlap_boundary_semantics() {
        let victim = win(100e-12, 200e-12);
        // Closed intervals: windows that merely touch DO overlap.
        assert!(victim.overlaps(&win(200e-12, 300e-12), 0.0, 0.0));
        assert!(victim.overlaps(&win(0.0, 100e-12), 0.0, 0.0));
        // Strictly disjoint windows do not.
        assert!(!victim.overlaps(&win(201e-12, 300e-12), 0.0, 0.0));
        // Zero-width windows overlap anything containing their instant...
        assert!(victim.overlaps(&win(150e-12, 150e-12), 0.0, 0.0));
        assert!(win(150e-12, 150e-12).overlaps(&victim, 0.0, 0.0));
        // ...including exactly at a boundary.
        assert!(victim.overlaps(&win(100e-12, 100e-12), 0.0, 0.0));
        // Negative skew slides the aggressor backwards over the victim.
        assert!(victim.overlaps(&win(300e-12, 400e-12), -150e-12, 0.0));
        assert!(!victim.overlaps(&win(300e-12, 400e-12), 150e-12, 0.0));
        // Guard banding re-admits a near miss symmetrically.
        assert!(victim.overlaps(&win(201e-12, 300e-12), 0.0, 2e-12));
        assert!(victim.overlaps(&win(0.0, 99e-12), 0.0, 2e-12));
    }

    #[test]
    fn inverted_windows_never_overlap() {
        let victim = win(100e-12, 200e-12);
        // A constant net whose ±inf sentinels never tightened produces an
        // inverted (empty) window; it must not read as "covers everything".
        let sentinel = win(f64::INFINITY, f64::NEG_INFINITY);
        assert!(sentinel.is_inverted());
        assert!(!victim.overlaps(&sentinel, 0.0, 0.0));
        assert!(!sentinel.overlaps(&victim, 0.0, 0.0));
        assert!(!sentinel.overlaps(&sentinel, 0.0, 0.0));
        // Plain inverted windows (min sweep above max sweep) too.
        let inverted = win(300e-12, 250e-12);
        assert!(inverted.is_inverted());
        assert!(!victim.overlaps(&inverted, 0.0, 0.0));
        assert!(!inverted.overlaps(&victim, 0.0, 0.0));
        // Even a huge guard band cannot resurrect an empty window.
        assert!(!victim.overlaps(&inverted, 0.0, 1.0));
        // NaN edges are treated as empty, not as overlapping.
        let nan = win(f64::NAN, 200e-12);
        assert!(nan.is_inverted());
        assert!(!victim.overlaps(&nan, 0.0, 0.0));
        // Zero-width windows are NOT inverted.
        assert!(!win(1e-12, 1e-12).is_inverted());
    }

    #[test]
    fn crosstalk_pushes_victim_arrival_out() {
        let sta = Sta::new(coupled_design(), lib().clone()).unwrap();
        let c = Constraints::default();
        let nominal = sta.analyze(c).unwrap();
        let (noisy, adj) = sta
            .analyze_with_crosstalk(c, &[spec(&sta)], MethodKind::Sgdp)
            .unwrap();
        assert_eq!(adj.len(), 2, "rise and fall adjustments recorded");
        // The coupled line adds wire delay plus noise: the victim's fanout
        // (net y) must arrive later than in the nominal ideal-wire run.
        let y = sta.design().find_net("y").unwrap();
        let nom = nominal.net(y).unwrap().rise.as_ref().unwrap().arrival;
        let si = noisy.net(y).unwrap().rise.as_ref().unwrap().arrival;
        assert!(si > nom, "si {si:e} vs nominal {nom:e}");
        // Adjustments carry the push-out relative to the noiseless line.
        for a in &adj {
            assert!(a.noisy_slew > 0.0);
            assert!(a.noisy_arrival + 1e-12 >= a.base_arrival - 100e-12);
        }
    }

    #[test]
    fn aligned_aggressor_hurts_more_than_far_one() {
        let sta = Sta::new(coupled_design(), lib().clone()).unwrap();
        let c = Constraints::default();
        let mut near = spec(&sta);
        near.aggressor_skew = 0.0;
        let mut far = spec(&sta);
        far.aggressor_skew = -1.0e-9;
        let arr = |s: &CouplingSpec| {
            let (report, _) = sta
                .analyze_with_crosstalk(c, std::slice::from_ref(s), MethodKind::P2)
                .unwrap();
            let y = sta.design().find_net("y").unwrap();
            report.net(y).unwrap().rise.as_ref().unwrap().arrival
        };
        assert!(arr(&near) > arr(&far), "aligned aggressor must delay more");
    }

    #[test]
    fn methods_disagree_on_noisy_nets() {
        let sta = Sta::new(coupled_design(), lib().clone()).unwrap();
        let c = Constraints::default();
        let mut results = Vec::new();
        for method in MethodKind::all() {
            match sta.analyze_with_crosstalk(c, &[spec(&sta)], method) {
                Ok((report, _)) => results.push((method, report.worst_arrival())),
                Err(StaError::Sgdp(_)) => {} // WLS5 may legitimately refuse
                Err(other) => panic!("unexpected failure for {method}: {other}"),
            }
        }
        assert!(results.len() >= 5);
        let min = results
            .iter()
            .map(|&(_, a)| a)
            .fold(f64::INFINITY, f64::min);
        let max = results.iter().map(|&(_, a)| a).fold(0.0f64, f64::max);
        assert!(max > min, "techniques must produce distinct timing");
    }

    /// Victim `v` (one stage from `a`), near aggressor `gn` (one stage
    /// from `b`), far aggressor `gf` at the end of a 12-stage chain whose
    /// switching window lands long after `v` has settled — far enough that
    /// even crosstalk push-out cannot stretch the victim's window onto it
    /// (shorter chains get re-admitted by the fixed-point iteration).
    fn windowed_design() -> crate::Design {
        let stages = 12;
        let mut src = String::from(
            "module m (a, b, c, y, z, w); input a, b, c; output y, z, w;\n\
             wire v, gn, gf;\n\
             INVX1 u1 (.A(a), .Y(v)); INVX4 u2 (.A(v), .Y(y));\n\
             INVX1 u3 (.A(b), .Y(gn)); INVX4 u4 (.A(gn), .Y(z));\n",
        );
        for i in 1..stages {
            src.push_str(&format!("wire f{i};\n"));
        }
        src.push_str("INVX1 c1 (.A(c), .Y(f1));\n");
        for i in 1..stages - 1 {
            src.push_str(&format!("INVX1 c{} (.A(f{}), .Y(f{}));\n", i + 1, i, i + 1));
        }
        src.push_str(&format!(
            "INVX1 c{} (.A(f{}), .Y(gf));\nINVX4 u5 (.A(gf), .Y(w));\nendmodule",
            stages,
            stages - 1
        ));
        parse_design(&src).unwrap()
    }

    fn two_aggressor_spec(sta: &Sta) -> CouplingSpec {
        let v = sta.design().find_net("v").unwrap();
        let gn = sta.design().find_net("gn").unwrap();
        let gf = sta.design().find_net("gf").unwrap();
        CouplingSpec::new(
            v,
            vec![gn, gf],
            50e-15,
            RcLineSpec::per_micron(1000.0).unwrap(),
        )
    }

    #[test]
    fn window_filter_prunes_far_aggressor_and_keeps_pushout() {
        let sta = Sta::new(windowed_design(), lib().clone()).unwrap();
        let c = Constraints::default();
        let nominal = sta.analyze(c).unwrap();
        let analysis = sta
            .analyze_with_crosstalk_windows(c, &[two_aggressor_spec(&sta)], &SiOptions::default())
            .unwrap();
        let gf = sta.design().find_net("gf").unwrap();
        assert!(
            analysis.pruned.iter().any(|p| p.aggressor == gf),
            "the late-switching aggressor must be window-pruned: {:?}",
            analysis.pruned
        );
        let gn = sta.design().find_net("gn").unwrap();
        assert!(
            !analysis.pruned.iter().any(|p| p.aggressor == gn),
            "the aligned aggressor must survive"
        );
        // The surviving aggressor still pushes the victim's fanout out.
        let y = sta.design().find_net("y").unwrap();
        let nom = nominal.net(y).unwrap().rise.as_ref().unwrap().arrival;
        let si = analysis
            .report
            .net(y)
            .unwrap()
            .rise
            .as_ref()
            .unwrap()
            .arrival;
        assert!(si > nom, "si {si:e} vs nominal {nom:e}");
        assert!(!analysis.adjustments.is_empty());
        assert!(analysis.iterations() >= 1);
        assert!(analysis.converged(), "small designs reach the fixed point");
    }

    #[test]
    fn dense_backend_matches_sparse_within_solver_roundoff() {
        // Both backends integrate the identical trapezoidal system; only
        // storage and elimination order differ, so every victim arrival
        // must agree to solver round-off — the contract the spefbus
        // `--dense-solver` parity gate enforces at scale (1e-6 ps).
        let sta = Sta::new(windowed_design(), lib().clone()).unwrap();
        let c = Constraints::default();
        let spec = two_aggressor_spec(&sta);
        let sparse = sta
            .analyze_with_crosstalk_windows(c, std::slice::from_ref(&spec), &SiOptions::default())
            .unwrap();
        let dense = sta
            .analyze_with_crosstalk_windows(
                c,
                &[spec],
                &SiOptions {
                    backend: SolverBackend::Dense,
                    ..SiOptions::default()
                },
            )
            .unwrap();
        assert_eq!(sparse.solver_backend(), SolverBackend::Sparse);
        assert_eq!(dense.solver_backend(), SolverBackend::Dense);
        // The sparse run factored real victim stages: nnz is populated and
        // far below the dense n² of the same mesh.
        assert!(sparse.solver_nnz() > 0);
        assert!(dense.solver_nnz() > sparse.solver_nnz());
        for (a, b) in sparse.report.nets().iter().zip(dense.report.nets()) {
            for (pa, pb) in [(&a.rise, &b.rise), (&a.fall, &b.fall)] {
                if let (Some(pa), Some(pb)) = (pa.as_ref(), pb.as_ref()) {
                    assert!(
                        (pa.arrival - pb.arrival).abs() < 1e-18,
                        "net {:?}: sparse {:e} vs dense {:e}",
                        a.net,
                        pa.arrival,
                        pb.arrival
                    );
                }
            }
        }
    }

    #[test]
    fn window_filtered_delay_not_below_unfiltered() {
        // Pruning only removes aggressors that cannot align, so the
        // filtered analysis must agree with the unfiltered one on this
        // design (where the far aggressor genuinely cannot overlap).
        let sta = Sta::new(windowed_design(), lib().clone()).unwrap();
        let c = Constraints::default();
        let spec = two_aggressor_spec(&sta);
        let filtered = sta
            .analyze_with_crosstalk_windows(c, std::slice::from_ref(&spec), &SiOptions::default())
            .unwrap();
        let unfiltered = sta
            .analyze_with_crosstalk_windows(
                c,
                &[spec],
                &SiOptions {
                    use_windows: false,
                    ..SiOptions::default()
                },
            )
            .unwrap();
        assert!(unfiltered.pruned.is_empty());
        let y = sta.design().find_net("y").unwrap();
        let f = filtered
            .report
            .net(y)
            .unwrap()
            .rise
            .as_ref()
            .unwrap()
            .arrival;
        let u = unfiltered
            .report
            .net(y)
            .unwrap()
            .rise
            .as_ref()
            .unwrap()
            .arrival;
        // The far aggressor cannot overlap, so dropping it must not change
        // the victim's timing by more than the solver's tolerance.
        assert!((f - u).abs() < 5e-12, "filtered {f:e} vs unfiltered {u:e}");
    }

    #[test]
    fn skew_rescues_a_pruned_aggressor() {
        let sta = Sta::new(windowed_design(), lib().clone()).unwrap();
        let c = Constraints::default();
        let clean = sta.analyze(c).unwrap();
        let v = sta.design().find_net("v").unwrap();
        let gf = sta.design().find_net("gf").unwrap();
        let v_arr = clean.net(v).unwrap().rise.as_ref().unwrap().arrival;
        let g_arr = clean.net(gf).unwrap().rise.as_ref().unwrap().arrival;
        let mut spec = two_aggressor_spec(&sta);
        // Shift every aggressor back so the far chain lands on the victim.
        spec.aggressor_skew = v_arr - g_arr;
        let analysis = sta
            .analyze_with_crosstalk_windows(c, &[spec], &SiOptions::default())
            .unwrap();
        assert!(
            !analysis.pruned.iter().any(|p| p.aggressor == gf),
            "skew moves the far window onto the victim: {:?}",
            analysis.pruned
        );
    }

    #[test]
    fn windows_from_min_and_max_sweeps_are_ordered() {
        let sta = Sta::new(windowed_design(), lib().clone()).unwrap();
        let c = Constraints::default();
        let min_states = sta
            .forward_sweep_partitioned(&BoundaryConditions::from(&c), true, 1)
            .unwrap();
        let report = sta.analyze(c).unwrap();
        let windows = sta.windows_from(&min_states, &report);
        let mut seen = 0;
        for w in windows.into_iter().flatten() {
            assert!(w.earliest <= w.latest);
            seen += 1;
        }
        assert!(seen > 0);
    }

    /// Three victim/aggressor groups in the spefbus pattern: group `g`'s
    /// far aggressor sits behind a chain of `2g + 3` inverters, so some
    /// groups keep both aggressors while later ones get window-pruned —
    /// both cache paths of the incremental fixed point get exercised.
    fn multi_group_design(groups: usize) -> crate::Design {
        let mut src = String::from("module m (");
        let ports: Vec<String> = (0..groups)
            .flat_map(|g| vec![format!("a{g}"), format!("b{g}"), format!("c{g}")])
            .chain(
                (0..groups).flat_map(|g| vec![format!("y{g}"), format!("z{g}"), format!("w{g}")]),
            )
            .collect();
        src.push_str(&ports.join(", "));
        src.push_str(");\n");
        for g in 0..groups {
            src.push_str(&format!(
                "input a{g}, b{g}, c{g}; output y{g}, z{g}, w{g};\n"
            ));
        }
        for g in 0..groups {
            let stages = 2 * g + 3;
            src.push_str(&format!(
                "wire v{g}, gn{g}, gf{g};\n\
                 INVX1 u{g}_1 (.A(a{g}), .Y(v{g})); INVX4 u{g}_2 (.A(v{g}), .Y(y{g}));\n\
                 INVX1 u{g}_3 (.A(b{g}), .Y(gn{g})); INVX4 u{g}_4 (.A(gn{g}), .Y(z{g}));\n"
            ));
            let mut prev = format!("c{g}");
            for s in 1..stages {
                src.push_str(&format!(
                    "wire f{g}_{s};\nINVX1 c{g}_{s} (.A({prev}), .Y(f{g}_{s}));\n"
                ));
                prev = format!("f{g}_{s}");
            }
            src.push_str(&format!(
                "INVX1 c{g}_{stages} (.A({prev}), .Y(gf{g}));\nINVX4 u{g}_5 (.A(gf{g}), .Y(w{g}));\n"
            ));
        }
        src.push_str("endmodule");
        parse_design(&src).unwrap()
    }

    fn multi_group_specs(sta: &Sta, groups: usize) -> Vec<CouplingSpec> {
        (0..groups)
            .map(|g| {
                let v = sta.design().find_net(&format!("v{g}")).unwrap();
                let gn = sta.design().find_net(&format!("gn{g}")).unwrap();
                let gf = sta.design().find_net(&format!("gf{g}")).unwrap();
                CouplingSpec::new(
                    v,
                    vec![gn, gf],
                    50e-15,
                    RcLineSpec::per_micron(1000.0).unwrap(),
                )
            })
            .collect()
    }

    fn assert_analyses_identical(a: &SiAnalysis, b: &SiAnalysis) {
        assert_eq!(a.report, b.report);
        assert_eq!(a.adjustments, b.adjustments);
        assert_eq!(a.pruned, b.pruned);
        assert_eq!(a.iterations(), b.iterations());
        assert_eq!(a.converged(), b.converged());
        // The convergence trace must agree pass for pass wherever it
        // reflects the *solution* (pruning decisions, window movement).
        // Cost fields (victims recomputed vs cached) legitimately differ
        // between incremental and full-recompute variants.
        for (ia, ib) in a
            .diagnostics
            .iterations
            .iter()
            .zip(&b.diagnostics.iterations)
        {
            assert_eq!(ia.aggressors_pruned, ib.aggressors_pruned);
            assert_eq!(ia.max_window_delta.to_bits(), ib.max_window_delta.to_bits());
        }
    }

    #[test]
    fn threaded_analysis_is_bit_identical_to_sequential() {
        let groups = 3;
        let sta = Sta::new(multi_group_design(groups), lib().clone()).unwrap();
        let c = Constraints::default();
        let specs = multi_group_specs(&sta, groups);
        let sequential = sta
            .analyze_with_crosstalk_windows(c, &specs, &SiOptions::default())
            .unwrap();
        let threaded = sta
            .analyze_with_crosstalk_windows(
                c,
                &specs,
                &SiOptions {
                    threads: 4,
                    ..SiOptions::default()
                },
            )
            .unwrap();
        // Bit-identical, not approximately equal: the worker pool must not
        // change a single ulp anywhere in the report.
        assert_analyses_identical(&sequential, &threaded);
        assert!(!sequential.adjustments.is_empty());
    }

    #[test]
    fn topo_cache_is_bit_identical_to_uncached_across_threads() {
        // The topology-keyed factorization cache shares LU factors across
        // victims, polarities and iterations; it must not change a single
        // bit of any result — at 1 thread and on the worker pool.
        let groups = 3;
        let sta = Sta::new(multi_group_design(groups), lib().clone()).unwrap();
        let c = Constraints::default();
        let specs = multi_group_specs(&sta, groups);
        let uncached = sta
            .analyze_with_crosstalk_windows(
                c,
                &specs,
                &SiOptions {
                    topo_cache: false,
                    ..SiOptions::default()
                },
            )
            .unwrap();
        assert_eq!(uncached.cache_hits(), 0);
        assert_eq!(uncached.cache_misses(), 0);
        for threads in [1, 4] {
            let cached = sta
                .analyze_with_crosstalk_windows(
                    c,
                    &specs,
                    &SiOptions {
                        threads,
                        ..SiOptions::default()
                    },
                )
                .unwrap();
            assert_analyses_identical(&uncached, &cached);
            // The fixture's identical groups must actually share systems.
            assert!(
                cached.cache_hits() > 0,
                "expected topology-cache hits at {threads} thread(s), got {}",
                cached.cache_hits()
            );
            assert!(cached.cache_misses() > 0);
            // Every simulated reduction consults the cache exactly once,
            // and the final iteration's reductions are all present in the
            // adjustment list, so the totals at least cover them.
            assert!(cached.cache_hits() + cached.cache_misses() >= cached.adjustments.len());
        }
        // Cones cover the whole design: every group contributes its three
        // independent chains.
        assert_eq!(uncached.cones(), sta.graph().components().len());
        assert!(uncached.cones() >= 3 * groups);
    }

    /// One fully connected cone: input `a` fans out to both the victim
    /// chain and the aggressor chain, so the whole design is a single
    /// weakly-connected component.
    fn single_cone_design() -> crate::Design {
        parse_design(
            "module m (a, y, z); input a; output y, z;\
             wire v, g;\
             INVX1 u1 (.A(a), .Y(v)); INVX4 u2 (.A(v), .Y(y));\
             INVX1 u3 (.A(a), .Y(g)); INVX4 u4 (.A(g), .Y(z));\
             endmodule",
        )
        .unwrap()
    }

    #[test]
    fn single_cone_design_falls_back_to_level_scheduling_bit_identically() {
        // With one cone and threads > 1 the pass must fall back to
        // level-synchronous scheduling (cone tasks would serialize) and
        // still reproduce the 1-thread (cone-scheduled) result bit for
        // bit — including the canonical adjustment order.
        let sta = Sta::new(single_cone_design(), lib().clone()).unwrap();
        assert_eq!(sta.graph().components().len(), 1);
        let c = Constraints::default();
        let v = sta.design().find_net("v").unwrap();
        let g = sta.design().find_net("g").unwrap();
        let spec = CouplingSpec::new(v, vec![g], 100e-15, RcLineSpec::per_micron(1000.0).unwrap());
        let sequential = sta
            .analyze_with_crosstalk_windows(c, std::slice::from_ref(&spec), &SiOptions::default())
            .unwrap();
        let threaded = sta
            .analyze_with_crosstalk_windows(
                c,
                &[spec],
                &SiOptions {
                    threads: 4,
                    ..SiOptions::default()
                },
            )
            .unwrap();
        assert_analyses_identical(&sequential, &threaded);
        assert!(!sequential.adjustments.is_empty());
        assert_eq!(sequential.cones(), 1);
    }

    #[test]
    fn instrumented_analysis_is_bit_identical_to_uninstrumented() {
        // Recording must never feed back into the computation: running the
        // exact same analysis with the global recorder enabled has to
        // reproduce every report bit, adjustment and diagnostic record —
        // the contract spefbus's in-binary overhead gate also enforces.
        let _guard = crate::obs_test_guard();
        let groups = 3;
        let sta = Sta::new(multi_group_design(groups), lib().clone()).unwrap();
        let c = Constraints::default();
        let specs = multi_group_specs(&sta, groups);
        let opts = SiOptions {
            threads: 2,
            ..SiOptions::default()
        };
        let baseline = sta
            .analyze_with_crosstalk_windows(c, &specs, &opts)
            .unwrap();
        let rec = nsta_obs::recorder();
        rec.reset();
        rec.enable();
        let instrumented = sta
            .analyze_with_crosstalk_windows(c, &specs, &opts)
            .unwrap();
        rec.disable();
        let events = rec.event_count();
        let metrics = rec.metrics();
        rec.reset();
        assert_analyses_identical(&baseline, &instrumented);
        // Same options, so even the cost fields must agree exactly.
        assert_eq!(
            baseline.diagnostics.iterations,
            instrumented.diagnostics.iterations
        );
        // The hit/miss *split* can race under a worker pool (two cones
        // sharing a key may both miss concurrently), but the number of
        // lookups is a pure function of the victims recomputed.
        assert_eq!(
            baseline.cache_hits() + baseline.cache_misses(),
            instrumented.cache_hits() + instrumented.cache_misses()
        );
        // The instrumented run actually recorded: phase + iteration +
        // per-cone spans, and the topology-cache counters.
        assert!(events > 0, "enabled run must record spans");
        assert!(metrics.get("sta.topo_cache.misses").unwrap_or(0.0) > 0.0);
    }

    #[test]
    fn incremental_fixed_point_matches_full_recompute() {
        let groups = 3;
        let sta = Sta::new(multi_group_design(groups), lib().clone()).unwrap();
        let c = Constraints::default();
        let specs = multi_group_specs(&sta, groups);
        let incremental = sta
            .analyze_with_crosstalk_windows(c, &specs, &SiOptions::default())
            .unwrap();
        let full = sta
            .analyze_with_crosstalk_windows(
                c,
                &specs,
                &SiOptions {
                    incremental: false,
                    ..SiOptions::default()
                },
            )
            .unwrap();
        assert!(
            incremental.iterations() >= 2,
            "fixture must exercise the fixed point, got {} iteration(s)",
            incremental.iterations()
        );
        assert_analyses_identical(&incremental, &full);
    }

    #[test]
    fn per_pin_output_load_reaches_the_receiver_reduction() {
        // The SGDP reduction models the victim's receiver through the
        // library tables; its output load must honor a per-pin override
        // on the net that receiver drives (regression: it used to read
        // the uniform default only).
        let sta = Sta::new(coupled_design(), lib().clone()).unwrap();
        let c = Constraints::default();
        let mut heavy = BoundaryConditions::from(&c);
        let y = sta.design().find_net("y").unwrap();
        let mut ob = heavy.output(y);
        ob.load *= 20.0;
        heavy.set_output(y, ob);
        let (_, base) = sta
            .analyze_with_crosstalk(c, &[spec(&sta)], MethodKind::Sgdp)
            .unwrap();
        let (_, loaded) = sta
            .analyze_with_crosstalk(heavy, &[spec(&sta)], MethodKind::Sgdp)
            .unwrap();
        assert_eq!(base.len(), loaded.len());
        assert!(
            base.iter()
                .zip(&loaded)
                .any(|(a, b)| a.noisy_arrival != b.noisy_arrival || a.noisy_slew != b.noisy_slew),
            "a 20x receiver output load must change the reduction"
        );
    }

    #[test]
    fn dt_quantization_rounds_up_and_tolerates_nan() {
        // Buckets round the raw slew/50 heuristic up, clamped to the
        // documented [0.5, 5] ps range.
        assert_eq!(quantize_dt(10e-12), 0.5e-12); // raw clamps up to 0.5 ps
        assert_eq!(quantize_dt(30e-12), 1e-12); // raw 0.6 ps -> 1 ps
        assert_eq!(quantize_dt(75e-12), 2e-12); // raw 1.5 ps -> 2 ps
        assert_eq!(quantize_dt(150e-12), 4e-12); // raw 3 ps -> 4 ps
        assert_eq!(quantize_dt(1e-9), 5e-12); // raw clamps down to 5 ps
                                              // A NaN slew must pass through as NaN — TransientOptions::new then
                                              // rejects it as a recoverable error — never panic in the bucket
                                              // lookup.
        assert!(quantize_dt(f64::NAN).is_nan());
    }

    #[test]
    fn unknown_aggressor_is_reported() {
        let sta = Sta::new(coupled_design(), lib().clone()).unwrap();
        let c = Constraints::default();
        let mut s = spec(&sta);
        s.aggressors = vec![NetId(usize::MAX - 1)];
        assert!(sta.analyze_with_crosstalk(c, &[s], MethodKind::P1).is_err());
    }

    #[test]
    fn duplicate_victim_specs_rejected() {
        // Only one spec per victim can apply; a silent first-wins pick
        // would drop the second spec's aggressors.
        let sta = Sta::new(coupled_design(), lib().clone()).unwrap();
        let c = Constraints::default();
        let s = spec(&sta);
        assert!(matches!(
            sta.analyze_with_crosstalk(c, &[s.clone(), s], MethodKind::P1),
            Err(StaError::Structure(_))
        ));
    }

    /// A minimal factored system for cache bookkeeping tests: one driven
    /// node with a grounded cap. Every call builds the same topology, so
    /// entries differ only by key.
    fn cached_system() -> CachedSystem {
        let mut ckt = Circuit::new();
        let n = ckt.node("n");
        ckt.thevenin_driver(n, Waveform::constant(0.0, 0.0, 1e-9).unwrap(), 100.0)
            .unwrap();
        ckt.capacitor(n, Circuit::GROUND, 1e-15).unwrap();
        let opts = TransientOptions::new(0.0, 1e-9, 1e-12).unwrap();
        CachedSystem {
            system: Arc::new(ckt.factor_transient(opts).unwrap()),
            victim_far: n,
        }
    }

    #[test]
    fn topo_cache_lru_evicts_least_recently_used_first() {
        let entry = cached_system();
        let key = |tag: u64| TopoKey(vec![tag]);
        let per_entry = TopoCache::entry_bytes(&key(0), &entry);
        // Room for exactly two entries; the third insert must evict.
        let cache = TopoCache::new(true, 2 * per_entry);
        cache.insert(key(1), entry.clone(), Polarity::Rise, NetId(1));
        cache.insert(key(2), entry.clone(), Polarity::Rise, NetId(2));
        // Touch key 1 so key 2 becomes the least recently used.
        assert!(cache.lookup(&key(1), Polarity::Rise).is_some());
        cache.insert(key(3), entry.clone(), Polarity::Rise, NetId(3));
        assert_eq!(cache.evictions(), 1);
        assert!(cache.lookup(&key(1), Polarity::Rise).is_some());
        assert!(cache.lookup(&key(2), Polarity::Rise).is_none());
        assert!(cache.lookup(&key(3), Polarity::Rise).is_some());
        // Peak tracks the high-water mark, and the resident total never
        // exceeded the budget.
        assert_eq!(cache.bytes_peak(), 2 * per_entry);
    }

    #[test]
    fn topo_cache_refuses_single_entry_over_budget() {
        // An entry larger than the whole budget is refused outright (and
        // counted as an eviction, so budget pressure stays visible in the
        // stats) rather than stored and immediately evicted.
        let cache = TopoCache::new(true, 1);
        let key = TopoKey(vec![7]);
        cache.insert(key.clone(), cached_system(), Polarity::Rise, NetId(7));
        assert_eq!(cache.evictions(), 1);
        assert!(cache.lookup(&key, Polarity::Rise).is_none());
        assert_eq!(cache.bytes_peak(), 0);
    }

    #[test]
    fn topo_cache_unbounded_budget_never_evicts() {
        let cache = TopoCache::new(true, usize::MAX);
        for tag in 0..16 {
            cache.insert(
                TopoKey(vec![tag]),
                cached_system(),
                Polarity::Rise,
                NetId(tag as usize),
            );
        }
        assert_eq!(cache.evictions(), 0);
        for tag in 0..16 {
            assert!(cache.lookup(&TopoKey(vec![tag]), Polarity::Rise).is_some());
        }
    }

    #[test]
    fn topo_cache_quarantine_is_polarity_scoped() {
        // PR 7 regression: a numeric failure on one polarity's reduction
        // must ban exactly the (key, polarity) pair — not the key for
        // both polarities, and not forever for the healthy polarity.
        let cache = TopoCache::new(true, usize::MAX);
        let key = TopoKey(vec![42]);
        cache.insert(key.clone(), cached_system(), Polarity::Rise, NetId(0));
        cache.quarantine(&key, Polarity::Rise, NetId(0));
        // The implicated pair is refused...
        assert!(cache.lookup(&key, Polarity::Rise).is_none());
        // ...but the other polarity keeps full cache service: it may
        // re-insert the key and be served from it.
        cache.insert(key.clone(), cached_system(), Polarity::Fall, NetId(0));
        assert!(cache.lookup(&key, Polarity::Fall).is_some());
        // The Fall re-insert must NOT resurrect service for the
        // quarantined Rise pair (the PR 7 bug quarantined whole keys, so
        // a re-insert under any polarity reopened the banned one).
        assert!(cache.lookup(&key, Polarity::Rise).is_none());
        // And a direct Rise re-insert is refused while Fall still serves.
        cache.insert(key.clone(), cached_system(), Polarity::Rise, NetId(0));
        assert!(cache.lookup(&key, Polarity::Rise).is_none());
        assert!(cache.lookup(&key, Polarity::Fall).is_some());
    }

    #[test]
    fn governed_update_tames_a_two_victim_oscillation() {
        // Hand-built period-2 oscillation: two coupled victims whose
        // windows flip-flop between iterates A and B (net 0 later/earlier,
        // net 1 the mirror image) — the shape the real loop cannot settle.
        // Net 2 is a bystander (not a participant), net 3 loses its
        // window entirely in phase B.
        let w = |e: f64, l: f64| {
            Some(ArrivalWindow {
                earliest: e,
                latest: l,
            })
        };
        let a = vec![
            w(10e-12, 20e-12),
            w(5e-12, 15e-12),
            w(1e-12, 2e-12),
            w(7e-12, 9e-12),
        ];
        let b = vec![w(30e-12, 40e-12), w(0.0, 8e-12), w(3e-12, 4e-12), None];
        let participant = vec![true, true, false, true];
        // The loop's governed step: prev iterate A, fresh iterate B.
        let mut windows = b.clone();
        let mut actions = Vec::new();
        governed_window_update(&mut windows, &a, &participant, 1, &mut actions);
        // Conservative: every installed window contains BOTH iterates.
        for i in [0usize, 1] {
            let u = windows[i].unwrap();
            for it in [a[i].unwrap(), b[i].unwrap()] {
                assert!(u.earliest <= it.earliest && u.latest >= it.latest);
            }
        }
        // Both oscillating victims' widenings are on record, each
        // certified conservative against the iterate it replaced.
        assert_eq!(actions.len(), 2);
        for act in &actions {
            assert!(act.widened.earliest <= act.fresh.earliest);
            assert!(act.widened.latest >= act.fresh.latest);
        }
        // The bystander is untouched; the window-losing net keeps its
        // previous window (dropping it would prune MORE — the opposite
        // of conservative).
        assert_eq!(windows[2], b[2]);
        assert_eq!(windows[3], a[3]);
        // Termination: unions only grow, so feeding the next oscillation
        // phase back in leaves the installed windows stationary — with
        // stationary windows the filter's pruning decisions repeat and
        // the loop's unchanged-pruning stop fires.
        let installed = windows.clone();
        let mut next = a.clone();
        let mut more = Vec::new();
        governed_window_update(&mut next, &installed, &participant, 2, &mut more);
        assert_eq!(next[0], installed[0]);
        assert_eq!(next[1], installed[1]);
        assert_eq!(next[3], installed[3]);
        // And once more from the other phase: still stationary.
        let mut third = b.clone();
        let mut last = Vec::new();
        governed_window_update(&mut third, &installed, &participant, 3, &mut last);
        assert_eq!(third[0], installed[0]);
        assert_eq!(third[1], installed[1]);
        assert_eq!(third[3], installed[3]);
    }

    #[test]
    fn topo_cache_quarantine_releases_budget_bytes() {
        let entry = cached_system();
        let key = |tag: u64| TopoKey(vec![tag]);
        let per_entry = TopoCache::entry_bytes(&key(0), &entry);
        // Budget for one entry only.
        let cache = TopoCache::new(true, per_entry);
        cache.insert(key(1), entry.clone(), Polarity::Rise, NetId(1));
        cache.quarantine(&key(1), Polarity::Rise, NetId(1));
        // The quarantined entry's bytes were released, so a fresh key
        // fits without any LRU eviction.
        cache.insert(key(2), entry, Polarity::Rise, NetId(2));
        assert!(cache.lookup(&key(2), Polarity::Rise).is_some());
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn topo_cache_release_nets_lifts_quarantine_and_drops_owned_entries() {
        // A long-lived session invalidating a victim must release both the
        // victim's stored entries and its quarantine records — without one,
        // a transient fault would pin a (key, polarity) pair forever even
        // after the offending geometry is edited away.
        let entry = cached_system();
        let key = |tag: u64| TopoKey(vec![tag]);
        let cache = TopoCache::new(true, usize::MAX);
        cache.insert(key(1), entry.clone(), Polarity::Rise, NetId(1));
        cache.insert(key(2), entry.clone(), Polarity::Rise, NetId(2));
        cache.quarantine(&key(3), Polarity::Rise, NetId(1));
        // Releasing net 1 drops its entry and lifts its quarantine; net 2
        // is untouched.
        assert_eq!(cache.release_nets(&[NetId(1)]), 2);
        assert!(cache.lookup(&key(1), Polarity::Rise).is_none());
        assert!(cache.lookup(&key(2), Polarity::Rise).is_some());
        assert!(!cache.is_quarantined(&key(3), Polarity::Rise));
        // The released pair earns cache service again.
        cache.insert(key(3), entry, Polarity::Rise, NetId(5));
        assert!(cache.lookup(&key(3), Polarity::Rise).is_some());
        // Releasing a net that owns nothing is a no-op.
        assert_eq!(cache.release_nets(&[NetId(1)]), 0);
        assert_eq!(cache.release_nets(&[]), 0);
    }
}
