//! Structural-Verilog subset parser.
//!
//! Supports the gate-level netlist dialect synthesis tools emit:
//!
//! ```verilog
//! module top (a, b, y);
//!   input a, b;
//!   output y;
//!   wire w1;
//!   INVX1 u1 (.A(a), .Y(w1));
//!   INVX4 u2 (.A(w1), .Y(y));
//! endmodule
//! ```
//!
//! Behavioural constructs are out of scope — this is the input format of a
//! timing engine, not a simulator.

use crate::netlist::Design;
use crate::StaError;

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    LParen,
    RParen,
    Comma,
    Semi,
    Dot,
    Eof,
}

fn lex(src: &str) -> Result<Vec<(Tok, usize)>, StaError> {
    let mut out = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut line = 1;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                i += 2;
                while i + 1 < chars.len() && !(chars[i] == '*' && chars[i + 1] == '/') {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
                if i + 1 >= chars.len() {
                    return Err(StaError::Parse {
                        line,
                        message: "unterminated comment".into(),
                    });
                }
                i += 2;
            }
            '(' => {
                out.push((Tok::LParen, line));
                i += 1;
            }
            ')' => {
                out.push((Tok::RParen, line));
                i += 1;
            }
            ',' => {
                out.push((Tok::Comma, line));
                i += 1;
            }
            ';' => {
                out.push((Tok::Semi, line));
                i += 1;
            }
            '.' => {
                out.push((Tok::Dot, line));
                i += 1;
            }
            '\\' => {
                // Escaped identifier (IEEE 1364 §3.7.1): `\` starts the
                // name, which runs to the next whitespace and may contain
                // ANY printable character — `\a+b `, `\bus[3] `, `\x.y `.
                // The backslash and terminating whitespace delimit the
                // name but are not part of it, so `\cpu ` and `cpu` denote
                // the same identifier.
                let start = i + 1;
                i += 1;
                while i < chars.len() && !chars[i].is_whitespace() {
                    i += 1;
                }
                if i == start {
                    return Err(StaError::Parse {
                        line,
                        message: "empty escaped identifier".into(),
                    });
                }
                out.push((Tok::Ident(chars[start..i].iter().collect()), line));
            }
            c if c.is_ascii_alphanumeric() || c == '_' || c == '[' => {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_ascii_alphanumeric()
                        || matches!(chars[i], '_' | '[' | ']' | '$'))
                {
                    i += 1;
                }
                out.push((Tok::Ident(chars[start..i].iter().collect()), line));
            }
            other => {
                return Err(StaError::Parse {
                    line,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    out.push((Tok::Eof, line));
    Ok(out)
}

struct P {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

impl P {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos.min(self.toks.len() - 1)].0
    }

    fn line(&self) -> usize {
        self.toks[self.pos.min(self.toks.len() - 1)].1
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos.min(self.toks.len() - 1)].0.clone();
        self.pos += 1;
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, StaError> {
        Err(StaError::Parse {
            line: self.line(),
            message: message.into(),
        })
    }

    fn ident(&mut self, what: &str) -> Result<String, StaError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => {
                self.pos -= 1;
                self.err(format!("expected {what}, found {other:?}"))
            }
        }
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<(), StaError> {
        if *self.peek() == tok {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {what}"))
        }
    }

    fn ident_list_until_semi(&mut self) -> Result<Vec<String>, StaError> {
        let mut names = vec![self.ident("a net name")?];
        loop {
            match self.bump() {
                Tok::Comma => names.push(self.ident("a net name")?),
                Tok::Semi => break,
                other => {
                    self.pos -= 1;
                    return self.err(format!("expected ',' or ';', found {other:?}"));
                }
            }
        }
        Ok(names)
    }
}

/// Parses a single structural module into a [`Design`].
///
/// # Errors
///
/// [`StaError::Parse`] with the offending line.
pub fn parse_design(source: &str) -> Result<Design, StaError> {
    let mut p = P {
        toks: lex(source)?,
        pos: 0,
    };
    let kw = p.ident("'module'")?;
    if kw != "module" {
        return p.err("expected 'module'");
    }
    let name = p.ident("module name")?;
    let mut design = Design::new(&name);
    // Port list (names only; directions come from declarations).
    p.expect(Tok::LParen, "'('")?;
    while *p.peek() != Tok::RParen {
        let _port = p.ident("port name")?;
        if *p.peek() == Tok::Comma {
            p.bump();
        }
    }
    p.bump(); // ')'
    p.expect(Tok::Semi, "';' after port list")?;

    loop {
        match p.peek().clone() {
            Tok::Ident(word) if word == "endmodule" => {
                p.bump();
                break;
            }
            Tok::Ident(word) if word == "input" => {
                p.bump();
                for n in p.ident_list_until_semi()? {
                    let id = design.net(&n);
                    design.mark_input(id);
                }
            }
            Tok::Ident(word) if word == "output" => {
                p.bump();
                for n in p.ident_list_until_semi()? {
                    let id = design.net(&n);
                    design.mark_output(id);
                }
            }
            Tok::Ident(word) if word == "wire" => {
                p.bump();
                for n in p.ident_list_until_semi()? {
                    design.net(&n);
                }
            }
            Tok::Ident(_) => {
                // Instance: CELL name ( .PIN(net), ... );
                let cell = p.ident("cell name")?;
                let inst = p.ident("instance name")?;
                p.expect(Tok::LParen, "'('")?;
                let mut connections = Vec::new();
                while *p.peek() != Tok::RParen {
                    p.expect(Tok::Dot, "'.' before pin name")?;
                    let pin = p.ident("pin name")?;
                    p.expect(Tok::LParen, "'(' after pin name")?;
                    let net = p.ident("net name")?;
                    p.expect(Tok::RParen, "')' after net name")?;
                    connections.push((pin, design.net(&net)));
                    if *p.peek() == Tok::Comma {
                        p.bump();
                    }
                }
                p.bump(); // ')'
                p.expect(Tok::Semi, "';' after instance")?;
                design.add_instance(&inst, &cell, connections)?;
            }
            Tok::Eof => return p.err("missing 'endmodule'"),
            other => return p.err(format!("unexpected token {other:?}")),
        }
    }
    Ok(design)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
        // two-stage buffer chain
        module chain (a, y);
          input a;
          output y;
          wire w1; /* internal */
          INVX1 u1 (.A(a), .Y(w1));
          INVX4 u2 (.A(w1), .Y(y));
        endmodule
    "#;

    #[test]
    fn parses_module_structure() {
        let d = parse_design(SRC).unwrap();
        assert_eq!(d.name, "chain");
        assert_eq!(d.inputs().len(), 1);
        assert_eq!(d.outputs().len(), 1);
        assert_eq!(d.instances().len(), 2);
        assert_eq!(d.net_count(), 3);
        let u2 = &d.instances()[1];
        assert_eq!(u2.cell, "INVX4");
        assert_eq!(u2.net_on("A"), d.find_net("w1"));
        assert_eq!(u2.net_on("Y"), d.find_net("y"));
    }

    #[test]
    fn multi_name_declarations() {
        let d = parse_design(
            "module m (a, b, y); input a, b; output y; wire w1, w2;\
             INVX1 u1 (.A(a), .Y(w1)); endmodule",
        )
        .unwrap();
        assert_eq!(d.inputs().len(), 2);
        assert_eq!(d.net_count(), 5);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad = "module m (a);\ninput a;\n???\nendmodule";
        match parse_design(bad) {
            Err(StaError::Parse { line: 3, .. }) => {}
            other => panic!("expected parse error at line 3, got {other:?}"),
        }
        assert!(parse_design("module m (a); input a;").is_err());
        assert!(parse_design("garbage").is_err());
    }

    #[test]
    fn escaped_identifiers_run_to_whitespace() {
        // Escaped names may contain any printable character up to the
        // terminating whitespace — not just the simple-identifier class.
        let d = parse_design(
            "module m (\\a+b , y); input \\a+b ; output y; wire \\bus[3] ;\
             INVX1 u1 (.A(\\a+b ), .Y(\\bus[3] ));\
             INVX1 u2 (.A(\\bus[3] ), .Y(y)); endmodule",
        )
        .unwrap();
        let ab = d.find_net("a+b").expect("escaped net \\a+b ");
        let bus = d.find_net("bus[3]").expect("escaped net \\bus[3] ");
        assert_eq!(d.inputs(), &[ab]);
        assert_eq!(d.instances()[0].net_on("A"), Some(ab));
        assert_eq!(d.instances()[0].net_on("Y"), Some(bus));
    }

    #[test]
    fn escaped_identifier_equals_its_plain_spelling() {
        // IEEE 1364: `\cpu ` and `cpu` are the same identifier, so both
        // spellings must intern to one net.
        let d = parse_design(
            "module m (a, cpu); input a; output cpu;\
             INVX1 u1 (.A(a), .Y(\\cpu )); endmodule",
        )
        .unwrap();
        assert_eq!(d.net_count(), 2);
        assert_eq!(
            d.instances()[0].net_on("Y"),
            d.find_net("cpu"),
            "escaped and plain spellings must unify"
        );
    }

    #[test]
    fn empty_escaped_identifier_is_an_error() {
        assert!(matches!(
            parse_design("module m (a); input \\ ; endmodule"),
            Err(StaError::Parse { .. })
        ));
    }

    #[test]
    fn duplicate_instance_is_structural_error() {
        let bad = "module m (a, y); input a; output y;\
                   INVX1 u1 (.A(a), .Y(y)); INVX1 u1 (.A(a), .Y(y)); endmodule";
        assert!(matches!(parse_design(bad), Err(StaError::Structure(_))));
    }
}
