//! Engine support for long-lived incremental timing sessions.
//!
//! A session (the `nsta-session` crate) retains a converged crosstalk
//! analysis and, on each netlist/parasitics edit, re-solves only the part
//! of the design the edit can reach. This module supplies the three
//! engine-side primitives that make the incremental answer *provably*
//! equal to the batch one:
//!
//! 1. **Coupling clusters** ([`ConeClusters`]): the timing graph's weakly
//!    connected components ([`crate::TimingGraph::components`], "cones")
//!    are the propagation granule — no timing arc crosses a cone. Coupling
//!    specs add cross-cone dependencies (a victim's noisy arrival depends
//!    on its aggressors' nominal arrivals and windows), so the transitive
//!    invalidation granule is the union of cones linked by any spec: a
//!    *cluster*. Clusters are independent by construction — re-analyzing
//!    one cluster's specs cannot change any net outside it.
//! 2. **Caller-owned topology cache**
//!    ([`Sta::session_analyze`] / [`crate::si::TopoCache`]): factored
//!    transient systems survive across edits; entries invalidated by an
//!    edit are dropped with [`crate::si::TopoCache::release_nets`].
//! 3. **State-level merge** ([`Sta::session_merge`]): the retained and the
//!    patch analyses both carry their final per-net propagation states;
//!    the merge splices them per net (patch inside dirty clusters,
//!    retained outside) and re-runs the ordinary report finish on the
//!    spliced states. Required times, slacks, the worst point tie-break
//!    and the critical-path predecessor walk therefore all come from one
//!    consistent state vector — the merged report is bit-identical to a
//!    full batch re-analysis, not merely close to it.
//!
//! Why the splice is exact: aggressor ramps are taken from the
//! iteration-invariant nominal sweep, a net's windows depend only on its
//! own cone's states, and the window filter consults only the victim's
//! and its aggressors' windows — all inside one cluster. Running the
//! fixed point with only the dirty clusters' specs therefore reproduces,
//! for dirty-cluster nets, exactly the states the full-spec run would
//! compute, while untouched clusters keep their retained states verbatim.
//! One caveat: the convergence *governor* observes global stagnation, so
//! a pathologically oscillating design could in principle widen windows
//! differently under a subset run — the session's shadow audit exists to
//! catch exactly such divergence.

use crate::boundary::BoundaryConditions;
use crate::engine::{NetState, Sta};
use crate::error::StaError;
use crate::netlist::NetId;
use crate::si::{CouplingSpec, SiAnalysis, SiOptions, TopoCache};

/// Invalidation granules of an incremental session: the design's cones
/// (weakly connected components of the timing graph) merged across every
/// coupling spec that links them. See the module docs.
#[derive(Debug, Clone)]
pub struct ConeClusters {
    /// Cone index per net (position in `TimingGraph::components()`).
    cone_of_net: Vec<usize>,
    /// Cluster id per cone, renumbered densely in first-appearance order.
    cluster_of_cone: Vec<usize>,
    /// Number of distinct clusters.
    clusters: usize,
}

impl ConeClusters {
    /// Number of independent clusters (≤ number of cones).
    pub fn clusters(&self) -> usize {
        self.clusters
    }

    /// Cluster id of `net`, or `None` for an out-of-range id.
    pub fn cluster_of_net(&self, net: NetId) -> Option<usize> {
        self.cone_of_net
            .get(net.0)
            .map(|&cone| self.cluster_of_cone[cone])
    }

    /// Per-cluster dirty mask: a cluster is dirty iff it contains one of
    /// the `seeds` (edited nets plus victims whose spec changed).
    pub fn dirty_clusters(&self, seeds: &[NetId]) -> Vec<bool> {
        let mut dirty = vec![false; self.clusters];
        for &net in seeds {
            if let Some(cluster) = self.cluster_of_net(net) {
                dirty[cluster] = true;
            }
        }
        dirty
    }

    /// Expands a per-cluster dirty mask to a per-net mask.
    pub fn net_mask(&self, dirty_clusters: &[bool]) -> Vec<bool> {
        self.cone_of_net
            .iter()
            .map(|&cone| dirty_clusters[self.cluster_of_cone[cone]])
            .collect()
    }

    /// Number of cones belonging to dirty clusters.
    pub fn dirty_cone_count(&self, dirty_clusters: &[bool]) -> usize {
        self.cluster_of_cone
            .iter()
            .filter(|&&cluster| dirty_clusters[cluster])
            .count()
    }

    /// Expands a per-cluster dirty mask to a per-cone mask (indexed like
    /// [`crate::TimingGraph::components`]) — the granule a session bumps
    /// its cone epoch counters at.
    pub fn cone_mask(&self, dirty_clusters: &[bool]) -> Vec<bool> {
        self.cluster_of_cone
            .iter()
            .map(|&cluster| dirty_clusters[cluster])
            .collect()
    }

    /// Cone index of `net` (position in
    /// [`crate::TimingGraph::components`]), or `None` out of range.
    pub fn cone_of_net(&self, net: NetId) -> Option<usize> {
        self.cone_of_net.get(net.0).copied()
    }
}

/// A converged analysis plus the final per-net propagation states it was
/// reported from — the retained value of one session epoch. The states
/// are engine-internal; they exist so [`Sta::session_merge`] can splice
/// results at the state level (see the module docs).
#[derive(Debug, Clone)]
pub struct RetainedAnalysis {
    /// The analysis result (report, adjustments, pruned, diagnostics).
    pub analysis: SiAnalysis,
    pub(crate) states: Vec<NetState>,
}

impl Sta {
    /// Builds the coupling-cluster partition for `couplings`: union-find
    /// over cone indices, merging each victim's cone with each of its
    /// aggressors' cones. Unknown nets in a spec are ignored here — the
    /// analysis itself reports them as errors.
    pub fn cone_clusters(&self, couplings: &[CouplingSpec]) -> ConeClusters {
        let components = self.graph().components();
        let mut cone_of_net = vec![0usize; self.design().net_count()];
        for (cone, members) in components.iter().enumerate() {
            for &net in members {
                cone_of_net[net.0] = cone;
            }
        }
        // Union-find with path halving; union by arbitrary root order is
        // fine at cone counts (thousands at most).
        let mut parent: Vec<usize> = (0..components.len()).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for spec in couplings {
            let Some(&victim_cone) = cone_of_net.get(spec.victim.0) else {
                continue;
            };
            for agg in &spec.aggressors {
                let Some(&agg_cone) = cone_of_net.get(agg.0) else {
                    continue;
                };
                let a = find(&mut parent, victim_cone);
                let b = find(&mut parent, agg_cone);
                if a != b {
                    parent[b] = a;
                }
            }
        }
        // Renumber roots densely in cone order so cluster ids are stable
        // across runs (roots themselves depend on union order).
        let mut cluster_of_root = std::collections::HashMap::new();
        let mut cluster_of_cone = Vec::with_capacity(components.len());
        for cone in 0..components.len() {
            let root = find(&mut parent, cone);
            let next = cluster_of_root.len();
            let id = *cluster_of_root.entry(root).or_insert(next);
            cluster_of_cone.push(id);
        }
        ConeClusters {
            cone_of_net,
            cluster_of_cone,
            clusters: cluster_of_root.len(),
        }
    }

    /// [`Sta::analyze_with_crosstalk_windows`] against a caller-owned
    /// topology cache, retaining the final propagation states for later
    /// merging. The session layer's workhorse: the first call analyzes
    /// the full spec set; each edit re-analyzes only the dirty clusters'
    /// specs and splices the result in with [`Sta::session_merge`].
    ///
    /// `scope` optionally restricts the hoisted nominal/min sweeps to a
    /// per-cone mask ([`ConeClusters::cone_mask`] of the dirty clusters):
    /// states of unscoped cones stay at their seed and MUST NOT be merged
    /// — [`Sta::session_merge`]'s dirty-net mask guarantees that when the
    /// mask covers exactly the scoped clusters' nets. `None` sweeps every
    /// cone (required for the initial full analysis).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Sta::analyze_with_crosstalk_windows`].
    pub fn session_analyze(
        &self,
        constraints: impl Into<BoundaryConditions>,
        couplings: &[CouplingSpec],
        options: &SiOptions,
        cache: &TopoCache,
        scope: Option<&[bool]>,
    ) -> Result<RetainedAnalysis, StaError> {
        let (analysis, states) =
            self.analyze_windows_with_cache(constraints, couplings, options, cache, scope)?;
        Ok(RetainedAnalysis { analysis, states })
    }

    /// Splices a dirty-cluster `patch` analysis into the `retained` one:
    /// nets with `dirty_nets[net]` take the patch states, all others keep
    /// the retained states, and the report (required times, slacks, worst
    /// point, critical path) is re-finished from the spliced state vector
    /// — bit-identical to a batch run over the edited design (module
    /// docs). Adjustments and pruned records are swapped per dirty victim;
    /// `epoch` stamps the merged diagnostics.
    ///
    /// # Errors
    ///
    /// Propagates report-finishing failures (unresolvable edge timing).
    pub fn session_merge(
        &self,
        constraints: impl Into<BoundaryConditions>,
        retained: &RetainedAnalysis,
        patch: &RetainedAnalysis,
        dirty_nets: &[bool],
        epoch: u64,
    ) -> Result<RetainedAnalysis, StaError> {
        // The boundary conditions shaped both input reports; the merge
        // itself splices at the row level and re-derives only the worst
        // point, so it never re-reads them (required times are exact in
        // both sources — see [`Sta::report_from_rows`]).
        let _bc: BoundaryConditions = constraints.into();
        let dirty = |net: NetId| dirty_nets.get(net.0).copied().unwrap_or(false);
        let states: Vec<NetState> = retained
            .states
            .iter()
            .zip(&patch.states)
            .enumerate()
            .map(|(i, (old, new))| if dirty(NetId(i)) { *new } else { *old })
            .collect();
        let rows: Vec<_> = retained
            .analysis
            .report
            .nets()
            .iter()
            .zip(patch.analysis.report.nets())
            .enumerate()
            .map(|(i, (old, new))| {
                if dirty(NetId(i)) {
                    new.clone()
                } else {
                    old.clone()
                }
            })
            .collect();
        let report = self.report_from_rows(rows, &states);

        let mut adjustments: Vec<_> = retained
            .analysis
            .adjustments
            .iter()
            .filter(|a| !dirty(a.net))
            .copied()
            .collect();
        adjustments.extend(
            patch
                .analysis
                .adjustments
                .iter()
                .filter(|a| dirty(a.net))
                .copied(),
        );
        adjustments.sort_by_key(|a| (a.net.0, !a.polarity.is_rise()));

        let mut pruned: Vec<_> = retained
            .analysis
            .pruned
            .iter()
            .filter(|p| !dirty(p.victim))
            .copied()
            .collect();
        pruned.extend(
            patch
                .analysis
                .pruned
                .iter()
                .filter(|p| dirty(p.victim))
                .copied(),
        );
        pruned.sort_by_key(|p| (p.victim.0, p.aggressor.0));

        let mut diagnostics = patch.analysis.diagnostics.clone();
        diagnostics.epoch = epoch;
        Ok(RetainedAnalysis {
            analysis: SiAnalysis {
                report,
                adjustments,
                pruned,
                diagnostics,
            },
            states,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verilog::parse_design;
    use nsta_circuit::RcLineSpec;
    use nsta_liberty::characterize::{inverter_family, Options};
    use nsta_liberty::Library;
    use nsta_spice::Process;
    use std::sync::OnceLock;

    fn lib() -> &'static Library {
        static LIB: OnceLock<Library> = OnceLock::new();
        LIB.get_or_init(|| {
            inverter_family(&Process::c013(), &[("INVX1", 1.0)], &Options::fast_test()).unwrap()
        })
    }

    /// Three independent two-inverter cones: a→v→y, b→g→z, c→h→w. The
    /// internal wires v/g/h have receiver gates, so they can be victims.
    fn three_cones() -> Sta {
        let src = "module m (a, b, c, y, z, w);\n\
                   input a; input b; input c;\n\
                   output y; output z; output w;\n\
                   wire v; wire g; wire h;\n\
                   INVX1 u0 (.A(a), .Y(v)); INVX1 u1 (.A(v), .Y(y));\n\
                   INVX1 u2 (.A(b), .Y(g)); INVX1 u3 (.A(g), .Y(z));\n\
                   INVX1 u4 (.A(c), .Y(h)); INVX1 u5 (.A(h), .Y(w));\n\
                   endmodule\n";
        let design = parse_design(src).unwrap();
        Sta::new(design, lib().clone()).unwrap()
    }

    fn spec(victim: NetId, aggressors: Vec<NetId>) -> CouplingSpec {
        CouplingSpec {
            victim,
            aggressors,
            cm_total: 10e-15,
            cm_per_aggressor: Vec::new(),
            line: RcLineSpec {
                r_total: 20.0,
                c_total: 10e-15,
                segments: 2,
            },
            aggressor_lines: Vec::new(),
            quiet_cm: 0.0,
            receiver_load: None,
            driver_resistance: 200.0,
            aggressor_skew: 0.0,
            aggressors_oppose: true,
            defect: None,
        }
    }

    #[test]
    fn clusters_merge_cones_linked_by_specs() {
        let sta = three_cones();
        let d = sta.design();
        let (v, g, h) = (
            d.find_net("v").unwrap(),
            d.find_net("g").unwrap(),
            d.find_net("h").unwrap(),
        );
        // No specs: every cone is its own cluster.
        let free = sta.cone_clusters(&[]);
        assert_eq!(free.clusters(), sta.graph().components().len());
        assert_ne!(free.cluster_of_net(v), free.cluster_of_net(g));
        // A spec coupling v's cone to g's merges exactly those two.
        let clusters = sta.cone_clusters(&[spec(v, vec![g])]);
        assert_eq!(clusters.clusters(), free.clusters() - 1);
        assert_eq!(clusters.cluster_of_net(v), clusters.cluster_of_net(g));
        assert_ne!(clusters.cluster_of_net(v), clusters.cluster_of_net(h));
        // Dirty closure: editing g dirties the merged cluster, not h's.
        let dirty = clusters.dirty_clusters(&[g]);
        assert_eq!(dirty.iter().filter(|&&d| d).count(), 1);
        let mask = clusters.net_mask(&dirty);
        assert!(mask[v.0] && mask[g.0] && !mask[h.0]);
        assert!(clusters.dirty_cone_count(&dirty) >= 2);
        // Out-of-range seeds are ignored.
        let none = clusters.dirty_clusters(&[NetId(usize::MAX)]);
        assert!(none.iter().all(|&d| !d));
    }

    #[test]
    fn session_merge_splices_dirty_nets_and_refinishes() {
        let sta = three_cones();
        let d = sta.design();
        let (v, g) = (d.find_net("v").unwrap(), d.find_net("g").unwrap());
        let c = crate::Constraints::default();
        let bc = BoundaryConditions::uniform(&c);
        let opts = SiOptions::default();
        let cache = TopoCache::new(true, usize::MAX);
        let specs = [spec(v, vec![g])];
        let full = sta
            .session_analyze(bc.clone(), &specs, &opts, &cache, None)
            .unwrap();
        // Merge the full analysis into itself with every net dirty / no
        // net dirty: both must reproduce the batch report bit-identically.
        let all = vec![true; d.net_count()];
        let nothing = vec![false; d.net_count()];
        for mask in [&all, &nothing] {
            let merged = sta
                .session_merge(bc.clone(), &full, &full, mask, 7)
                .unwrap();
            assert_eq!(merged.analysis.report, full.analysis.report);
            assert_eq!(merged.analysis.adjustments, full.analysis.adjustments);
            assert_eq!(merged.analysis.diagnostics.epoch, 7);
        }
    }

    #[test]
    fn scoped_resolve_merges_bit_identically() {
        let sta = three_cones();
        let d = sta.design();
        let (v, g) = (d.find_net("v").unwrap(), d.find_net("g").unwrap());
        let c = crate::Constraints::default();
        let bc = BoundaryConditions::uniform(&c);
        let opts = SiOptions::default();
        let cache = TopoCache::new(true, usize::MAX);
        let specs = [spec(v, vec![g])];
        let full = sta
            .session_analyze(bc.clone(), &specs, &opts, &cache, None)
            .unwrap();
        // Re-solve only v's cluster with the sweeps scoped to its cones:
        // splicing the patch back over the cluster's nets must reproduce
        // the batch report bit-for-bit, even though the patch never swept
        // h's cone.
        let clusters = sta.cone_clusters(&specs);
        let dirty = clusters.dirty_clusters(&[v]);
        let scope = clusters.cone_mask(&dirty);
        assert!(scope.iter().any(|&s| !s), "h's cone must be out of scope");
        let patch = sta
            .session_analyze(bc.clone(), &specs, &opts, &cache, Some(&scope))
            .unwrap();
        let mask = clusters.net_mask(&dirty);
        let merged = sta
            .session_merge(bc.clone(), &full, &patch, &mask, 3)
            .unwrap();
        assert_eq!(merged.analysis.report, full.analysis.report);
        assert_eq!(merged.analysis.adjustments, full.analysis.adjustments);
    }
}
