//! A dependency-free scoped worker pool with deterministic merge.
//!
//! The crosstalk flow fans independent work items (per-victim transient
//! reductions, per-net sweep updates) across `std::thread::scope` workers.
//! Workers pull indices from a shared atomic counter — dynamic load
//! balancing without any work-stealing machinery — and tag every result
//! with its input index, so the merged output vector is ordered exactly
//! like the input regardless of thread count or scheduling. Combined with
//! the fact that each item's computation performs the identical sequence
//! of floating-point operations on any thread, N-thread results are
//! bit-identical to 1-thread results.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker threads actually spawned for `items` work items: never more
/// than there are items, so small batches do not pay the spawn cost of
/// idle threads (a worker that never pops an index still costs an OS
/// thread creation).
pub(crate) fn effective_workers(threads: usize, items: usize) -> usize {
    threads.min(items)
}

/// Maps `f` over `items`, using up to `threads` scoped worker threads,
/// returning results in input order.
///
/// `threads <= 1` (or a single item) runs inline with no thread overhead;
/// the output is identical either way.
pub(crate) fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = effective_workers(threads, items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, R)> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        local.push((i, f(item)));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            tagged.extend(h.join().expect("sweep worker panicked"));
        }
    });
    // Deterministic merge: scatter back into input order.
    tagged.sort_unstable_by_key(|&(i, _)| i);
    debug_assert_eq!(tagged.len(), items.len());
    tagged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_for_any_thread_count() {
        let items: Vec<usize> = (0..97).collect();
        let expect: Vec<usize> = items.iter().map(|i| i * i).collect();
        for threads in [0, 1, 2, 3, 8, 200] {
            assert_eq!(par_map(threads, &items, |&i| i * i), expect);
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(4, &empty, |&x| x).is_empty());
        assert_eq!(par_map(4, &[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn worker_count_clamps_to_item_count() {
        // Tiny batches must not spawn idle threads.
        assert_eq!(effective_workers(8, 3), 3);
        assert_eq!(effective_workers(8, 0), 0);
        assert_eq!(effective_workers(1, 100), 1);
        assert_eq!(effective_workers(0, 100), 0);
        assert_eq!(effective_workers(4, 4), 4);
    }

    #[test]
    fn fewer_items_than_threads_is_correct_and_ordered() {
        // items < threads: the clamp leaves one worker per item; results
        // must still come back complete and in input order.
        let items = [10usize, 20, 30];
        assert_eq!(par_map(64, &items, |&i| i + 1), vec![11, 21, 31]);
        // Two items, many threads — exercises the 2-worker path.
        let pair = [1u64, 2];
        assert_eq!(par_map(200, &pair, |&i| i * 3), vec![3, 6]);
    }

    #[test]
    fn results_can_be_fallible() {
        let items = [1i32, -2, 3];
        let out: Vec<Result<i32, String>> = par_map(2, &items, |&i| {
            if i < 0 {
                Err(format!("bad {i}"))
            } else {
                Ok(i)
            }
        });
        assert_eq!(out[0], Ok(1));
        assert!(out[1].is_err());
        assert_eq!(out[2], Ok(3));
    }
}
