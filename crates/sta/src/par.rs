//! A dependency-free scoped worker pool with deterministic merge.
//!
//! The crosstalk flow fans independent work items (per-victim transient
//! reductions, per-net sweep updates) across `std::thread::scope` workers.
//! Workers pull indices from a shared atomic counter — dynamic load
//! balancing without any work-stealing machinery — and tag every result
//! with its input index, so the merged output vector is ordered exactly
//! like the input regardless of thread count or scheduling. Combined with
//! the fact that each item's computation performs the identical sequence
//! of floating-point operations on any thread, N-thread results are
//! bit-identical to 1-thread results.
//!
//! # Panic containment
//!
//! A panicking item must not abort the whole analysis: each worker wraps
//! every `f(item)` in `catch_unwind`, and any item whose result went
//! missing (its call panicked, or its worker died) is retried **once,
//! inline on the coordinator** after the pool joins. The retry runs the
//! identical computation on the identical input, so a transient panic
//! (an injected fault, a poisoned lock another thread has since healed)
//! recovers bit-identically, while a deterministic panic reproduces on
//! the coordinator with its original message and full backtrace.
//!
//! # Cooperative deadlines
//!
//! [`par_map_govern`] additionally polls an [`nsta_obs::Deadline`] at
//! item boundaries: once it reads expired, workers stop pulling new
//! items (in-flight items always finish) and every un-started item's
//! slot comes back `None` so the caller can substitute stale fallback
//! data and record exactly which items were skipped. A missing slot is
//! classified after the join: deadline expired → skipped (left `None`);
//! deadline still live → the item's worker panicked, so it is retried
//! inline exactly like [`par_map_recover`] would.

use nsta_obs::Deadline;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker threads actually spawned for `items` work items: never more
/// than there are items, so small batches do not pay the spawn cost of
/// idle threads (a worker that never pops an index still costs an OS
/// thread creation).
pub(crate) fn effective_workers(threads: usize, items: usize) -> usize {
    threads.min(items)
}

/// Maps `f` over `items`, using up to `threads` scoped worker threads,
/// returning results in input order.
///
/// `threads <= 1` (or a single item) runs inline with no thread overhead;
/// the output is identical either way.
pub(crate) fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_recover(threads, items, f).0
}

/// [`par_map`] variant that also reports which item indices had to be
/// retried inline after a worker-side panic (empty on every healthy
/// run). Callers that attribute faults to work items — the crosstalk
/// cone scheduler — use the indices to record degrade events.
pub(crate) fn par_map_recover<T, R, F>(threads: usize, items: &[T], f: F) -> (Vec<R>, Vec<usize>)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let (slots, retried) = par_map_govern(threads, items, None, f);
    // Without a deadline no slot can be skipped: every missing result was
    // either recovered by the inline retry or propagated its panic there.
    let results = slots
        .into_iter()
        .map(|s| s.unwrap_or_else(|| panic!("scheduler bug: slot neither filled nor retried")))
        .collect();
    (results, retried)
}

/// Deadline-governed [`par_map_recover`]: item `i`'s slot is `None` iff
/// the deadline expired before the pool could start (or retry) it. With
/// `deadline: None` every slot is `Some` (panic recovery still applies).
pub(crate) fn par_map_govern<T, R, F>(
    threads: usize,
    items: &[T],
    deadline: Option<&Deadline>,
    f: F,
) -> (Vec<Option<R>>, Vec<usize>)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = effective_workers(threads, items.len());
    if workers <= 1 {
        // Inline path: panics propagate to the caller unchanged, exactly
        // as the computation would without the pool. The deadline is
        // polled once per item boundary; expiry is monotone, so the first
        // expired reading skips everything after it without re-polling.
        let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
        let mut expired = false;
        for item in items {
            expired = expired || deadline.is_some_and(|d| d.expired());
            out.push(if expired { None } else { Some(f(item)) });
        }
        if out.iter().any(|s| s.is_none()) {
            nsta_obs::count!(
                "par.items_deadline_skipped",
                out.iter().filter(|s| s.is_none()).count()
            );
        }
        return (out, Vec::new());
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    // Observability: one span per worker lifetime with busy/idle args.
    // `observe` is sampled once per pool so the hot pull loop pays zero
    // extra branches when recording is off.
    let observe = nsta_obs::recorder().is_enabled();
    let mut pool_span = nsta_obs::span!("par.pool");
    pool_span.set_arg("workers", workers as f64);
    pool_span.set_arg("items", items.len() as f64);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut worker_span = nsta_obs::span!("par.worker");
                    let spawned = observe.then(std::time::Instant::now);
                    let mut busy_ns = 0u128;
                    let mut local = Vec::new();
                    loop {
                        // Cooperative cancellation at the item boundary:
                        // an expired deadline stops this worker from
                        // pulling further items; whatever it already
                        // started has finished by construction.
                        if deadline.is_some_and(|d| d.expired()) {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        // Contain a panicking item: drop the payload (the
                        // panic hook already reported it) and move on; the
                        // coordinator retries the missing index inline.
                        let caught = if observe {
                            let t0 = std::time::Instant::now();
                            let caught = panic::catch_unwind(AssertUnwindSafe(|| f(item)));
                            busy_ns += t0.elapsed().as_nanos();
                            caught
                        } else {
                            panic::catch_unwind(AssertUnwindSafe(|| f(item)))
                        };
                        if let Ok(r) = caught {
                            local.push((i, r));
                        }
                    }
                    if let Some(spawned) = spawned {
                        let lifetime_ns = spawned.elapsed().as_nanos();
                        worker_span.set_arg("items", local.len() as f64);
                        worker_span.set_arg("busy_us", busy_ns as f64 / 1_000.0);
                        // Time the worker spent outside `f`: queue pulls,
                        // allocation, and (dominantly) waiting to be
                        // scheduled while other workers drained the queue.
                        worker_span
                            .set_arg("idle_us", lifetime_ns.saturating_sub(busy_ns) as f64 / 1e3);
                        nsta_obs::count!("par.items_processed", local.len());
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            // A worker that died outside the per-item catch (it cannot,
            // today, but defend anyway) just loses its results; the
            // missing-slot scan below recovers them.
            if let Ok(local) = h.join() {
                for (i, r) in local {
                    slots[i] = Some(r);
                }
            }
        }
    });
    // Classify-and-recover pass, in input order. A missing slot means
    // either "its worker panicked" or "the deadline expired before any
    // worker started it" — expiry is monotone, so one poll here decides:
    // expired → every missing slot is (or may as well be) a skip, and
    // retrying would only burn more over-budget time; still live → no
    // worker can have skipped anything, so the miss was a panic and the
    // inline retry recomputes it bit-identically (a persistent panic
    // propagates here with its original message).
    let mut retried = Vec::new();
    let expired = deadline.is_some_and(|d| d.expired());
    let mut skipped = 0usize;
    for (i, slot) in slots.iter_mut().enumerate() {
        if slot.is_some() {
            continue;
        }
        if expired {
            skipped += 1;
        } else {
            *slot = Some(f(&items[i]));
            retried.push(i);
        }
    }
    if !retried.is_empty() {
        nsta_obs::count!("par.items_retried", retried.len());
        nsta_obs::count!("par.items_processed", retried.len());
    }
    if skipped > 0 {
        nsta_obs::count!("par.items_deadline_skipped", skipped);
    }
    (slots, retried)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_for_any_thread_count() {
        let items: Vec<usize> = (0..97).collect();
        let expect: Vec<usize> = items.iter().map(|i| i * i).collect();
        for threads in [0, 1, 2, 3, 8, 200] {
            assert_eq!(par_map(threads, &items, |&i| i * i), expect);
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(4, &empty, |&x| x).is_empty());
        assert_eq!(par_map(4, &[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn worker_count_clamps_to_item_count() {
        // Tiny batches must not spawn idle threads.
        assert_eq!(effective_workers(8, 3), 3);
        assert_eq!(effective_workers(8, 0), 0);
        assert_eq!(effective_workers(1, 100), 1);
        assert_eq!(effective_workers(0, 100), 0);
        assert_eq!(effective_workers(4, 4), 4);
    }

    #[test]
    fn fewer_items_than_threads_is_correct_and_ordered() {
        // items < threads: the clamp leaves one worker per item; results
        // must still come back complete and in input order.
        let items = [10usize, 20, 30];
        assert_eq!(par_map(64, &items, |&i| i + 1), vec![11, 21, 31]);
        // Two items, many threads — exercises the 2-worker path.
        let pair = [1u64, 2];
        assert_eq!(par_map(200, &pair, |&i| i * 3), vec![3, 6]);
    }

    #[test]
    fn global_counters_are_exact_under_the_worker_pool() {
        // Four workers hammering one named counter must lose no update:
        // the per-counter cell is atomic, the registry lock only resolves
        // the name.
        let _guard = crate::obs_test_guard();
        let rec = nsta_obs::recorder();
        rec.reset();
        rec.enable();
        let items: Vec<u64> = (0..10_000).collect();
        let out = par_map(4, &items, |&i| {
            nsta_obs::count!("par.test.bumps");
            i
        });
        rec.disable();
        let bumps = rec.metrics().get("par.test.bumps");
        let processed = rec.metrics().get("par.items_processed");
        rec.reset();
        assert_eq!(out.len(), items.len());
        assert_eq!(bumps, Some(10_000.0));
        // The pool's own accounting covers every item exactly once too.
        assert_eq!(processed, Some(10_000.0));
    }

    #[test]
    fn results_can_be_fallible() {
        let items = [1i32, -2, 3];
        let out: Vec<Result<i32, String>> = par_map(2, &items, |&i| {
            if i < 0 {
                Err(format!("bad {i}"))
            } else {
                Ok(i)
            }
        });
        assert_eq!(out[0], Ok(1));
        assert!(out[1].is_err());
        assert_eq!(out[2], Ok(3));
    }

    #[test]
    fn panicked_item_is_retried_inline_and_reported() {
        use std::sync::atomic::AtomicBool;
        // Item 5 panics exactly once (on a worker); the coordinator's
        // inline retry then succeeds, so the output is complete and
        // ordered, and the retry is attributed to the right index.
        let tripped = AtomicBool::new(false);
        let items: Vec<usize> = (0..32).collect();
        let (out, retried) = par_map_recover(4, &items, |&i| {
            if i == 5 && !tripped.swap(true, Ordering::SeqCst) {
                panic!("transient worker failure");
            }
            i * 2
        });
        let expect: Vec<usize> = items.iter().map(|i| i * 2).collect();
        assert_eq!(out, expect);
        assert_eq!(retried, vec![5]);
    }

    #[test]
    fn deadline_expiry_skips_remaining_items_inline_deterministically() {
        use nsta_obs::FakeClock;
        use std::sync::Arc;
        // Manual fake clock (step 0): the third item's work trips the
        // deadline, so items 0..=2 complete and everything after them is
        // skipped — same-thread, fully deterministic.
        let clock = FakeClock::new(0);
        let deadline = Deadline::on_fake(Arc::clone(&clock), 100);
        let items: Vec<usize> = (0..6).collect();
        let started = AtomicUsize::new(0);
        let (out, retried) = par_map_govern(1, &items, Some(&deadline), |&i| {
            if started.fetch_add(1, Ordering::SeqCst) == 2 {
                clock.advance(100);
            }
            i * 10
        });
        assert_eq!(
            out,
            vec![Some(0), Some(10), Some(20), None, None, None],
            "in-flight items finish, un-started items are skipped"
        );
        assert!(retried.is_empty());
    }

    #[test]
    fn pre_expired_deadline_skips_every_item_without_calling_f() {
        use nsta_obs::FakeClock;
        let deadline = Deadline::on_fake(FakeClock::new(0), 0);
        let items: Vec<usize> = (0..32).collect();
        let calls = AtomicUsize::new(0);
        let (out, retried) = par_map_govern(4, &items, Some(&deadline), |&i| {
            calls.fetch_add(1, Ordering::SeqCst);
            i
        });
        assert!(out.iter().all(|s| s.is_none()));
        assert_eq!(calls.load(Ordering::SeqCst), 0);
        assert!(retried.is_empty());
    }

    #[test]
    fn no_deadline_behaves_exactly_like_recover() {
        let items: Vec<usize> = (0..17).collect();
        let (out, retried) = par_map_govern(3, &items, None, |&i| i + 1);
        let expect: Vec<Option<usize>> = items.iter().map(|i| Some(i + 1)).collect();
        assert_eq!(out, expect);
        assert!(retried.is_empty());
    }

    #[test]
    fn persistent_panic_propagates_from_the_retry() {
        // A deterministic panic must not be swallowed: the inline retry
        // reproduces it on the coordinator.
        let items: Vec<usize> = (0..8).collect();
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            par_map(4, &items, |&i| {
                if i == 3 {
                    panic!("deterministic failure");
                }
                i
            })
        }));
        assert!(caught.is_err());
    }
}
