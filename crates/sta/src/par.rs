//! A dependency-free scoped worker pool with deterministic merge.
//!
//! The crosstalk flow fans independent work items (per-victim transient
//! reductions, per-net sweep updates) across `std::thread::scope` workers.
//! Workers pull indices from a shared atomic counter — dynamic load
//! balancing without any work-stealing machinery — and tag every result
//! with its input index, so the merged output vector is ordered exactly
//! like the input regardless of thread count or scheduling. Combined with
//! the fact that each item's computation performs the identical sequence
//! of floating-point operations on any thread, N-thread results are
//! bit-identical to 1-thread results.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker threads actually spawned for `items` work items: never more
/// than there are items, so small batches do not pay the spawn cost of
/// idle threads (a worker that never pops an index still costs an OS
/// thread creation).
pub(crate) fn effective_workers(threads: usize, items: usize) -> usize {
    threads.min(items)
}

/// Maps `f` over `items`, using up to `threads` scoped worker threads,
/// returning results in input order.
///
/// `threads <= 1` (or a single item) runs inline with no thread overhead;
/// the output is identical either way.
pub(crate) fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = effective_workers(threads, items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, R)> = Vec::with_capacity(items.len());
    // Observability: one span per worker lifetime with busy/idle args.
    // `observe` is sampled once per pool so the hot pull loop pays zero
    // extra branches when recording is off.
    let observe = nsta_obs::recorder().is_enabled();
    let mut pool_span = nsta_obs::span!("par.pool");
    pool_span.set_arg("workers", workers as f64);
    pool_span.set_arg("items", items.len() as f64);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut worker_span = nsta_obs::span!("par.worker");
                    let spawned = observe.then(std::time::Instant::now);
                    let mut busy_ns = 0u128;
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        if observe {
                            let t0 = std::time::Instant::now();
                            local.push((i, f(item)));
                            busy_ns += t0.elapsed().as_nanos();
                        } else {
                            local.push((i, f(item)));
                        }
                    }
                    if let Some(spawned) = spawned {
                        let lifetime_ns = spawned.elapsed().as_nanos();
                        worker_span.set_arg("items", local.len() as f64);
                        worker_span.set_arg("busy_us", busy_ns as f64 / 1_000.0);
                        // Time the worker spent outside `f`: queue pulls,
                        // allocation, and (dominantly) waiting to be
                        // scheduled while other workers drained the queue.
                        worker_span
                            .set_arg("idle_us", lifetime_ns.saturating_sub(busy_ns) as f64 / 1e3);
                        nsta_obs::count!("par.items_processed", local.len());
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            tagged.extend(h.join().expect("sweep worker panicked"));
        }
    });
    // Deterministic merge: scatter back into input order.
    tagged.sort_unstable_by_key(|&(i, _)| i);
    debug_assert_eq!(tagged.len(), items.len());
    tagged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_for_any_thread_count() {
        let items: Vec<usize> = (0..97).collect();
        let expect: Vec<usize> = items.iter().map(|i| i * i).collect();
        for threads in [0, 1, 2, 3, 8, 200] {
            assert_eq!(par_map(threads, &items, |&i| i * i), expect);
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(4, &empty, |&x| x).is_empty());
        assert_eq!(par_map(4, &[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn worker_count_clamps_to_item_count() {
        // Tiny batches must not spawn idle threads.
        assert_eq!(effective_workers(8, 3), 3);
        assert_eq!(effective_workers(8, 0), 0);
        assert_eq!(effective_workers(1, 100), 1);
        assert_eq!(effective_workers(0, 100), 0);
        assert_eq!(effective_workers(4, 4), 4);
    }

    #[test]
    fn fewer_items_than_threads_is_correct_and_ordered() {
        // items < threads: the clamp leaves one worker per item; results
        // must still come back complete and in input order.
        let items = [10usize, 20, 30];
        assert_eq!(par_map(64, &items, |&i| i + 1), vec![11, 21, 31]);
        // Two items, many threads — exercises the 2-worker path.
        let pair = [1u64, 2];
        assert_eq!(par_map(200, &pair, |&i| i * 3), vec![3, 6]);
    }

    #[test]
    fn global_counters_are_exact_under_the_worker_pool() {
        // Four workers hammering one named counter must lose no update:
        // the per-counter cell is atomic, the registry lock only resolves
        // the name.
        let _guard = crate::obs_test_guard();
        let rec = nsta_obs::recorder();
        rec.reset();
        rec.enable();
        let items: Vec<u64> = (0..10_000).collect();
        let out = par_map(4, &items, |&i| {
            nsta_obs::count!("par.test.bumps");
            i
        });
        rec.disable();
        let bumps = rec.metrics().get("par.test.bumps");
        let processed = rec.metrics().get("par.items_processed");
        rec.reset();
        assert_eq!(out.len(), items.len());
        assert_eq!(bumps, Some(10_000.0));
        // The pool's own accounting covers every item exactly once too.
        assert_eq!(processed, Some(10_000.0));
    }

    #[test]
    fn results_can_be_fallible() {
        let items = [1i32, -2, 3];
        let out: Vec<Result<i32, String>> = par_map(2, &items, |&i| {
            if i < 0 {
                Err(format!("bad {i}"))
            } else {
                Ok(i)
            }
        });
        assert_eq!(out[0], Ok(1));
        assert!(out[1].is_err());
        assert_eq!(out[2], Ok(3));
    }
}
