//! Linear circuit engine for interconnect analysis.
//!
//! This crate provides the *linear* half of the simulation substrate: RC
//! networks (including coupled lines), ideal and Thevenin drivers, and a
//! trapezoidal transient solver built on modified nodal analysis. It is used
//! for
//!
//! * constructing the coupled-interconnect topologies of the paper's Figure 1,
//! * STA-side crosstalk noise estimation (superposition of a victim
//!   transition and aggressor-induced noise), and
//! * as the linear-element backbone reused by the nonlinear simulator in
//!   `nsta-spice`.
//!
//! Node voltages are solved with the trapezoidal rule, which integrates the
//! piecewise-linear sources used throughout this workspace exactly in their
//! linear segments and is A-stable for stiff RC meshes.
//!
//! ```
//! use nsta_circuit::{Circuit, TransientOptions};
//! use nsta_waveform::Waveform;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut ckt = Circuit::new();
//! let inp = ckt.node("in");
//! let out = ckt.node("out");
//! ckt.resistor(inp, out, 1_000.0)?;            // 1 kΩ
//! ckt.capacitor(out, Circuit::GROUND, 1e-12)?; // 1 pF
//! let step = Waveform::new(vec![0.0, 1e-12, 10e-9], vec![0.0, 1.0, 1.0])?;
//! ckt.vsource(inp, step)?;
//! let result = ckt.run_transient(TransientOptions::new(0.0, 10e-9, 10e-12)?)?;
//! let v_out = result.voltage(out)?;
//! // RC = 1 ns: ~63% at t = 1 ns.
//! assert!((v_out.value_at(1e-9) - 0.632).abs() < 0.01);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod builder;
mod error;
mod rcline;
mod transient;

pub use builder::{Circuit, NodeId};
pub use error::CircuitError;
// Callers classifying solver failures (the STA fallback chain) need the
// wrapped numeric error without taking their own nsta-numeric dependency.
pub use nsta_numeric::NumericError;
pub use rcline::{CoupledLines, RcLineSpec, StarCoupledLines};
pub use transient::{FactoredSystem, SolverBackend, TransientOptions, TransientResult};
