use crate::CircuitError;
use nsta_waveform::Waveform;
use std::sync::Arc;

/// Handle to a circuit node.
///
/// Obtained from [`Circuit::node`]; the distinguished [`Circuit::GROUND`]
/// refers to the reference node. Node ids are only meaningful within the
/// circuit that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    pub(crate) const GROUND_SENTINEL: usize = usize::MAX;

    /// `true` if this is the ground/reference node.
    pub fn is_ground(self) -> bool {
        self.0 == Self::GROUND_SENTINEL
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Resistor {
    pub a: usize,
    pub b: usize,
    pub conductance: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct Capacitor {
    pub a: usize,
    pub b: usize,
    pub farads: f64,
}

/// Source waveforms are reference-counted so [`Circuit::factor_transient`]
/// can capture them without deep-cloning sample buffers per factorization.
#[derive(Debug, Clone)]
pub(crate) struct VSource {
    pub node: usize,
    pub waveform: Arc<Waveform>,
}

#[derive(Debug, Clone)]
pub(crate) struct ISource {
    pub node: usize,
    pub waveform: Arc<Waveform>,
}

/// A linear circuit under construction: named nodes plus R, C, coupling-C,
/// ideal voltage-source and current-source elements.
///
/// Ideal voltage sources pin their node to a [`Waveform`]; such *driven*
/// nodes are eliminated from the MNA unknowns, which keeps the solve small
/// and makes the common "ramp through an RC mesh" case exact for
/// piecewise-linear drives.
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    /// Node names; `None` for anonymous nodes (see [`Circuit::anon_node`]).
    names: Vec<Option<String>>,
    pub(crate) resistors: Vec<Resistor>,
    pub(crate) capacitors: Vec<Capacitor>,
    pub(crate) vsources: Vec<VSource>,
    pub(crate) isources: Vec<ISource>,
}

impl Circuit {
    /// The reference node: all sources and grounded capacitors refer to it.
    pub const GROUND: NodeId = NodeId(NodeId::GROUND_SENTINEL);

    /// Creates an empty circuit.
    pub fn new() -> Self {
        Circuit::default()
    }

    /// Creates (or looks up) a named node and returns its id.
    ///
    /// Calling `node` twice with the same name returns the same id, so
    /// subcircuit builders can meet at shared connection points by name.
    pub fn node(&mut self, name: &str) -> NodeId {
        if let Some(pos) = self.names.iter().position(|n| n.as_deref() == Some(name)) {
            return NodeId(pos);
        }
        self.names.push(Some(name.to_owned()));
        NodeId(self.names.len() - 1)
    }

    /// Creates a fresh anonymous node.
    ///
    /// Anonymous nodes carry no name: creating one neither allocates a
    /// string nor scans the name table, so hot circuit-construction loops
    /// (one coupled bundle per victim per crosstalk iteration) stay
    /// allocation-free. They can never be returned by [`Circuit::node`].
    pub fn anon_node(&mut self) -> NodeId {
        self.names.push(None);
        NodeId(self.names.len() - 1)
    }

    /// Number of non-ground nodes created so far.
    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    /// Name of a node; anonymous nodes report as `"<anon>"`.
    ///
    /// # Errors
    ///
    /// [`CircuitError::UnknownNode`] for ids from another circuit.
    pub fn node_name(&self, id: NodeId) -> Result<&str, CircuitError> {
        if id.is_ground() {
            return Ok("0");
        }
        self.names
            .get(id.0)
            .map(|n| n.as_deref().unwrap_or("<anon>"))
            .ok_or(CircuitError::UnknownNode { index: id.0 })
    }

    fn check(&self, id: NodeId) -> Result<usize, CircuitError> {
        if id.is_ground() {
            return Ok(NodeId::GROUND_SENTINEL);
        }
        if id.0 < self.names.len() {
            Ok(id.0)
        } else {
            Err(CircuitError::UnknownNode { index: id.0 })
        }
    }

    /// Adds a resistor of `ohms` between `a` and `b`.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::InvalidElement`] unless `ohms` is finite and > 0.
    /// * [`CircuitError::DegenerateElement`] if `a == b`.
    /// * [`CircuitError::UnknownNode`] for foreign node ids.
    pub fn resistor(&mut self, a: NodeId, b: NodeId, ohms: f64) -> Result<(), CircuitError> {
        if !(ohms.is_finite() && ohms > 0.0) {
            return Err(CircuitError::InvalidElement(
                "resistance must be finite and positive",
            ));
        }
        let (ia, ib) = (self.check(a)?, self.check(b)?);
        if ia == ib {
            return Err(CircuitError::DegenerateElement(
                "resistor terminals coincide",
            ));
        }
        self.resistors.push(Resistor {
            a: ia,
            b: ib,
            conductance: 1.0 / ohms,
        });
        Ok(())
    }

    /// Adds a capacitor of `farads` between `a` and `b` (use
    /// [`Circuit::GROUND`] for a grounded capacitor; a floating `a`–`b`
    /// capacitor models coupling).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Circuit::resistor`], with capacitance > 0.
    pub fn capacitor(&mut self, a: NodeId, b: NodeId, farads: f64) -> Result<(), CircuitError> {
        if !(farads.is_finite() && farads > 0.0) {
            return Err(CircuitError::InvalidElement(
                "capacitance must be finite and positive",
            ));
        }
        let (ia, ib) = (self.check(a)?, self.check(b)?);
        if ia == ib {
            return Err(CircuitError::DegenerateElement(
                "capacitor terminals coincide",
            ));
        }
        self.capacitors.push(Capacitor {
            a: ia,
            b: ib,
            farads,
        });
        Ok(())
    }

    /// Pins `node` to the voltage `waveform` with an ideal source.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::AlreadyDriven`] if the node is already pinned.
    /// * [`CircuitError::DegenerateElement`] when driving ground.
    /// * [`CircuitError::UnknownNode`] for foreign node ids.
    pub fn vsource(&mut self, node: NodeId, waveform: Waveform) -> Result<(), CircuitError> {
        let idx = self.check(node)?;
        if node.is_ground() {
            return Err(CircuitError::DegenerateElement(
                "cannot drive the ground node",
            ));
        }
        if self.vsources.iter().any(|s| s.node == idx) {
            return Err(CircuitError::AlreadyDriven {
                name: self.names[idx].clone().unwrap_or_else(|| "<anon>".into()),
            });
        }
        self.vsources.push(VSource {
            node: idx,
            waveform: Arc::new(waveform),
        });
        Ok(())
    }

    /// Injects the current `waveform` (amperes, positive into the node).
    ///
    /// # Errors
    ///
    /// * [`CircuitError::DegenerateElement`] when injecting into ground.
    /// * [`CircuitError::UnknownNode`] for foreign node ids.
    pub fn isource(&mut self, node: NodeId, waveform: Waveform) -> Result<(), CircuitError> {
        let idx = self.check(node)?;
        if node.is_ground() {
            return Err(CircuitError::DegenerateElement(
                "cannot inject into the ground node",
            ));
        }
        self.isources.push(ISource {
            node: idx,
            waveform: Arc::new(waveform),
        });
        Ok(())
    }

    /// Adds a Thevenin driver: an ideal source with `waveform` behind
    /// `r_drive` ohms, attached to `node`. Returns the internal source node.
    ///
    /// This is the standard STA abstraction of a driving gate for linear SI
    /// noise analysis.
    ///
    /// # Errors
    ///
    /// Propagates the underlying [`Circuit::vsource`]/[`Circuit::resistor`]
    /// failures.
    pub fn thevenin_driver(
        &mut self,
        node: NodeId,
        waveform: Waveform,
        r_drive: f64,
    ) -> Result<NodeId, CircuitError> {
        let src = self.anon_node();
        self.vsource(src, waveform)?;
        self.resistor(src, node, r_drive)?;
        Ok(src)
    }

    /// Total capacitance attached to `node` (grounded plus coupling), a
    /// convenience for effective-load calculations.
    ///
    /// # Errors
    ///
    /// [`CircuitError::UnknownNode`] for foreign node ids.
    pub fn total_capacitance_at(&self, node: NodeId) -> Result<f64, CircuitError> {
        let idx = self.check(node)?;
        Ok(self
            .capacitors
            .iter()
            .filter(|c| c.a == idx || c.b == idx)
            .map(|c| c.farads)
            .sum())
    }

    /// Element counts `(resistors, capacitors, vsources, isources)` — used
    /// by the Figure-1 topology audit.
    pub fn element_counts(&self) -> (usize, usize, usize, usize) {
        (
            self.resistors.len(),
            self.capacitors.len(),
            self.vsources.len(),
            self.isources.len(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step() -> Waveform {
        Waveform::new(vec![0.0, 1.0], vec![0.0, 1.0]).unwrap()
    }

    #[test]
    fn node_identity_by_name() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        assert_ne!(a, b);
        assert_eq!(c.node("a"), a);
        assert_eq!(c.node_count(), 2);
        assert_eq!(c.node_name(a).unwrap(), "a");
        assert_eq!(c.node_name(Circuit::GROUND).unwrap(), "0");
    }

    #[test]
    fn element_validation() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        assert!(c.resistor(a, b, 100.0).is_ok());
        assert!(c.resistor(a, b, 0.0).is_err());
        assert!(c.resistor(a, b, -5.0).is_err());
        assert!(c.resistor(a, a, 1.0).is_err());
        assert!(c.capacitor(a, Circuit::GROUND, 1e-15).is_ok());
        assert!(c.capacitor(a, Circuit::GROUND, f64::NAN).is_err());
        let foreign = NodeId(99);
        assert!(matches!(
            c.resistor(a, foreign, 1.0),
            Err(CircuitError::UnknownNode { .. })
        ));
    }

    #[test]
    fn vsource_rules() {
        let mut c = Circuit::new();
        let a = c.node("a");
        assert!(c.vsource(a, step()).is_ok());
        assert!(matches!(
            c.vsource(a, step()),
            Err(CircuitError::AlreadyDriven { .. })
        ));
        assert!(c.vsource(Circuit::GROUND, step()).is_err());
        assert!(c.isource(Circuit::GROUND, step()).is_err());
    }

    #[test]
    fn thevenin_driver_adds_source_and_resistor() {
        let mut c = Circuit::new();
        let load = c.node("load");
        let src = c.thevenin_driver(load, step(), 120.0).unwrap();
        assert!(!src.is_ground());
        let (r, cap, v, i) = c.element_counts();
        assert_eq!((r, cap, v, i), (1, 0, 1, 0));
    }

    #[test]
    fn total_capacitance_sums_both_kinds() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.capacitor(a, Circuit::GROUND, 1e-15).unwrap();
        c.capacitor(a, b, 2e-15).unwrap();
        c.capacitor(b, Circuit::GROUND, 4e-15).unwrap();
        assert!((c.total_capacitance_at(a).unwrap() - 3e-15).abs() < 1e-21);
        assert!((c.total_capacitance_at(b).unwrap() - 6e-15).abs() < 1e-21);
    }
}
