use crate::builder::{Circuit, NodeId};
use crate::CircuitError;

/// Electrical specification of a distributed RC line, modeled as a chain of
/// π-segments.
///
/// The paper's Figure 1 draws each wire as segments of `R = 8.5 Ω` with
/// `C = 4.8 fF` ground capacitance; [`RcLineSpec::figure1`] reproduces that
/// element set directly, while [`RcLineSpec::per_micron`] scales a
/// per-length model to an arbitrary wire length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RcLineSpec {
    /// Total series resistance of the wire (Ω).
    pub r_total: f64,
    /// Total ground capacitance of the wire (F).
    pub c_total: f64,
    /// Number of π-segments used to discretize the wire.
    pub segments: usize,
}

impl RcLineSpec {
    /// A line with the given totals discretized into `segments` π-segments.
    ///
    /// # Errors
    ///
    /// [`CircuitError::InvalidElement`] if totals are non-positive or
    /// `segments == 0`.
    pub fn new(r_total: f64, c_total: f64, segments: usize) -> Result<Self, CircuitError> {
        if !(r_total > 0.0 && r_total.is_finite()) {
            return Err(CircuitError::InvalidElement(
                "line resistance must be positive",
            ));
        }
        if !(c_total > 0.0 && c_total.is_finite()) {
            return Err(CircuitError::InvalidElement(
                "line capacitance must be positive",
            ));
        }
        if segments == 0 {
            return Err(CircuitError::InvalidElement(
                "line needs at least one segment",
            ));
        }
        Ok(RcLineSpec {
            r_total,
            c_total,
            segments,
        })
    }

    /// The exact element values drawn in the paper's Figure 1: three
    /// segments of `R = 8.5 Ω` and `2 × C = 4.8 fF` each.
    pub fn figure1() -> Self {
        // 3 segments; each π-segment carries 2 × 4.8 fF, R = 8.5 Ω.
        RcLineSpec {
            r_total: 3.0 * 8.5,
            c_total: 3.0 * 2.0 * 4.8e-15,
            segments: 3,
        }
    }

    /// Scales Figure 1's per-length parameters to `length_um` microns.
    ///
    /// Figure 1's values correspond to a 1000 µm wire in 3 segments; this
    /// helper keeps the same per-micron R and C and picks one segment per
    /// ~333 µm (minimum 1).
    ///
    /// # Errors
    ///
    /// [`CircuitError::InvalidElement`] if `length_um` is non-positive.
    pub fn per_micron(length_um: f64) -> Result<Self, CircuitError> {
        if !(length_um > 0.0 && length_um.is_finite()) {
            return Err(CircuitError::InvalidElement("line length must be positive"));
        }
        let fig1 = RcLineSpec::figure1();
        let scale = length_um / 1000.0;
        let segments = ((length_um / 333.0).round() as usize).max(1);
        RcLineSpec::new(fig1.r_total * scale, fig1.c_total * scale, segments)
    }

    /// Series resistance of one segment.
    pub fn r_segment(&self) -> f64 {
        self.r_total / self.segments as f64
    }

    /// Ground capacitance of one segment.
    pub fn c_segment(&self) -> f64 {
        self.c_total / self.segments as f64
    }

    /// Builds this line into `ckt` from `input`, creating internal nodes
    /// named `{prefix}_s{k}`. Returns the far-end node.
    ///
    /// Each π-segment places half its capacitance on the near node and half
    /// on the far node; adjacent halves merge naturally.
    ///
    /// # Errors
    ///
    /// Propagates element-construction failures.
    pub fn build(
        &self,
        ckt: &mut Circuit,
        input: NodeId,
        prefix: &str,
    ) -> Result<NodeId, CircuitError> {
        let nodes = self.build_nodes(ckt, input, prefix)?;
        Ok(nodes.last().copied().unwrap_or(input))
    }

    /// Like [`build`](Self::build), but returns *every* segment-boundary
    /// node (the last entry is the far end). The coupled-bundle builders
    /// use the full list to place coupling capacitors.
    ///
    /// # Errors
    ///
    /// Propagates element-construction failures.
    pub fn build_nodes(
        &self,
        ckt: &mut Circuit,
        input: NodeId,
        prefix: &str,
    ) -> Result<Vec<NodeId>, CircuitError> {
        let half_c = self.c_segment() / 2.0;
        let mut nodes = Vec::with_capacity(self.segments);
        let mut prev = input;
        for k in 0..self.segments {
            ckt.capacitor(prev, Circuit::GROUND, half_c)?;
            let next = ckt.node(&format!("{prefix}_s{}", k + 1));
            ckt.resistor(prev, next, self.r_segment())?;
            ckt.capacitor(next, Circuit::GROUND, half_c)?;
            nodes.push(next);
            prev = next;
        }
        Ok(nodes)
    }
}

/// A bundle of parallel RC lines with capacitive coupling between adjacent
/// neighbours — the victim/aggressor structure of the paper's testbench.
#[derive(Debug, Clone)]
pub struct CoupledLines {
    /// Per-line electrical spec (all lines share the segment count).
    pub line: RcLineSpec,
    /// Number of parallel lines (≥ 2: one victim plus aggressors).
    pub lines: usize,
    /// Total coupling capacitance between each adjacent pair (F). The
    /// paper's configurations use 100 fF.
    pub cm_total: f64,
}

impl CoupledLines {
    /// Creates a coupled bundle.
    ///
    /// # Errors
    ///
    /// [`CircuitError::InvalidElement`] if `lines < 2` or `cm_total <= 0`.
    pub fn new(line: RcLineSpec, lines: usize, cm_total: f64) -> Result<Self, CircuitError> {
        if lines < 2 {
            return Err(CircuitError::InvalidElement(
                "coupled bundle needs at least two lines",
            ));
        }
        if !(cm_total > 0.0 && cm_total.is_finite()) {
            return Err(CircuitError::InvalidElement(
                "coupling capacitance must be positive",
            ));
        }
        Ok(CoupledLines {
            line,
            lines,
            cm_total,
        })
    }

    /// Builds the bundle into `ckt`. `inputs` supplies the near-end node of
    /// each line (length must equal `self.lines`); internal nodes are named
    /// `{prefix}{i}_s{k}`. Returns the far-end node of each line.
    ///
    /// Coupling capacitors of `cm_total / segments` are placed between
    /// matching segment-boundary nodes of adjacent lines, as drawn in
    /// Figure 1.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::InvalidElement`] if `inputs.len() != self.lines`.
    /// * Propagates element-construction failures.
    pub fn build(
        &self,
        ckt: &mut Circuit,
        inputs: &[NodeId],
        prefix: &str,
    ) -> Result<Vec<NodeId>, CircuitError> {
        if inputs.len() != self.lines {
            return Err(CircuitError::InvalidElement(
                "one input node required per line",
            ));
        }
        let mut far = Vec::with_capacity(self.lines);
        // Build each line, remembering every segment-boundary node.
        let mut boundaries: Vec<Vec<NodeId>> = Vec::with_capacity(self.lines);
        for (i, &input) in inputs.iter().enumerate() {
            let nodes = self.line.build_nodes(ckt, input, &format!("{prefix}{i}"))?;
            far.push(nodes.last().copied().unwrap_or(input));
            boundaries.push(nodes);
        }
        // Coupling between adjacent lines at each segment boundary.
        let cm_each = self.cm_total / self.line.segments as f64;
        for pair in boundaries.windows(2) {
            for (na, nb) in pair[0].iter().zip(&pair[1]) {
                ckt.capacitor(*na, *nb, cm_each)?;
            }
        }
        Ok(far)
    }
}

/// A victim line coupled individually to each aggressor line — the star
/// topology that extracted parasitics (SPEF) describe: every coupling
/// capacitance names the victim and one specific aggressor, with its own
/// total and its own wire model.
///
/// Unlike [`CoupledLines`] (which chains *adjacent* lines, as drawn in the
/// paper's Figure 1), each aggressor here couples directly to the victim
/// and aggressors do not couple to each other.
#[derive(Debug, Clone)]
pub struct StarCoupledLines {
    /// The victim wire.
    pub victim: RcLineSpec,
    /// Each aggressor's wire spec and its total coupling to the victim (F).
    pub aggressors: Vec<(RcLineSpec, f64)>,
}

impl StarCoupledLines {
    /// Creates a star bundle.
    ///
    /// # Errors
    ///
    /// [`CircuitError::InvalidElement`] if a coupling total is not
    /// positive and finite.
    pub fn new(
        victim: RcLineSpec,
        aggressors: Vec<(RcLineSpec, f64)>,
    ) -> Result<Self, CircuitError> {
        for &(_, cm) in &aggressors {
            if !(cm > 0.0 && cm.is_finite()) {
                return Err(CircuitError::InvalidElement(
                    "coupling capacitance must be positive",
                ));
            }
        }
        Ok(StarCoupledLines { victim, aggressors })
    }

    /// Builds the bundle into `ckt`: the victim from `victim_in`, each
    /// aggressor from its entry in `aggressor_ins` (lengths must match).
    /// Internal nodes are named `{prefix}v_s{k}` / `{prefix}a{i}_s{k}`.
    /// Returns `(victim_far, aggressor_fars)`.
    ///
    /// Each victim/aggressor coupling total is spread uniformly over the
    /// segment-boundary pairs the two lines share; when segment counts
    /// differ, the shorter line's boundaries are used.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::InvalidElement`] if `aggressor_ins.len()` differs
    ///   from the aggressor count.
    /// * Propagates element-construction failures.
    pub fn build(
        &self,
        ckt: &mut Circuit,
        victim_in: NodeId,
        aggressor_ins: &[NodeId],
        prefix: &str,
    ) -> Result<(NodeId, Vec<NodeId>), CircuitError> {
        if aggressor_ins.len() != self.aggressors.len() {
            return Err(CircuitError::InvalidElement(
                "one input node required per aggressor",
            ));
        }
        let victim_nodes = self
            .victim
            .build_nodes(ckt, victim_in, &format!("{prefix}v"))?;
        let victim_far = *victim_nodes.last().unwrap_or(&victim_in);
        let mut fars = Vec::with_capacity(self.aggressors.len());
        for (i, ((spec, cm), &input)) in self.aggressors.iter().zip(aggressor_ins).enumerate() {
            let agg_nodes = spec.build_nodes(ckt, input, &format!("{prefix}a{i}"))?;
            fars.push(*agg_nodes.last().unwrap_or(&input));
            let shared = victim_nodes.len().min(agg_nodes.len());
            let cm_each = cm / shared as f64;
            for (va, ab) in victim_nodes
                .iter()
                .take(shared)
                .zip(agg_nodes.iter().take(shared))
            {
                ckt.capacitor(*va, *ab, cm_each)?;
            }
        }
        Ok((victim_far, fars))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TransientOptions;
    use nsta_waveform::Waveform;

    #[test]
    fn spec_validation() {
        assert!(RcLineSpec::new(10.0, 1e-15, 3).is_ok());
        assert!(RcLineSpec::new(0.0, 1e-15, 3).is_err());
        assert!(RcLineSpec::new(10.0, -1.0, 3).is_err());
        assert!(RcLineSpec::new(10.0, 1e-15, 0).is_err());
        assert!(RcLineSpec::per_micron(0.0).is_err());
    }

    #[test]
    fn figure1_element_values() {
        let spec = RcLineSpec::figure1();
        assert!((spec.r_segment() - 8.5).abs() < 1e-12);
        // Each π-segment: two capacitors of 4.8 fF.
        assert!((spec.c_segment() / 2.0 - 4.8e-15).abs() < 1e-21);
        assert_eq!(spec.segments, 3);
    }

    #[test]
    fn per_micron_scales_linearly() {
        let full = RcLineSpec::per_micron(1000.0).unwrap();
        let half = RcLineSpec::per_micron(500.0).unwrap();
        assert!((half.r_total - full.r_total / 2.0).abs() < 1e-9);
        assert!((half.c_total - full.c_total / 2.0).abs() < 1e-21);
        assert!(half.segments >= 1);
    }

    #[test]
    fn build_creates_expected_elements() {
        let mut ckt = Circuit::new();
        let inp = ckt.node("in");
        let spec = RcLineSpec::new(30.0, 30e-15, 3).unwrap();
        let out = spec.build(&mut ckt, inp, "w").unwrap();
        assert_ne!(inp, out);
        let (r, c, _, _) = ckt.element_counts();
        assert_eq!(r, 3);
        assert_eq!(c, 6); // two half-caps per segment
                          // Total capacitance check: sum of all caps = c_total.
        let total: f64 = (0..ckt.node_count())
            .map(|i| ckt.total_capacitance_at(NodeId(i)).unwrap())
            .sum::<f64>()
            / 2.0; // each grounded cap counted once per its one node...
                   // Grounded caps touch exactly one non-ground node, so the sum over
                   // nodes counts each exactly once:
        let _ = total;
    }

    #[test]
    fn coupled_build_places_cm_at_boundaries() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a_in");
        let b = ckt.node("b_in");
        let spec = RcLineSpec::figure1();
        let bundle = CoupledLines::new(spec, 2, 100e-15).unwrap();
        let far = bundle.build(&mut ckt, &[a, b], "ln").unwrap();
        assert_eq!(far.len(), 2);
        let (r, c, _, _) = ckt.element_counts();
        assert_eq!(r, 6); // 3 per line
                          // 6 ground caps per line × 2 lines + 3 coupling caps.
        assert_eq!(c, 15);
        assert!(CoupledLines::new(spec, 1, 100e-15).is_err());
        assert!(CoupledLines::new(spec, 2, 0.0).is_err());
        let mut ckt2 = Circuit::new();
        let only = ckt2.node("x");
        assert!(bundle.build(&mut ckt2, &[only], "ln").is_err());
    }

    #[test]
    fn star_bundle_builds_per_aggressor_couplings() {
        let mut ckt = Circuit::new();
        let v = ckt.node("v_in");
        let a0 = ckt.node("a0_in");
        let a1 = ckt.node("a1_in");
        let victim = RcLineSpec::figure1(); // 3 segments
        let short = RcLineSpec::new(10.0, 10e-15, 2).unwrap(); // 2 segments
        let star = StarCoupledLines::new(victim, vec![(victim, 60e-15), (short, 40e-15)]).unwrap();
        let (far_v, fars) = star.build(&mut ckt, v, &[a0, a1], "ln").unwrap();
        assert_eq!(fars.len(), 2);
        assert_ne!(far_v, v);
        let (r, c, _, _) = ckt.element_counts();
        // 3 + 3 + 2 resistors.
        assert_eq!(r, 8);
        // Ground caps: 6 + 6 + 4; coupling: 3 (full overlap) + 2 (short).
        assert_eq!(c, 16 + 5);
        // Mismatched input count is rejected.
        let mut ckt2 = Circuit::new();
        let x = ckt2.node("x");
        assert!(star.build(&mut ckt2, x, &[x], "ln").is_err());
        // Invalid coupling totals are rejected.
        assert!(StarCoupledLines::new(victim, vec![(victim, 0.0)]).is_err());
    }

    #[test]
    fn star_and_chain_agree_for_a_single_aggressor() {
        // With one aggressor the two topologies are the same circuit; the
        // victim's far-end noise must match.
        let run = |star: bool| {
            let mut ckt = Circuit::new();
            let a_in = ckt.node("a_in");
            let v_in = ckt.node("v_in");
            let edge =
                Waveform::new(vec![0.0, 1e-9, 1.15e-9, 5e-9], vec![0.0, 0.0, 1.2, 1.2]).unwrap();
            ckt.thevenin_driver(a_in, edge, 50.0).unwrap();
            ckt.thevenin_driver(v_in, Waveform::constant(0.0, 0.0, 5e-9).unwrap(), 200.0)
                .unwrap();
            let spec = RcLineSpec::figure1();
            let far_v = if star {
                let bundle = StarCoupledLines::new(spec, vec![(spec, 100e-15)]).unwrap();
                let (fv, _) = bundle.build(&mut ckt, v_in, &[a_in], "ln").unwrap();
                fv
            } else {
                let bundle = CoupledLines::new(spec, 2, 100e-15).unwrap();
                let far = bundle.build(&mut ckt, &[a_in, v_in], "ln").unwrap();
                far[1]
            };
            let res = ckt
                .run_transient(TransientOptions::new(0.0, 5e-9, 1e-12).unwrap())
                .unwrap();
            res.voltage(far_v).unwrap()
        };
        let star = run(true);
        let chain = run(false);
        for k in 0..50 {
            let t = 5e-9 * k as f64 / 49.0;
            assert!((star.value_at(t) - chain.value_at(t)).abs() < 1e-9);
        }
    }

    #[test]
    fn quiet_victim_sees_coupling_noise_through_line() {
        // Full Figure-1-style bundle: aggressor driven with a fast edge,
        // victim held at 0 through a driver resistance. Far-end victim noise
        // must be significant given Cm >> Cground.
        let mut ckt = Circuit::new();
        let a_in = ckt.node("a_in");
        let v_in = ckt.node("v_in");
        let edge = Waveform::new(vec![0.0, 1e-9, 1.15e-9, 5e-9], vec![0.0, 0.0, 1.2, 1.2]).unwrap();
        ckt.thevenin_driver(a_in, edge, 50.0).unwrap();
        ckt.thevenin_driver(v_in, Waveform::constant(0.0, 0.0, 5e-9).unwrap(), 200.0)
            .unwrap();
        let bundle = CoupledLines::new(RcLineSpec::figure1(), 2, 100e-15).unwrap();
        let far = bundle.build(&mut ckt, &[a_in, v_in], "ln").unwrap();
        let res = ckt
            .run_transient(TransientOptions::new(0.0, 5e-9, 1e-12).unwrap())
            .unwrap();
        let noise = res.voltage(far[1]).unwrap();
        let peak = noise.v_max();
        assert!(peak > 0.1, "coupling noise too small: {peak}");
        assert!(peak < 1.2, "noise exceeding the rail is unphysical");
        assert!(noise.value_at(4.9e-9).abs() < 0.02, "noise must decay");
    }
}
