use nsta_waveform::WaveformError;
use std::fmt;

/// Error type for circuit construction and simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitError {
    /// A node id did not belong to this circuit.
    UnknownNode {
        /// The offending node index.
        index: usize,
    },
    /// An element value was outside its physical domain (e.g. negative
    /// resistance).
    InvalidElement(&'static str),
    /// A node already carries an ideal voltage source.
    AlreadyDriven {
        /// Name of the node.
        name: String,
    },
    /// Both terminals of a two-terminal element were the same node.
    DegenerateElement(&'static str),
    /// Simulation options were invalid (empty span, non-positive step…).
    InvalidOptions(&'static str),
    /// The MNA system could not be solved.
    Numeric(nsta_numeric::NumericError),
    /// A waveform operation failed while preparing sources or results.
    Waveform(WaveformError),
    /// A result was requested for a quantity the run did not record.
    NotRecorded(&'static str),
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::UnknownNode { index } => write!(f, "unknown node index {index}"),
            CircuitError::InvalidElement(what) => write!(f, "invalid element: {what}"),
            CircuitError::AlreadyDriven { name } => {
                write!(f, "node {name} already has a voltage source")
            }
            CircuitError::DegenerateElement(what) => write!(f, "degenerate element: {what}"),
            CircuitError::InvalidOptions(what) => write!(f, "invalid options: {what}"),
            CircuitError::Numeric(e) => write!(f, "numeric failure: {e}"),
            CircuitError::Waveform(e) => write!(f, "waveform failure: {e}"),
            CircuitError::NotRecorded(what) => write!(f, "not recorded: {what}"),
        }
    }
}

impl std::error::Error for CircuitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CircuitError::Numeric(e) => Some(e),
            CircuitError::Waveform(e) => Some(e),
            _ => None,
        }
    }
}

impl From<nsta_numeric::NumericError> for CircuitError {
    fn from(e: nsta_numeric::NumericError) -> Self {
        CircuitError::Numeric(e)
    }
}

impl From<WaveformError> for CircuitError {
    fn from(e: WaveformError) -> Self {
        CircuitError::Waveform(e)
    }
}
