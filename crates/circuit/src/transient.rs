use crate::builder::{Circuit, NodeId};
use crate::CircuitError;
use nsta_numeric::{CsrMatrix, DenseMatrix, LuFactors, SparseLu, TripletMatrix};
use nsta_waveform::Waveform;
use std::sync::Arc;

/// Linear-solver backend of the transient kernel.
///
/// The stamped MNA systems of star-coupled RC stages are nearly
/// tridiagonal and diagonally dominant, so the default
/// [`SolverBackend::Sparse`] factors and steps them in ~O(nnz) with the
/// no-pivot [`SparseLu`] kernels. [`SolverBackend::Dense`] keeps the
/// partial-pivoting dense path as a parity baseline and as the escape
/// hatch for systems that are not no-pivot factorable; both backends
/// integrate the exact same trapezoidal system, so their waveforms agree
/// to solver round-off (≪ 1 nV on realistic meshes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SolverBackend {
    /// CSR storage + no-pivot sparse LU (default): O(nnz) factor/step on
    /// banded RC meshes.
    #[default]
    Sparse,
    /// Row-major dense storage + partial-pivoting LU: O(n³)/O(n²), kept
    /// for parity gating and non-dominant systems.
    Dense,
}

impl SolverBackend {
    /// Stable lowercase name, used by bench reports.
    pub fn name(self) -> &'static str {
        match self {
            SolverBackend::Sparse => "sparse",
            SolverBackend::Dense => "dense",
        }
    }
}

/// Options for a transient run: `[t_start, t_stop]` with fixed step `dt`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientOptions {
    t_start: f64,
    t_stop: f64,
    dt: f64,
    gmin: f64,
    zero_initial_state: bool,
    backend: SolverBackend,
}

impl TransientOptions {
    /// Creates options for a run over `[t_start, t_stop]` with step `dt`.
    ///
    /// # Errors
    ///
    /// [`CircuitError::InvalidOptions`] unless
    /// `t_stop > t_start`, `dt > 0`, and `dt < (t_stop − t_start)`.
    pub fn new(t_start: f64, t_stop: f64, dt: f64) -> Result<Self, CircuitError> {
        if !(t_stop.is_finite() && t_start.is_finite() && dt.is_finite()) {
            return Err(CircuitError::InvalidOptions("times must be finite"));
        }
        if !(t_stop > t_start) {
            return Err(CircuitError::InvalidOptions("t_stop must exceed t_start"));
        }
        if !(dt > 0.0) || dt >= t_stop - t_start {
            return Err(CircuitError::InvalidOptions(
                "dt must be positive and smaller than span",
            ));
        }
        Ok(TransientOptions {
            t_start,
            t_stop,
            dt,
            gmin: 1e-12,
            zero_initial_state: false,
            backend: SolverBackend::default(),
        })
    }

    /// Selects the linear-solver backend (default [`SolverBackend::Sparse`]).
    #[must_use]
    pub fn with_backend(mut self, backend: SolverBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Starts the run from all-zero node voltages instead of the DC
    /// operating point at `t_start`.
    ///
    /// Use this for charge-injection scenarios (pure current sources into
    /// capacitive meshes) where a resistive DC solution does not exist.
    #[must_use]
    pub fn with_zero_initial_state(mut self) -> Self {
        self.zero_initial_state = true;
        self
    }

    /// Overrides the leakage conductance added from every node to ground.
    ///
    /// The default of 1 pS regularizes meshes with capacitor-only nodes
    /// without measurably loading realistic RC interconnect.
    #[must_use]
    pub fn with_gmin(mut self, gmin: f64) -> Self {
        self.gmin = gmin;
        self
    }

    /// Start of the simulation window (seconds).
    pub fn t_start(&self) -> f64 {
        self.t_start
    }

    /// End of the simulation window (seconds).
    pub fn t_stop(&self) -> f64 {
        self.t_stop
    }

    /// Fixed timestep (seconds).
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// The selected linear-solver backend.
    pub fn backend(&self) -> SolverBackend {
        self.backend
    }
}

/// Voltages recorded by a transient run, queryable per node.
#[derive(Debug, Clone)]
pub struct TransientResult {
    /// Shared with the [`FactoredSystem`] that produced the run — cache-hit
    /// victims reuse one grid allocation instead of cloning it per run.
    times: Arc<[f64]>,
    /// Time-major flat buffer: `data[ti * nodes + node]`. The step loop
    /// appends one contiguous row per timestep (instead of touching one
    /// cache line per node), and [`TransientResult::voltage`] pays the
    /// strided gather once per queried node.
    data: Vec<f64>,
    nodes: usize,
}

impl TransientResult {
    /// The simulation time points.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// The voltage trace of `node` as a [`Waveform`].
    ///
    /// # Errors
    ///
    /// * [`CircuitError::NotRecorded`] for the ground node.
    /// * [`CircuitError::UnknownNode`] for foreign ids.
    pub fn voltage(&self, node: NodeId) -> Result<Waveform, CircuitError> {
        if node.is_ground() {
            return Err(CircuitError::NotRecorded(
                "ground voltage is identically zero",
            ));
        }
        if node.0 >= self.nodes {
            return Err(CircuitError::UnknownNode { index: node.0 });
        }
        let trace: Vec<f64> = self
            .data
            .chunks_exact(self.nodes)
            .map(|row| row[node.0])
            .collect();
        Ok(Waveform::new(self.times.to_vec(), trace)?)
    }
}

/// An assembled and factored trapezoidal integrator for one [`Circuit`]
/// topology at one fixed timestep — a self-contained **value**, owning
/// every matrix and index table the step loop needs.
///
/// [`Circuit::factor_transient`] splits the solver into two phases:
///
/// * **assemble/factor** (done once here): stamp `G`/`C`, eliminate driven
///   nodes, precompute the step matrix `C − (h/2)·G`, and LU-factor both
///   the trapezoidal left-hand side `C + (h/2)·G` and the DC operating
///   point system;
/// * **step** ([`FactoredSystem::run`], [`FactoredSystem::run_with_vsources`],
///   [`FactoredSystem::run_nodes`]): sample the sources on the time grid
///   and sweep the factored system across it.
///
/// Because the factors depend only on topology, element values and `dt` —
/// never on source waveforms — a `FactoredSystem` is parameterized purely
/// by source vectors: it borrows nothing from the circuit it was factored
/// from, can be stored in caches, shared across threads, and reused for
/// **any structurally identical circuit** (same elements, same values, same
/// construction order — node ids then line up by construction). The
/// crosstalk flow exploits exactly that: one factorization serves a
/// victim's noisy/noiseless pair, every fixed-point iteration, and every
/// other victim whose reduced stage has the same topology signature.
#[derive(Debug)]
pub struct FactoredSystem {
    opts: TransientOptions,
    /// Shared time grid: handed to every [`TransientResult`] by refcount
    /// instead of by clone, so cache-hit runs stop allocating it per
    /// victim.
    times: Arc<[f64]>,
    /// Node count of the source topology (driven + free).
    n: usize,
    /// Free unknowns / driven (vsource) node counts.
    nf: usize,
    nd: usize,
    /// Node index -> free slot (`usize::MAX` for driven nodes).
    position: Vec<usize>,
    /// Node index -> vsource slot (`usize::MAX` for free nodes).
    driven_slot: Vec<usize>,
    is_driven: Vec<bool>,
    g_uk: DenseMatrix,
    c_uk: DenseMatrix,
    /// The factored step matrices in the selected backend's storage.
    factors: StepFactors,
    /// The source circuit's own vsource waveforms (construction order,
    /// shared with the circuit by refcount), so [`FactoredSystem::run`]
    /// works without the circuit.
    default_sources: Vec<Arc<Waveform>>,
    /// Current injections captured at factor time: `(free row, waveform)`.
    /// Injections into ideally driven nodes are absorbed and dropped here.
    injections: Vec<(usize, Arc<Waveform>)>,
}

/// Backend-specific storage of the step matrix `C − (h/2)·G`, the factored
/// trapezoidal LHS `C + (h/2)·G`, and the DC system `G` (absent when the
/// run starts from an all-zero state).
// One instance lives per factored system and both variants are dominated
// by their heap-side buffers, so boxing the larger variant would only add
// an indirection to the per-step hot loop.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum StepFactors {
    Dense {
        rhs_mat: DenseMatrix,
        lhs_lu: LuFactors,
        dc_lu: Option<LuFactors>,
    },
    Sparse {
        rhs_mat: CsrMatrix,
        lhs_lu: SparseLu,
        dc_lu: Option<SparseLu>,
    },
}

impl Circuit {
    /// Runs a trapezoidal-rule transient analysis.
    ///
    /// Driven (voltage-source) nodes are eliminated from the unknowns; the
    /// remaining system `C·x' + G·x = b(t)` is integrated with the
    /// trapezoidal rule, which is exact for the piecewise-linear sources
    /// used across this workspace within each linear segment. The initial
    /// state is the DC solution at `t_start` (capacitors open).
    ///
    /// Equivalent to `self.factor_transient(opts)?.run()`; call
    /// [`Circuit::factor_transient`] directly to reuse the factorization
    /// across several source vectors.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::Numeric`] if the mesh is singular even with gmin
    ///   regularization.
    /// * Propagated construction errors for malformed options.
    pub fn run_transient(&self, opts: TransientOptions) -> Result<TransientResult, CircuitError> {
        self.factor_transient(opts)?.run()
    }

    /// Assembles and factors the trapezoidal system once, returning an
    /// owned [`FactoredSystem`] that can be run repeatedly against
    /// different source waveforms — and, because it borrows nothing from
    /// `self`, cached and shared across structurally identical circuits.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::Numeric`] if the mesh is singular even with gmin
    ///   regularization.
    pub fn factor_transient(&self, opts: TransientOptions) -> Result<FactoredSystem, CircuitError> {
        let n = self.node_count();
        // Partition nodes: driven nodes take known voltages, the rest are
        // unknowns. `position[i]` maps node -> unknown slot.
        let mut is_driven = vec![false; n];
        for s in &self.vsources {
            is_driven[s.node] = true;
        }
        let mut position = vec![usize::MAX; n];
        let mut nf = 0usize;
        for i in 0..n {
            if !is_driven[i] {
                position[i] = nf;
                nf += 1;
            }
        }

        // Full-system stamps split into UU (free-free) and UK (free-driven).
        // The UU blocks are assembled as triplets — the sparse backend
        // consumes them directly, the dense backend densifies them (the
        // conversion sums duplicates in stamp order, so the dense values
        // are bit-identical to stamping a dense matrix element by element).
        let mut g_uu = TripletMatrix::new(nf, nf);
        let mut c_uu = TripletMatrix::new(nf, nf);
        // Dense free×driven couplers; the driven count is tiny.
        let nd = self.vsources.len();
        let mut driven_slot = vec![usize::MAX; n];
        for (k, s) in self.vsources.iter().enumerate() {
            driven_slot[s.node] = k;
        }
        let mut g_uk = DenseMatrix::zeros(nf, nd.max(1));
        let mut c_uk = DenseMatrix::zeros(nf, nd.max(1));

        let stamp2 =
            |m_uu: &mut TripletMatrix, m_uk: &mut DenseMatrix, a: usize, b: usize, v: f64| {
                let terminals = [(a, 1.0), (b, 1.0)];
                for (row_node, _) in terminals {
                    if row_node == NodeId::GROUND_SENTINEL || is_driven[row_node] {
                        continue;
                    }
                    let r = position[row_node];
                    // Diagonal (self) term.
                    m_uu.add(r, r, v);
                    // Off-diagonal to the other terminal.
                    let other = if row_node == a { b } else { a };
                    if other == NodeId::GROUND_SENTINEL {
                        continue;
                    }
                    if is_driven[other] {
                        m_uk.add(r, driven_slot[other], -v);
                    } else {
                        m_uu.add(r, position[other], -v);
                    }
                }
            };

        for r in &self.resistors {
            stamp2(&mut g_uu, &mut g_uk, r.a, r.b, r.conductance);
        }
        for c in &self.capacitors {
            stamp2(&mut c_uu, &mut c_uk, c.a, c.b, c.farads);
        }
        for r in 0..nf {
            g_uu.add(r, r, opts.gmin);
        }
        let g_csr = g_uu.to_csr();
        let c_csr = c_uu.to_csr();

        let h = opts.dt;
        let steps = ((opts.t_stop - opts.t_start) / h).round() as usize;
        let times: Arc<[f64]> = (0..=steps)
            .map(|k| opts.t_start + k as f64 * h)
            .collect::<Vec<_>>()
            .into();

        // Trapezoidal system, scaled by h: (C + hG/2) x_{n+1} =
        //   (C − hG/2) x_n − C_UK Δvk − h G_UK v̄k + h (inj_n + inj_{n+1})/2.
        // Both backends combine the exact same stamped values; they differ
        // only in storage and elimination order.
        let factors = match opts.backend {
            SolverBackend::Sparse => {
                let lhs = c_csr.add_scaled(&g_csr, h / 2.0)?;
                let lhs_lu = SparseLu::factor(&lhs)?;
                let rhs_mat = c_csr.add_scaled(&g_csr, -h / 2.0)?;
                let dc_lu = if opts.zero_initial_state {
                    None
                } else {
                    Some(SparseLu::factor(&g_csr)?)
                };
                StepFactors::Sparse {
                    rhs_mat,
                    lhs_lu,
                    dc_lu,
                }
            }
            SolverBackend::Dense => {
                let g_dense = g_csr.to_dense();
                let c_dense = c_csr.to_dense();
                let lhs = c_dense.add_scaled(&g_dense, h / 2.0)?;
                let lhs_lu = LuFactors::factor(&lhs)?;
                let rhs_mat = c_dense.add_scaled(&g_dense, -h / 2.0)?;
                let dc_lu = if opts.zero_initial_state {
                    None
                } else {
                    Some(LuFactors::factor(&g_dense)?)
                };
                StepFactors::Dense {
                    rhs_mat,
                    lhs_lu,
                    dc_lu,
                }
            }
        };

        let default_sources: Vec<Arc<Waveform>> =
            self.vsources.iter().map(|s| s.waveform.clone()).collect();
        let injections: Vec<(usize, Arc<Waveform>)> = self
            .isources
            .iter()
            .filter(|s| !is_driven[s.node]) // current into an ideally driven node is absorbed
            .map(|s| (position[s.node], s.waveform.clone()))
            .collect();

        let system = FactoredSystem {
            opts,
            times,
            n,
            nf,
            nd,
            position,
            driven_slot,
            is_driven,
            g_uk,
            c_uk,
            factors,
            default_sources,
            injections,
        };
        nsta_obs::count!("circuit.transient.factorizations");
        nsta_obs::recorder().gauge_max("circuit.transient.max_nnz", system.nnz() as f64);
        Ok(system)
    }
}

impl FactoredSystem {
    /// The simulation time points the system integrates over.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Number of voltage sources — `run_with_vsources`/`run_nodes` expect
    /// exactly this many replacement waveforms.
    pub fn source_count(&self) -> usize {
        self.nd
    }

    /// The linear-solver backend this system was factored with.
    pub fn backend(&self) -> SolverBackend {
        self.opts.backend
    }

    /// Stored entries of the factored trapezoidal left-hand side — the
    /// per-step solve cost. The dense backend reports the full `nf²`
    /// triangle pair it actually touches.
    pub fn nnz(&self) -> usize {
        match &self.factors {
            StepFactors::Sparse { lhs_lu, .. } => lhs_lu.factor_nnz(),
            StepFactors::Dense { .. } => self.nf * self.nf,
        }
    }

    /// Approximate resident size of this factored system in bytes, for
    /// cache budgeting. nnz-weighted: each stored factor entry is counted
    /// as a value plus an index (16 bytes), the RHS/DC factors as one more
    /// nnz each, plus the per-node bookkeeping vectors and the time grid.
    /// An estimate, not an allocator measurement — budgets compare it
    /// against other estimates from the same formula, which is all LRU
    /// eviction needs.
    pub fn approx_bytes(&self) -> usize {
        const ENTRY: usize = 16; // f64 value + column/row index
        let factor_entries = 3 * self.nnz(); // LHS factors + RHS matrix + DC factors
        let per_node = self.n * (3 * std::mem::size_of::<usize>());
        let grid = self.times.len() * std::mem::size_of::<f64>();
        factor_entries * ENTRY + per_node + grid + std::mem::size_of::<Self>()
    }

    /// Runs the integration with the waveforms of the circuit this system
    /// was factored from.
    ///
    /// # Errors
    ///
    /// Propagates numeric failures from the factored solves.
    pub fn run(&self) -> Result<TransientResult, CircuitError> {
        let waves: Vec<&Waveform> = self.default_sources.iter().map(|w| w.as_ref()).collect();
        self.run_with_vsources(&waves)
    }

    /// Runs the integration with replacement voltage-source waveforms,
    /// reusing the factorization. `sources[k]` drives the node pinned by
    /// the `k`-th [`Circuit::vsource`] call (Thevenin drivers register
    /// their source in construction order).
    ///
    /// # Errors
    ///
    /// * [`CircuitError::InvalidOptions`] if `sources.len()` differs from
    ///   the circuit's voltage-source count.
    /// * Propagates numeric failures from the factored solves.
    pub fn run_with_vsources(
        &self,
        sources: &[&Waveform],
    ) -> Result<TransientResult, CircuitError> {
        let n = self.n;
        let mut data = Vec::with_capacity(n * self.times.len());
        self.sweep(sources, |x, vk_now| {
            for i in 0..n {
                data.push(if self.is_driven[i] {
                    vk_now[self.driven_slot[i]]
                } else {
                    x[self.position[i]]
                });
            }
        })?;
        Ok(TransientResult {
            times: self.times.clone(),
            data,
            nodes: n,
        })
    }

    /// Runs the integration recording **only** the requested nodes and
    /// returns their voltage traces in request order.
    ///
    /// The arithmetic is identical to [`FactoredSystem::run_with_vsources`]
    /// — only the recording differs — so the returned waveforms are
    /// bit-identical to a full run followed by
    /// [`TransientResult::voltage`]. Hot callers that probe one node (the
    /// crosstalk flow reads a victim's far end out of a ~20-node mesh)
    /// skip both the full per-step record and the strided gather.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::InvalidOptions`] on a source-count mismatch.
    /// * [`CircuitError::NotRecorded`] if `nodes` names ground.
    /// * [`CircuitError::UnknownNode`] for foreign node ids.
    /// * Propagates numeric failures from the factored solves.
    pub fn run_nodes(
        &self,
        sources: &[&Waveform],
        nodes: &[NodeId],
    ) -> Result<Vec<Waveform>, CircuitError> {
        // Resolve each requested node to its storage slot up front.
        enum Slot {
            Free(usize),
            Driven(usize),
        }
        let slots: Vec<Slot> = nodes
            .iter()
            .map(|&node| {
                if node.is_ground() {
                    return Err(CircuitError::NotRecorded(
                        "ground voltage is identically zero",
                    ));
                }
                if node.0 >= self.n {
                    return Err(CircuitError::UnknownNode { index: node.0 });
                }
                Ok(if self.is_driven[node.0] {
                    Slot::Driven(self.driven_slot[node.0])
                } else {
                    Slot::Free(self.position[node.0])
                })
            })
            .collect::<Result<_, _>>()?;
        let width = slots.len();
        let mut data = Vec::with_capacity(width * self.times.len());
        self.sweep(sources, |x, vk_now| {
            for slot in &slots {
                data.push(match *slot {
                    Slot::Free(i) => x[i],
                    Slot::Driven(k) => vk_now[k],
                });
            }
        })?;
        (0..width)
            .map(|j| {
                let trace: Vec<f64> = data.chunks_exact(width.max(1)).map(|row| row[j]).collect();
                // A solve that went NaN/inf is a *numeric* failure — the
                // class the STA fallback chain retries on another backend —
                // not a waveform validation error.
                if trace.iter().any(|v| !v.is_finite()) {
                    return Err(CircuitError::Numeric(
                        nsta_numeric::NumericError::NonFinite("transient node voltages"),
                    ));
                }
                Ok(Waveform::new(self.times.to_vec(), trace)?)
            })
            .collect()
    }

    /// The shared step loop: samples sources, solves the DC initial
    /// condition, then marches the factored trapezoidal system across the
    /// grid, handing `(x, vk_row)` to `record` at every time point
    /// (including `t_start`).
    fn sweep(
        &self,
        sources: &[&Waveform],
        mut record: impl FnMut(&[f64], &[f64]),
    ) -> Result<(), CircuitError> {
        if sources.len() != self.nd {
            return Err(CircuitError::InvalidOptions(
                "one waveform required per voltage source",
            ));
        }
        let (nf, nd) = (self.nf, self.nd);
        let nt = self.times.len();
        // One bump per sweep, not per step — the disabled path stays a
        // single branch outside the integration loop.
        nsta_obs::count!("circuit.transient.sweeps");
        nsta_obs::count!("circuit.transient.steps", nt);
        let h = self.opts.dt;

        // Known node voltages at every time point (time-major: one row of
        // `nd` values per time point).
        let mut vk = vec![0.0; nt * nd];
        let mut scratch = Vec::new();
        for (k, w) in sources.iter().enumerate() {
            w.sample_on_grid(&self.times, &mut scratch);
            for (ti, &v) in scratch.iter().enumerate() {
                vk[ti * nd + k] = v;
            }
        }
        // Injected currents at every time point (time-major, `nf` wide);
        // left empty when the system has no current injections, which skips
        // both the table fill and the per-step reads.
        let mut inj = Vec::new();
        if !self.injections.is_empty() {
            inj.resize(nt * nf, 0.0);
            for (r, waveform) in &self.injections {
                waveform.sample_on_grid(&self.times, &mut scratch);
                for (ti, &v) in scratch.iter().enumerate() {
                    inj[ti * nf + r] += v;
                }
            }
        }

        // DC initial condition: G_UU x = inj(t0) − G_UK·vK(t0).
        let dc_rhs = |has_dc: bool| -> Vec<f64> {
            if !has_dc {
                return vec![0.0; nf];
            }
            let mut rhs = if inj.is_empty() {
                vec![0.0; nf]
            } else {
                inj[..nf].to_vec()
            };
            for r in 0..nf {
                let gr = &self.g_uk.row(r)[..nd];
                for (k, g) in gr.iter().enumerate() {
                    rhs[r] -= g * vk[k];
                }
            }
            rhs
        };
        let mut x = match &self.factors {
            StepFactors::Dense {
                dc_lu: Some(dc), ..
            } => dc.solve(&dc_rhs(true))?,
            StepFactors::Sparse {
                dc_lu: Some(dc), ..
            } => dc.solve(&dc_rhs(true))?,
            _ => dc_rhs(false),
        };
        // Fault-injection site: poison the initial-condition state with
        // NaN, as a corrupted solve would. The NaN propagates through the
        // trapezoidal step recurrence, so every recorded sample — and any
        // waveform built from this sweep — turns non-finite. Inert (one
        // relaxed load) unless a plan is armed.
        if nsta_obs::fault::should_fire(nsta_obs::fault::NAN_SOLVE) {
            x.fill(f64::NAN);
        }

        // Source contributions of every step, tabulated up front so the
        // step loop reads one contiguous row instead of slicing the
        // coupler matrices per unknown per step:
        //   src[ti][r] = −C_UK Δvk − h G_UK v̄k + h (inj_n + inj_{n+1})/2.
        let mut src = vec![0.0; nt * nf];
        for ti in 1..nt {
            let vk_prev = &vk[(ti - 1) * nd..ti * nd];
            let vk_now = &vk[ti * nd..(ti + 1) * nd];
            let row = &mut src[ti * nf..(ti + 1) * nf];
            for r in 0..nf {
                let gr = &self.g_uk.row(r)[..nd];
                let cr = &self.c_uk.row(r)[..nd];
                let mut acc = 0.0;
                for k in 0..nd {
                    let dv = vk_now[k] - vk_prev[k];
                    let vbar = 0.5 * (vk_now[k] + vk_prev[k]);
                    acc -= cr[k] * dv + h * gr[k] * vbar;
                }
                row[r] = acc;
            }
            if !inj.is_empty() {
                let inj_prev = &inj[(ti - 1) * nf..ti * nf];
                let inj_now = &inj[ti * nf..(ti + 1) * nf];
                for r in 0..nf {
                    row[r] += h * 0.5 * (inj_now[r] + inj_prev[r]);
                }
            }
        }

        record(&x, &vk[..nd]);

        let mut x_next = vec![0.0; nf];
        match &self.factors {
            // Dense: the right-hand side is assembled row by row anyway,
            // so write it directly in the LU's permuted row order and skip
            // the permutation copy inside the solve.
            StepFactors::Dense {
                rhs_mat, lhs_lu, ..
            } => {
                let perm = lhs_lu.perm();
                for ti in 1..nt {
                    let s_row = &src[ti * nf..(ti + 1) * nf];
                    for (i, &r) in perm.iter().enumerate() {
                        // rhs = (C − hG/2)·x_n + src, off the precomputed matrices.
                        x_next[i] = nsta_numeric::dot(rhs_mat.row(r), &x) + s_row[r];
                    }
                    lhs_lu.solve_prepermuted_in_place(&mut x_next)?;
                    std::mem::swap(&mut x, &mut x_next);
                    record(&x, &vk[ti * nd..(ti + 1) * nd]);
                }
            }
            // Sparse: CSR mat-vec touches only stored entries and the
            // no-pivot factors eliminate in natural order, so the step is
            // O(nnz) with no permutation copy at all.
            StepFactors::Sparse {
                rhs_mat, lhs_lu, ..
            } => {
                for ti in 1..nt {
                    let s_row = &src[ti * nf..(ti + 1) * nf];
                    rhs_mat.mul_vec_into(&x, &mut x_next)?;
                    for (xi, s) in x_next.iter_mut().zip(s_row) {
                        *xi += s;
                    }
                    lhs_lu.solve_in_place(&mut x_next)?;
                    std::mem::swap(&mut x, &mut x_next);
                    record(&x, &vk[ti * nd..(ti + 1) * nd]);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_at(t0: f64, rise: f64, v: f64, t_end: f64) -> Waveform {
        // Boundary values are held outside the record, so starting the
        // record at t0 still models "low until t0".
        Waveform::new(vec![t0, t0 + rise, t_end], vec![0.0, v, v]).unwrap()
    }

    #[test]
    fn options_validate() {
        assert!(TransientOptions::new(0.0, 1.0, 0.01).is_ok());
        assert!(TransientOptions::new(1.0, 1.0, 0.01).is_err());
        assert!(TransientOptions::new(0.0, 1.0, 0.0).is_err());
        assert!(TransientOptions::new(0.0, 1.0, 2.0).is_err());
        assert!(TransientOptions::new(0.0, f64::NAN, 0.1).is_err());
    }

    #[test]
    fn rc_step_response_matches_analytic() {
        let (r, c) = (1_000.0, 1e-12); // τ = 1 ns
        let mut ckt = Circuit::new();
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.resistor(inp, out, r).unwrap();
        ckt.capacitor(out, Circuit::GROUND, c).unwrap();
        ckt.vsource(inp, step_at(0.0, 1e-15, 1.0, 10e-9)).unwrap();
        let res = ckt
            .run_transient(TransientOptions::new(0.0, 8e-9, 2e-12).unwrap())
            .unwrap();
        let v = res.voltage(out).unwrap();
        let tau = r * c;
        for t in [0.5e-9, 1e-9, 2e-9, 5e-9] {
            let expect = 1.0 - (-t / tau).exp();
            assert!(
                (v.value_at(t) - expect).abs() < 2e-3,
                "t={t:e}: got {} want {expect}",
                v.value_at(t)
            );
        }
    }

    #[test]
    fn trapezoidal_is_second_order() {
        // Halving dt should cut the error by ~4× for smooth drives.
        let (r, c) = (1_000.0, 1e-12);
        let drive = Waveform::from_fn(0.0, 10e-9, 5e-12, |t| {
            0.5 * (1.0 - (std::f64::consts::PI * t / 5e-9).cos())
        })
        .unwrap();
        let run = |dt: f64| {
            let mut ckt = Circuit::new();
            let inp = ckt.node("in");
            let out = ckt.node("out");
            ckt.resistor(inp, out, r).unwrap();
            ckt.capacitor(out, Circuit::GROUND, c).unwrap();
            ckt.vsource(inp, drive.clone()).unwrap();
            let res = ckt
                .run_transient(TransientOptions::new(0.0, 5e-9, dt).unwrap())
                .unwrap();
            res.voltage(out).unwrap().value_at(2.5e-9)
        };
        let fine = run(2.5e-12);
        let coarse = run(40e-12);
        let mid = run(20e-12);
        let err_coarse = (coarse - fine).abs();
        let err_mid = (mid - fine).abs();
        assert!(
            err_mid < err_coarse / 2.5,
            "expected ~4x reduction: {err_coarse} vs {err_mid}"
        );
    }

    #[test]
    fn dc_init_starts_settled() {
        // Source already at 1 V before t=0: no spurious transient.
        let mut ckt = Circuit::new();
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.resistor(inp, out, 500.0).unwrap();
        ckt.capacitor(out, Circuit::GROUND, 2e-12).unwrap();
        ckt.vsource(inp, Waveform::constant(1.0, 0.0, 1e-9).unwrap())
            .unwrap();
        let res = ckt
            .run_transient(TransientOptions::new(0.0, 1e-9, 1e-12).unwrap())
            .unwrap();
        let v = res.voltage(out).unwrap();
        assert!((v.value_at(0.0) - 1.0).abs() < 1e-9);
        assert!((v.value_at(0.9e-9) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn coupling_cap_injects_noise_into_quiet_line() {
        // Victim held by a resistive driver at 0; aggressor steps. The
        // coupling cap must kick the victim, which then decays back.
        let mut ckt = Circuit::new();
        let agg_src = ckt.node("agg_src");
        let agg = ckt.node("agg");
        let vic = ckt.node("vic");
        ckt.vsource(agg_src, step_at(1e-9, 50e-12, 1.0, 10e-9))
            .unwrap();
        ckt.resistor(agg_src, agg, 100.0).unwrap();
        ckt.capacitor(agg, Circuit::GROUND, 5e-15).unwrap();
        // Victim driver: Thevenin holding low.
        ckt.thevenin_driver(vic, Waveform::constant(0.0, 0.0, 10e-9).unwrap(), 200.0)
            .unwrap();
        ckt.capacitor(vic, Circuit::GROUND, 5e-15).unwrap();
        ckt.capacitor(agg, vic, 20e-15).unwrap();
        let res = ckt
            .run_transient(TransientOptions::new(0.0, 6e-9, 1e-12).unwrap())
            .unwrap();
        let v = res.voltage(vic).unwrap();
        let peak = v.v_max();
        assert!(peak > 0.05, "expected visible coupling noise, peak={peak}");
        assert!(peak < 1.0, "noise cannot exceed the aggressor swing");
        // Noise decays away by the end of the window.
        assert!(v.value_at(5.9e-9).abs() < 0.01);
        // Quiet before the aggressor moves.
        assert!(v.value_at(0.9e-9).abs() < 1e-6);
    }

    #[test]
    fn isource_charges_capacitor_linearly() {
        // 1 µA into 1 pF: dv/dt = 1 V/µs → 1 mV/ns.
        let mut ckt = Circuit::new();
        let n1 = ckt.node("n1");
        ckt.capacitor(n1, Circuit::GROUND, 1e-12).unwrap();
        ckt.isource(n1, Waveform::constant(1e-6, 0.0, 10e-9).unwrap())
            .unwrap();
        let res = ckt
            .run_transient(
                TransientOptions::new(0.0, 10e-9, 10e-12)
                    .unwrap()
                    .with_gmin(1e-15)
                    .with_zero_initial_state(),
            )
            .unwrap();
        let v = res.voltage(n1).unwrap();
        assert!((v.value_at(10e-9) - 0.01).abs() < 1e-4);
    }

    #[test]
    fn ladder_elmore_delay_is_sane() {
        // 5-stage RC ladder; Elmore ≈ Σ R_i C_downstream. 50% point of the
        // step response should land within ~[0.5, 1.4]× Elmore (log 2 ≈ 0.69
        // for 1 pole; distributed lines sit near 0.7–0.9).
        let mut ckt = Circuit::new();
        let mut prev = ckt.node("in");
        ckt.vsource(prev, step_at(0.0, 1e-15, 1.0, 50e-9)).unwrap();
        let (r, c) = (200.0, 50e-15);
        let mut nodes = Vec::new();
        for i in 0..5 {
            let n = ckt.node(&format!("n{i}"));
            ckt.resistor(prev, n, r).unwrap();
            ckt.capacitor(n, Circuit::GROUND, c).unwrap();
            nodes.push(n);
            prev = n;
        }
        let elmore: f64 = (1..=5).map(|i| r * c * (5 - i + 1) as f64).sum();
        let res = ckt
            .run_transient(TransientOptions::new(0.0, 10e-9, 1e-12).unwrap())
            .unwrap();
        let far = res.voltage(*nodes.last().unwrap()).unwrap();
        let t50 = far.first_crossing(0.5).unwrap();
        assert!(
            t50 > 0.4 * elmore && t50 < 1.4 * elmore,
            "t50={t50:e}, elmore={elmore:e}"
        );
    }

    /// The noisy/noiseless victim stage of the SI flow: two Thevenin
    /// drivers into a coupled pair of caps.
    fn coupled_pair(agg_wave: Waveform) -> (Circuit, NodeId) {
        let mut ckt = Circuit::new();
        let agg = ckt.node("agg");
        let vic = ckt.node("vic");
        ckt.thevenin_driver(agg, agg_wave, 100.0).unwrap();
        ckt.thevenin_driver(vic, Waveform::constant(0.0, 0.0, 6e-9).unwrap(), 200.0)
            .unwrap();
        ckt.capacitor(agg, Circuit::GROUND, 5e-15).unwrap();
        ckt.capacitor(vic, Circuit::GROUND, 5e-15).unwrap();
        ckt.capacitor(agg, vic, 20e-15).unwrap();
        (ckt, vic)
    }

    #[test]
    fn factored_reuse_is_bit_identical_to_fresh_runs() {
        // Same topology, two source vectors: one factored system must
        // reproduce separately assembled runs exactly.
        let quiet = Waveform::constant(0.0, 0.0, 6e-9).unwrap();
        let noisy_wave = step_at(1e-9, 50e-12, 1.0, 10e-9);
        let opts = TransientOptions::new(0.0, 6e-9, 2e-12).unwrap();

        let (ckt, vic) = coupled_pair(noisy_wave.clone());
        let system = ckt.factor_transient(opts).unwrap();
        let via_run = system.run().unwrap().voltage(vic).unwrap();
        let via_runtransient = ckt.run_transient(opts).unwrap().voltage(vic).unwrap();
        assert_eq!(via_run, via_runtransient);

        // Swap the aggressor quiet through the same factorization.
        let vic_hold = Waveform::constant(0.0, 0.0, 6e-9).unwrap();
        let overridden = system
            .run_with_vsources(&[&quiet, &vic_hold])
            .unwrap()
            .voltage(vic)
            .unwrap();
        let (fresh, vic2) = coupled_pair(quiet.clone());
        let rebuilt = fresh.run_transient(opts).unwrap().voltage(vic2).unwrap();
        assert_eq!(overridden, rebuilt);

        // Source-count mismatch is rejected.
        assert!(matches!(
            system.run_with_vsources(&[&quiet]),
            Err(CircuitError::InvalidOptions(_))
        ));
        assert_eq!(system.source_count(), 2);
    }

    #[test]
    fn factored_system_shared_across_identical_circuits() {
        // Two *separately built* circuits with identical structure: the
        // system factored from the first must reproduce the second's run
        // bit for bit when fed the second's sources — the contract the
        // SI topology cache relies on.
        let opts = TransientOptions::new(0.0, 6e-9, 2e-12).unwrap();
        let wave_a = step_at(1e-9, 50e-12, 1.0, 10e-9);
        let wave_b = step_at(2e-9, 80e-12, 1.0, 10e-9); // different timing, same topology

        let (ckt_a, vic_a) = coupled_pair(wave_a);
        let (ckt_b, vic_b) = coupled_pair(wave_b.clone());
        assert_eq!(vic_a, vic_b, "construction order fixes node ids");

        let shared = ckt_a.factor_transient(opts).unwrap();
        let vic_hold = Waveform::constant(0.0, 0.0, 6e-9).unwrap();
        let via_shared = shared
            .run_with_vsources(&[&wave_b, &vic_hold])
            .unwrap()
            .voltage(vic_b)
            .unwrap();
        let via_own = ckt_b.run_transient(opts).unwrap().voltage(vic_b).unwrap();
        assert_eq!(via_shared, via_own);

        // The factored system outlives the circuit it came from: it is an
        // owned value, not a borrow.
        drop(ckt_a);
        let again = shared
            .run_with_vsources(&[&wave_b, &vic_hold])
            .unwrap()
            .voltage(vic_b)
            .unwrap();
        assert_eq!(again, via_own);
    }

    #[test]
    fn run_nodes_matches_full_record() {
        let noisy_wave = step_at(1e-9, 50e-12, 1.0, 10e-9);
        let opts = TransientOptions::new(0.0, 6e-9, 2e-12).unwrap();
        let (ckt, vic) = coupled_pair(noisy_wave);
        let agg = NodeId(0); // first created node
        let system = ckt.factor_transient(opts).unwrap();
        let full = system.run().unwrap();
        let subset = system
            .run_with_vsources(&[&system.default_sources[0], &system.default_sources[1]])
            .unwrap();
        assert_eq!(full.voltage(vic).unwrap(), subset.voltage(vic).unwrap());
        // Subset recording: victim + a driven node, in request order.
        let waves: Vec<&Waveform> = system.default_sources.iter().map(|w| w.as_ref()).collect();
        let recorded = system.run_nodes(&waves, &[vic, agg]).unwrap();
        assert_eq!(recorded.len(), 2);
        assert_eq!(recorded[0], full.voltage(vic).unwrap());
        assert_eq!(recorded[1], full.voltage(agg).unwrap());
        // Ground and foreign nodes are rejected.
        assert!(matches!(
            system.run_nodes(&waves, &[Circuit::GROUND]),
            Err(CircuitError::NotRecorded(_))
        ));
        assert!(matches!(
            system.run_nodes(&waves, &[NodeId(99)]),
            Err(CircuitError::UnknownNode { .. })
        ));
    }

    #[test]
    fn ground_voltage_not_recorded() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource(a, step_at(0.0, 1e-12, 1.0, 1e-9)).unwrap();
        ckt.resistor(a, b, 100.0).unwrap();
        ckt.capacitor(b, Circuit::GROUND, 1e-15).unwrap();
        let res = ckt
            .run_transient(TransientOptions::new(0.0, 1e-9, 1e-12).unwrap())
            .unwrap();
        assert!(matches!(
            res.voltage(Circuit::GROUND),
            Err(CircuitError::NotRecorded(_))
        ));
        assert!(res.voltage(NodeId(42)).is_err());
        // Driven node is recorded and equals its source.
        let va = res.voltage(a).unwrap();
        assert!((va.value_at(0.5e-9) - 1.0).abs() < 1e-12);
    }
}
