//! Sparse ≡ dense backend parity on randomized stamped circuits.
//!
//! The two [`SolverBackend`]s integrate the exact same trapezoidal system —
//! they differ only in storage and elimination order — so every node's
//! waveform must agree to solver round-off (well under 1 nV on these
//! meshes). The topologies are randomized with the workspace's in-tree
//! xorshift PRNG: RC ladders with random element values, random extra
//! cross-coupling caps, and star-coupled victim/aggressor bundles (the
//! exact shape the SI flow factors).

// Integration tests panic on failure by design; the workspace's
// library-only unwrap/expect denies do not apply here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use nsta_circuit::{
    Circuit, NodeId, RcLineSpec, SolverBackend, StarCoupledLines, TransientOptions,
};
use nsta_waveform::Waveform;

/// Deterministic xorshift PRNG in `[0, 1)`.
fn rng(mut seed: u64) -> impl FnMut() -> f64 {
    move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        (seed >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn ramp(t0: f64, rise: f64, v: f64, t_end: f64) -> Waveform {
    Waveform::new(vec![t0, t0 + rise, t_end], vec![0.0, v, v]).unwrap()
}

/// Runs the same circuit construction under both backends and asserts
/// per-node waveform agreement within `tol` volts at every time point.
fn assert_backend_parity(build: impl Fn(&mut Circuit) -> Vec<NodeId>, opts: TransientOptions) {
    let run = |backend: SolverBackend| {
        let mut ckt = Circuit::new();
        let probes = build(&mut ckt);
        let res = ckt
            .run_transient(opts.with_backend(backend))
            .expect("transient run");
        probes
            .iter()
            .map(|&n| res.voltage(n).expect("probe"))
            .collect::<Vec<_>>()
    };
    let sparse = run(SolverBackend::Sparse);
    let dense = run(SolverBackend::Dense);
    assert_eq!(sparse.len(), dense.len());
    for (node, (s, d)) in sparse.iter().zip(&dense).enumerate() {
        assert_eq!(s.times(), d.times(), "grids must match");
        for (ti, (vs, vd)) in s.values().iter().zip(d.values()).enumerate() {
            assert!(
                (vs - vd).abs() < 1e-9,
                "node {node} step {ti}: sparse {vs:e} vs dense {vd:e}"
            );
        }
    }
}

#[test]
fn random_rc_ladders_agree_across_backends() {
    let mut next = rng(0x5eed_cafe_f00d_0001);
    for trial in 0..6 {
        let stages = 3 + (next() * 20.0) as usize;
        let r_base = 50.0 + 500.0 * next();
        let c_base = 2e-15 + 40e-15 * next();
        let rise = 20e-12 + 200e-12 * next();
        // Rebuildable construction: the closure is invoked once per
        // backend and must produce structurally identical circuits.
        let vals: Vec<(f64, f64)> = (0..stages)
            .map(|_| (r_base * (0.5 + next()), c_base * (0.5 + next())))
            .collect();
        let cross: Vec<(usize, usize, f64)> = (0..stages / 3)
            .map(|_| {
                (
                    (next() * stages as f64) as usize,
                    (next() * stages as f64) as usize,
                    1e-15 + 10e-15 * next(),
                )
            })
            .collect();
        assert_backend_parity(
            |ckt| {
                let inp = ckt.node("in");
                ckt.vsource(inp, ramp(0.1e-9, rise, 1.2, 4e-9)).unwrap();
                let mut prev = inp;
                let mut nodes = Vec::new();
                for (k, &(r, c)) in vals.iter().enumerate() {
                    let n = ckt.node(&format!("n{k}"));
                    ckt.resistor(prev, n, r).unwrap();
                    ckt.capacitor(n, Circuit::GROUND, c).unwrap();
                    nodes.push(n);
                    prev = n;
                }
                // Random long-range coupling caps break the pure band
                // structure, exercising symbolic fill-in.
                for &(a, b, c) in &cross {
                    let (na, nb) = (nodes[a.min(stages - 1)], nodes[b.min(stages - 1)]);
                    if na != nb {
                        ckt.capacitor(na, nb, c).unwrap();
                    }
                }
                nodes
            },
            TransientOptions::new(0.0, 4e-9, 4e-12).unwrap(),
        );
        let _ = trial;
    }
}

#[test]
fn random_star_coupled_bundles_agree_across_backends() {
    let mut next = rng(0xdead_beef_1234_5678);
    for _trial in 0..4 {
        let aggressors = 1 + (next() * 3.0) as usize;
        let segments = 2 + (next() * 12.0) as usize;
        let victim_line =
            RcLineSpec::new(10.0 + 60.0 * next(), 10e-15 + 40e-15 * next(), segments).unwrap();
        let agg_specs: Vec<(RcLineSpec, f64)> = (0..aggressors)
            .map(|_| {
                (
                    RcLineSpec::new(
                        10.0 + 60.0 * next(),
                        10e-15 + 40e-15 * next(),
                        1 + (next() * 12.0) as usize,
                    )
                    .unwrap(),
                    20e-15 + 80e-15 * next(),
                )
            })
            .collect();
        let arrivals: Vec<(f64, f64)> = (0..aggressors)
            .map(|_| (0.2e-9 + 1e-9 * next(), 30e-12 + 150e-12 * next()))
            .collect();
        let load = 1e-15 + 10e-15 * next();
        assert_backend_parity(
            |ckt| {
                let v_in = ckt.node("v_in");
                ckt.thevenin_driver(v_in, ramp(0.5e-9, 80e-12, 1.2, 5e-9), 200.0)
                    .unwrap();
                let mut agg_ins = Vec::new();
                for &(t0, rise) in &arrivals {
                    let a_in = ckt.anon_node();
                    ckt.thevenin_driver(a_in, ramp(t0, rise, 1.2, 5e-9), 120.0)
                        .unwrap();
                    agg_ins.push(a_in);
                }
                let bundle = StarCoupledLines::new(victim_line, agg_specs.clone()).unwrap();
                let (far, mut agg_fars) = bundle.build(ckt, v_in, &agg_ins, "w").unwrap();
                ckt.capacitor(far, Circuit::GROUND, load).unwrap();
                let mut probes = vec![far, v_in];
                probes.append(&mut agg_fars);
                probes
            },
            TransientOptions::new(0.0, 5e-9, 2e-12).unwrap(),
        );
    }
}

#[test]
fn charge_injection_parity_with_zero_initial_state() {
    // Current source into a capacitive mesh (no DC solution): the
    // zero-initial-state path must agree across backends too.
    assert_backend_parity(
        |ckt| {
            let a = ckt.node("a");
            let b = ckt.node("b");
            ckt.capacitor(a, Circuit::GROUND, 1e-12).unwrap();
            ckt.capacitor(a, b, 0.5e-12).unwrap();
            ckt.capacitor(b, Circuit::GROUND, 2e-12).unwrap();
            ckt.resistor(a, b, 5_000.0).unwrap();
            ckt.isource(a, Waveform::constant(1e-6, 0.0, 10e-9).unwrap())
                .unwrap();
            vec![a, b]
        },
        TransientOptions::new(0.0, 10e-9, 10e-12)
            .unwrap()
            .with_gmin(1e-15)
            .with_zero_initial_state(),
    );
}

#[test]
fn factored_system_reports_backend_and_nnz() {
    let mut ckt = Circuit::new();
    let inp = ckt.node("in");
    let mut prev = inp;
    ckt.vsource(inp, ramp(0.0, 50e-12, 1.0, 2e-9)).unwrap();
    for k in 0..16 {
        let n = ckt.node(&format!("n{k}"));
        ckt.resistor(prev, n, 100.0).unwrap();
        ckt.capacitor(n, Circuit::GROUND, 5e-15).unwrap();
        prev = n;
    }
    let opts = TransientOptions::new(0.0, 2e-9, 2e-12).unwrap();
    let sparse = ckt.factor_transient(opts).unwrap();
    assert_eq!(sparse.backend(), SolverBackend::Sparse);
    // A 16-unknown tridiagonal chain: nnz ≈ 3n − 2, far below n².
    assert!(sparse.nnz() < 16 * 16 / 2, "nnz = {}", sparse.nnz());
    let dense = ckt
        .factor_transient(opts.with_backend(SolverBackend::Dense))
        .unwrap();
    assert_eq!(dense.backend(), SolverBackend::Dense);
    assert_eq!(dense.nnz(), 16 * 16);
}
