//! Waveform comparison metrics and level-bounded areas.
//!
//! The E4 technique matches the *area* enclosed between the waveform and two
//! horizontal voltage levels; the experiment harness compares waveforms by
//! sampled error norms. Both live here as free functions over [`Waveform`].

use crate::{Waveform, WaveformError};

/// Area between the waveform and the band `[v_lo, v_hi]` over `[t0, t1]`:
/// `∫ (clamp(v(t), v_lo, v_hi) − v_lo) dt`.
///
/// For a rising signal this measures how much of the band the waveform has
/// already traversed; the complementary area (toward `v_hi`) is
/// `(v_hi − v_lo)·(t1 − t0)` minus this value. The E4 slope match equates
/// these areas between the noisy waveform and the candidate line.
///
/// # Errors
///
/// [`WaveformError::InvalidParameter`] if `t1 <= t0` or `v_hi <= v_lo`.
pub fn band_area(
    w: &Waveform,
    t0: f64,
    t1: f64,
    v_lo: f64,
    v_hi: f64,
) -> Result<f64, WaveformError> {
    if !(t1 > t0) {
        return Err(WaveformError::InvalidParameter("band area needs t1 > t0"));
    }
    if !(v_hi > v_lo) {
        return Err(WaveformError::InvalidParameter(
            "band area needs v_hi > v_lo",
        ));
    }
    // Integrate the clamped waveform on a grid refined with the recorded
    // samples plus crossing points of both levels, so the piecewise-linear
    // clamp is integrated exactly.
    let mut knots: Vec<f64> = vec![t0, t1];
    knots.extend(w.times().iter().copied().filter(|&t| t > t0 && t < t1));
    for level in [v_lo, v_hi] {
        knots.extend(w.crossings(level).into_iter().filter(|&t| t > t0 && t < t1));
    }
    knots.sort_by(f64::total_cmp);
    knots.dedup_by(|a, b| (*a - *b).abs() < f64::EPSILON * t1.abs().max(1.0));

    let clamp = |t: f64| (w.value_at(t).clamp(v_lo, v_hi)) - v_lo;
    let mut area = 0.0;
    for pair in knots.windows(2) {
        let (ta, tb) = (pair[0], pair[1]);
        area += 0.5 * (clamp(ta) + clamp(tb)) * (tb - ta);
    }
    Ok(area)
}

/// Root-mean-square voltage difference between two waveforms, sampled at
/// `n` uniform points across the union of their spans.
///
/// # Errors
///
/// [`WaveformError::InvalidParameter`] if `n < 2`.
pub fn rms_difference(a: &Waveform, b: &Waveform, n: usize) -> Result<f64, WaveformError> {
    if n < 2 {
        return Err(WaveformError::InvalidParameter(
            "need at least two sample points",
        ));
    }
    let t0 = a.t_start().min(b.t_start());
    let t1 = a.t_end().max(b.t_end());
    let mut acc = 0.0;
    for k in 0..n {
        let t = t0 + (t1 - t0) * k as f64 / (n - 1) as f64;
        let d = a.value_at(t) - b.value_at(t);
        acc += d * d;
    }
    Ok((acc / n as f64).sqrt())
}

/// Maximum absolute voltage difference sampled at `n` uniform points.
///
/// # Errors
///
/// [`WaveformError::InvalidParameter`] if `n < 2`.
pub fn max_difference(a: &Waveform, b: &Waveform, n: usize) -> Result<f64, WaveformError> {
    if n < 2 {
        return Err(WaveformError::InvalidParameter(
            "need at least two sample points",
        ));
    }
    let t0 = a.t_start().min(b.t_start());
    let t1 = a.t_end().max(b.t_end());
    let mut worst = 0.0f64;
    for k in 0..n {
        let t = t0 + (t1 - t0) * k as f64 / (n - 1) as f64;
        worst = worst.max((a.value_at(t) - b.value_at(t)).abs());
    }
    Ok(worst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_area_of_step_is_rectangle() {
        // Step at t=1 from 0 to 1; band [0, 1] over [0, 2]: area = 1·(2−1) = 1.
        let w = Waveform::new(vec![0.0, 1.0 - 1e-12, 1.0, 2.0], vec![0.0, 0.0, 1.0, 1.0]).unwrap();
        let a = band_area(&w, 0.0, 2.0, 0.0, 1.0).unwrap();
        assert!((a - 1.0).abs() < 1e-9);
    }

    #[test]
    fn band_area_clamps_overshoot() {
        // Triangle peaking at 2.0 but band is [0, 1]: overshoot must not count.
        let w = Waveform::new(vec![0.0, 1.0, 2.0], vec![0.0, 2.0, 0.0]).unwrap();
        let a = band_area(&w, 0.0, 2.0, 0.0, 1.0).unwrap();
        // Waveform is above 1.0 for t ∈ [0.5, 1.5] (area 1.0 clamped);
        // below, two triangles of area 0.25 each.
        assert!((a - 1.5).abs() < 1e-9, "area = {a}");
    }

    #[test]
    fn band_area_ramp_half() {
        let w = Waveform::new(vec![0.0, 1.0], vec![0.0, 1.0]).unwrap();
        let a = band_area(&w, 0.0, 1.0, 0.0, 1.0).unwrap();
        assert!((a - 0.5).abs() < 1e-12);
        assert!(band_area(&w, 1.0, 0.0, 0.0, 1.0).is_err());
        assert!(band_area(&w, 0.0, 1.0, 1.0, 0.0).is_err());
    }

    #[test]
    fn differences_are_zero_for_identical() {
        let w = Waveform::new(vec![0.0, 1.0], vec![0.0, 1.0]).unwrap();
        assert_eq!(rms_difference(&w, &w, 100).unwrap(), 0.0);
        assert_eq!(max_difference(&w, &w, 100).unwrap(), 0.0);
        assert!(rms_difference(&w, &w, 1).is_err());
    }

    #[test]
    fn differences_detect_offset() {
        let a = Waveform::constant(0.0, 0.0, 1.0).unwrap();
        let b = Waveform::constant(0.5, 0.0, 1.0).unwrap();
        assert!((rms_difference(&a, &b, 50).unwrap() - 0.5).abs() < 1e-12);
        assert!((max_difference(&a, &b, 50).unwrap() - 0.5).abs() < 1e-12);
    }
}
