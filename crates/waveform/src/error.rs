use std::fmt;

/// Error type for waveform construction and measurement.
#[derive(Debug, Clone, PartialEq)]
pub enum WaveformError {
    /// Time axis was empty, too short, unsorted or not strictly increasing.
    InvalidTimeAxis(&'static str),
    /// Sample vectors disagreed in length.
    LengthMismatch {
        /// Length of the time vector.
        times: usize,
        /// Length of the value vector.
        values: usize,
    },
    /// A non-finite time or voltage was supplied.
    NonFinite(&'static str),
    /// A measurement needed a threshold crossing that never occurs.
    NoCrossing {
        /// The voltage level requested.
        level: f64,
    },
    /// A parameter was outside its documented domain.
    InvalidParameter(&'static str),
    /// The waveform never completes a transition between the requested
    /// thresholds, so a slew cannot be measured.
    IncompleteTransition,
}

impl fmt::Display for WaveformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WaveformError::InvalidTimeAxis(what) => write!(f, "invalid time axis: {what}"),
            WaveformError::LengthMismatch { times, values } => {
                write!(f, "length mismatch: {times} times vs {values} values")
            }
            WaveformError::NonFinite(what) => write!(f, "non-finite value in {what}"),
            WaveformError::NoCrossing { level } => {
                write!(f, "waveform never crosses {level:.4} V")
            }
            WaveformError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            WaveformError::IncompleteTransition => {
                write!(
                    f,
                    "waveform does not complete a transition between thresholds"
                )
            }
        }
    }
}

impl std::error::Error for WaveformError {}
