//! Waveform algebra for noisy-waveform static timing analysis.
//!
//! This crate provides the signal representations used throughout the
//! `noisy-sta` workspace:
//!
//! * [`Waveform`] — an immutable, validated, piecewise-linear sampled
//!   voltage waveform `v(t)`,
//! * [`SaturatedRamp`] — the *equivalent linear waveform* `Γ` of the paper:
//!   a line `v(t) = a·t + b` saturated to the supply rails, i.e. an arrival
//!   time plus a constant slew,
//! * [`Thresholds`] — the measurement levels (10% / 50% / 90% of Vdd by
//!   default, as in the paper),
//! * [`Polarity`] — rising vs falling transitions,
//! * noise-pulse injection helpers ([`Waveform::with_triangular_pulse`] and
//!   friends) used to synthesize crosstalk-distorted inputs in tests,
//! * [`metrics`] — waveform distances and the level-bounded areas needed by
//!   the E4 technique.
//!
//! All quantities use SI units: seconds and volts.
//!
//! ```
//! use nsta_waveform::{SaturatedRamp, Thresholds};
//! # fn main() -> Result<(), nsta_waveform::WaveformError> {
//! let th = Thresholds::cmos(1.2);
//! let ramp = SaturatedRamp::with_slew(1.0e-9, 150e-12, th, true)?;
//! assert!((ramp.arrival_mid() - 1.0e-9).abs() < 1e-15);
//! assert!((ramp.slew(th) - 150e-12).abs() < 1e-15);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod edge;
mod error;
pub mod metrics;
mod noise;
mod ramp;
mod wave;

pub use edge::{Polarity, Thresholds};
pub use error::WaveformError;
pub use ramp::SaturatedRamp;
pub use wave::Waveform;
