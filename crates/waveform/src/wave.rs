use crate::{Polarity, Thresholds, WaveformError};
use nsta_numeric::interp;

/// An immutable, validated, piecewise-linear sampled voltage waveform.
///
/// Invariants (enforced at construction):
/// * at least two samples,
/// * strictly increasing, finite time axis,
/// * finite voltages.
///
/// Evaluation between samples interpolates linearly; evaluation outside the
/// recorded span holds the first/last value (signals are assumed settled
/// outside their recorded window).
///
/// ```
/// use nsta_waveform::Waveform;
/// # fn main() -> Result<(), nsta_waveform::WaveformError> {
/// let w = Waveform::new(vec![0.0, 1.0, 2.0], vec![0.0, 1.0, 0.5])?;
/// assert_eq!(w.value_at(0.5), 0.5);
/// assert_eq!(w.value_at(-10.0), 0.0); // held
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Waveform {
    ts: Vec<f64>,
    vs: Vec<f64>,
}

impl Waveform {
    /// Builds a waveform from parallel time and voltage vectors.
    ///
    /// # Errors
    ///
    /// * [`WaveformError::LengthMismatch`] if the vectors differ in length.
    /// * [`WaveformError::InvalidTimeAxis`] if fewer than two samples or the
    ///   time axis is not strictly increasing.
    /// * [`WaveformError::NonFinite`] on NaN/inf entries.
    pub fn new(ts: Vec<f64>, vs: Vec<f64>) -> Result<Self, WaveformError> {
        if ts.len() != vs.len() {
            return Err(WaveformError::LengthMismatch {
                times: ts.len(),
                values: vs.len(),
            });
        }
        if ts.len() < 2 {
            return Err(WaveformError::InvalidTimeAxis("need at least two samples"));
        }
        if ts.iter().any(|t| !t.is_finite()) {
            return Err(WaveformError::NonFinite("time axis"));
        }
        if vs.iter().any(|v| !v.is_finite()) {
            return Err(WaveformError::NonFinite("voltage samples"));
        }
        if ts.windows(2).any(|w| w[1] <= w[0]) {
            return Err(WaveformError::InvalidTimeAxis(
                "times must be strictly increasing",
            ));
        }
        Ok(Waveform { ts, vs })
    }

    /// Samples `f(t)` on a uniform grid over `[t0, t1]` with step `dt`.
    ///
    /// # Errors
    ///
    /// Returns [`WaveformError::InvalidParameter`] if `t1 <= t0` or
    /// `dt <= 0`, and propagates construction errors if `f` returns
    /// non-finite values.
    pub fn from_fn(
        t0: f64,
        t1: f64,
        dt: f64,
        mut f: impl FnMut(f64) -> f64,
    ) -> Result<Self, WaveformError> {
        if !(t1 > t0) || !(dt > 0.0) || !t0.is_finite() || !t1.is_finite() || !dt.is_finite() {
            return Err(WaveformError::InvalidParameter(
                "need t1 > t0 and dt > 0, all finite",
            ));
        }
        let n = ((t1 - t0) / dt).ceil() as usize + 1;
        let mut ts = Vec::with_capacity(n);
        let mut vs = Vec::with_capacity(n);
        for i in 0..n {
            let t = (t0 + i as f64 * dt).min(t1);
            ts.push(t);
            vs.push(f(t));
            if t >= t1 {
                break;
            }
        }
        if ts.last().is_some_and(|&t| t < t1) {
            ts.push(t1);
            vs.push(f(t1));
        }
        Waveform::new(ts, vs)
    }

    /// A constant waveform at `v` spanning `[t0, t1]`.
    ///
    /// # Errors
    ///
    /// Same domain requirements as [`Waveform::from_fn`].
    pub fn constant(v: f64, t0: f64, t1: f64) -> Result<Self, WaveformError> {
        Waveform::new(vec![t0, t1], vec![v, v])
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.ts.len()
    }

    /// Always `false`: a valid waveform has at least two samples.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The sampled time axis.
    pub fn times(&self) -> &[f64] {
        &self.ts
    }

    /// The sampled voltages.
    pub fn values(&self) -> &[f64] {
        &self.vs
    }

    /// First recorded time.
    pub fn t_start(&self) -> f64 {
        self.ts[0]
    }

    /// Last recorded time.
    pub fn t_end(&self) -> f64 {
        self.ts[self.ts.len() - 1]
    }

    /// First recorded voltage.
    pub fn v_start(&self) -> f64 {
        self.vs[0]
    }

    /// Last recorded voltage.
    pub fn v_end(&self) -> f64 {
        self.vs[self.vs.len() - 1]
    }

    /// Smallest sampled voltage.
    pub fn v_min(&self) -> f64 {
        self.vs.iter().fold(f64::INFINITY, |m, &v| m.min(v))
    }

    /// Largest sampled voltage.
    pub fn v_max(&self) -> f64 {
        self.vs.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v))
    }

    /// Linear interpolation at `t`, holding end values outside the span.
    pub fn value_at(&self, t: f64) -> f64 {
        if t <= self.t_start() {
            return self.v_start();
        }
        if t >= self.t_end() {
            return self.v_end();
        }
        interp::interp1(&self.ts, &self.vs, t)
    }

    /// Samples the waveform at every point of an ascending time grid with
    /// one forward pass — `O(grid + samples)` instead of one binary search
    /// per grid point. The transient steppers use this to tabulate source
    /// values over their whole time axis.
    ///
    /// Grid points outside the recorded span hold the end values, exactly
    /// like [`Waveform::value_at`].
    pub fn sample_on_grid(&self, grid: &[f64], out: &mut Vec<f64>) {
        debug_assert!(
            grid.windows(2).all(|w| w[0] <= w[1]),
            "grid must be ascending"
        );
        out.clear();
        out.reserve(grid.len());
        let mut seg = 0usize;
        let last = self.ts.len() - 1;
        for &t in grid {
            if t <= self.ts[0] {
                out.push(self.vs[0]);
                continue;
            }
            if t >= self.ts[last] {
                out.push(self.vs[last]);
                continue;
            }
            // `<=` matches `segment_index`'s choice for exact sample hits,
            // keeping these tables bit-identical to `value_at` queries.
            while self.ts[seg + 1] <= t {
                seg += 1;
            }
            let (t0, t1) = (self.ts[seg], self.ts[seg + 1]);
            let (v0, v1) = (self.vs[seg], self.vs[seg + 1]);
            let frac = (t - t0) / (t1 - t0);
            out.push(v0 + frac * (v1 - v0));
        }
    }

    /// All times at which the waveform crosses `level`, ascending.
    pub fn crossings(&self, level: f64) -> Vec<f64> {
        interp::crossings(&self.ts, &self.vs, level)
    }

    /// Earliest crossing of `level`, if any.
    pub fn first_crossing(&self, level: f64) -> Option<f64> {
        self.crossings(level).into_iter().next()
    }

    /// Latest crossing of `level`, if any.
    pub fn last_crossing(&self, level: f64) -> Option<f64> {
        self.crossings(level).into_iter().last()
    }

    /// Earliest crossing of `level`, as an error if absent.
    ///
    /// # Errors
    ///
    /// [`WaveformError::NoCrossing`] if the waveform never reaches `level`.
    pub fn first_crossing_or_err(&self, level: f64) -> Result<f64, WaveformError> {
        self.first_crossing(level)
            .ok_or(WaveformError::NoCrossing { level })
    }

    /// Latest crossing of `level`, as an error if absent.
    ///
    /// # Errors
    ///
    /// [`WaveformError::NoCrossing`] if the waveform never reaches `level`.
    pub fn last_crossing_or_err(&self, level: f64) -> Result<f64, WaveformError> {
        self.last_crossing(level)
            .ok_or(WaveformError::NoCrossing { level })
    }

    /// Transition direction inferred from the settled end values relative to
    /// the mid threshold: rising if the waveform ends above `mid` and starts
    /// below it, falling for the converse.
    ///
    /// # Errors
    ///
    /// [`WaveformError::IncompleteTransition`] if both ends settle on the
    /// same side of `mid` (no logical transition).
    pub fn polarity(&self, th: Thresholds) -> Result<Polarity, WaveformError> {
        let mid = th.mid();
        let starts_low = self.v_start() < mid;
        let ends_high = self.v_end() >= mid;
        match (starts_low, ends_high) {
            (true, true) => Ok(Polarity::Rise),
            (false, false) => Ok(Polarity::Fall),
            _ => Err(WaveformError::IncompleteTransition),
        }
    }

    /// The *noisy critical region* of the paper: from the **first** crossing
    /// of the transition's start level to the **last** crossing of its end
    /// level (`0.1·Vdd` → `0.9·Vdd` for a rise).
    ///
    /// # Errors
    ///
    /// [`WaveformError::IncompleteTransition`] if either level is never
    /// crossed or the region is empty.
    pub fn critical_region(
        &self,
        th: Thresholds,
        polarity: Polarity,
    ) -> Result<(f64, f64), WaveformError> {
        let (start_level, end_level) = th.slew_levels(polarity);
        let t_first = self
            .first_crossing(start_level)
            .ok_or(WaveformError::IncompleteTransition)?;
        let t_last = self
            .last_crossing(end_level)
            .ok_or(WaveformError::IncompleteTransition)?;
        if t_last <= t_first {
            return Err(WaveformError::IncompleteTransition);
        }
        Ok((t_first, t_last))
    }

    /// Slew measured from the first crossing of the start level to the
    /// **first** subsequent crossing of the end level (the noiseless
    /// convention used by P1).
    ///
    /// # Errors
    ///
    /// [`WaveformError::IncompleteTransition`] if the transition never
    /// completes.
    pub fn slew_first_to_first(
        &self,
        th: Thresholds,
        polarity: Polarity,
    ) -> Result<f64, WaveformError> {
        let (start_level, end_level) = th.slew_levels(polarity);
        let t0 = self
            .first_crossing(start_level)
            .ok_or(WaveformError::IncompleteTransition)?;
        let t1 = self
            .crossings(end_level)
            .into_iter()
            .find(|&t| t >= t0)
            .ok_or(WaveformError::IncompleteTransition)?;
        Ok(t1 - t0)
    }

    /// Slew measured from the **earliest** crossing of the start level to
    /// the **latest** crossing of the end level (the P2 convention for noisy
    /// waveforms — the full width of the critical region).
    ///
    /// # Errors
    ///
    /// [`WaveformError::IncompleteTransition`] if the transition never
    /// completes.
    pub fn slew_first_to_last(
        &self,
        th: Thresholds,
        polarity: Polarity,
    ) -> Result<f64, WaveformError> {
        let (t0, t1) = self.critical_region(th, polarity)?;
        Ok(t1 - t0)
    }

    /// Returns a copy shifted by `dt` in time.
    pub fn shifted(&self, dt: f64) -> Waveform {
        let ts = self.ts.iter().map(|t| t + dt).collect();
        Waveform {
            ts,
            vs: self.vs.clone(),
        }
    }

    /// Returns a copy with voltages transformed by `f`.
    ///
    /// # Errors
    ///
    /// Propagates [`WaveformError::NonFinite`] if `f` produces NaN/inf.
    pub fn map_values(&self, f: impl Fn(f64) -> f64) -> Result<Waveform, WaveformError> {
        let vs: Vec<f64> = self.vs.iter().map(|&v| f(v)).collect();
        Waveform::new(self.ts.clone(), vs)
    }

    /// Resamples onto a uniform grid covering `[t0, t1]` with step `dt`.
    ///
    /// # Errors
    ///
    /// [`WaveformError::InvalidParameter`] for a degenerate grid request.
    pub fn resampled(&self, t0: f64, t1: f64, dt: f64) -> Result<Waveform, WaveformError> {
        Waveform::from_fn(t0, t1, dt, |t| self.value_at(t))
    }

    /// Restricts to `[t0, t1]`, inserting interpolated boundary samples.
    ///
    /// # Errors
    ///
    /// [`WaveformError::InvalidParameter`] if the window is empty or lies
    /// outside the recorded span.
    pub fn windowed(&self, t0: f64, t1: f64) -> Result<Waveform, WaveformError> {
        if !(t1 > t0) {
            return Err(WaveformError::InvalidParameter(
                "window must satisfy t1 > t0",
            ));
        }
        let mut ts = vec![t0];
        let mut vs = vec![self.value_at(t0)];
        for (&t, &v) in self.ts.iter().zip(&self.vs) {
            if t > t0 && t < t1 {
                ts.push(t);
                vs.push(v);
            }
        }
        ts.push(t1);
        vs.push(self.value_at(t1));
        Waveform::new(ts, vs)
    }

    /// Pointwise sum with `other` over the union of both time grids.
    ///
    /// Outside each waveform's span, its boundary value is held — matching
    /// the superposition of settled signals.
    pub fn plus(&self, other: &Waveform) -> Waveform {
        let mut ts: Vec<f64> = Vec::with_capacity(self.ts.len() + other.ts.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.ts.len() || j < other.ts.len() {
            let t = match (self.ts.get(i), other.ts.get(j)) {
                (Some(&a), Some(&b)) => {
                    if a < b {
                        i += 1;
                        a
                    } else if b < a {
                        j += 1;
                        b
                    } else {
                        i += 1;
                        j += 1;
                        a
                    }
                }
                (Some(&a), None) => {
                    i += 1;
                    a
                }
                (None, Some(&b)) => {
                    j += 1;
                    b
                }
                (None, None) => break,
            };
            if ts.last().is_none_or(|&last| t > last) {
                ts.push(t);
            }
        }
        let vs: Vec<f64> = ts
            .iter()
            .map(|&t| self.value_at(t) + other.value_at(t))
            .collect();
        Waveform { ts, vs }
    }

    /// Numerical time-derivative (central differences, one-sided at ends),
    /// sampled on the same time axis. Units: volts per second.
    pub fn derivative(&self) -> Waveform {
        let n = self.ts.len();
        let mut dv = vec![0.0; n];
        for k in 0..n {
            dv[k] = if k == 0 {
                (self.vs[1] - self.vs[0]) / (self.ts[1] - self.ts[0])
            } else if k == n - 1 {
                (self.vs[n - 1] - self.vs[n - 2]) / (self.ts[n - 1] - self.ts[n - 2])
            } else {
                (self.vs[k + 1] - self.vs[k - 1]) / (self.ts[k + 1] - self.ts[k - 1])
            };
        }
        Waveform {
            ts: self.ts.clone(),
            vs: dv,
        }
    }

    /// `true` if voltages are non-decreasing (rise) or non-increasing (fall)
    /// along the whole record, within tolerance `tol` volts.
    pub fn is_monotonic(&self, polarity: Polarity, tol: f64) -> bool {
        match polarity {
            Polarity::Rise => self.vs.windows(2).all(|w| w[1] >= w[0] - tol),
            Polarity::Fall => self.vs.windows(2).all(|w| w[1] <= w[0] + tol),
        }
    }

    /// Trapezoidal integral of `v(t)` over the full record.
    pub fn integral(&self) -> f64 {
        let mut acc = 0.0;
        for k in 0..self.ts.len() - 1 {
            acc += 0.5 * (self.vs[k] + self.vs[k + 1]) * (self.ts[k + 1] - self.ts[k]);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp01() -> Waveform {
        Waveform::new(vec![0.0, 1.0], vec![0.0, 1.0]).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(Waveform::new(vec![0.0], vec![0.0]).is_err());
        assert!(Waveform::new(vec![0.0, 0.0], vec![0.0, 1.0]).is_err());
        assert!(Waveform::new(vec![1.0, 0.0], vec![0.0, 1.0]).is_err());
        assert!(Waveform::new(vec![0.0, 1.0], vec![0.0]).is_err());
        assert!(Waveform::new(vec![0.0, 1.0], vec![0.0, f64::NAN]).is_err());
        assert!(Waveform::new(vec![0.0, f64::INFINITY], vec![0.0, 1.0]).is_err());
        assert!(ramp01().len() == 2);
    }

    #[test]
    fn value_holds_outside_span() {
        let w = ramp01();
        assert_eq!(w.value_at(-1.0), 0.0);
        assert_eq!(w.value_at(2.0), 1.0);
        assert!((w.value_at(0.25) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn sample_on_grid_matches_value_at() {
        let w = Waveform::new(vec![0.0, 1.0, 2.0, 4.0], vec![0.0, 1.0, 0.5, 0.5]).unwrap();
        let grid: Vec<f64> = (0..50).map(|i| -0.5 + i as f64 * 0.11).collect();
        let mut out = Vec::new();
        w.sample_on_grid(&grid, &mut out);
        assert_eq!(out.len(), grid.len());
        for (&t, &v) in grid.iter().zip(&out) {
            assert_eq!(v, w.value_at(t), "t={t}");
        }
        // Exact sample hits and out-of-span points hold exactly.
        w.sample_on_grid(&[1.0, 2.0, 99.0], &mut out);
        assert_eq!(out, vec![1.0, 0.5, 0.5]);
    }

    #[test]
    fn from_fn_hits_both_endpoints() {
        let w = Waveform::from_fn(0.0, 1.0, 0.3, |t| t).unwrap();
        assert_eq!(w.t_start(), 0.0);
        assert_eq!(w.t_end(), 1.0);
        assert!(w.times().windows(2).all(|p| p[1] > p[0]));
    }

    #[test]
    fn crossings_first_last() {
        // Rise with a dip: crosses 0.5 three times.
        let w =
            Waveform::new(vec![0.0, 1.0, 2.0, 3.0, 4.0], vec![0.0, 0.7, 0.3, 1.0, 1.0]).unwrap();
        let c = w.crossings(0.5);
        assert_eq!(c.len(), 3);
        assert!((w.first_crossing(0.5).unwrap() - 5.0 / 7.0).abs() < 1e-12);
        assert!(w.last_crossing(0.5).unwrap() > 2.0);
        assert!(w.first_crossing(2.0).is_none());
        assert!(matches!(
            w.first_crossing_or_err(2.0),
            Err(WaveformError::NoCrossing { .. })
        ));
    }

    #[test]
    fn polarity_detection() {
        let th = Thresholds::cmos(1.0);
        let rise = ramp01();
        assert_eq!(rise.polarity(th).unwrap(), Polarity::Rise);
        let fall = Waveform::new(vec![0.0, 1.0], vec![1.0, 0.0]).unwrap();
        assert_eq!(fall.polarity(th).unwrap(), Polarity::Fall);
        let flat = Waveform::constant(0.2, 0.0, 1.0).unwrap();
        assert!(flat.polarity(th).is_err());
    }

    #[test]
    fn critical_region_and_slews() {
        let th = Thresholds::cmos(1.0);
        // Monotone rise 0→1 over [0,1]: region = [0.1, 0.9].
        let w = ramp01();
        let (a, b) = w.critical_region(th, Polarity::Rise).unwrap();
        assert!((a - 0.1).abs() < 1e-12 && (b - 0.9).abs() < 1e-12);
        assert!((w.slew_first_to_first(th, Polarity::Rise).unwrap() - 0.8).abs() < 1e-12);
        assert!((w.slew_first_to_last(th, Polarity::Rise).unwrap() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn noisy_slew_conventions_differ() {
        let th = Thresholds::cmos(1.0);
        // Rise that overshoots 0.9, dips below it, then settles high:
        // first-to-first stops early, first-to-last spans the bump.
        let w = Waveform::new(
            vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0],
            vec![0.0, 0.5, 0.95, 0.7, 0.95, 1.0],
        )
        .unwrap();
        let s_ff = w.slew_first_to_first(th, Polarity::Rise).unwrap();
        let s_fl = w.slew_first_to_last(th, Polarity::Rise).unwrap();
        assert!(s_fl > s_ff);
    }

    #[test]
    fn shift_map_window() {
        let th = Thresholds::cmos(1.0);
        let w = ramp01().shifted(10.0);
        assert_eq!(w.t_start(), 10.0);
        assert_eq!(w.polarity(th).unwrap(), Polarity::Rise);
        let inv = w.map_values(|v| 1.0 - v).unwrap();
        assert_eq!(inv.polarity(th).unwrap(), Polarity::Fall);
        let win = w.windowed(10.25, 10.75).unwrap();
        assert!((win.v_start() - 0.25).abs() < 1e-12);
        assert!((win.v_end() - 0.75).abs() < 1e-12);
        assert!(w.windowed(5.0, 5.0).is_err());
    }

    #[test]
    fn plus_superposes_on_union_grid() {
        let a = Waveform::new(vec![0.0, 2.0], vec![0.0, 2.0]).unwrap();
        let b = Waveform::new(vec![0.5, 1.5], vec![1.0, 1.0]).unwrap();
        let s = a.plus(&b);
        assert_eq!(s.value_at(1.0), 2.0); // 1.0 + 1.0
        assert_eq!(s.value_at(0.0), 1.0); // 0.0 + held 1.0
        assert!(s.times().windows(2).all(|p| p[1] > p[0]));
    }

    #[test]
    fn derivative_of_line_is_constant() {
        let w = Waveform::from_fn(0.0, 1.0, 0.1, |t| 3.0 * t + 1.0).unwrap();
        let d = w.derivative();
        for &v in d.values() {
            assert!((v - 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn monotonicity_and_integral() {
        let w = ramp01();
        assert!(w.is_monotonic(Polarity::Rise, 0.0));
        assert!(!w.is_monotonic(Polarity::Fall, 0.0));
        assert!((w.integral() - 0.5).abs() < 1e-12);
    }
}
