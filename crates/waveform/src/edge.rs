use crate::WaveformError;

/// Direction of a logic transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Polarity {
    /// Low-to-high transition.
    Rise,
    /// High-to-low transition.
    Fall,
}

impl Polarity {
    /// The opposite transition direction (what an inverting gate produces).
    pub fn inverted(self) -> Polarity {
        match self {
            Polarity::Rise => Polarity::Fall,
            Polarity::Fall => Polarity::Rise,
        }
    }

    /// `true` for [`Polarity::Rise`].
    pub fn is_rise(self) -> bool {
        matches!(self, Polarity::Rise)
    }
}

impl std::fmt::Display for Polarity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Polarity::Rise => write!(f, "rise"),
            Polarity::Fall => write!(f, "fall"),
        }
    }
}

/// Measurement thresholds tied to a supply voltage.
///
/// The paper measures slews between `0.1·Vdd` and `0.9·Vdd` and delays at
/// `0.5·Vdd`; those fractions are the defaults of [`Thresholds::cmos`] but
/// remain configurable for libraries characterized at 20/80 or 30/70.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Thresholds {
    vdd: f64,
    low_frac: f64,
    mid_frac: f64,
    high_frac: f64,
}

impl Thresholds {
    /// Standard CMOS thresholds: 10% / 50% / 90% of `vdd`.
    ///
    /// # Panics
    ///
    /// Panics if `vdd` is not a positive finite number.
    pub fn cmos(vdd: f64) -> Self {
        Thresholds::with_fractions(vdd, 0.1, 0.5, 0.9)
            .unwrap_or_else(|e| panic!("invalid vdd {vdd}: {e:?}"))
    }

    /// Custom threshold fractions with `0 < low < mid < high < 1`.
    ///
    /// # Errors
    ///
    /// Returns [`WaveformError::InvalidParameter`] if `vdd ≤ 0`, any
    /// fraction is non-finite, or the ordering constraint is violated.
    pub fn with_fractions(
        vdd: f64,
        low_frac: f64,
        mid_frac: f64,
        high_frac: f64,
    ) -> Result<Self, WaveformError> {
        if !(vdd.is_finite() && vdd > 0.0) {
            return Err(WaveformError::InvalidParameter(
                "vdd must be positive and finite",
            ));
        }
        let ok = low_frac.is_finite()
            && mid_frac.is_finite()
            && high_frac.is_finite()
            && 0.0 < low_frac
            && low_frac < mid_frac
            && mid_frac < high_frac
            && high_frac < 1.0;
        if !ok {
            return Err(WaveformError::InvalidParameter(
                "threshold fractions must satisfy 0 < low < mid < high < 1",
            ));
        }
        Ok(Thresholds {
            vdd,
            low_frac,
            mid_frac,
            high_frac,
        })
    }

    /// Supply voltage in volts.
    pub fn vdd(&self) -> f64 {
        self.vdd
    }

    /// Lower slew threshold in volts (e.g. `0.1·Vdd`).
    pub fn low(&self) -> f64 {
        self.low_frac * self.vdd
    }

    /// Delay threshold in volts (e.g. `0.5·Vdd`).
    pub fn mid(&self) -> f64 {
        self.mid_frac * self.vdd
    }

    /// Upper slew threshold in volts (e.g. `0.9·Vdd`).
    pub fn high(&self) -> f64 {
        self.high_frac * self.vdd
    }

    /// Lower slew threshold as a fraction of Vdd.
    pub fn low_frac(&self) -> f64 {
        self.low_frac
    }

    /// Delay threshold as a fraction of Vdd.
    pub fn mid_frac(&self) -> f64 {
        self.mid_frac
    }

    /// Upper slew threshold as a fraction of Vdd.
    pub fn high_frac(&self) -> f64 {
        self.high_frac
    }

    /// The `(start, end)` voltage levels of a transition with the given
    /// polarity: `(low, high)` for a rise, `(high, low)` for a fall.
    pub fn slew_levels(&self, polarity: Polarity) -> (f64, f64) {
        match polarity {
            Polarity::Rise => (self.low(), self.high()),
            Polarity::Fall => (self.high(), self.low()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmos_thresholds() {
        let th = Thresholds::cmos(1.2);
        assert!((th.low() - 0.12).abs() < 1e-12);
        assert!((th.mid() - 0.6).abs() < 1e-12);
        assert!((th.high() - 1.08).abs() < 1e-12);
        assert_eq!(th.vdd(), 1.2);
    }

    #[test]
    fn fraction_validation() {
        assert!(Thresholds::with_fractions(1.2, 0.2, 0.5, 0.8).is_ok());
        assert!(Thresholds::with_fractions(-1.0, 0.1, 0.5, 0.9).is_err());
        assert!(Thresholds::with_fractions(1.0, 0.5, 0.5, 0.9).is_err());
        assert!(Thresholds::with_fractions(1.0, 0.1, 0.5, 1.0).is_err());
        assert!(Thresholds::with_fractions(1.0, 0.0, 0.5, 0.9).is_err());
        assert!(Thresholds::with_fractions(f64::NAN, 0.1, 0.5, 0.9).is_err());
    }

    #[test]
    fn polarity_inversion() {
        assert_eq!(Polarity::Rise.inverted(), Polarity::Fall);
        assert_eq!(Polarity::Fall.inverted(), Polarity::Rise);
        assert!(Polarity::Rise.is_rise());
        assert_eq!(Polarity::Rise.to_string(), "rise");
    }

    #[test]
    fn slew_levels_follow_polarity() {
        let th = Thresholds::cmos(1.0);
        assert_eq!(th.slew_levels(Polarity::Rise), (0.1, 0.9));
        assert_eq!(th.slew_levels(Polarity::Fall), (0.9, 0.1));
    }
}
