use crate::{Polarity, Thresholds, Waveform, WaveformError};

/// The *equivalent linear waveform* `Γ` of the paper: a line
/// `v(t) = a·t + b` saturated to the supply rails `[0, Vdd]`.
///
/// A saturated ramp is exactly the information conventional STA carries for
/// a transition — one reference time plus one slew — so every technique in
/// this workspace (P1, P2, LSF3, E4, WLS5, SGDP) produces one of these.
///
/// The sign of `a` encodes polarity: positive slope is a rising edge.
///
/// ```
/// use nsta_waveform::{SaturatedRamp, Thresholds};
/// # fn main() -> Result<(), nsta_waveform::WaveformError> {
/// let th = Thresholds::cmos(1.2);
/// let g = SaturatedRamp::with_slew(2.0e-9, 100e-12, th, false)?; // falling
/// assert!((g.arrival_mid() - 2.0e-9).abs() < 1e-15);
/// assert_eq!(g.polarity(), nsta_waveform::Polarity::Fall);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaturatedRamp {
    a: f64,
    b: f64,
    vdd: f64,
}

impl SaturatedRamp {
    /// Builds a ramp directly from line coefficients.
    ///
    /// # Errors
    ///
    /// [`WaveformError::InvalidParameter`] if `a == 0`, `vdd <= 0`, or any
    /// argument is non-finite — a saturated ramp must actually transition.
    pub fn from_coefficients(a: f64, b: f64, vdd: f64) -> Result<Self, WaveformError> {
        if !(a.is_finite() && b.is_finite() && vdd.is_finite()) {
            return Err(WaveformError::InvalidParameter(
                "ramp coefficients must be finite",
            ));
        }
        if a == 0.0 {
            return Err(WaveformError::InvalidParameter(
                "ramp slope must be non-zero",
            ));
        }
        if vdd <= 0.0 {
            return Err(WaveformError::InvalidParameter("vdd must be positive"));
        }
        Ok(SaturatedRamp { a, b, vdd })
    }

    /// Builds a ramp from an arrival time (at the mid threshold) and a slew
    /// (time between the low and high thresholds). `rising` selects the
    /// polarity.
    ///
    /// # Errors
    ///
    /// [`WaveformError::InvalidParameter`] if `slew <= 0` or inputs are
    /// non-finite.
    pub fn with_slew(
        arrival_mid: f64,
        slew: f64,
        th: Thresholds,
        rising: bool,
    ) -> Result<Self, WaveformError> {
        if !(slew.is_finite() && arrival_mid.is_finite()) {
            return Err(WaveformError::InvalidParameter(
                "arrival and slew must be finite",
            ));
        }
        if slew <= 0.0 {
            return Err(WaveformError::InvalidParameter("slew must be positive"));
        }
        let dv = th.high() - th.low();
        let magnitude = dv / slew;
        let a = if rising { magnitude } else { -magnitude };
        let b = th.mid() - a * arrival_mid;
        SaturatedRamp::from_coefficients(a, b, th.vdd())
    }

    /// Line slope in volts per second (signed; negative for falling edges).
    pub fn slope(&self) -> f64 {
        self.a
    }

    /// Line intercept in volts.
    pub fn intercept(&self) -> f64 {
        self.b
    }

    /// Supply voltage the ramp saturates to.
    pub fn vdd(&self) -> f64 {
        self.vdd
    }

    /// Transition direction implied by the slope sign.
    pub fn polarity(&self) -> Polarity {
        if self.a > 0.0 {
            Polarity::Rise
        } else {
            Polarity::Fall
        }
    }

    /// Voltage at time `t`, clamped to `[0, vdd]`.
    pub fn value_at(&self, t: f64) -> f64 {
        (self.a * t + self.b).clamp(0.0, self.vdd)
    }

    /// Time at which the (unsaturated) line crosses voltage `v`.
    pub fn crossing_time(&self, v: f64) -> f64 {
        (v - self.b) / self.a
    }

    /// Arrival time at the mid threshold of `th`.
    ///
    /// Note: the ramp stores its own `vdd`; this helper uses `vdd/2`
    /// irrespective of the thresholds' mid fraction when they agree, but is
    /// written against the ramp's own supply for self-consistency.
    pub fn arrival_mid(&self) -> f64 {
        self.crossing_time(0.5 * self.vdd)
    }

    /// Arrival time at an arbitrary fraction of Vdd.
    pub fn arrival_at_frac(&self, frac: f64) -> f64 {
        self.crossing_time(frac * self.vdd)
    }

    /// Slew between the low and high thresholds (always positive).
    pub fn slew(&self, th: Thresholds) -> f64 {
        ((th.high() - th.low()) / self.a).abs()
    }

    /// Time at which the saturated ramp leaves its initial rail.
    pub fn t_rail_departure(&self) -> f64 {
        match self.polarity() {
            Polarity::Rise => self.crossing_time(0.0),
            Polarity::Fall => self.crossing_time(self.vdd),
        }
    }

    /// Time at which the saturated ramp reaches its final rail.
    pub fn t_rail_arrival(&self) -> f64 {
        match self.polarity() {
            Polarity::Rise => self.crossing_time(self.vdd),
            Polarity::Fall => self.crossing_time(0.0),
        }
    }

    /// Returns a copy shifted by `dt` in time.
    pub fn shifted(&self, dt: f64) -> SaturatedRamp {
        // v = a (t - dt) + b  ⇒  intercept b' = b - a·dt.
        SaturatedRamp {
            a: self.a,
            b: self.b - self.a * dt,
            vdd: self.vdd,
        }
    }

    /// Samples the saturated ramp into a [`Waveform`] over `[t0, t1]`.
    ///
    /// Breakpoints where the line meets the rails are included exactly, so
    /// the sampled waveform represents the ramp without discretization error.
    ///
    /// # Errors
    ///
    /// [`WaveformError::InvalidParameter`] for a degenerate span or step.
    pub fn to_waveform(&self, t0: f64, t1: f64, dt: f64) -> Result<Waveform, WaveformError> {
        let w = Waveform::from_fn(t0, t1, dt, |t| self.value_at(t))?;
        // Insert exact rail-departure/arrival breakpoints if inside range.
        let mut ts: Vec<f64> = w.times().to_vec();
        for brk in [self.t_rail_departure(), self.t_rail_arrival()] {
            if brk > t0 && brk < t1 {
                let pos = ts.partition_point(|&t| t < brk);
                if ts.get(pos).is_none_or(|&t| t != brk) {
                    ts.insert(pos, brk);
                }
            }
        }
        let vs: Vec<f64> = ts.iter().map(|&t| self.value_at(t)).collect();
        Waveform::new(ts, vs)
    }
}

impl std::fmt::Display for SaturatedRamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Γ({}): t50={:.4e}s, slope={:.4e}V/s",
            self.polarity(),
            self.arrival_mid(),
            self.a
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_slew_round_trips() {
        let th = Thresholds::cmos(1.2);
        for rising in [true, false] {
            let g = SaturatedRamp::with_slew(1.0e-9, 150e-12, th, rising).unwrap();
            assert!((g.arrival_mid() - 1.0e-9).abs() < 1e-18);
            assert!((g.slew(th) - 150e-12).abs() < 1e-18);
            assert_eq!(g.polarity().is_rise(), rising);
        }
    }

    #[test]
    fn invalid_parameters_rejected() {
        let th = Thresholds::cmos(1.2);
        assert!(SaturatedRamp::with_slew(0.0, 0.0, th, true).is_err());
        assert!(SaturatedRamp::with_slew(0.0, -1.0, th, true).is_err());
        assert!(SaturatedRamp::with_slew(f64::NAN, 1.0, th, true).is_err());
        assert!(SaturatedRamp::from_coefficients(0.0, 0.0, 1.2).is_err());
        assert!(SaturatedRamp::from_coefficients(1.0, 0.0, -1.0).is_err());
    }

    #[test]
    fn saturation_clamps_to_rails() {
        let th = Thresholds::cmos(1.0);
        let g = SaturatedRamp::with_slew(0.0, 0.8, th, true).unwrap();
        assert_eq!(g.value_at(-100.0), 0.0);
        assert_eq!(g.value_at(100.0), 1.0);
        assert!((g.value_at(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rail_times_bracket_midpoint() {
        let th = Thresholds::cmos(1.0);
        for rising in [true, false] {
            let g = SaturatedRamp::with_slew(5.0, 1.0, th, rising).unwrap();
            assert!(g.t_rail_departure() < g.arrival_mid());
            assert!(g.arrival_mid() < g.t_rail_arrival());
        }
    }

    #[test]
    fn shifted_moves_arrival() {
        let th = Thresholds::cmos(1.0);
        let g = SaturatedRamp::with_slew(1.0, 0.25, th, true).unwrap();
        let h = g.shifted(0.5);
        assert!((h.arrival_mid() - 1.5).abs() < 1e-12);
        assert_eq!(g.slope(), h.slope());
    }

    #[test]
    fn to_waveform_contains_exact_breakpoints() {
        let th = Thresholds::cmos(1.0);
        let g = SaturatedRamp::with_slew(1.0, 0.4, th, true).unwrap();
        let w = g.to_waveform(0.0, 2.0, 0.17).unwrap();
        let dep = g.t_rail_departure();
        let arr = g.t_rail_arrival();
        assert!(w.times().iter().any(|&t| (t - dep).abs() < 1e-15));
        assert!(w.times().iter().any(|&t| (t - arr).abs() < 1e-15));
        // Sampled values match the analytic ramp everywhere.
        for &t in w.times() {
            assert!((w.value_at(t) - g.value_at(t)).abs() < 1e-12);
        }
        // And the waveform's measured slew matches the ramp's.
        let measured = w.slew_first_to_first(th, Polarity::Rise).unwrap();
        assert!((measured - g.slew(th)).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_polarity() {
        let th = Thresholds::cmos(1.0);
        let g = SaturatedRamp::with_slew(1.0, 0.4, th, false).unwrap();
        assert!(g.to_string().contains("fall"));
    }
}
