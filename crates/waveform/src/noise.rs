//! Synthetic crosstalk-noise injection.
//!
//! The real noisy waveforms in the experiments come from circuit simulation
//! of coupled interconnect, but unit tests and examples need controlled,
//! analytic distortions. These helpers superpose canonical noise-pulse
//! shapes onto a waveform: triangular and trapezoidal glitches (the standard
//! SI abstractions) and a double-exponential pulse that closely matches the
//! shape of capacitively coupled noise through an RC line.

use crate::{Waveform, WaveformError};

impl Waveform {
    /// Superposes a triangular pulse centered at `center` with total base
    /// `width` and peak `height` volts (negative heights produce dips).
    ///
    /// # Errors
    ///
    /// [`WaveformError::InvalidParameter`] if `width <= 0` or inputs are
    /// non-finite.
    pub fn with_triangular_pulse(
        &self,
        center: f64,
        width: f64,
        height: f64,
    ) -> Result<Waveform, WaveformError> {
        if !(width > 0.0) || !center.is_finite() || !height.is_finite() {
            return Err(WaveformError::InvalidParameter(
                "triangular pulse needs finite center/height and width > 0",
            ));
        }
        let half = width / 2.0;
        let t0 = center - half;
        let t1 = center + half;
        let pulse = Waveform::new(
            vec![t0 - width, t0, center, t1, t1 + width],
            vec![0.0, 0.0, height, 0.0, 0.0],
        )?;
        Ok(self.plus(&pulse))
    }

    /// Superposes a trapezoidal pulse: linear rise over `ramp`, flat top of
    /// `top` duration at `height` volts, linear fall over `ramp`, starting
    /// at `start`.
    ///
    /// # Errors
    ///
    /// [`WaveformError::InvalidParameter`] if `ramp <= 0`, `top < 0` or
    /// inputs are non-finite.
    pub fn with_trapezoidal_pulse(
        &self,
        start: f64,
        ramp: f64,
        top: f64,
        height: f64,
    ) -> Result<Waveform, WaveformError> {
        if !(ramp > 0.0) || top < 0.0 || !start.is_finite() || !height.is_finite() {
            return Err(WaveformError::InvalidParameter(
                "trapezoidal pulse needs ramp > 0 and top >= 0",
            ));
        }
        let mut ts = vec![start - ramp, start, start + ramp];
        let mut vs = vec![0.0, 0.0, height];
        if top > 0.0 {
            ts.push(start + ramp + top);
            vs.push(height);
        }
        ts.push(start + 2.0 * ramp + top);
        vs.push(0.0);
        ts.push(start + 3.0 * ramp + top);
        vs.push(0.0);
        let pulse = Waveform::new(ts, vs)?;
        Ok(self.plus(&pulse))
    }

    /// Superposes a double-exponential pulse
    /// `h · (e^(−(t−t0)/τf) − e^(−(t−t0)/τr))`, normalized so its peak is
    /// exactly `height` volts — the canonical shape of capacitive coupling
    /// noise through a lossy line.
    ///
    /// # Errors
    ///
    /// [`WaveformError::InvalidParameter`] if `tau_rise >= tau_fall` or any
    /// time constant is non-positive.
    pub fn with_coupling_pulse(
        &self,
        t0: f64,
        tau_rise: f64,
        tau_fall: f64,
        height: f64,
    ) -> Result<Waveform, WaveformError> {
        let valid = tau_rise > 0.0 && tau_fall > tau_rise && t0.is_finite() && height.is_finite();
        if !valid {
            return Err(WaveformError::InvalidParameter(
                "coupling pulse needs 0 < tau_rise < tau_fall",
            ));
        }
        // Peak of the double exponential occurs at
        // t_peak = t0 + ln(τf/τr)·τrτf/(τf−τr).
        let tpk = tau_rise * tau_fall / (tau_fall - tau_rise) * (tau_fall / tau_rise).ln();
        let peak = (-tpk / tau_fall).exp() - (-tpk / tau_rise).exp();
        let scale = height / peak;
        let end = t0 + 8.0 * tau_fall;
        let dt = tau_rise / 4.0;
        let pulse = Waveform::from_fn(t0, end, dt, |t| {
            let x = t - t0;
            scale * ((-x / tau_fall).exp() - (-x / tau_rise).exp())
        })?;
        Ok(self.plus(&pulse))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Thresholds;

    fn flat() -> Waveform {
        Waveform::constant(0.0, 0.0, 10.0).unwrap()
    }

    #[test]
    fn triangular_peak_and_support() {
        let w = flat().with_triangular_pulse(5.0, 2.0, 0.4).unwrap();
        assert!((w.value_at(5.0) - 0.4).abs() < 1e-12);
        assert_eq!(w.value_at(3.9), 0.0);
        assert_eq!(w.value_at(6.1), 0.0);
        // Half way up the leading edge.
        assert!((w.value_at(4.5) - 0.2).abs() < 1e-12);
        assert!(flat().with_triangular_pulse(5.0, 0.0, 0.4).is_err());
    }

    #[test]
    fn negative_glitch_dips() {
        let th = Thresholds::cmos(1.0);
        let base = Waveform::new(vec![0.0, 1.0, 10.0], vec![0.0, 1.0, 1.0]).unwrap();
        let noisy = base.with_triangular_pulse(2.0, 1.0, -0.8).unwrap();
        assert!(noisy.value_at(2.0) < 0.3);
        // The glitch forces extra 0.5 crossings → last crossing moves late.
        assert!(noisy.last_crossing(th.mid()).unwrap() > base.last_crossing(th.mid()).unwrap());
    }

    #[test]
    fn trapezoid_flat_top() {
        let w = flat().with_trapezoidal_pulse(2.0, 0.5, 1.0, 0.3).unwrap();
        assert!((w.value_at(2.5) - 0.3).abs() < 1e-12);
        assert!((w.value_at(3.0) - 0.3).abs() < 1e-12);
        assert!((w.value_at(3.5) - 0.3).abs() < 1e-12);
        assert_eq!(w.value_at(1.0), 0.0);
        assert_eq!(w.value_at(5.0), 0.0);
        assert!(flat().with_trapezoidal_pulse(2.0, -0.5, 1.0, 0.3).is_err());
    }

    #[test]
    fn coupling_pulse_peaks_at_requested_height() {
        let w = flat().with_coupling_pulse(1.0, 0.05, 0.5, 0.25).unwrap();
        let peak = w.v_max();
        assert!((peak - 0.25).abs() < 2e-3, "peak = {peak}");
        // Pulse decays back to (near) zero.
        assert!(w.value_at(9.9).abs() < 1e-3);
        assert!(flat().with_coupling_pulse(1.0, 0.5, 0.5, 0.25).is_err());
    }
}
