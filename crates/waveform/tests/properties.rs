//! Property-style tests of the waveform algebra.
//!
//! The workspace builds offline, so instead of a property-testing framework
//! these run each invariant over a deterministic seeded sweep of inputs.

// Integration tests panic on failure by design; the workspace's
// library-only unwrap/expect denies do not apply here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use nsta_waveform::{metrics, Polarity, SaturatedRamp, Thresholds, Waveform};

/// Deterministic xorshift64 sampler shared by the sweeps below.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next_unit(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_unit()
    }

    fn usize_range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_unit() * (hi - lo) as f64) as usize
    }

    fn bool(&mut self) -> bool {
        self.next_unit() < 0.5
    }

    /// A random `(t50, slew, rising)` ramp descriptor in SI units.
    fn ramp(&mut self) -> (f64, f64, bool) {
        (
            self.range(300.0, 2500.0) * 1e-12,
            self.range(30.0, 600.0) * 1e-12,
            self.bool(),
        )
    }
}

/// Shifting a waveform shifts every crossing by exactly the shift.
#[test]
fn crossings_shift_with_waveform() {
    let mut rng = Rng::new(0x51f7);
    let th = Thresholds::cmos(1.2);
    for _ in 0..128 {
        let (t50, slew, rising) = rng.ramp();
        let dt = rng.range(-500.0, 500.0) * 1e-12;
        let g = SaturatedRamp::with_slew(t50, slew, th, rising).expect("ramp");
        let w = g
            .to_waveform(t50 - 2.0 * slew, t50 + 2.0 * slew, slew / 30.0)
            .expect("wave");
        let shifted = w.shifted(dt);
        for level in [th.low(), th.mid(), th.high()] {
            let a = w.crossings(level);
            let b = shifted.crossings(level);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert!((y - x - dt).abs() < 1e-15 + 1e-9 * dt.abs());
            }
        }
    }
}

/// `value_at` is bounded by the sample extremes (linear interpolation
/// cannot overshoot).
#[test]
fn interpolation_never_overshoots() {
    let mut rng = Rng::new(0x0E3);
    for _ in 0..128 {
        let n = rng.usize_range(2, 40);
        let samples: Vec<f64> = (0..n).map(|_| rng.range(-2.0, 2.0)).collect();
        let query = rng.range(-1.0, 2.0);
        let ts: Vec<f64> = (0..n).map(|i| i as f64 * 0.1e-9).collect();
        let w = Waveform::new(ts, samples.clone()).expect("wave");
        let v = w.value_at(query * 1e-9);
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
    }
}

/// Superposition is commutative at sample points.
#[test]
fn plus_is_commutative() {
    let mut rng = Rng::new(0xADD);
    for _ in 0..128 {
        let a_vals: Vec<f64> = (0..rng.usize_range(3, 12))
            .map(|_| rng.range(0.0, 1.2))
            .collect();
        let b_vals: Vec<f64> = (0..rng.usize_range(3, 12))
            .map(|_| rng.range(0.0, 1.2))
            .collect();
        let mk = |vals: &[f64], offset: f64| {
            let ts: Vec<f64> = (0..vals.len())
                .map(|i| offset + i as f64 * 0.07e-9)
                .collect();
            Waveform::new(ts, vals.to_vec()).expect("wave")
        };
        let a = mk(&a_vals, 0.0);
        let b = mk(&b_vals, 0.03e-9);
        let ab = a.plus(&b);
        let ba = b.plus(&a);
        for k in 0..60 {
            let t = -0.1e-9 + k as f64 * 0.02e-9;
            assert!((ab.value_at(t) - ba.value_at(t)).abs() < 1e-12);
        }
    }
}

/// The integral is additive over superposition.
#[test]
fn integral_is_linear() {
    let mut rng = Rng::new(0x171);
    for _ in 0..128 {
        let n = rng.usize_range(4, 10);
        let a_vals: Vec<f64> = (0..n).map(|_| rng.range(0.0, 1.0)).collect();
        let ts: Vec<f64> = (0..n).map(|i| i as f64 * 0.1e-9).collect();
        let a = Waveform::new(ts, a_vals).expect("wave");
        let doubled = a.plus(&a);
        assert!((doubled.integral() - 2.0 * a.integral()).abs() < 1e-18);
    }
}

/// A monotone rising record has exactly one crossing per interior level.
#[test]
fn monotone_rise_has_single_crossings() {
    let mut rng = Rng::new(0x2150);
    let th = Thresholds::cmos(1.2);
    for _ in 0..128 {
        let (t50, slew, _) = rng.ramp();
        let g = SaturatedRamp::with_slew(t50, slew, th, true).expect("ramp");
        let w = g
            .to_waveform(t50 - 2.0 * slew, t50 + 2.0 * slew, slew / 25.0)
            .expect("wave");
        assert!(w.is_monotonic(Polarity::Rise, 1e-12));
        for frac in [0.2, 0.5, 0.8] {
            assert_eq!(w.crossings(frac * 1.2).len(), 1, "level {frac}");
        }
    }
}

/// Band area is monotone in the band's upper level.
#[test]
fn band_area_monotone_in_levels() {
    let mut rng = Rng::new(0xA3EA);
    let th = Thresholds::cmos(1.2);
    for _ in 0..128 {
        let (t50, slew, rising) = rng.ramp();
        let g = SaturatedRamp::with_slew(t50, slew, th, rising).expect("ramp");
        let w = g
            .to_waveform(t50 - 2.0 * slew, t50 + 2.0 * slew, slew / 25.0)
            .expect("wave");
        let (t0, t1) = (w.t_start(), w.t_end());
        let a_small = metrics::band_area(&w, t0, t1, 0.0, 0.6).expect("area");
        let a_large = metrics::band_area(&w, t0, t1, 0.0, 1.2).expect("area");
        assert!(a_large >= a_small - 1e-18);
    }
}
