//! Property-based tests of the waveform algebra.

use nsta_waveform::{metrics, Polarity, SaturatedRamp, Thresholds, Waveform};
use proptest::prelude::*;

fn arb_ramp() -> impl Strategy<Value = (f64, f64, bool)> {
    (300.0f64..2500.0, 30.0f64..600.0, any::<bool>())
        .prop_map(|(t50, slew, rising)| (t50 * 1e-12, slew * 1e-12, rising))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Shifting a waveform shifts every crossing by exactly the shift.
    #[test]
    fn crossings_shift_with_waveform((t50, slew, rising) in arb_ramp(), dt_ps in -500.0f64..500.0) {
        let th = Thresholds::cmos(1.2);
        let dt = dt_ps * 1e-12;
        let g = SaturatedRamp::with_slew(t50, slew, th, rising).expect("ramp");
        let w = g.to_waveform(t50 - 2.0 * slew, t50 + 2.0 * slew, slew / 30.0).expect("wave");
        let shifted = w.shifted(dt);
        for level in [th.low(), th.mid(), th.high()] {
            let a = w.crossings(level);
            let b = shifted.crossings(level);
            prop_assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                prop_assert!((y - x - dt).abs() < 1e-15 + 1e-9 * dt.abs());
            }
        }
    }

    /// `value_at` is bounded by the sample extremes (linear interpolation
    /// cannot overshoot).
    #[test]
    fn interpolation_never_overshoots(
        samples in prop::collection::vec(-2.0f64..2.0, 2..40),
        query in -1.0f64..2.0,
    ) {
        let n = samples.len();
        let ts: Vec<f64> = (0..n).map(|i| i as f64 * 0.1e-9).collect();
        let w = Waveform::new(ts, samples.clone()).expect("wave");
        let v = w.value_at(query * 1e-9);
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
    }

    /// Superposition is commutative and associative at sample points.
    #[test]
    fn plus_is_commutative(
        a_vals in prop::collection::vec(0.0f64..1.2, 3..12),
        b_vals in prop::collection::vec(0.0f64..1.2, 3..12),
    ) {
        let mk = |vals: &[f64], offset: f64| {
            let ts: Vec<f64> = (0..vals.len()).map(|i| offset + i as f64 * 0.07e-9).collect();
            Waveform::new(ts, vals.to_vec()).expect("wave")
        };
        let a = mk(&a_vals, 0.0);
        let b = mk(&b_vals, 0.03e-9);
        let ab = a.plus(&b);
        let ba = b.plus(&a);
        for k in 0..60 {
            let t = -0.1e-9 + k as f64 * 0.02e-9;
            prop_assert!((ab.value_at(t) - ba.value_at(t)).abs() < 1e-12);
        }
    }

    /// The integral is additive over superposition.
    #[test]
    fn integral_is_linear(
        a_vals in prop::collection::vec(0.0f64..1.0, 4..10),
    ) {
        let ts: Vec<f64> = (0..a_vals.len()).map(|i| i as f64 * 0.1e-9).collect();
        let a = Waveform::new(ts.clone(), a_vals.clone()).expect("wave");
        let doubled = a.plus(&a);
        prop_assert!((doubled.integral() - 2.0 * a.integral()).abs() < 1e-18);
    }

    /// A monotone rising record has exactly one crossing per interior level.
    #[test]
    fn monotone_rise_has_single_crossings((t50, slew, _) in arb_ramp()) {
        let th = Thresholds::cmos(1.2);
        let g = SaturatedRamp::with_slew(t50, slew, th, true).expect("ramp");
        let w = g.to_waveform(t50 - 2.0 * slew, t50 + 2.0 * slew, slew / 25.0).expect("wave");
        prop_assert!(w.is_monotonic(Polarity::Rise, 1e-12));
        for frac in [0.2, 0.5, 0.8] {
            prop_assert_eq!(w.crossings(frac * 1.2).len(), 1, "level {}", frac);
        }
    }

    /// Band area is monotone in the band's upper level.
    #[test]
    fn band_area_monotone_in_levels((t50, slew, rising) in arb_ramp()) {
        let th = Thresholds::cmos(1.2);
        let g = SaturatedRamp::with_slew(t50, slew, th, rising).expect("ramp");
        let w = g.to_waveform(t50 - 2.0 * slew, t50 + 2.0 * slew, slew / 25.0).expect("wave");
        let (t0, t1) = (w.t_start(), w.t_end());
        let a_small = metrics::band_area(&w, t0, t1, 0.0, 0.6).expect("area");
        let a_large = metrics::band_area(&w, t0, t1, 0.0, 1.2).expect("area");
        prop_assert!(a_large >= a_small - 1e-18);
    }
}
